//! Lowering: loop body → data-dependence graph.
//!
//! Every flattened (if-converted) assignment becomes one DDG node carrying
//! its statement text and latency; every dependence found by
//! [`crate::depend::analyze_dependences`] becomes an edge (duplicates with
//! the same endpoints and distance are collapsed — the scheduler only needs
//! the constraint once). Distances greater than one survive lowering;
//! normalize with `kn_ddg::normalize_distances` before scheduling.

use crate::depend::{analyze_dependences, AnalysisOptions};
use crate::ifconv::{if_convert, GuardedAssign};
use crate::stmt::LoopBody;
use kn_ddg::{Ddg, DdgBuilder, DdgError};
use std::collections::HashSet;

/// Errors from lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// Empty loop body.
    EmptyBody,
    /// The dependence structure is not a legal loop (should be impossible
    /// for bodies built through this crate; kept for API totality).
    Graph(DdgError),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::EmptyBody => write!(f, "loop body has no statements"),
            LowerError::Graph(e) => write!(f, "lowered graph invalid: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lower a loop body to `(ddg, flat_body)`. The flat body is returned so
/// callers can attach runtime semantics per statement.
pub fn lower_loop(
    body: &LoopBody,
    opts: &AnalysisOptions,
) -> Result<(Ddg, Vec<GuardedAssign>), LowerError> {
    let flat = if_convert(body);
    let g = lower_flat(&flat, opts)?;
    Ok((g, flat))
}

/// Lower an already-flattened (if-converted) body to a DDG. This is the
/// entry point transform passes use: fission pieces and rewritten
/// reduction bodies are flat statement lists, not structured [`LoopBody`]s.
pub fn lower_flat(flat: &[GuardedAssign], opts: &AnalysisOptions) -> Result<Ddg, LowerError> {
    if flat.is_empty() {
        return Err(LowerError::EmptyBody);
    }
    let mut b = DdgBuilder::new();
    let mut used_names: HashSet<String> = HashSet::new();
    let mut ids = Vec::with_capacity(flat.len());
    for (i, ga) in flat.iter().enumerate() {
        let base = ga.assign.label.clone().unwrap_or_else(|| format!("S{i}"));
        let name = if used_names.contains(&base) {
            format!("{base}_{i}")
        } else {
            base
        };
        used_names.insert(name.clone());
        let id = b
            .node_full(name, ga.assign.latency.max(1), Some(ga.to_string()))
            .expect("names deduplicated above");
        ids.push(id);
    }
    let mut seen_edges: HashSet<(usize, usize, u32)> = HashSet::new();
    for d in analyze_dependences(flat, opts) {
        if seen_edges.insert((d.src, d.dst, d.distance)) {
            b.dep_dist(ids[d.src], ids[d.dst], d.distance);
        }
    }
    b.build().map_err(LowerError::Graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::stmt::*;
    use kn_ddg::classify;

    /// The paper's Figure 7 loop, written as source.
    pub(crate) fn figure7_body() -> LoopBody {
        LoopBody::new(vec![
            assign(
                "A",
                "A",
                0,
                binop(BinOp::Mul, arr_at("A", -1), arr_at("E", -1)),
            ),
            assign("B", "B", 0, arr("A")),
            assign("C", "C", 0, arr("B")),
            assign(
                "D",
                "D",
                0,
                binop(BinOp::Mul, arr_at("D", -1), arr_at("C", -1)),
            ),
            assign("E", "E", 0, arr("D")),
        ])
    }

    #[test]
    fn figure7_lowers_to_the_paper_graph() {
        let (g, flat) = lower_loop(&figure7_body(), &AnalysisOptions::default()).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(flat.len(), 5);
        let find = |n: &str| g.find(n).unwrap();
        let has_edge = |s: &str, d: &str, dist: u32| {
            g.out_edges(find(s))
                .any(|(_, e)| e.dst == find(d) && e.distance == dist)
        };
        assert!(has_edge("A", "A", 1));
        assert!(has_edge("E", "A", 1));
        assert!(has_edge("A", "B", 0));
        assert!(has_edge("B", "C", 0));
        assert!(has_edge("D", "D", 1));
        assert!(has_edge("C", "D", 1));
        assert!(has_edge("D", "E", 0));
        // Exactly the paper's seven dependences (all flow; no anti/output
        // arise in this loop).
        assert_eq!(g.edge_count(), 7);
        // All nodes Cyclic, as in the paper.
        let cls = classify(&g);
        assert_eq!(cls.cyclic.len(), 5);
    }

    #[test]
    fn statement_text_attached() {
        let (g, _) = lower_loop(&figure7_body(), &AnalysisOptions::default()).unwrap();
        let a = g.find("A").unwrap();
        assert_eq!(g.node(a).stmt.as_deref(), Some("A[I] = A[I-1] * E[I-1]"));
    }

    #[test]
    fn conditional_body_lowers_after_if_conversion() {
        let body = LoopBody::new(vec![
            assign("B", "B", 0, arr_at("A", -1)),
            if_stmt(
                binop(BinOp::Gt, arr("B"), c(0)),
                vec![assign("At", "A", 0, binop(BinOp::Add, arr("B"), c(1)))],
                vec![assign("Ae", "A", 0, c(0))],
            ),
        ]);
        let (g, flat) = lower_loop(&body, &AnalysisOptions::default()).unwrap();
        assert_eq!(flat.len(), 4);
        assert_eq!(g.node_count(), 4);
        // Predicate feeds both guarded writes.
        let p0 = g.find("p0").unwrap();
        assert_eq!(g.out_degree(p0), 2);
        // Carried loop: guarded A-writes feed next iteration's B.
        let cls = classify(&g);
        assert!(!cls.is_doall());
    }

    #[test]
    fn duplicate_labels_are_disambiguated() {
        let body = LoopBody::new(vec![assign("S", "A", 0, c(1)), assign("S", "B", 0, c(2))]);
        let (g, _) = lower_loop(&body, &AnalysisOptions::default()).unwrap();
        assert_eq!(g.node_count(), 2);
        assert!(g.find("S").is_some());
        assert!(g.find("S_1").is_some());
    }

    #[test]
    fn empty_body_rejected() {
        assert_eq!(
            lower_loop(&LoopBody::default(), &AnalysisOptions::default()).unwrap_err(),
            LowerError::EmptyBody
        );
    }

    #[test]
    fn lowered_graph_schedules_end_to_end() {
        use kn_sched::{cyclic_schedule, CyclicOptions, MachineConfig};
        let (g, _) = lower_loop(&figure7_body(), &AnalysisOptions::default()).unwrap();
        let m = MachineConfig::new(2, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        assert_eq!(
            out.steady_ii(),
            2.5,
            "source-built graph matches hand-built"
        );
    }

    #[test]
    fn distance_two_survives_lowering_then_normalizes() {
        let body = LoopBody::new(vec![assign("X", "X", 0, arr_at("X", -2))]);
        let (g, _) = lower_loop(&body, &AnalysisOptions::default()).unwrap();
        assert_eq!(g.max_distance(), 2);
        let u = kn_ddg::normalize_distances(&g);
        assert!(u.graph.distances_normalized());
        assert_eq!(u.factor, 2);
    }
}
