#![forbid(unsafe_code)]
//! # kn-ir — a small loop IR with dependence analysis and if-conversion
//!
//! The paper assumes its input is a data-dependence graph of a loop whose
//! conditionals have been if-converted (§1, citing Allen/Kennedy/Porterfield/
//! Warren 1983) and whose dependence distances come from standard analysis
//! (Padua 1979). This crate supplies that front end:
//!
//! * [`expr`] — scalar/array expressions over a single loop index `I` with
//!   constant offsets (`A[I-1]`, `x`, `2*B[I]+1`);
//! * [`stmt`] — assignments and structured `IF`s forming a loop body;
//! * [`ifconv`] — if-conversion: control dependence → data dependence via
//!   predicate scalars and guarded assignments;
//! * [`depend`] — flow/anti/output dependences with constant distances;
//! * [`lower`] — lowering a loop body to a `kn_ddg::Ddg`, statement text
//!   attached for code generation;
//! * [`interp`] — a sequential reference interpreter over flat guarded
//!   bodies (the ground truth under the transform layer's
//!   differential-equivalence harness);
//! * [`text`] — a parse/render text format for loop bodies, so transform
//!   fixtures can live in `corpus/` next to their `.ddg` files.
//!
//! Distances greater than one are allowed; `kn_ddg::normalize_distances`
//! (loop unwinding) brings the result into the scheduler's normal form.

pub mod depend;
pub mod eval;
pub mod expr;
pub mod ifconv;
pub mod interp;
pub mod lower;
pub mod stmt;
pub mod text;

pub use depend::{analyze_dependences, AnalysisOptions, Dependence, DependenceKind};
pub use eval::{apply_op, eval_expr, external_value, EvalContext};
pub use expr::{arr, arr_at, binop, c, scalar, BinOp, Expr};
pub use ifconv::{if_convert, GuardedAssign};
pub use interp::{interpret, interpret_into, seeded_external_value, seeded_scalar_init, Store};
pub use lower::{lower_flat, lower_loop, LowerError};
pub use stmt::{assign, assign_scalar, if_stmt, Assign, LoopBody, Stmt, Target};
pub use text::{parse_loop, render_loop, IrParseError};
