//! Dependence analysis: flow / anti / output dependences with constant
//! distances (Padua 1979, the analysis the paper's model assumes).
//!
//! For array accesses with affine indices `I + c`, the element written by
//! statement `s` at offset `c1` is read by statement `t` at offset `c2`
//! exactly `c1 - c2` iterations later; a positive difference is a
//! loop-carried dependence, zero is intra-iteration (direction given by
//! statement order), negative flips the direction (and shows up when the
//! pair is visited in the other order).
//!
//! Scalars are a single memory location touched every iteration. By
//! default the analysis applies **scalar expansion** (privatization) to
//! scalars that are always written before being read within an iteration —
//! the predicates introduced by if-conversion are the canonical case —
//! eliminating their spurious loop-carried anti/output dependences. This
//! mirrors what any production parallelizer does before building the DDG;
//! disable it with [`AnalysisOptions::scalar_expansion`] to see the
//! serialized behaviour.

use crate::ifconv::{effective_reads, GuardedAssign};
use crate::stmt::Target;
use std::collections::{HashMap, HashSet};

/// Kind of dependence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DependenceKind {
    /// Read after write (true dependence).
    Flow,
    /// Write after read.
    Anti,
    /// Write after write.
    Output,
}

/// A dependence between two body statements (indices into the flat body).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Dependence {
    pub src: usize,
    pub dst: usize,
    pub distance: u32,
    pub kind: DependenceKind,
    /// The variable (array or scalar) carrying the dependence.
    pub var: String,
}

/// Options for [`analyze_dependences`].
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Privatize scalars that are defined before use in every iteration.
    pub scalar_expansion: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            scalar_expansion: true,
        }
    }
}

/// One access to a location class.
#[derive(Clone, Debug)]
struct Access {
    stmt: usize,
    /// Array offset (0 for scalars).
    offset: i32,
    is_write: bool,
}

/// Compute all dependences of a flat (if-converted) body.
pub fn analyze_dependences(body: &[GuardedAssign], opts: &AnalysisOptions) -> Vec<Dependence> {
    // Group accesses by variable.
    let mut accesses: HashMap<String, Vec<Access>> = HashMap::new();
    let mut scalar_vars: HashSet<String> = HashSet::new();
    for (i, ga) in body.iter().enumerate() {
        let (arrays, scalars) = effective_reads(ga);
        for (a, off) in arrays {
            accesses.entry(a).or_default().push(Access {
                stmt: i,
                offset: off,
                is_write: false,
            });
        }
        for s in scalars {
            scalar_vars.insert(s.clone());
            accesses.entry(s).or_default().push(Access {
                stmt: i,
                offset: 0,
                is_write: false,
            });
        }
        match &ga.assign.target {
            Target::Array { array, offset } => {
                accesses.entry(array.clone()).or_default().push(Access {
                    stmt: i,
                    offset: *offset,
                    is_write: true,
                })
            }
            Target::Scalar(s) => {
                scalar_vars.insert(s.clone());
                accesses.entry(s.clone()).or_default().push(Access {
                    stmt: i,
                    offset: 0,
                    is_write: true,
                });
            }
        }
    }

    let mut deps: HashSet<Dependence> = HashSet::new();
    for (var, accs) in &accesses {
        let is_scalar = scalar_vars.contains(var);
        let privatized = is_scalar && opts.scalar_expansion && {
            // Written before read in iteration order: the first access
            // must be a write. Within one statement the RHS/guard reads
            // happen before the write, so reads rank first on ties —
            // `acc = acc + A[I]` reads acc first and must NOT privatize.
            accs.iter()
                .min_by_key(|a| (a.stmt, a.is_write))
                .map(|first| first.is_write)
                .unwrap_or(false)
        };
        for def in accs.iter().filter(|a| a.is_write) {
            for other in accs {
                if std::ptr::eq(def, other) {
                    continue;
                }
                if other.is_write {
                    // Output dependence def -> other (earlier write first).
                    push_dep(
                        &mut deps,
                        def,
                        other,
                        def.offset - other.offset,
                        DependenceKind::Output,
                        var,
                        is_scalar,
                        privatized,
                    );
                } else {
                    // Flow def -> use.
                    push_dep(
                        &mut deps,
                        def,
                        other,
                        def.offset - other.offset,
                        DependenceKind::Flow,
                        var,
                        is_scalar,
                        privatized,
                    );
                    // Anti use -> def.
                    push_dep(
                        &mut deps,
                        other,
                        def,
                        other.offset - def.offset,
                        DependenceKind::Anti,
                        var,
                        is_scalar,
                        privatized,
                    );
                }
            }
        }
    }
    let mut out: Vec<Dependence> = deps.into_iter().collect();
    out.sort_by_key(|d| (d.src, d.dst, d.distance, d.kind as u8, d.var.clone()));
    out
}

#[allow(clippy::too_many_arguments)]
fn push_dep(
    deps: &mut HashSet<Dependence>,
    src: &Access,
    dst: &Access,
    delta: i32,
    kind: DependenceKind,
    var: &str,
    is_scalar: bool,
    privatized: bool,
) {
    // Self-pairs on the same statement: an array statement never touches
    // the same element as itself in the same iteration unless delta != 0;
    // a scalar statement overwrites itself every iteration.
    let (distance, valid) = if delta > 0 {
        (delta as u32, true)
    } else if delta == 0 {
        if src.stmt < dst.stmt {
            (0, true)
        } else if is_scalar {
            // Same location every iteration: a textually later (or equal)
            // source reaches the next iteration.
            (1, true)
        } else {
            (0, false) // direction flips; covered by the symmetric visit
        }
    } else {
        (0, false) // negative: covered by the symmetric visit
    };
    if !valid {
        return;
    }
    // Privatized scalars keep only intra-iteration flow dependences.
    if privatized && is_scalar && (distance > 0 || kind != DependenceKind::Flow) {
        return;
    }
    if src.stmt == dst.stmt && distance == 0 {
        return; // degenerate self intra edge
    }
    deps.insert(Dependence {
        src: src.stmt,
        dst: dst.stmt,
        distance,
        kind,
        var: var.to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::ifconv::if_convert;
    use crate::stmt::*;

    fn flat(stmts: Vec<Stmt>) -> Vec<GuardedAssign> {
        if_convert(&LoopBody::new(stmts))
    }

    fn has(
        deps: &[Dependence],
        src: usize,
        dst: usize,
        distance: u32,
        kind: DependenceKind,
    ) -> bool {
        deps.iter()
            .any(|d| d.src == src && d.dst == dst && d.distance == distance && d.kind == kind)
    }

    #[test]
    fn figure7_flow_dependences() {
        // A: A[I] = A[I-1] * E[I-1]
        // B: B[I] = A[I]
        // C: C[I] = B[I]
        // D: D[I] = D[I-1] * C[I-1]
        // E: E[I] = D[I]
        let body = flat(vec![
            assign(
                "A",
                "A",
                0,
                binop(BinOp::Mul, arr_at("A", -1), arr_at("E", -1)),
            ),
            assign("B", "B", 0, arr("A")),
            assign("C", "C", 0, arr("B")),
            assign(
                "D",
                "D",
                0,
                binop(BinOp::Mul, arr_at("D", -1), arr_at("C", -1)),
            ),
            assign("E", "E", 0, arr("D")),
        ]);
        let deps = analyze_dependences(&body, &AnalysisOptions::default());
        assert!(has(&deps, 0, 0, 1, DependenceKind::Flow), "A -> A carried");
        assert!(has(&deps, 4, 0, 1, DependenceKind::Flow), "E -> A carried");
        assert!(has(&deps, 0, 1, 0, DependenceKind::Flow), "A -> B intra");
        assert!(has(&deps, 1, 2, 0, DependenceKind::Flow), "B -> C intra");
        assert!(has(&deps, 3, 3, 1, DependenceKind::Flow), "D -> D carried");
        assert!(has(&deps, 2, 3, 1, DependenceKind::Flow), "C -> D carried");
        assert!(has(&deps, 3, 4, 0, DependenceKind::Flow), "D -> E intra");
    }

    #[test]
    fn anti_dependence_detected() {
        // S0 reads A[I+1]; S1 writes A[I]: S1 at iteration i+1 overwrites
        // what S0 read at iteration i: anti S0 -> S1 distance 1.
        let body = flat(vec![
            assign("S0", "B", 0, arr_at("A", 1)),
            assign("S1", "A", 0, c(0)),
        ]);
        let deps = analyze_dependences(&body, &AnalysisOptions::default());
        assert!(has(&deps, 0, 1, 1, DependenceKind::Anti), "{deps:?}");
    }

    #[test]
    fn output_dependence_detected() {
        // S0 writes A[I]; S1 writes A[I-1]: element e written by S1 at
        // iteration e+1, by S0 at e: output S0 -> S1 distance 1.
        let body = flat(vec![
            assign("S0", "A", 0, c(1)),
            assign("S1", "A", -1, c(2)),
        ]);
        let deps = analyze_dependences(&body, &AnalysisOptions::default());
        assert!(has(&deps, 0, 1, 1, DependenceKind::Output), "{deps:?}");
        // And intra output S0 -> S1? Different elements in one iteration —
        // only the distance-1 pair exists.
        assert!(!has(&deps, 0, 1, 0, DependenceKind::Output));
    }

    #[test]
    fn intra_flow_respects_statement_order() {
        // Use before def of the same element: no intra flow, but an intra
        // anti (read then write).
        let body = flat(vec![
            assign("S0", "B", 0, arr("A")),
            assign("S1", "A", 0, c(0)),
        ]);
        let deps = analyze_dependences(&body, &AnalysisOptions::default());
        assert!(!has(&deps, 1, 0, 0, DependenceKind::Flow));
        assert!(has(&deps, 0, 1, 0, DependenceKind::Anti));
    }

    #[test]
    fn distance_two_dependence() {
        let body = flat(vec![assign("S0", "A", 0, arr_at("A", -2))]);
        let deps = analyze_dependences(&body, &AnalysisOptions::default());
        assert!(has(&deps, 0, 0, 2, DependenceKind::Flow), "{deps:?}");
    }

    #[test]
    fn privatized_predicate_has_no_carried_deps() {
        // IF A[I-1] > 0 THEN B[I] = 1 ELSE B[I] = 2:
        // p0 is written then read each iteration -> privatized.
        let body = flat(vec![if_stmt(
            binop(BinOp::Gt, arr_at("A", -1), c(0)),
            vec![assign("Bt", "B", 0, c(1))],
            vec![assign("Be", "B", 0, c(2))],
        )]);
        let deps = analyze_dependences(&body, &AnalysisOptions::default());
        for d in deps.iter().filter(|d| d.var == "p0") {
            assert_eq!(d.distance, 0, "privatized scalar carries nothing: {d:?}");
            assert_eq!(d.kind, DependenceKind::Flow);
        }
    }

    #[test]
    fn unexpanded_scalar_serializes() {
        let body = flat(vec![if_stmt(
            binop(BinOp::Gt, arr_at("A", -1), c(0)),
            vec![assign("Bt", "B", 0, c(1))],
            vec![],
        )]);
        let opts = AnalysisOptions {
            scalar_expansion: false,
        };
        let deps = analyze_dependences(&body, &opts);
        assert!(
            deps.iter().any(|d| d.var == "p0" && d.distance == 1),
            "without expansion the predicate location carries: {deps:?}"
        );
    }

    #[test]
    fn self_accumulating_scalar_not_privatized() {
        // acc = acc + A[I]: the read of acc happens before the write in
        // the same statement, so acc carries across iterations — the
        // distance-1 self flow is the recurrence reduction rewriting kills.
        let body = flat(vec![assign_scalar(
            "S0",
            "acc",
            binop(BinOp::Add, scalar("acc"), arr("A")),
        )]);
        let deps = analyze_dependences(&body, &AnalysisOptions::default());
        assert!(
            has(&deps, 0, 0, 1, DependenceKind::Flow),
            "carried self flow on acc: {deps:?}"
        );
    }

    #[test]
    fn live_scalar_not_privatized() {
        // s is read before written: carries across iterations even with
        // expansion enabled.
        let body = flat(vec![
            assign("S0", "B", 0, scalar("s")),
            assign_scalar("S1", "s", arr("B")),
        ]);
        let deps = analyze_dependences(&body, &AnalysisOptions::default());
        assert!(
            has(&deps, 1, 0, 1, DependenceKind::Flow),
            "s flows to next iter: {deps:?}"
        );
    }

    #[test]
    fn guarded_assign_depends_on_old_target() {
        // IF p THEN A[I] = 1: conditional update reads A[I]'s old value —
        // which for offset-0 targets of the same statement means nothing
        // intra, but a flow from any other def. Use two branches writing
        // the same array to see def-def and def-use interplay.
        let body = flat(vec![if_stmt(
            binop(BinOp::Gt, arr_at("A", -1), c(0)),
            vec![assign("At", "A", 0, c(1))],
            vec![assign("Ae", "A", 0, c(2))],
        )]);
        let deps = analyze_dependences(&body, &AnalysisOptions::default());
        // Both guarded writes to A[I] conflict: output dep between them.
        assert!(has(&deps, 1, 2, 0, DependenceKind::Output), "{deps:?}");
        // And the carried flow A[I-1] -> p0's reads appears as p0 dep on A.
        assert!(deps
            .iter()
            .any(|d| d.var == "A" && d.distance == 1 && d.kind == DependenceKind::Flow));
    }
}
