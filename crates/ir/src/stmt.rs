//! Statements and loop bodies.

use crate::expr::Expr;
use std::fmt;

/// Assignment target: an array element at a constant offset, or a scalar.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Target {
    Array { array: String, offset: i32 },
    Scalar(String),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Array { array, offset } => match offset {
                0 => write!(f, "{array}[I]"),
                o if *o > 0 => write!(f, "{array}[I+{o}]"),
                o => write!(f, "{array}[I-{}]", -o),
            },
            Target::Scalar(s) => write!(f, "{s}"),
        }
    }
}

/// A single assignment `target = rhs`, with an estimated latency (the
/// paper's latency vector `lv`) and an optional label used as the DDG node
/// name.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Assign {
    pub target: Target,
    pub rhs: Expr,
    pub latency: u32,
    pub label: Option<String>,
}

impl fmt::Display for Assign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.target, self.rhs)
    }
}

/// A structured statement: a straight assignment or a two-armed `IF`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    Assign(Assign),
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
}

/// A normalized single-index loop `FOR I = 0 TO N-1 { body }`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LoopBody {
    pub stmts: Vec<Stmt>,
}

impl LoopBody {
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Self { stmts }
    }

    /// True iff the body contains an `IF` (needs if-conversion before
    /// lowering; the paper assumes if-converted input).
    pub fn has_conditionals(&self) -> bool {
        fn any_if(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| matches!(s, Stmt::If { .. }))
        }
        any_if(&self.stmts)
    }
}

/// `label: array[I+offset] = rhs` with unit latency.
pub fn assign(label: &str, array: &str, offset: i32, rhs: Expr) -> Stmt {
    Stmt::Assign(Assign {
        target: Target::Array {
            array: array.into(),
            offset,
        },
        rhs,
        latency: 1,
        label: Some(label.into()),
    })
}

/// `label: name = rhs` (scalar target) with unit latency.
pub fn assign_scalar(label: &str, name: &str, rhs: Expr) -> Stmt {
    Stmt::Assign(Assign {
        target: Target::Scalar(name.into()),
        rhs,
        latency: 1,
        label: Some(label.into()),
    })
}

/// `IF cond THEN … ELSE …`.
pub fn if_stmt(cond: Expr, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_branch,
        else_branch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;

    #[test]
    fn display_assign() {
        let s = Assign {
            target: Target::Array {
                array: "A".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Mul, arr_at("A", -1), arr_at("E", -1)),
            latency: 1,
            label: None,
        };
        assert_eq!(s.to_string(), "A[I] = A[I-1] * E[I-1]");
    }

    #[test]
    fn display_scalar_target() {
        let s = Assign {
            target: Target::Scalar("p0".into()),
            rhs: binop(BinOp::Lt, arr("B"), c(0)),
            latency: 1,
            label: None,
        };
        assert_eq!(s.to_string(), "p0 = B[I] < 0");
    }

    #[test]
    fn detects_conditionals() {
        let plain = LoopBody::new(vec![assign("A", "A", 0, c(1))]);
        assert!(!plain.has_conditionals());
        let cond = LoopBody::new(vec![if_stmt(
            binop(BinOp::Gt, arr("A"), c(0)),
            vec![assign("B", "B", 0, c(1))],
            vec![],
        )]);
        assert!(cond.has_conditionals());
    }
}
