//! Expressions over a single loop index `I`.
//!
//! Array references use affine indices with constant offset (`A[I+c]`),
//! which is exactly the class for which constant dependence distances exist
//! (the paper's model). Scalars are loop-level variables (including the
//! predicates introduced by if-conversion).

use std::fmt;

/// Binary operators (semantics only matter for printing and for the
/// runtime's value functions; the scheduler sees only dependences).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Lt,
    Gt,
    Eq,
    Min,
    Max,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Eq => "==",
            // Min/Max render function-style (see `Display for Expr`); the
            // symbols exist so every operator has a printable spelling.
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    /// True for operators that are associative *and* commutative under the
    /// `u64` wrapping semantics of [`crate::eval::eval_expr`] — exactly the
    /// set a reduction may be reassociated over without changing the result.
    pub fn is_associative_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max)
    }
}

/// An expression tree.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable read.
    Scalar(String),
    /// `array[I + offset]`.
    ArrayRef { array: String, offset: i32 },
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// All array reads `(array, offset)` in this expression.
    pub fn array_reads(&self) -> Vec<(&str, i32)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::ArrayRef { array, offset } = e {
                out.push((array.as_str(), *offset));
            }
        });
        out
    }

    /// All scalar reads in this expression.
    pub fn scalar_reads(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Scalar(s) = e {
                out.push(s.as_str());
            }
        });
        out
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        if let Expr::Binary(_, l, r) = self {
            l.walk(f);
            r.walk(f);
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Scalar(s) => write!(f, "{s}"),
            Expr::ArrayRef { array, offset } => match offset {
                0 => write!(f, "{array}[I]"),
                o if *o > 0 => write!(f, "{array}[I+{o}]"),
                o => write!(f, "{array}[I-{}]", -o),
            },
            Expr::Binary(op @ (BinOp::Min | BinOp::Max), l, r) => {
                write!(f, "{}({l}, {r})", op.symbol())
            }
            Expr::Binary(op, l, r) => write!(f, "{l} {} {r}", op.symbol()),
        }
    }
}

/// `A[I]` — array read at the current iteration.
pub fn arr(array: &str) -> Expr {
    Expr::ArrayRef {
        array: array.into(),
        offset: 0,
    }
}

/// `A[I+offset]` — array read at a constant offset.
pub fn arr_at(array: &str, offset: i32) -> Expr {
    Expr::ArrayRef {
        array: array.into(),
        offset,
    }
}

/// Scalar read.
pub fn scalar(name: &str) -> Expr {
    Expr::Scalar(name.into())
}

/// Integer literal.
pub fn c(v: i64) -> Expr {
    Expr::Const(v)
}

/// Binary operation.
pub fn binop(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::Binary(op, Box::new(l), Box::new(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_offsets() {
        assert_eq!(arr("A").to_string(), "A[I]");
        assert_eq!(arr_at("A", -1).to_string(), "A[I-1]");
        assert_eq!(arr_at("A", 2).to_string(), "A[I+2]");
        assert_eq!(
            binop(BinOp::Mul, arr_at("A", -1), arr_at("E", -1)).to_string(),
            "A[I-1] * E[I-1]"
        );
    }

    #[test]
    fn min_max_render_function_style() {
        assert_eq!(
            binop(BinOp::Max, scalar("m"), arr("D")).to_string(),
            "max(m, D[I])"
        );
        assert_eq!(binop(BinOp::Min, c(1), c(2)).to_string(), "min(1, 2)");
    }

    #[test]
    fn associativity_classification() {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max] {
            assert!(op.is_associative_commutative(), "{op:?}");
        }
        for op in [BinOp::Sub, BinOp::Div, BinOp::Lt, BinOp::Gt, BinOp::Eq] {
            assert!(!op.is_associative_commutative(), "{op:?}");
        }
    }

    #[test]
    fn collects_reads() {
        let e = binop(
            BinOp::Add,
            binop(BinOp::Mul, arr_at("A", -1), scalar("k")),
            arr("B"),
        );
        assert_eq!(e.array_reads(), vec![("A", -1), ("B", 0)]);
        assert_eq!(e.scalar_reads(), vec!["k"]);
    }

    #[test]
    fn const_has_no_reads() {
        assert!(c(7).array_reads().is_empty());
        assert!(c(7).scalar_reads().is_empty());
    }
}
