//! If-conversion (Allen, Kennedy, Porterfield & Warren 1983).
//!
//! The paper's scheduler handles loops "either without conditional
//! statements or if-converted" (§1). This pass converts control dependence
//! to data dependence:
//!
//! * each `IF cond` introduces a predicate scalar `pK = cond` (one fresh
//!   scalar per syntactic `IF`, one assignment per iteration);
//! * every assignment under the `IF` becomes a *guarded assignment* whose
//!   guard list records `(pK, polarity)` for each enclosing branch;
//! * a guarded assignment both **reads** its predicates (data dependence on
//!   the predicate computation) and **reads its own target** (the element
//!   keeps its old value when the guard is false — a conditional update is
//!   a read-modify-write).
//!
//! The output is a flat list of [`GuardedAssign`]s, which
//! [`crate::depend`] analyzes like any straight-line body.

use crate::stmt::{Assign, LoopBody, Stmt};
use std::fmt;

/// One guard: the predicate scalar's name and the required polarity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Guard {
    pub predicate: String,
    pub polarity: bool,
}

/// A flattened, predicated assignment.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GuardedAssign {
    /// Enclosing guards, outermost first. Empty = unconditional.
    pub guards: Vec<Guard>,
    pub assign: Assign,
}

impl GuardedAssign {
    /// True when the assignment executes unconditionally.
    pub fn unconditional(&self) -> bool {
        self.guards.is_empty()
    }
}

impl fmt::Display for GuardedAssign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.guards {
            write!(f, "({}{}) ", if g.polarity { "" } else { "!" }, g.predicate)?;
        }
        write!(f, "{}", self.assign)
    }
}

/// If-convert a loop body into a flat sequence of guarded assignments.
/// Statement order is preserved; predicate definitions precede their uses.
pub fn if_convert(body: &LoopBody) -> Vec<GuardedAssign> {
    let mut out = Vec::new();
    let mut next_pred = 0usize;
    flatten(&body.stmts, &mut Vec::new(), &mut out, &mut next_pred);
    out
}

fn flatten(
    stmts: &[Stmt],
    guards: &mut Vec<Guard>,
    out: &mut Vec<GuardedAssign>,
    next_pred: &mut usize,
) {
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                out.push(GuardedAssign {
                    guards: guards.clone(),
                    assign: a.clone(),
                });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let p = format!("p{}", *next_pred);
                *next_pred += 1;
                // The predicate computation itself is guarded by the
                // enclosing context (nested IFs nest their predicates).
                out.push(GuardedAssign {
                    guards: guards.clone(),
                    assign: Assign {
                        target: crate::stmt::Target::Scalar(p.clone()),
                        rhs: cond.clone(),
                        latency: 1,
                        label: Some(p.clone()),
                    },
                });
                guards.push(Guard {
                    predicate: p.clone(),
                    polarity: true,
                });
                flatten(then_branch, guards, out, next_pred);
                guards.pop();
                guards.push(Guard {
                    predicate: p,
                    polarity: false,
                });
                flatten(else_branch, guards, out, next_pred);
                guards.pop();
            }
        }
    }
}

/// Effective right-hand-side reads of a guarded assignment: the RHS reads,
/// the predicate reads, and — when guarded — the old value of the target
/// (read-modify-write semantics).
pub fn effective_reads(ga: &GuardedAssign) -> (Vec<(String, i32)>, Vec<String>) {
    let mut arrays: Vec<(String, i32)> = ga
        .assign
        .rhs
        .array_reads()
        .into_iter()
        .map(|(a, o)| (a.to_string(), o))
        .collect();
    let mut scalars: Vec<String> = ga
        .assign
        .rhs
        .scalar_reads()
        .into_iter()
        .map(str::to_string)
        .collect();
    for g in &ga.guards {
        scalars.push(g.predicate.clone());
    }
    if !ga.guards.is_empty() {
        match &ga.assign.target {
            crate::stmt::Target::Array { array, offset } => arrays.push((array.clone(), *offset)),
            crate::stmt::Target::Scalar(s) => scalars.push(s.clone()),
        }
    }
    (arrays, scalars)
}

/// The guard condition as an expression over predicate scalars, for
/// rendering (`(p0) A[I] = …`).
pub fn render(ga: &GuardedAssign) -> String {
    ga.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::stmt::*;

    fn sample() -> LoopBody {
        // B[I] = A[I-1]
        // IF B[I] > 0 THEN A[I] = B[I] + 1 ELSE A[I] = 0
        LoopBody::new(vec![
            assign("B", "B", 0, arr_at("A", -1)),
            if_stmt(
                binop(BinOp::Gt, arr("B"), c(0)),
                vec![assign("At", "A", 0, binop(BinOp::Add, arr("B"), c(1)))],
                vec![assign("Ae", "A", 0, c(0))],
            ),
        ])
    }

    #[test]
    fn flattens_in_order_with_predicates() {
        let flat = if_convert(&sample());
        assert_eq!(flat.len(), 4); // B, p0, then-A, else-A
        assert!(flat[0].unconditional());
        assert_eq!(flat[1].assign.label.as_deref(), Some("p0"));
        assert_eq!(
            flat[2].guards,
            vec![Guard {
                predicate: "p0".into(),
                polarity: true
            }]
        );
        assert_eq!(
            flat[3].guards,
            vec![Guard {
                predicate: "p0".into(),
                polarity: false
            }]
        );
    }

    #[test]
    fn guarded_assign_reads_predicate_and_old_target() {
        let flat = if_convert(&sample());
        let (arrays, scalars) = effective_reads(&flat[2]);
        assert!(scalars.contains(&"p0".to_string()), "guard read");
        assert!(
            arrays.contains(&("A".to_string(), 0)),
            "old target value read"
        );
        assert!(arrays.contains(&("B".to_string(), 0)), "rhs read");
    }

    #[test]
    fn nested_ifs_get_fresh_predicates() {
        let body = LoopBody::new(vec![if_stmt(
            binop(BinOp::Gt, arr("X"), c(0)),
            vec![if_stmt(
                binop(BinOp::Lt, arr("Y"), c(5)),
                vec![assign("Z", "Z", 0, c(1))],
                vec![],
            )],
            vec![],
        )]);
        let flat = if_convert(&body);
        // p0 = cond; p1 = cond (guarded by p0); Z (guarded by p0 and p1).
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[1].guards.len(), 1);
        assert_eq!(flat[2].guards.len(), 2);
        assert_eq!(flat[2].guards[0].predicate, "p0");
        assert_eq!(flat[2].guards[1].predicate, "p1");
    }

    #[test]
    fn unconditional_body_passes_through() {
        let body = LoopBody::new(vec![assign("A", "A", 0, arr_at("A", -1))]);
        let flat = if_convert(&body);
        assert_eq!(flat.len(), 1);
        assert!(flat[0].unconditional());
        let (arrays, scalars) = effective_reads(&flat[0]);
        assert_eq!(arrays, vec![("A".to_string(), -1)]);
        assert!(scalars.is_empty());
    }

    #[test]
    fn render_shows_polarity() {
        let flat = if_convert(&sample());
        assert!(render(&flat[2]).starts_with("(p0) "));
        assert!(render(&flat[3]).starts_with("(!p0) "));
    }
}
