//! A tiny text format for loop bodies, mirroring `kn_ddg::text` for DDGs.
//!
//! The transform CLI and the `corpus/xform/*.ir` fixtures need loop
//! *sources*, not just dependence graphs — a transform that rewrites
//! statements cannot start from a DDG. Grammar, one construct per line:
//!
//! ```text
//! # comment (blank lines ignored)
//! label: A[I] = A[I-1] * E[I-1]      # array assignment
//! acc@2: s = s + A[I]                # `@N` sets the statement latency
//! if A[I] > m {                      # two-armed IF, braces required
//!   t: m = A[I]
//! } else {
//!   e: Q[I] = 0
//! }
//! ```
//!
//! Expressions use the usual precedence (`* /` over `+ -` over `< > ==`),
//! parentheses, integer literals, scalars, `A[I+c]` array references, and
//! function-style `min(a, b)` / `max(a, b)`. [`render_loop`] emits a fully
//! parenthesized form that [`parse_loop`] round-trips exactly.

use crate::expr::{BinOp, Expr};
use crate::stmt::{Assign, LoopBody, Stmt, Target};

/// Parse error with 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for IrParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IrParseError {}

/// Parse a loop body from the text format.
pub fn parse_loop(src: &str) -> Result<LoopBody, IrParseError> {
    let mut lines = src
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim().to_string()))
        .filter(|(_, l)| !l.is_empty())
        .collect::<Vec<_>>()
        .into_iter()
        .peekable();
    let stmts = parse_block(&mut lines, false)?;
    if let Some((n, l)) = lines.next() {
        return Err(err(n, format!("unexpected `{l}` after end of body")));
    }
    Ok(LoopBody::new(stmts))
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn err(line: usize, message: impl Into<String>) -> IrParseError {
    IrParseError {
        line,
        message: message.into(),
    }
}

type Lines = std::iter::Peekable<std::vec::IntoIter<(usize, String)>>;

/// Parse statements until EOF (`in_if == false`) or a line starting with
/// `}` (`in_if == true`, line left for the caller).
fn parse_block(lines: &mut Lines, in_if: bool) -> Result<Vec<Stmt>, IrParseError> {
    let mut stmts = Vec::new();
    while let Some((n, line)) = lines.peek().cloned() {
        if line.starts_with('}') {
            if in_if {
                return Ok(stmts);
            }
            return Err(err(n, "`}` without matching `if`"));
        }
        lines.next();
        if let Some(rest) = line.strip_prefix("if ") {
            let cond_src = rest
                .strip_suffix('{')
                .ok_or_else(|| err(n, "`if` line must end with `{`"))?;
            let cond = parse_expr_str(cond_src, n)?;
            let then_branch = parse_block(lines, true)?;
            let (cn, close) = lines
                .next()
                .ok_or_else(|| err(n, "unclosed `if` (missing `}`)"))?;
            let else_branch = match close.as_str() {
                "}" => Vec::new(),
                "} else {" => {
                    let eb = parse_block(lines, true)?;
                    let (en, eclose) = lines
                        .next()
                        .ok_or_else(|| err(cn, "unclosed `else` (missing `}`)"))?;
                    if eclose != "}" {
                        return Err(err(en, format!("expected `}}`, got `{eclose}`")));
                    }
                    eb
                }
                other => {
                    return Err(err(
                        cn,
                        format!("expected `}}` or `}} else {{`, got `{other}`"),
                    ))
                }
            };
            stmts.push(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        } else {
            stmts.push(parse_assign_line(&line, n)?);
        }
    }
    if in_if {
        // Ran out of lines inside an if body.
        return Err(err(0, "unclosed `if` (missing `}`)"));
    }
    Ok(stmts)
}

/// `label[@lat]: target = expr`
fn parse_assign_line(line: &str, n: usize) -> Result<Stmt, IrParseError> {
    let (head, rest) = line
        .split_once(':')
        .ok_or_else(|| err(n, format!("expected `label: target = expr`, got `{line}`")))?;
    let (label, latency) = match head.split_once('@') {
        Some((l, lat)) => (
            l.trim(),
            lat.trim()
                .parse::<u32>()
                .map_err(|_| err(n, format!("bad latency `{}`", lat.trim())))?,
        ),
        None => (head.trim(), 1),
    };
    if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(n, format!("bad label `{label}`")));
    }
    let (lhs, rhs_src) = rest
        .split_once('=')
        .ok_or_else(|| err(n, format!("missing `=` in `{line}`")))?;
    // Guard against `==` swallowing: a target never contains `=`, so a
    // leading `=` in the remainder means the line used `==` as assignment.
    if rhs_src.starts_with('=') {
        return Err(err(n, "`==` is a comparison; assignment is a single `=`"));
    }
    let target = parse_target(lhs.trim(), n)?;
    let rhs = parse_expr_str(rhs_src, n)?;
    Ok(Stmt::Assign(Assign {
        target,
        rhs,
        latency: latency.max(1),
        label: Some(label.to_string()),
    }))
}

fn parse_target(s: &str, n: usize) -> Result<Target, IrParseError> {
    let mut p = ExprParser::new(s, n);
    let e = p.parse_primary()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(err(n, format!("trailing input in target `{s}`")));
    }
    match e {
        Expr::Scalar(name) => Ok(Target::Scalar(name)),
        Expr::ArrayRef { array, offset } => Ok(Target::Array { array, offset }),
        other => Err(err(n, format!("`{other}` is not an assignable target"))),
    }
}

fn parse_expr_str(s: &str, n: usize) -> Result<Expr, IrParseError> {
    let mut p = ExprParser::new(s, n);
    let e = p.parse_expr()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(err(n, format!("trailing input after expression in `{s}`")));
    }
    Ok(e)
}

struct ExprParser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> ExprParser<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        Self {
            src: s.as_bytes(),
            pos: 0,
            line,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn fail(&self, msg: impl Into<String>) -> IrParseError {
        err(self.line, msg.into())
    }

    /// comparison: additive (('<' | '>' | '==') additive)?
    fn parse_expr(&mut self) -> Result<Expr, IrParseError> {
        let lhs = self.parse_additive()?;
        self.skip_ws();
        let op = if self.eat("==") {
            BinOp::Eq
        } else if self.eat("<") {
            BinOp::Lt
        } else if self.eat(">") {
            BinOp::Gt
        } else {
            return Ok(lhs);
        };
        let rhs = self.parse_additive()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_additive(&mut self) -> Result<Expr, IrParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            self.skip_ws();
            let op = if self.eat("+") {
                BinOp::Add
            } else if self.eat("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, IrParseError> {
        let mut lhs = self.parse_primary()?;
        loop {
            self.skip_ws();
            let op = if self.eat("*") {
                BinOp::Mul
            } else if self.eat("/") {
                BinOp::Div
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_primary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, IrParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.parse_expr()?;
                if !self.eat(")") {
                    return Err(self.fail("missing `)`"));
                }
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                let v = text
                    .parse::<i64>()
                    .map_err(|_| self.fail(format!("integer literal `{text}` out of range")))?;
                Ok(Expr::Const(v))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.src[start..self.pos])
                    .unwrap()
                    .to_string();
                if (name == "min" || name == "max") && self.eat("(") {
                    let op = if name == "min" {
                        BinOp::Min
                    } else {
                        BinOp::Max
                    };
                    let a = self.parse_expr()?;
                    if !self.eat(",") {
                        return Err(self.fail(format!("missing `,` in `{name}(…)`")));
                    }
                    let b = self.parse_expr()?;
                    if !self.eat(")") {
                        return Err(self.fail(format!("missing `)` in `{name}(…)`")));
                    }
                    return Ok(Expr::Binary(op, Box::new(a), Box::new(b)));
                }
                if self.eat("[") {
                    if !self.eat("I") {
                        return Err(self.fail(format!("array index must be `I±c` in `{name}[…]`")));
                    }
                    self.skip_ws();
                    let offset = match self.peek() {
                        Some(b']') => 0,
                        Some(sign @ (b'+' | b'-')) => {
                            self.pos += 1;
                            self.skip_ws();
                            let start = self.pos;
                            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                                self.pos += 1;
                            }
                            let digits = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                            let mag = digits
                                .parse::<i32>()
                                .map_err(|_| self.fail(format!("bad offset `{digits}`")))?;
                            if sign == b'+' {
                                mag
                            } else {
                                -mag
                            }
                        }
                        _ => return Err(self.fail(format!("bad index in `{name}[…]`"))),
                    };
                    if !self.eat("]") {
                        return Err(self.fail(format!("missing `]` in `{name}[…]`")));
                    }
                    return Ok(Expr::ArrayRef {
                        array: name,
                        offset,
                    });
                }
                Ok(Expr::Scalar(name))
            }
            Some(c) => Err(self.fail(format!("unexpected `{}`", c as char))),
            None => Err(self.fail("unexpected end of expression")),
        }
    }
}

/// Render a loop body in the text format; [`parse_loop`] round-trips the
/// result exactly (expressions come out fully parenthesized).
pub fn render_loop(body: &LoopBody) -> String {
    let mut out = String::new();
    render_stmts(&body.stmts, 0, &mut out);
    out
}

fn render_stmts(stmts: &[Stmt], depth: usize, out: &mut String) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    for (i, s) in stmts.iter().enumerate() {
        match s {
            Stmt::Assign(a) => {
                let label = a.label.clone().unwrap_or_else(|| format!("S{i}"));
                let lat = if a.latency != 1 {
                    format!("@{}", a.latency)
                } else {
                    String::new()
                };
                writeln!(out, "{pad}{label}{lat}: {} = {}", a.target, paren(&a.rhs)).unwrap();
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                writeln!(out, "{pad}if {} {{", paren(cond)).unwrap();
                render_stmts(then_branch, depth + 1, out);
                if else_branch.is_empty() {
                    writeln!(out, "{pad}}}").unwrap();
                } else {
                    writeln!(out, "{pad}}} else {{").unwrap();
                    render_stmts(else_branch, depth + 1, out);
                    writeln!(out, "{pad}}}").unwrap();
                }
            }
        }
    }
}

/// Fully parenthesized rendering (the plain `Display` impl omits parens,
/// which loses tree shape for mixed-precedence nests).
fn paren(e: &Expr) -> String {
    match e {
        Expr::Binary(op @ (BinOp::Min | BinOp::Max), l, r) => match op {
            BinOp::Min => format!("min({}, {})", paren(l), paren(r)),
            _ => format!("max({}, {})", paren(l), paren(r)),
        },
        Expr::Binary(op, l, r) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Lt => "<",
                BinOp::Gt => ">",
                BinOp::Eq => "==",
                BinOp::Min | BinOp::Max => unreachable!("handled above"),
            };
            format!("({} {sym} {})", paren(l), paren(r))
        }
        leaf => leaf.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::stmt::{assign, assign_scalar, if_stmt};

    #[test]
    fn parses_figure7_style_source() {
        let src = "\
# the paper's Figure 7
A: A[I] = A[I-1] * E[I-1]
B: B[I] = A[I]
C: C[I] = B[I]
D: D[I] = D[I-1] * C[I-1]
E: E[I] = D[I]
";
        let body = parse_loop(src).unwrap();
        assert_eq!(body.stmts.len(), 5);
        let (g, _) = crate::lower::lower_loop(&body, &Default::default()).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn latency_suffix_and_scalar_targets() {
        let body = parse_loop("acc@3: s = s + A[I+2]\n").unwrap();
        let Stmt::Assign(a) = &body.stmts[0] else {
            panic!()
        };
        assert_eq!(a.latency, 3);
        assert_eq!(a.target, Target::Scalar("s".into()));
        assert_eq!(a.rhs, binop(BinOp::Add, scalar("s"), arr_at("A", 2)));
    }

    #[test]
    fn parses_if_else_and_min_max() {
        let src = "\
if A[I] > m {
  t: m = max(m, A[I])
} else {
  e: Q[I] = min(1, 2)
}
";
        let body = parse_loop(src).unwrap();
        assert!(body.has_conditionals());
        let Stmt::If { cond, .. } = &body.stmts[0] else {
            panic!()
        };
        assert_eq!(*cond, binop(BinOp::Gt, arr("A"), scalar("m")));
    }

    #[test]
    fn precedence_and_parens() {
        let b = parse_loop("x: X[I] = A[I] + B[I] * 2\n").unwrap();
        let Stmt::Assign(a) = &b.stmts[0] else {
            panic!()
        };
        assert_eq!(
            a.rhs,
            binop(BinOp::Add, arr("A"), binop(BinOp::Mul, arr("B"), c(2)))
        );
        let b = parse_loop("x: X[I] = (A[I] + B[I]) * 2\n").unwrap();
        let Stmt::Assign(a) = &b.stmts[0] else {
            panic!()
        };
        assert_eq!(
            a.rhs,
            binop(BinOp::Mul, binop(BinOp::Add, arr("A"), arr("B")), c(2))
        );
    }

    #[test]
    fn round_trips_structured_bodies() {
        let body = crate::stmt::LoopBody::new(vec![
            assign("m1", "M1", 0, binop(BinOp::Mul, arr_at("ZA", 1), arr("ZR"))),
            assign_scalar("cmp", "p", binop(BinOp::Gt, arr("D"), scalar("m"))),
            if_stmt(
                scalar("p"),
                vec![assign_scalar("upd", "m", arr("D"))],
                vec![assign("alt", "Q", 0, binop(BinOp::Sub, c(0), arr("D")))],
            ),
        ]);
        let text = render_loop(&body);
        let back = parse_loop(&text).unwrap();
        assert_eq!(back, body);
        // And render is a fixpoint.
        assert_eq!(render_loop(&back), text);
    }

    #[test]
    fn error_carries_line_number() {
        let e = parse_loop("A: A[I] = 1\nB B[I] = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse_loop("if A[I] > 0 {\n  t: B[I] = 1\n").is_err());
        assert!(parse_loop("}\n").is_err());
        assert!(parse_loop("x: 3 = 4\n").is_err());
        assert!(parse_loop("x: X[J] = 4\n").is_err());
    }
}
