//! Expression evaluation over `u64` wrapping arithmetic.
//!
//! Used to derive *real* runtime semantics for a lowered loop (see
//! `kn-runtime`'s `from_ir` module): the parallel schedule then computes
//! actual numbers, not just hashes, and is checked against sequential
//! execution value for value.
//!
//! Semantics: all values are `u64`; `+`, `-`, `*` wrap; `/` by zero yields
//! 0 (documented total division); comparisons yield 1/0.

use crate::expr::{BinOp, Expr};

/// Resolves the leaf reads of an expression during evaluation.
pub trait EvalContext {
    /// Value of `array[I + offset]` for the current iteration.
    fn array(&mut self, array: &str, offset: i32) -> u64;
    /// Value of a scalar variable.
    fn scalar(&mut self, name: &str) -> u64;
}

/// Evaluate `e` under `ctx`.
pub fn eval_expr(e: &Expr, ctx: &mut impl EvalContext) -> u64 {
    match e {
        Expr::Const(v) => *v as u64,
        Expr::Scalar(s) => ctx.scalar(s),
        Expr::ArrayRef { array, offset } => ctx.array(array, *offset),
        Expr::Binary(op, l, r) => {
            let a = eval_expr(l, ctx);
            let b = eval_expr(r, ctx);
            apply_op(*op, a, b)
        }
    }
}

/// Apply one binary operator to already-evaluated operands. Public so the
/// reduction epilogue (folding privatized elements back into the
/// accumulator) uses *exactly* the interpreter's arithmetic.
pub fn apply_op(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Lt => u64::from(a < b),
        BinOp::Gt => u64::from(a > b),
        BinOp::Eq => u64::from(a == b),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    }
}

/// The default value of an array element never written inside the loop
/// (the "initial memory contents"): a per-(array, index) hash, so distinct
/// external inputs are distinguishable and reproducible in every engine.
pub fn external_value(array: &str, index: i64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in array.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h = (h ^ index as u64).wrapping_mul(0x100_0000_01b3);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use std::collections::HashMap;

    struct Map {
        arrays: HashMap<(String, i32), u64>,
        scalars: HashMap<String, u64>,
    }

    impl EvalContext for Map {
        fn array(&mut self, array: &str, offset: i32) -> u64 {
            self.arrays[&(array.to_string(), offset)]
        }
        fn scalar(&mut self, name: &str) -> u64 {
            self.scalars[name]
        }
    }

    fn ctx() -> Map {
        let mut arrays = HashMap::new();
        arrays.insert(("A".to_string(), -1), 6u64);
        arrays.insert(("B".to_string(), 0), 7u64);
        let mut scalars = HashMap::new();
        scalars.insert("k".to_string(), 3u64);
        Map { arrays, scalars }
    }

    #[test]
    fn arithmetic() {
        let e = binop(
            BinOp::Add,
            binop(BinOp::Mul, arr_at("A", -1), scalar("k")),
            arr("B"),
        );
        assert_eq!(eval_expr(&e, &mut ctx()), 6 * 3 + 7);
    }

    #[test]
    fn comparisons_are_boolean() {
        assert_eq!(eval_expr(&binop(BinOp::Lt, c(1), c(2)), &mut ctx()), 1);
        assert_eq!(eval_expr(&binop(BinOp::Gt, c(1), c(2)), &mut ctx()), 0);
        assert_eq!(eval_expr(&binop(BinOp::Eq, c(2), c(2)), &mut ctx()), 1);
    }

    #[test]
    fn division_is_total() {
        assert_eq!(eval_expr(&binop(BinOp::Div, c(10), c(0)), &mut ctx()), 0);
        assert_eq!(eval_expr(&binop(BinOp::Div, c(10), c(3)), &mut ctx()), 3);
    }

    #[test]
    fn wrapping_behaviour() {
        let e = binop(BinOp::Mul, c(i64::MAX), c(16));
        let _ = eval_expr(&e, &mut ctx()); // must not panic
    }

    #[test]
    fn external_values_are_stable_and_distinct() {
        assert_eq!(external_value("A", 3), external_value("A", 3));
        assert_ne!(external_value("A", 3), external_value("A", 4));
        assert_ne!(external_value("A", 3), external_value("B", 3));
    }

    // ---- per-kind coverage: every Expr and BinOp variant ----------------

    #[test]
    fn const_negative_wraps_to_u64() {
        assert_eq!(eval_expr(&c(-1), &mut ctx()), u64::MAX);
        assert_eq!(eval_expr(&c(0), &mut ctx()), 0);
    }

    #[test]
    fn scalar_and_array_leaves_hit_the_context() {
        assert_eq!(eval_expr(&scalar("k"), &mut ctx()), 3);
        assert_eq!(eval_expr(&arr_at("A", -1), &mut ctx()), 6);
        assert_eq!(eval_expr(&arr("B"), &mut ctx()), 7);
    }

    #[test]
    fn subtraction_wraps_below_zero() {
        assert_eq!(eval_expr(&binop(BinOp::Sub, c(3), c(5)), &mut ctx()), {
            3u64.wrapping_sub(5)
        });
    }

    #[test]
    fn add_wraps_at_u64_max() {
        assert_eq!(
            eval_expr(&binop(BinOp::Add, c(-1), c(1)), &mut ctx()),
            0,
            "u64::MAX + 1 wraps to 0"
        );
    }

    #[test]
    fn min_max_semantics() {
        assert_eq!(eval_expr(&binop(BinOp::Min, c(9), c(4)), &mut ctx()), 4);
        assert_eq!(eval_expr(&binop(BinOp::Max, c(9), c(4)), &mut ctx()), 9);
        // Idempotent on equal operands.
        assert_eq!(eval_expr(&binop(BinOp::Min, c(4), c(4)), &mut ctx()), 4);
        assert_eq!(eval_expr(&binop(BinOp::Max, c(4), c(4)), &mut ctx()), 4);
    }

    #[test]
    fn min_max_add_mul_are_associative_commutative_on_samples() {
        // Spot-check the algebraic claim `is_associative_commutative` makes,
        // on values chosen to straddle wrap-around.
        let vals = [0u64, 1, 7, u64::MAX - 1, u64::MAX];
        let apply =
            |op: BinOp, a: u64, b: u64| eval_expr(&binop(op, c(a as i64), c(b as i64)), &mut ctx());
        for op in [BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max] {
            for &a in &vals {
                for &b in &vals {
                    assert_eq!(apply(op, a, b), apply(op, b, a), "{op:?} commutes");
                    for &d in &vals {
                        let l = apply(op, apply(op, a, b), d);
                        let r = apply(op, a, apply(op, b, d));
                        assert_eq!(l, r, "{op:?} associates");
                    }
                }
            }
        }
    }

    /// Oracle for the SNIPPETS scan loop `a[i] = val; val = val * f`:
    /// after three iterations the stores must be `v0*f, v0*f^2, v0*f^3`
    /// computed by hand with wrapping arithmetic.
    #[test]
    fn snippets_val_times_f_oracle() {
        struct Scan {
            val: u64,
            f: u64,
        }
        impl EvalContext for Scan {
            fn array(&mut self, _: &str, _: i32) -> u64 {
                unreachable!("scan loop reads no arrays")
            }
            fn scalar(&mut self, name: &str) -> u64 {
                match name {
                    "val" => self.val,
                    "f" => self.f,
                    _ => unreachable!(),
                }
            }
        }
        let v0 = external_value("val", -1);
        let f = external_value("f", -1);
        let mut ctx = Scan { val: v0, f };
        let update = binop(BinOp::Mul, scalar("val"), scalar("f"));
        let mut stores = Vec::new();
        for _ in 0..3 {
            ctx.val = eval_expr(&update, &mut ctx);
            stores.push(ctx.val);
        }
        let hand = [
            v0.wrapping_mul(f),
            v0.wrapping_mul(f).wrapping_mul(f),
            v0.wrapping_mul(f).wrapping_mul(f).wrapping_mul(f),
        ];
        assert_eq!(stores, hand);
    }
}
