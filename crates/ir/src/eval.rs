//! Expression evaluation over `u64` wrapping arithmetic.
//!
//! Used to derive *real* runtime semantics for a lowered loop (see
//! `kn-runtime`'s `from_ir` module): the parallel schedule then computes
//! actual numbers, not just hashes, and is checked against sequential
//! execution value for value.
//!
//! Semantics: all values are `u64`; `+`, `-`, `*` wrap; `/` by zero yields
//! 0 (documented total division); comparisons yield 1/0.

use crate::expr::{BinOp, Expr};

/// Resolves the leaf reads of an expression during evaluation.
pub trait EvalContext {
    /// Value of `array[I + offset]` for the current iteration.
    fn array(&mut self, array: &str, offset: i32) -> u64;
    /// Value of a scalar variable.
    fn scalar(&mut self, name: &str) -> u64;
}

/// Evaluate `e` under `ctx`.
pub fn eval_expr(e: &Expr, ctx: &mut impl EvalContext) -> u64 {
    match e {
        Expr::Const(v) => *v as u64,
        Expr::Scalar(s) => ctx.scalar(s),
        Expr::ArrayRef { array, offset } => ctx.array(array, *offset),
        Expr::Binary(op, l, r) => {
            let a = eval_expr(l, ctx);
            let b = eval_expr(r, ctx);
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => a.checked_div(b).unwrap_or(0),
                BinOp::Lt => u64::from(a < b),
                BinOp::Gt => u64::from(a > b),
                BinOp::Eq => u64::from(a == b),
            }
        }
    }
}

/// The default value of an array element never written inside the loop
/// (the "initial memory contents"): a per-(array, index) hash, so distinct
/// external inputs are distinguishable and reproducible in every engine.
pub fn external_value(array: &str, index: i64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in array.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h = (h ^ index as u64).wrapping_mul(0x100_0000_01b3);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use std::collections::HashMap;

    struct Map {
        arrays: HashMap<(String, i32), u64>,
        scalars: HashMap<String, u64>,
    }

    impl EvalContext for Map {
        fn array(&mut self, array: &str, offset: i32) -> u64 {
            self.arrays[&(array.to_string(), offset)]
        }
        fn scalar(&mut self, name: &str) -> u64 {
            self.scalars[name]
        }
    }

    fn ctx() -> Map {
        let mut arrays = HashMap::new();
        arrays.insert(("A".to_string(), -1), 6u64);
        arrays.insert(("B".to_string(), 0), 7u64);
        let mut scalars = HashMap::new();
        scalars.insert("k".to_string(), 3u64);
        Map { arrays, scalars }
    }

    #[test]
    fn arithmetic() {
        let e = binop(
            BinOp::Add,
            binop(BinOp::Mul, arr_at("A", -1), scalar("k")),
            arr("B"),
        );
        assert_eq!(eval_expr(&e, &mut ctx()), 6 * 3 + 7);
    }

    #[test]
    fn comparisons_are_boolean() {
        assert_eq!(eval_expr(&binop(BinOp::Lt, c(1), c(2)), &mut ctx()), 1);
        assert_eq!(eval_expr(&binop(BinOp::Gt, c(1), c(2)), &mut ctx()), 0);
        assert_eq!(eval_expr(&binop(BinOp::Eq, c(2), c(2)), &mut ctx()), 1);
    }

    #[test]
    fn division_is_total() {
        assert_eq!(eval_expr(&binop(BinOp::Div, c(10), c(0)), &mut ctx()), 0);
        assert_eq!(eval_expr(&binop(BinOp::Div, c(10), c(3)), &mut ctx()), 3);
    }

    #[test]
    fn wrapping_behaviour() {
        let e = binop(BinOp::Mul, c(i64::MAX), c(16));
        let _ = eval_expr(&e, &mut ctx()); // must not panic
    }

    #[test]
    fn external_values_are_stable_and_distinct() {
        assert_eq!(external_value("A", 3), external_value("A", 3));
        assert_ne!(external_value("A", 3), external_value("A", 4));
        assert_ne!(external_value("A", 3), external_value("B", 3));
    }
}
