//! Sequential reference interpreter for flat guarded-assignment bodies.
//!
//! This is the ground truth the transform layer's differential-equivalence
//! harness compares against: run the original body and the transformed body
//! for `N` iterations from the same seeded initial memory, and demand the
//! observable stores agree. Semantics match [`crate::eval`] exactly —
//! `u64` wrapping arithmetic, total division, 1/0 comparisons — and initial
//! memory comes from [`external_value`] mixed with a per-run seed, so one
//! loop can be executed on many distinct reproducible inputs.
//!
//! The interpreter executes statements strictly in order within each
//! iteration and iterations strictly in order — i.e. the loop's *serial*
//! semantics, the thing every transform must preserve.

use crate::eval::{eval_expr, external_value, EvalContext};
use crate::ifconv::GuardedAssign;
use crate::stmt::Target;
use std::collections::BTreeMap;

/// Initial-memory value for `(array, index)` under `seed`. Seed 0 is the
/// unmixed [`external_value`] (the value `kn-runtime` uses); other seeds
/// remix it so differential tests can sweep many reproducible inputs.
pub fn seeded_external_value(seed: u64, array: &str, index: i64) -> u64 {
    let base = external_value(array, index);
    if seed == 0 {
        return base;
    }
    let mut h = base ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 29;
    h
}

/// Initial value of a scalar before the loop runs: its external value at
/// the sentinel index `-1` (array cells use their real indices, so the
/// sentinel cannot collide with any in-loop array read).
pub fn seeded_scalar_init(seed: u64, name: &str) -> u64 {
    seeded_external_value(seed, name, -1)
}

/// Final memory after interpreting a loop: exactly the cells and scalars
/// that were written. `BTreeMap` keeps comparison and rendering
/// deterministic.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Store {
    /// `(array, absolute index) -> value` for every array cell written.
    pub arrays: BTreeMap<(String, i64), u64>,
    /// `name -> value` for every scalar written.
    pub scalars: BTreeMap<String, u64>,
}

struct Machine<'a> {
    seed: u64,
    /// Current iteration index `I` (0-based).
    i: i64,
    store: &'a mut Store,
}

impl EvalContext for Machine<'_> {
    fn array(&mut self, array: &str, offset: i32) -> u64 {
        let idx = self.i + offset as i64;
        match self.store.arrays.get(&(array.to_string(), idx)) {
            Some(&v) => v,
            None => seeded_external_value(self.seed, array, idx),
        }
    }
    fn scalar(&mut self, name: &str) -> u64 {
        match self.store.scalars.get(name) {
            Some(&v) => v,
            None => seeded_scalar_init(self.seed, name),
        }
    }
}

/// Run `body` for `iters` iterations (`I = 0..iters`) from the seeded
/// initial memory and return everything it wrote.
pub fn interpret(body: &[GuardedAssign], iters: u32, seed: u64) -> Store {
    let mut store = Store::default();
    interpret_into(&mut store, body, iters, seed);
    store
}

/// Run `body` against an existing store (reads fall back to seeded external
/// memory only for cells the store has never seen). This is how a fissioned
/// program executes: each piece is a complete loop over the full iteration
/// space, run back-to-back against shared memory.
pub fn interpret_into(store: &mut Store, body: &[GuardedAssign], iters: u32, seed: u64) {
    for i in 0..iters as i64 {
        for ga in body {
            let mut m = Machine {
                seed,
                i,
                store: &mut *store,
            };
            let fire = ga.guards.iter().all(|g| {
                let v = m.scalar(&g.predicate) != 0;
                v == g.polarity
            });
            if !fire {
                continue;
            }
            let value = eval_expr(&ga.assign.rhs, &mut m);
            match &ga.assign.target {
                Target::Array { array, offset } => {
                    store
                        .arrays
                        .insert((array.clone(), i + *offset as i64), value);
                }
                Target::Scalar(name) => {
                    store.scalars.insert(name.clone(), value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::ifconv::if_convert;
    use crate::stmt::{assign, assign_scalar, if_stmt, LoopBody};

    fn flat(body: &LoopBody) -> Vec<GuardedAssign> {
        if_convert(body)
    }

    #[test]
    fn doall_loop_writes_every_cell() {
        // A[I] = B[I] + 1
        let body = LoopBody::new(vec![assign("a", "A", 0, binop(BinOp::Add, arr("B"), c(1)))]);
        let s = interpret(&flat(&body), 4, 0);
        assert_eq!(s.arrays.len(), 4);
        for i in 0..4i64 {
            assert_eq!(
                s.arrays[&("A".to_string(), i)],
                external_value("B", i).wrapping_add(1)
            );
        }
        assert!(s.scalars.is_empty());
    }

    #[test]
    fn carried_recurrence_reads_previous_write() {
        // X[I] = X[I-1] + 1: X[0] reads external X[-1]; X[3] = X[-1] + 4.
        let body = LoopBody::new(vec![assign(
            "x",
            "X",
            0,
            binop(BinOp::Add, arr_at("X", -1), c(1)),
        )]);
        let s = interpret(&flat(&body), 4, 0);
        let x_init = external_value("X", -1);
        assert_eq!(s.arrays[&("X".to_string(), 3)], x_init.wrapping_add(4));
    }

    #[test]
    fn scalar_accumulator_threads_iterations() {
        // acc = acc + A[I], starting from the scalar's external init.
        let body = LoopBody::new(vec![assign_scalar(
            "s",
            "acc",
            binop(BinOp::Add, scalar("acc"), arr("A")),
        )]);
        let s = interpret(&flat(&body), 3, 0);
        let mut want = seeded_scalar_init(0, "acc");
        for i in 0..3 {
            want = want.wrapping_add(external_value("A", i));
        }
        assert_eq!(s.scalars["acc"], want);
    }

    #[test]
    fn guards_respect_polarity_and_predicate_value() {
        // if A[I] > B[I] { M[I] = A[I] } else { M[I] = B[I] } — after
        // if-conversion the predicate is a fresh scalar written in the same
        // iteration, so both polarities are exercised.
        let body = LoopBody::new(vec![if_stmt(
            binop(BinOp::Gt, arr("A"), arr("B")),
            vec![assign("t", "M", 0, arr("A"))],
            vec![assign("e", "M", 0, arr("B"))],
        )]);
        let s = interpret(&flat(&body), 8, 0);
        for i in 0..8i64 {
            let a = external_value("A", i);
            let b = external_value("B", i);
            assert_eq!(s.arrays[&("M".to_string(), i)], if a > b { a } else { b });
        }
    }

    #[test]
    fn seeds_change_inputs_but_not_structure() {
        let body = LoopBody::new(vec![assign("a", "A", 0, binop(BinOp::Mul, arr("B"), c(3)))]);
        let s0 = interpret(&flat(&body), 4, 0);
        let s1 = interpret(&flat(&body), 4, 1);
        assert_eq!(s0.arrays.len(), s1.arrays.len());
        assert_ne!(s0, s1, "different seeds must exercise different inputs");
        // Seed 0 equals the unmixed runtime semantics.
        assert_eq!(seeded_external_value(0, "Q", 5), external_value("Q", 5));
    }

    #[test]
    fn later_statement_in_same_iteration_sees_earlier_write() {
        // T[I] = A[I]; U[I] = T[I] * 2 — the T read must hit this
        // iteration's store, not external memory.
        let body = LoopBody::new(vec![
            assign("t", "T", 0, arr("A")),
            assign("u", "U", 0, binop(BinOp::Mul, arr("T"), c(2))),
        ]);
        let s = interpret(&flat(&body), 2, 0);
        for i in 0..2i64 {
            assert_eq!(
                s.arrays[&("U".to_string(), i)],
                external_value("A", i).wrapping_mul(2)
            );
        }
    }
}
