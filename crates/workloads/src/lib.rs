//! # kn-workloads — the paper's loop corpus
//!
//! Every loop the paper evaluates, plus the §4 random-loop generator:
//!
//! * [`figure7`] — the fully legible 5-node example (paper Fig. 7),
//!   reproduced **exactly** from the printed source code;
//! * [`figure3`] — the 7-node pattern-emergence demo (paper Fig. 3; the
//!   scanned graph is illegible, so this is a structural reconstruction —
//!   see DESIGN.md §4);
//! * [`cytron86`] — the 17-node example from Cytron's DOACROSS paper as
//!   used in paper Fig. 9/10 (reconstruction matching the published
//!   classification split: Cyclic = {0..5}, Flow-in = {6..16});
//! * [`livermore18`] — the 18th Livermore kernel (2-D explicit
//!   hydrodynamics fragment) at operation granularity (paper Fig. 11;
//!   reconstruction with the published 8 non-Cyclic nodes);
//! * [`elliptic`] — the fifth-order elliptic wave filter of Paulin &
//!   Knight 1989 (paper Fig. 12; standard 34-operation DFG shape, node 34
//!   Flow-out);
//! * [`doall`] — a dependence-free control workload;
//! * [`random`] — the paper's random-loop generator (40 nodes, 20
//!   loop-carried + 20 simple dependences, latencies 1..3, Cyclic subset
//!   extracted), seeds 1..=25 for Table 1.

pub mod corpus;
pub mod random;

pub use corpus::{
    cytron86, doall, elliptic, figure3, figure7, figure7_body, livermore18, livermore23,
    livermore5, rate_gap, Workload,
};
pub use random::{random_cyclic_loop, random_cyclic_loop_min, random_loop, RandomLoopConfig};
