#![forbid(unsafe_code)]
//! # kn-workloads — the paper's loop corpus
//!
//! Every loop the paper evaluates, plus the §4 random-loop generator:
//!
//! * [`figure7`] — the fully legible 5-node example (paper Fig. 7),
//!   reproduced **exactly** from the printed source code;
//! * [`figure3`] — the 7-node pattern-emergence demo (paper Fig. 3; the
//!   scanned graph is illegible, so this is a structural reconstruction —
//!   see DESIGN.md §4);
//! * [`cytron86`] — the 17-node example from Cytron's DOACROSS paper as
//!   used in paper Fig. 9/10 (reconstruction matching the published
//!   classification split: Cyclic = {0..5}, Flow-in = {6..16});
//! * [`livermore18`] — the 18th Livermore kernel (2-D explicit
//!   hydrodynamics fragment) at operation granularity (paper Fig. 11;
//!   reconstruction with the published 8 non-Cyclic nodes);
//! * [`elliptic`] — the fifth-order elliptic wave filter of Paulin &
//!   Knight 1989 (paper Fig. 12; standard 34-operation DFG shape, node 34
//!   Flow-out);
//! * [`doall`] — a dependence-free control workload;
//! * [`random`] — the paper's random-loop generator (40 nodes, 20
//!   loop-carried + 20 simple dependences, latencies 1..3, Cyclic subset
//!   extracted), seeds 1..=25 for Table 1.

pub mod corpus;
pub mod random;

pub use corpus::{
    body_by_name, cytron86, doall, elliptic, figure3, figure7, figure7_body, fission_storage,
    fission_storage_body, fissionable_islands, fissionable_islands_body, fissionable_twophase,
    fissionable_twophase_body, livermore18, livermore23, livermore23_body, livermore5,
    livermore5_body, rate_gap, reduction_max, reduction_max_body, reduction_nonassoc,
    reduction_nonassoc_body, reduction_scan, reduction_scan_body, reduction_sum,
    reduction_sum_body, Workload,
};
pub use random::{
    random_cyclic_loop, random_cyclic_loop_min, random_loop, random_transformable_body,
    RandomLoopConfig, RandomXformConfig,
};

/// Look up a built-in workload by name — the single name table behind the
/// CLI's `figure`/`codegen`/`dot` arguments and the service's
/// `corpus=` request field. Figure numbers from the paper are accepted as
/// aliases (`"7"` = `figure7`, `"9"`/`"10"` = `cytron86`, ...).
pub fn by_name(name: &str) -> Option<Workload> {
    Some(match name {
        "3" | "figure3" => figure3(),
        "7" | "figure7" => figure7(),
        "9" | "10" | "cytron86" => cytron86(),
        "11" | "livermore18" => livermore18(),
        "12" | "elliptic" => elliptic(),
        "doall" => doall(),
        "livermore5" | "ll5" => livermore5(),
        "livermore23" | "ll23" => livermore23(),
        "rate_gap" | "rategap" => rate_gap(),
        "fissionable/twophase" => fissionable_twophase(),
        "fissionable/islands" => fissionable_islands(),
        "fissionable/storage" => fission_storage(),
        "reduction/sum" => reduction_sum(),
        "reduction/max" => reduction_max(),
        "reduction/scan" => reduction_scan(),
        "reduction/nonassoc" => reduction_nonassoc(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn by_name_covers_every_workload_and_alias() {
        for (alias, canonical) in [
            ("3", "figure3"),
            ("7", "figure7"),
            ("9", "cytron86"),
            ("10", "cytron86"),
            ("11", "livermore18"),
            ("12", "elliptic"),
            ("ll5", "livermore5"),
            ("ll23", "livermore23"),
            ("rategap", "rate_gap"),
        ] {
            assert_eq!(super::by_name(alias).unwrap().name, canonical);
            assert_eq!(super::by_name(canonical).unwrap().name, canonical);
        }
        assert!(super::by_name("doall").is_some());
        assert!(super::by_name("nope").is_none());
    }

    #[test]
    fn transform_families_resolve_by_name_and_body() {
        for name in [
            "fissionable/twophase",
            "fissionable/islands",
            "fissionable/storage",
            "reduction/sum",
            "reduction/max",
            "reduction/scan",
            "reduction/nonassoc",
        ] {
            assert_eq!(super::by_name(name).unwrap().name, name);
            assert!(super::body_by_name(name).is_some(), "{name} has a body");
        }
        // Body-sourced classics are reachable too; graph-only ones are not.
        assert!(super::body_by_name("figure7").is_some());
        assert!(super::body_by_name("ll5").is_some());
        assert!(super::body_by_name("cytron86").is_none());
    }
}
