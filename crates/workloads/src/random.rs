//! The paper's §4 random-loop generator.
//!
//! > "First, we fixed the number of nodes in the loop as 40, and the number
//! > of loop carried dependences (lcd's) and simple dependences (sd's) at
//! > 20 each. The execution time of each node is randomly chosen from 1 to
//! > 3 cycles using a random number generator. Then, again using the random
//! > number generator, we generated actual dependence links, 20 for lcd's
//! > and another 20 for sd's. After this was done, we extracted only Cyclic
//! > nodes from the graph."
//!
//! Simple dependences are intra-iteration links; to guarantee the
//! distance-0 subgraph stays acyclic (a loop body *is* a statement
//! sequence) each sd is oriented from the lower-numbered to the
//! higher-numbered node — the same order the statements would appear in
//! source. Loop-carried links go in any direction, including self-loops.
//! The paper's exact RNG is unknown; we use a splitmix64 stream seeded with
//! the loop number (1..=25 for Table 1), which preserves every
//! distributional property the experiment relies on while keeping the
//! crate dependency-free (the build container has no crates registry).

use kn_ddg::{classify, Ddg, DdgBuilder};
use kn_ir::{arr, arr_at, binop, Assign, BinOp, Expr, LoopBody, Stmt, Target};

/// Deterministic splitmix64 generator standing in for `rand::StdRng`.
struct StdRng {
    state: u64,
}

impl StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One warm-up mix so nearby seeds (1..=25) diverge immediately.
        let mut r = StdRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        };
        r.next_u64();
        r
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in a `start..end` or `start..=end` integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: RangeValue,
        R: std::ops::RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&x) => x.to_u64(),
            std::ops::Bound::Excluded(&x) => x.to_u64() + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&x) => x.to_u64() + 1,
            std::ops::Bound::Excluded(&x) => x.to_u64(),
            std::ops::Bound::Unbounded => u64::MAX,
        };
        assert!(hi > lo, "empty range");
        T::from_u64(lo + self.next_u64() % (hi - lo))
    }
}

/// Integer types [`StdRng::gen_range`] can produce.
trait RangeValue: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(x: u64) -> Self;
}

macro_rules! range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(x: u64) -> Self { x as $t }
        }
    )*};
}
range_value!(u32, usize);

/// Generator configuration (paper defaults).
#[derive(Clone, Copy, Debug)]
pub struct RandomLoopConfig {
    pub nodes: usize,
    pub lcds: usize,
    pub sds: usize,
    pub min_latency: u32,
    pub max_latency: u32,
}

impl Default for RandomLoopConfig {
    fn default() -> Self {
        Self {
            nodes: 40,
            lcds: 20,
            sds: 20,
            min_latency: 1,
            max_latency: 3,
        }
    }
}

/// Generate the full random loop for `seed` (before Cyclic extraction).
pub fn random_loop(seed: u64, cfg: &RandomLoopConfig) -> Ddg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DdgBuilder::new();
    let ids: Vec<_> = (0..cfg.nodes)
        .map(|i| {
            b.node_lat(
                format!("v{i}"),
                rng.gen_range(cfg.min_latency..=cfg.max_latency),
            )
        })
        .collect();
    for _ in 0..cfg.sds {
        // Two distinct nodes, oriented by statement order.
        let a = rng.gen_range(0..cfg.nodes);
        let mut c = rng.gen_range(0..cfg.nodes);
        while c == a {
            c = rng.gen_range(0..cfg.nodes);
        }
        let (src, dst) = (a.min(c), a.max(c));
        b.dep(ids[src], ids[dst]);
    }
    for _ in 0..cfg.lcds {
        let src = rng.gen_range(0..cfg.nodes);
        let dst = rng.gen_range(0..cfg.nodes);
        b.carried(ids[src], ids[dst]);
    }
    b.build().expect("construction is valid by design")
}

/// Generate a random loop and extract its Cyclic subset (the graph the
/// paper's Table 1 schedules). If a seed happens to produce an empty
/// Cyclic subset the seed is perturbed deterministically until one
/// appears; with 20 lcd's over 40 nodes this is rare.
pub fn random_cyclic_loop(seed: u64, cfg: &RandomLoopConfig) -> Ddg {
    random_cyclic_loop_min(seed, cfg, 1)
}

/// Like [`random_cyclic_loop`], but deterministically reseeds until the
/// extracted Cyclic core has at least `min_nodes` nodes. The paper's
/// Table 1 loops all exhibit exploitable parallelism (its `x` column has
/// no zero entries), which implies its cores were never degenerate
/// single-recurrence dots; this knob reproduces that property.
pub fn random_cyclic_loop_min(seed: u64, cfg: &RandomLoopConfig, min_nodes: usize) -> Ddg {
    let mut s = seed;
    for _ in 0..256 {
        let g = random_loop(s, cfg);
        let c = classify(&g);
        if c.cyclic.len() >= min_nodes.max(1) {
            let (sub, _) = g.induced_subgraph(&c.cyclic);
            return sub;
        }
        s = s.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    }
    unreachable!("256 reseeds without a big-enough cyclic subgraph: {cfg:?} min {min_nodes}")
}

/// Configuration for [`random_transformable_body`].
#[derive(Clone, Copy, Debug)]
pub struct RandomXformConfig {
    /// Array-writing statements (doalls, self-recurrences, carried
    /// consumers).
    pub stmts: usize,
    /// Scalar reduction chains (`r = r op V[I]`) spliced in at random
    /// positions.
    pub reductions: usize,
}

impl Default for RandomXformConfig {
    fn default() -> Self {
        Self {
            stmts: 5,
            reductions: 2,
        }
    }
}

/// Generate a random *statement-level* loop body for the transform
/// property suites. Every statement writes its own target (array `T{i}`
/// or scalar `r{k}`), so the body is always legal IR; the mix of doalls,
/// distance-1 self-recurrences, carried consumers of earlier targets, and
/// associative reduction chains exercises both fission partitioning and
/// reduction recognition without ever *guaranteeing* either fires — the
/// properties must hold on skips too.
pub fn random_transformable_body(seed: u64, cfg: &RandomXformConfig) -> LoopBody {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0A3_17C2_9D5B_64E1);
    let mut stmts: Vec<Stmt> = Vec::new();
    for i in 0..cfg.stmts {
        let target = format!("T{i}");
        let input = arr(&format!("U{i}"));
        let kind = rng.gen_range(0..3usize);
        let (rhs, latency): (Expr, u32) = match kind {
            // Doall: no carried dependence at all.
            0 => (binop(BinOp::Add, input, Expr::Const(3)), 1),
            // Self-recurrence: a genuine cycle fission must keep whole.
            1 => (
                binop(BinOp::Add, arr_at(&target, -1), input),
                rng.gen_range(1..=2u32),
            ),
            // Carried consumer of an earlier statement's target (falls
            // back to doall when this is the first statement).
            _ => {
                if i == 0 {
                    (binop(BinOp::Mul, input, Expr::Const(5)), 1)
                } else {
                    let j = rng.gen_range(0..i);
                    (binop(BinOp::Add, arr_at(&format!("T{j}"), -1), input), 1)
                }
            }
        };
        stmts.push(Stmt::Assign(Assign {
            target: Target::Array {
                array: target.clone(),
                offset: 0,
            },
            rhs,
            latency,
            label: Some(format!("t{i}")),
        }));
    }
    for k in 0..cfg.reductions {
        let scalar_name = format!("r{k}");
        let op = [BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max][rng.gen_range(0..4usize)];
        let stmt = Stmt::Assign(Assign {
            target: Target::Scalar(scalar_name.clone()),
            rhs: binop(op, Expr::Scalar(scalar_name), arr(&format!("V{k}"))),
            latency: rng.gen_range(1..=2u32),
            label: Some(format!("r{k}")),
        });
        let at = rng.gen_range(0..=stmts.len());
        stmts.insert(at, stmt);
    }
    LoopBody::new(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::classify;

    #[test]
    fn generator_matches_paper_recipe() {
        let cfg = RandomLoopConfig::default();
        let g = random_loop(1, &cfg);
        assert_eq!(g.node_count(), 40);
        assert_eq!(g.edge_count(), 40);
        assert_eq!(g.intra_edges().count(), 20);
        assert_eq!(g.carried_edges().count(), 20);
        for v in g.node_ids() {
            let l = g.latency(v);
            assert!((1..=3).contains(&l));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomLoopConfig::default();
        let a = random_loop(7, &cfg);
        let b = random_loop(7, &cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        for (ea, eb) in a.edge_ids().zip(b.edge_ids()) {
            assert_eq!(a.edge(ea), b.edge(eb));
        }
        let c = random_loop(8, &cfg);
        let same = a
            .edge_ids()
            .zip(c.edge_ids())
            .all(|(x, y)| a.edge(x) == c.edge(y));
        assert!(!same, "different seeds give different loops");
    }

    #[test]
    fn cyclic_extraction_is_all_cyclic_and_normalized() {
        let cfg = RandomLoopConfig::default();
        for seed in 1..=25u64 {
            let g = random_cyclic_loop(seed, &cfg);
            assert!(g.node_count() > 0, "seed {seed}");
            assert!(g.distances_normalized());
            // Re-classification of the extracted subgraph keeps everything
            // Cyclic (every node retains a Cyclic pred and succ).
            let c = classify(&g);
            assert_eq!(c.cyclic.len(), g.node_count(), "seed {seed}");
            g.validate().unwrap();
        }
    }

    #[test]
    fn transformable_bodies_are_deterministic_and_lowerable() {
        let cfg = RandomXformConfig::default();
        for seed in 0..16u64 {
            let a = random_transformable_body(seed, &cfg);
            let b = random_transformable_body(seed, &cfg);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            assert_eq!(a.stmts.len(), cfg.stmts + cfg.reductions);
            let flat = kn_ir::if_convert(&a);
            kn_ir::lower_flat(&flat, &Default::default()).expect("body lowers");
        }
    }

    #[test]
    fn small_config_still_works() {
        let cfg = RandomLoopConfig {
            nodes: 6,
            lcds: 4,
            sds: 4,
            min_latency: 1,
            max_latency: 2,
        };
        let g = random_cyclic_loop(3, &cfg);
        assert!(g.node_count() >= 1);
    }
}
