//! The fixed workloads: the paper's example loops.
//!
//! `figure7` is reproduced exactly from the printed source; the other
//! figures' graphs are partially illegible in the scanned TR, so they are
//! *structural reconstructions* matching every published fact (node
//! counts, classification splits, latency totals, recurrence structure).
//! DESIGN.md §4 documents each substitution.

use kn_ddg::{Ddg, DdgBuilder, NodeId};
use kn_ir::{
    arr, arr_at, assign, assign_scalar, binop, if_stmt, scalar, Assign, BinOp, LoopBody, Stmt,
    Target,
};

/// A named benchmark loop with its paper parameters.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: &'static str,
    pub graph: Ddg,
    /// Communication-cost upper bound `k` the paper uses for this loop.
    pub k: u32,
    /// Processor budget for the Cyclic core (the paper's figures use 2).
    pub procs: usize,
    pub description: &'static str,
}

/// The paper's Figure 7 loop, built through the `kn-ir` front end:
///
/// ```text
/// FOR I = 1 TO N
///   A: A[I] = A[I-1] * E[I-1]
///   B: B[I] = A[I]
///   C: C[I] = B[I]
///   D: D[I] = D[I-1] * C[I-1]
///   E: E[I] = D[I]
/// ENDFOR
/// ```
pub fn figure7_body() -> LoopBody {
    LoopBody::new(vec![
        assign(
            "A",
            "A",
            0,
            binop(BinOp::Mul, arr_at("A", -1), arr_at("E", -1)),
        ),
        assign("B", "B", 0, arr("A")),
        assign("C", "C", 0, arr("B")),
        assign(
            "D",
            "D",
            0,
            binop(BinOp::Mul, arr_at("D", -1), arr_at("C", -1)),
        ),
        assign("E", "E", 0, arr("D")),
    ])
}

/// Paper Figure 7 (exact; k = 2, two processors).
pub fn figure7() -> Workload {
    let (graph, _) = kn_ir::lower_loop(&figure7_body(), &Default::default()).expect("legal body");
    Workload {
        name: "figure7",
        graph,
        k: 2,
        procs: 2,
        description: "Paper Fig. 7: five-statement loop with two interleaved recurrences \
                      (exact reproduction; DOACROSS achieves no parallelism here)",
    }
}

/// Paper Figure 3 (reconstruction): seven unit-latency Cyclic nodes, two
/// recurrences, `k = 1` ("execution time of each node and cost of
/// communication are both assumed to be one cycle").
pub fn figure3() -> Workload {
    let mut b = DdgBuilder::new();
    let a = b.node("A");
    let bb = b.node("B");
    let c = b.node("C");
    let d = b.node("D");
    let e = b.node("E");
    let f = b.node("F");
    let g = b.node("G");
    b.dep(a, bb);
    b.dep(bb, c);
    b.carried(c, a); // cycle A-B-C, II 3
    b.dep(c, d); // bridge keeps the graph connected
    b.dep(d, e);
    b.dep(e, f);
    b.carried(f, d); // cycle D-E-F, II 3 (rate-matched with A-B-C)
    b.dep(c, g);
    b.dep(f, g);
    b.carried(g, g); // G: merge node with its own unit recurrence
    let graph = b.build().unwrap();
    Workload {
        name: "figure3",
        graph,
        k: 1,
        procs: 2,
        description: "Paper Fig. 3 (reconstruction): pattern-emergence demo; two \
                      rate-matched recurrences feeding a merge node, seven unit-latency \
                      nodes, unit communication",
    }
}

/// **Beyond the paper — a counter-example to Theorem 1 as stated.**
///
/// Two strongly connected components with *different* natural rates (II 3
/// vs II 4) joined only by a forward intra-iteration edge. The greedy
/// schedule lets the fast recurrence run unboundedly ahead of the slow
/// one, the iteration spread inside any time window grows without bound,
/// and **no configuration ever repeats** — the paper's Lemma 3 implicitly
/// assumes the dependence path between any two nodes throttles their
/// relative progress, which holds inside one SCC but not across SCCs of
/// different rates. `Cyclic-sched` on this loop provably never terminates
/// with a pattern; this library degrades to the block-schedule fallback
/// (still a valid schedule at the slow component's rate).
pub fn rate_gap() -> Workload {
    let mut b = DdgBuilder::new();
    let a = b.node("A");
    let bb = b.node("B");
    let c = b.node("C");
    let d = b.node("D");
    let e = b.node("E");
    let f = b.node("F");
    let g = b.node("G");
    b.dep(a, bb);
    b.dep(bb, c);
    b.carried(c, a); // fast SCC: II 3
    b.dep(c, d); // one-way coupling
    b.dep(d, e);
    b.dep(e, f);
    b.dep(f, g);
    b.carried(g, d); // slow SCC: II 4
    let graph = b.build().unwrap();
    Workload {
        name: "rate_gap",
        graph,
        k: 1,
        procs: 2,
        description: "Counter-example to the paper's Theorem 1: SCCs at II 3 and II 4 \
                      drift apart forever, so no pattern can emerge; exercises the \
                      block-schedule fallback",
    }
}

/// Paper Figure 9/10 — the example from \[Cytron86\] (reconstruction).
///
/// Published facts matched: 17 nodes; Flow-in = {6..16} (11 nodes),
/// Cyclic = {0..5}; total body latency 22; the Cyclic pattern runs on two
/// processors with height 6; the full parallelized loop uses 5 subloops
/// (2 Cyclic + 3 Flow-in processors); k = 2.
pub fn cytron86() -> Workload {
    let mut b = DdgBuilder::new();
    // Cyclic core (ids 0..5). Recurrence 0->1->2->4 -(d1)-> 0 has total
    // latency 6 (II = 6 = the paper's pattern height); nodes 3, 5 form the
    // side recurrence the paper shows repeating on PE0.
    let n0 = b.node_lat("n0", 2);
    let n1 = b.node_lat("n1", 1);
    let n2 = b.node_lat("n2", 1);
    let n3 = b.node_lat("n3", 2);
    let n4 = b.node_lat("n4", 2);
    let n5 = b.node_lat("n5", 1);
    b.dep(n0, n1);
    b.dep(n1, n2);
    b.dep(n2, n4);
    b.carried(n4, n0);
    b.dep(n2, n3);
    b.dep(n3, n5);
    b.carried(n5, n3);
    // Flow-in (ids 6..16): two chains feeding the core; total latency 13.
    let chain = |b: &mut DdgBuilder, names: &[(&str, u32)], into: NodeId| -> NodeId {
        let mut prev: Option<NodeId> = None;
        for &(name, lat) in names {
            let id = b.node_lat(name, lat);
            if let Some(p) = prev {
                b.dep(p, id);
            }
            prev = Some(id);
        }
        let last = prev.unwrap();
        b.dep(last, into);
        last
    };
    chain(
        &mut b,
        &[("n6", 1), ("n7", 2), ("n8", 1), ("n9", 1), ("n10", 1)],
        n0,
    );
    let tail = chain(
        &mut b,
        &[
            ("n11", 1),
            ("n12", 2),
            ("n13", 1),
            ("n14", 1),
            ("n15", 1),
            ("n16", 1),
        ],
        n3,
    );
    // The carried producer n4 also consumes the second chain (as Cytron's
    // example pins its recurrence source behind most of the body): in the
    // natural statement order n4 lands near the end while its carried
    // consumer n0 sits early, which is what defeats iteration pipelining.
    b.dep(tail, n4);
    let graph = b.build().unwrap();
    Workload {
        name: "cytron86",
        graph,
        k: 2,
        procs: 2,
        description: "Paper Fig. 9/10 (reconstruction of the Cytron86 example): Cyclic \
                      core of 6 nodes over 2 PEs plus 11 Flow-in nodes over 3 PEs",
    }
}

/// Paper Figure 11 — the 18th Livermore kernel (2-D explicit
/// hydrodynamics) at operation granularity (reconstruction).
///
/// Published facts matched: 8 non-Cyclic (Flow-in) nodes; the Cyclic core
/// carries the ZR/ZZ update recurrences; k = 2; two relatively independent
/// subloops.
pub fn livermore18() -> Workload {
    let mut b = DdgBuilder::new();
    // Flow-in: ZP/ZQ/ZM neighborhood sums (read-only arrays).
    let f1 = b.node("f1"); // ZP[k+1]+ZQ[k+1]
    let f2 = b.node("f2"); // ZP[k]+ZQ[k]
    let f3 = b.node("f3"); // f1 - f2
    let f4 = b.node("f4"); // ZM[k]+ZM[k+1]
    let f5 = b.node("f5"); // ZP[k]-ZP[k-1]
    let f6 = b.node("f6"); // ZQ[k]-ZQ[k-1]
    let f7 = b.node("f7"); // f5 + f6
    let f8 = b.node("f8"); // ZM[k]+ZM[k-1]
    b.dep(f1, f3);
    b.dep(f2, f3);
    b.dep(f5, f7);
    b.dep(f6, f7);
    // Cyclic core: ZA/ZB -> ZU/ZV -> ZR/ZZ updates, recurring on k.
    let c1 = b.node_lat("za_num", 2); // (…)* (ZR[k]+ZR[j-1,k])
    let c2 = b.node_lat("za", 2); //  … / ZM sums
    let c3 = b.node_lat("zb_num", 2);
    let c4 = b.node_lat("zb", 2);
    let c5 = b.node_lat("dz1", 1); // ZZ[k]-ZZ[k-1]
    let c6 = b.node_lat("dz2", 1);
    let c7 = b.node_lat("t1", 2); // za*dz1
    let c8 = b.node_lat("t2", 2); // zb*dz2
    let c9 = b.node_lat("zu", 1); // ZU += t1 - t2
    let c10 = b.node_lat("t3", 2);
    let c11 = b.node_lat("t4", 2);
    let c12 = b.node_lat("zv", 1); // ZV += t3 - t4
    let c13 = b.node_lat("zr", 1); // ZR[k] = ZR[k] + T*ZU
    let c14 = b.node_lat("zz", 1); // ZZ[k] = ZZ[k] + T*ZV
    b.dep(f3, c1);
    b.carried(c13, c1); // ZR(j-1,k) via the collapsed j axis
    b.dep(c1, c2);
    b.dep(f4, c2);
    b.dep(f7, c3);
    b.carried(c13, c3); // ZR(j,k-1)
    b.dep(c3, c4);
    b.dep(f8, c4);
    b.carried(c14, c5); // ZZ(j,k-1)
    b.carried(c14, c6);
    b.dep(c2, c7);
    b.dep(c5, c7);
    b.dep(c4, c8);
    b.dep(c6, c8);
    b.dep(c7, c9);
    b.dep(c8, c9);
    b.carried(c9, c9); // ZU accumulation across the collapsed j axis
    b.dep(c2, c10);
    b.dep(c5, c10);
    b.dep(c4, c11);
    b.dep(c6, c11);
    b.dep(c10, c12);
    b.dep(c11, c12);
    b.carried(c12, c12);
    b.dep(c9, c13);
    b.carried(c13, c13);
    b.dep(c12, c14);
    b.carried(c14, c14);
    let graph = b.build().unwrap();
    Workload {
        name: "livermore18",
        graph,
        k: 2,
        procs: 2,
        description: "Paper Fig. 11 (reconstruction): Livermore kernel 18 at operation \
                      granularity; 8 Flow-in nodes, 14 Cyclic nodes with ZR/ZZ recurrences",
    }
}

/// Paper Figure 12 — fifth-order elliptic wave filter (Paulin & Knight
/// 1989), the standard 34-operation scheduling benchmark (reconstruction:
/// 26 additions of latency 1, 8 multiplications of latency 2, one
/// Flow-out node; a dominant state-update recurrence threads most of the
/// body, which is why the paper measures DOACROSS at 0% here).
pub fn elliptic() -> Workload {
    let mut b = DdgBuilder::new();
    // Backbone: 20 operations (13 add, 7 mul), serially dependent, closed
    // by a distance-1 edge (the filter's state update): II = 27.
    let mut backbone = Vec::new();
    for i in 0..20 {
        let is_mul = matches!(i, 2 | 5 | 8 | 11 | 14 | 16 | 18);
        let name = format!("b{}", i + 1);
        let id = if is_mul {
            b.node_lat(name, 2)
        } else {
            b.node_lat(name, 1)
        };
        if let Some(&prev) = backbone.last() {
            b.dep(prev, id);
        }
        backbone.push(id);
    }
    b.carried(backbone[19], backbone[0]);
    // Side chains bridging backbone stages (adaptor cross terms): every
    // node sits on a Cyclic-to-Cyclic path, hence Cyclic.
    let side = |b: &mut DdgBuilder, from: usize, to: usize, ops: &[(&str, u32)]| {
        let mut prev = backbone[from];
        for &(name, lat) in ops {
            let id = b.node_lat(name, lat);
            b.dep(prev, id);
            prev = id;
        }
        b.dep(prev, backbone[to]);
    };
    side(&mut b, 2, 9, &[("x1", 1), ("x2", 1), ("x3", 1), ("x4", 1)]);
    side(&mut b, 7, 14, &[("x5", 2), ("x6", 1), ("x7", 1), ("x8", 1)]);
    side(&mut b, 11, 17, &[("x9", 1), ("x10", 1), ("x11", 1)]);
    side(&mut b, 4, 12, &[("x12", 1), ("x13", 1)]);
    // Output node (the paper's node 34, the only non-Cyclic node).
    let out = b.node_lat("out", 1);
    b.dep(backbone[19], out);
    let graph = b.build().unwrap();
    debug_assert_eq!(graph.node_count(), 34);
    Workload {
        name: "elliptic",
        graph,
        k: 2,
        procs: 2,
        description: "Paper Fig. 12 (reconstruction): fifth-order elliptic wave filter, \
                      34 ops (26 add / 8 mul), dominant state recurrence, node 34 Flow-out",
    }
}

/// Livermore kernel 5 — tri-diagonal elimination, below diagonal:
/// `X[i] = Z[i] * (Y[i] - X[i-1])`. The canonical first-order linear
/// recurrence ("non-vectorizable" in every compiler paper of the era).
///
/// An honest **negative control**: the recurrence threads the entire body,
/// so neither our technique nor DOACROSS can beat the recurrence bound —
/// the pattern scheduler's value here is only that it *finds* the bound
/// and keeps everything on one processor (no communication waste).
pub fn livermore5() -> Workload {
    let (graph, _) =
        kn_ir::lower_loop(&livermore5_body(), &Default::default()).expect("legal body");
    Workload {
        name: "livermore5",
        graph,
        k: 2,
        procs: 2,
        description: "Livermore kernel 5 (tridiagonal elimination): a pure first-order \
                      recurrence — negative control where no technique can win",
    }
}

/// The loop body behind [`livermore5`], exposed for the transform layer.
pub fn livermore5_body() -> LoopBody {
    LoopBody::new(vec![
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "T".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Sub, arr("Y"), arr_at("X", -1)),
            latency: 1,
            label: Some("sub".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "X".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Mul, arr("Z"), arr("T")),
            latency: 2,
            label: Some("mul".into()),
        }),
    ])
}

/// Livermore kernel 23 — 2-D implicit hydrodynamics fragment
/// (Gauss–Seidel-style update along the swept axis):
///
/// ```text
/// m1: M1[I] = ZA[I+1] * ZR[I]
/// m2: M2[I] = ZA[I-1] * ZB[I]
/// qa: QA[I] = M1[I] + M2[I] + ZE[I]
/// dd: DD[I] = QA[I] - ZA[I]
/// up: ZA[I] = ZA[I] + DD[I]
/// ```
///
/// `ZA[I-1]` reads this sweep's update (flow, distance 1); `ZA[I+1]` reads
/// the pre-sweep value (anti, distance 1) — both fall out of the
/// dependence analysis automatically.
pub fn livermore23() -> Workload {
    let (graph, _) =
        kn_ir::lower_loop(&livermore23_body(), &Default::default()).expect("legal body");
    Workload {
        name: "livermore23",
        graph,
        k: 2,
        procs: 2,
        description: "Livermore kernel 23 (2-D implicit hydro, swept axis): update \
                      recurrence through m2 -> qa -> dd -> up with anti-dependent \
                      look-ahead read",
    }
}

/// The loop body behind [`livermore23`], exposed for the transform layer.
pub fn livermore23_body() -> LoopBody {
    LoopBody::new(vec![
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "M1".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Mul, arr_at("ZA", 1), arr("ZR")),
            latency: 2,
            label: Some("m1".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "M2".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Mul, arr_at("ZA", -1), arr("ZB")),
            latency: 2,
            label: Some("m2".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "QA".into(),
                offset: 0,
            },
            rhs: binop(
                BinOp::Add,
                binop(BinOp::Add, arr("M1"), arr("M2")),
                arr("ZE"),
            ),
            latency: 2,
            label: Some("qa".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "DD".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Sub, arr("QA"), arr("ZA")),
            latency: 1,
            label: Some("dd".into()),
        }),
        Stmt::Assign(Assign {
            target: Target::Array {
                array: "ZA".into(),
                offset: 0,
            },
            rhs: binop(BinOp::Add, arr("ZA"), arr("DD")),
            latency: 1,
            label: Some("up".into()),
        }),
    ])
}

/// A dependence-free loop (control: both techniques should reach the
/// machine's full parallelism).
pub fn doall() -> Workload {
    let mut b = DdgBuilder::new();
    for i in 0..4 {
        let x = b.node_lat(format!("x{i}"), 2);
        let y = b.node_lat(format!("y{i}"), 1);
        b.dep(x, y);
    }
    let graph = b.build().unwrap();
    Workload {
        name: "doall",
        graph,
        k: 2,
        procs: 4,
        description: "Control workload: four independent 2-node chains, no carried \
                      dependences (a DOALL loop)",
    }
}

// ---------------------------------------------------------------------------
// Transformable families (for `kn transform` and the xform bench gates).
// ---------------------------------------------------------------------------

/// `fissionable/twophase` body: a producer, a carried consumer, and an
/// unrelated latency-2 recurrence — fission yields three pieces, with the
/// recurrence's MII unchanged (never-worse gate material).
pub fn fissionable_twophase_body() -> LoopBody {
    let mut rec = assign("rec", "R", 0, binop(BinOp::Mul, arr_at("R", -1), arr("G")));
    if let Stmt::Assign(a) = &mut rec {
        a.latency = 2;
    }
    LoopBody::new(vec![
        assign("prod", "P", 0, binop(BinOp::Add, arr("C"), arr("E"))),
        assign("cons", "Q", 0, binop(BinOp::Mul, arr_at("P", -1), arr("F"))),
        rec,
    ])
}

/// `fissionable/islands` body: two independent recurrences, each with a
/// downstream consumer — four pieces in manifest order.
pub fn fissionable_islands_body() -> LoopBody {
    LoopBody::new(vec![
        assign("a", "A", 0, binop(BinOp::Add, arr_at("A", -1), arr("E"))),
        assign("b", "B", 0, binop(BinOp::Mul, arr("A"), arr("F"))),
        assign("c", "C", 0, binop(BinOp::Mul, arr_at("C", -1), arr("G"))),
        assign("d", "D", 0, binop(BinOp::Add, arr_at("C", -1), arr("B"))),
    ])
}

/// `fissionable/storage` body: the must-NOT-fire negative. The only cycle
/// runs through an array anti dependence (`Z[I+1]` read before the `Z[I]`
/// write), so fission declines with `XS03` — renaming would be needed.
pub fn fission_storage_body() -> LoopBody {
    LoopBody::new(vec![
        assign("s0", "X", 0, arr_at("Z", -1)),
        assign("s1", "Y", 0, binop(BinOp::Add, arr("X"), arr_at("Z", 1))),
        assign("s2", "Z", 0, arr("C")),
    ])
}

/// `reduction/sum` body: a latency-2 dot-product accumulation
/// `acc = acc + A[I]*B[I]` — privatize-and-reduce drops the MII from 2 to
/// 0 (the bench's >= 1.5x reduction-family gate).
pub fn reduction_sum_body() -> LoopBody {
    LoopBody::new(vec![Stmt::Assign(Assign {
        target: Target::Scalar("acc".into()),
        rhs: binop(
            BinOp::Add,
            scalar("acc"),
            binop(BinOp::Mul, arr("A"), arr("B")),
        ),
        latency: 2,
        label: Some("acc".into()),
    })])
}

/// `reduction/max` body: the guarded-compare (maxdelta) idiom
/// `IF D[I] > m THEN m = D[I]` — canonicalized to `m = max(m, D[I])`,
/// then privatized.
pub fn reduction_max_body() -> LoopBody {
    LoopBody::new(vec![if_stmt(
        binop(BinOp::Gt, arr("D"), scalar("m")),
        vec![assign_scalar("m", "m", arr("D"))],
        vec![],
    )])
}

/// `reduction/scan` body: the must-NOT-fire prefix-product negative
/// (`val *= F[I]; A[I] = val` — every prefix value is consumed, `XR02`).
pub fn reduction_scan_body() -> LoopBody {
    LoopBody::new(vec![
        assign_scalar("val", "val", binop(BinOp::Mul, scalar("val"), arr("F"))),
        assign("a", "A", 0, scalar("val")),
    ])
}

/// `reduction/nonassoc` body: the must-NOT-fire non-associative negative
/// (`acc = acc - A[I]`, `XR01`).
pub fn reduction_nonassoc_body() -> LoopBody {
    LoopBody::new(vec![assign_scalar(
        "acc",
        "acc",
        binop(BinOp::Sub, scalar("acc"), arr("A")),
    )])
}

fn xform_workload(name: &'static str, body: &LoopBody, description: &'static str) -> Workload {
    let (graph, _) = kn_ir::lower_loop(body, &Default::default()).expect("legal body");
    Workload {
        name,
        graph,
        k: 2,
        procs: 2,
        description,
    }
}

/// `fissionable/twophase` as a schedulable workload (untransformed graph).
pub fn fissionable_twophase() -> Workload {
    xform_workload(
        "fissionable/twophase",
        &fissionable_twophase_body(),
        "Transform family: producer + carried consumer + independent latency-2 \
         recurrence; fission yields three pieces",
    )
}

/// `fissionable/islands` as a schedulable workload.
pub fn fissionable_islands() -> Workload {
    xform_workload(
        "fissionable/islands",
        &fissionable_islands_body(),
        "Transform family: two independent recurrences with consumers; fission \
         yields four pieces",
    )
}

/// `fissionable/storage` as a schedulable workload (fission negative).
pub fn fission_storage() -> Workload {
    xform_workload(
        "fissionable/storage",
        &fission_storage_body(),
        "Transform negative: anti-dependence cycle through Z — fission must \
         decline with XS03",
    )
}

/// `reduction/sum` as a schedulable workload (untransformed graph).
pub fn reduction_sum() -> Workload {
    xform_workload(
        "reduction/sum",
        &reduction_sum_body(),
        "Transform family: latency-2 dot-product accumulation; privatize-and-\
         reduce drops MII 2 -> 0",
    )
}

/// `reduction/max` as a schedulable workload.
pub fn reduction_max() -> Workload {
    xform_workload(
        "reduction/max",
        &reduction_max_body(),
        "Transform family: guarded-compare max idiom; canonicalized to \
         m = max(m, D[I]) then privatized",
    )
}

/// `reduction/scan` as a schedulable workload (reduction negative).
pub fn reduction_scan() -> Workload {
    xform_workload(
        "reduction/scan",
        &reduction_scan_body(),
        "Transform negative: prefix product consumed in-loop — recognition \
         must decline with XR02",
    )
}

/// `reduction/nonassoc` as a schedulable workload (reduction negative).
pub fn reduction_nonassoc() -> Workload {
    xform_workload(
        "reduction/nonassoc",
        &reduction_nonassoc_body(),
        "Transform negative: subtraction chain — recognition must decline \
         with XR01",
    )
}

/// Look up a loop *body* (statement-level IR, not just the lowered DDG)
/// by workload name — the table behind `kn transform NAME` and the
/// service's `transform=` option. Only body-sourced workloads appear
/// here; graph-only reconstructions (figure3, cytron86, ...) have no
/// statement form to transform.
pub fn body_by_name(name: &str) -> Option<LoopBody> {
    Some(match name {
        "7" | "figure7" => figure7_body(),
        "livermore5" | "ll5" => livermore5_body(),
        "livermore23" | "ll23" => livermore23_body(),
        "fissionable/twophase" => fissionable_twophase_body(),
        "fissionable/islands" => fissionable_islands_body(),
        "fissionable/storage" => fission_storage_body(),
        "reduction/sum" => reduction_sum_body(),
        "reduction/max" => reduction_max_body(),
        "reduction/scan" => reduction_scan_body(),
        "reduction/nonassoc" => reduction_nonassoc_body(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::{classify, scc::recurrence_bound, SubsetKind};

    #[test]
    fn figure7_is_all_cyclic_with_bound_2_5() {
        let w = figure7();
        assert_eq!(w.graph.node_count(), 5);
        assert_eq!(w.graph.body_latency(), 5);
        let c = classify(&w.graph);
        assert_eq!(c.cyclic.len(), 5);
        assert!((recurrence_bound(&w.graph) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn figure3_shape() {
        let w = figure3();
        assert_eq!(w.graph.node_count(), 7);
        assert_eq!(w.graph.body_latency(), 7);
        assert_eq!(classify(&w.graph).cyclic.len(), 7);
        assert!((recurrence_bound(&w.graph) - 3.0).abs() < 1e-9);
        assert_eq!(w.k, 1);
    }

    #[test]
    fn rate_gap_has_mismatched_sccs() {
        let w = rate_gap();
        assert_eq!(classify(&w.graph).cyclic.len(), 7);
        // The *bound* is 4 (the slow SCC); the pathology is that the fast
        // SCC is not throttled by it.
        assert!((recurrence_bound(&w.graph) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cytron86_matches_published_facts() {
        let w = cytron86();
        let g = &w.graph;
        assert_eq!(g.node_count(), 17);
        assert_eq!(g.body_latency(), 22, "total latency 22 (paper percentages)");
        let c = classify(g);
        // Cyclic = {0..5}, Flow-in = {6..16} as printed in the paper.
        assert_eq!(c.cyclic.len(), 6);
        assert_eq!(c.flow_in.len(), 11);
        assert!(c.flow_out.is_empty());
        for i in 0..6u32 {
            assert_eq!(c.kind_of(NodeId(i)), SubsetKind::Cyclic);
        }
        for i in 6..17u32 {
            assert_eq!(c.kind_of(NodeId(i)), SubsetKind::FlowIn);
        }
        // The dominant recurrence has II 6 — the paper's pattern height.
        assert!((recurrence_bound(g) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn livermore18_matches_published_facts() {
        let w = livermore18();
        let c = classify(&w.graph);
        assert_eq!(c.flow_in.len(), 8, "paper: 8 non-Cyclic nodes");
        assert_eq!(c.cyclic.len(), 14);
        assert!(c.flow_out.is_empty());
        assert_eq!(w.graph.node_count(), 22);
        // Dominant recurrence: zr -> za_num -> za -> t1 -> zu -> zr (lat 8).
        assert!((recurrence_bound(&w.graph) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn elliptic_matches_published_facts() {
        let w = elliptic();
        let g = &w.graph;
        assert_eq!(g.node_count(), 34);
        let adds = g.node_ids().filter(|&v| g.latency(v) == 1).count();
        let muls = g.node_ids().filter(|&v| g.latency(v) == 2).count();
        assert_eq!(adds, 26, "26 additions");
        assert_eq!(muls, 8, "8 multiplications");
        let c = classify(g);
        assert_eq!(c.flow_out.len(), 1, "node 34 is the only non-Cyclic node");
        assert_eq!(c.cyclic.len(), 33);
        // Backbone recurrence: 13 adds + 7 muls = latency 27.
        assert!((recurrence_bound(g) - 27.0).abs() < 1e-9);
    }

    #[test]
    fn doall_has_no_cyclic_nodes() {
        let w = doall();
        assert!(classify(&w.graph).is_doall());
    }

    #[test]
    fn livermore5_is_a_pure_recurrence() {
        let w = livermore5();
        assert_eq!(w.graph.node_count(), 2);
        // Cycle sub -> mul -(d1)-> sub: latency 3 per iteration.
        assert!((recurrence_bound(&w.graph) - 3.0).abs() < 1e-9);
        assert_eq!(classify(&w.graph).cyclic.len(), 2);
    }

    #[test]
    fn livermore23_dependence_structure() {
        let w = livermore23();
        let g = &w.graph;
        assert_eq!(g.node_count(), 5);
        let find = |n: &str| g.find(n).unwrap();
        // Flow d1: up -> m2 (ZA[I-1]); anti d1: m1 -> up (ZA[I+1]).
        assert!(g
            .out_edges(find("up"))
            .any(|(_, e)| e.dst == find("m2") && e.distance == 1));
        assert!(g
            .out_edges(find("m1"))
            .any(|(_, e)| e.dst == find("up") && e.distance == 1));
        // Recurrence: up -> m2(2) -> qa(2) -> dd(1) -> up(1): II 6.
        assert!(
            (recurrence_bound(g) - 6.0).abs() < 1e-9,
            "{}",
            recurrence_bound(g)
        );
        // m1 only *feeds* the recurrence (its anti edge points forward),
        // so classification puts it in Flow-in; the other four are Cyclic.
        let cls = classify(g);
        assert_eq!(cls.cyclic.len(), 4);
        assert_eq!(cls.kind_of(find("m1")), kn_ddg::SubsetKind::FlowIn);
    }

    #[test]
    fn all_workloads_validate() {
        for w in [
            figure3(),
            figure7(),
            cytron86(),
            livermore18(),
            elliptic(),
            doall(),
            rate_gap(),
            livermore5(),
            livermore23(),
        ] {
            w.graph.validate().expect(w.name);
            assert!(w.graph.distances_normalized(), "{} normalized", w.name);
        }
    }
}
