//! End-to-end tests for the `kn serve` command line: flag parsing
//! (canonical names + aliases), `--help`, priority/health wire keys, and
//! the exit-code contract — all through the real binary
//! (`CARGO_BIN_EXE_kn`), not a library shim.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn kn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kn"))
}

/// Run `kn serve <args>` with `input` on stdin; return (exit ok, stdout).
fn serve(args: &[&str], input: &str) -> (bool, String) {
    let mut child = kn()
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn kn");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("kn exits");
    (out.status.success(), String::from_utf8(out.stdout).unwrap())
}

#[test]
fn help_lists_every_flag_and_exits_zero() {
    let (ok, text) = serve(&["--help"], "");
    assert!(ok, "--help exits 0");
    for flag in [
        "--workers",
        "--queue-capacity",
        "--max-attempts",
        "--high-water",
        "--deadline-ms",
        "--fault-seed",
        "--fault-rate",
        "--listen",
        "--cache-capacity",
        "--no-cache",
        "priority=high|normal|low",
        "health",
    ] {
        assert!(text.contains(flag), "help must mention {flag}:\n{text}");
    }
}

#[test]
fn canonical_flags_and_aliases_both_admit_a_batch() {
    let reqs = "corpus=figure7 k=2 procs=2\ncorpus=figure7 k=3 procs=4\n";
    let (ok_new, out_new) = serve(
        &[
            "--workers",
            "2",
            "--queue-capacity",
            "8",
            "--max-attempts",
            "2",
            "--high-water",
            "100",
        ],
        reqs,
    );
    let (ok_old, out_old) = serve(
        &["--workers", "2", "--queue-cap", "8", "--retries", "2"],
        reqs,
    );
    assert!(ok_new && ok_old);
    assert_eq!(out_new, out_old, "alias and canonical runs are identical");
    assert_eq!(out_new.lines().count(), 2);
    assert!(out_new.lines().all(|l| l.contains("\"status\": \"ok\"")));
}

#[test]
fn cache_flags_accept_both_spellings_and_never_change_responses() {
    // Duplicate-heavy batch: the middle line repeats the first.
    let reqs = "corpus=figure7 k=2 procs=2\n\
                corpus=figure7 k=2 procs=2\n\
                corpus=figure7 k=3 procs=4\n";
    let (ok_canonical, canonical) = serve(&["--workers", "2", "--cache-capacity", "16"], reqs);
    let (ok_alias, alias) = serve(&["--workers", "2", "--cache-cap", "16"], reqs);
    let (ok_off, off) = serve(&["--workers", "2", "--no-cache"], reqs);
    assert!(ok_canonical && ok_alias && ok_off);
    assert_eq!(canonical, alias, "alias and canonical runs are identical");
    assert_eq!(
        canonical, off,
        "cached and uncached responses are byte-identical"
    );
    // Canonical wins when both spellings appear (the --queue-cap rule):
    // capacity 0 via the canonical flag disables caching cleanly even
    // with the alias asking for a big cache.
    let (ok_both, both) = serve(
        &[
            "--workers",
            "2",
            "--cache-cap",
            "512",
            "--cache-capacity",
            "0",
        ],
        reqs,
    );
    assert!(ok_both);
    assert_eq!(both, canonical);
}

#[test]
fn health_line_reports_cache_counters_that_match_the_flags() {
    let reqs = "corpus=figure7 k=2 procs=2\n\
                corpus=figure7 k=2 procs=2\n\
                health\n";
    let (ok, out) = serve(&["--workers", "1"], reqs);
    assert!(ok, "{out}");
    let health = out.lines().nth(2).expect("health line");
    assert!(health.contains("\"cache_misses\": 1"), "{health}");
    // The duplicate either hit the cache or coalesced onto the leader;
    // in a 1-worker batch both are deterministic sums.
    assert!(
        health.contains("\"cache_hits\": 1") || health.contains("\"cache_coalesced\": 1"),
        "{health}"
    );
    let (ok, out) = serve(&["--workers", "1", "--no-cache"], reqs);
    assert!(ok, "{out}");
    let health = out.lines().nth(2).expect("health line");
    for gauge in [
        "\"cache_hits\": 0",
        "\"cache_misses\": 0",
        "\"cache_coalesced\": 0",
        "\"cache_entries\": 0",
    ] {
        assert!(health.contains(gauge), "{health}");
    }
}

#[test]
fn priority_key_is_accepted_and_answers_deterministically() {
    let reqs = "corpus=figure7 k=2 procs=2 priority=low\n\
                corpus=figure7 k=2 procs=2 priority=high\n\
                corpus=figure7 k=2 procs=2 priority=normal\n";
    let (ok, out) = serve(&["--workers", "1"], reqs);
    assert!(ok, "{out}");
    // Responses come back in request order regardless of execution order.
    let ids: Vec<&str> = out.lines().map(|l| &l[..l.find(',').unwrap()]).collect();
    assert_eq!(ids, ["{\"id\": 0", "{\"id\": 1", "{\"id\": 2"]);
}

#[test]
fn bad_priority_fails_the_run_with_a_parse_diagnostic() {
    let (ok, out) = serve(&["--workers", "1"], "corpus=figure7 priority=urgent\n");
    assert!(!ok, "unknown priority is a parse failure");
    assert!(out.contains("unknown priority"), "{out}");
}

#[test]
fn health_line_answers_a_pool_snapshot_inline() {
    let reqs = "corpus=figure7 k=2 procs=2\nhealth\n";
    let (ok, out) = serve(&["--workers", "2"], reqs);
    assert!(ok, "{out}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("\"kind\": \"loop\""));
    assert!(lines[1].contains("\"kind\": \"health\""), "{}", lines[1]);
    assert!(lines[1].contains("\"replaced_workers\": 0"));
    assert!(lines[1].contains("\"accepting\": true"));
}

#[test]
fn unknown_flag_is_refused_with_the_flag_inventory() {
    let (ok, out) = serve(&["--workerz", "2"], "");
    assert!(!ok, "typos must not silently default");
    assert!(out.contains("unexpected argument"), "{out}");
    assert!(out.contains("--queue-capacity"), "usage shown: {out}");
}

#[test]
fn missing_value_is_refused() {
    let (ok, out) = serve(&["--high-water"], "");
    assert!(!ok);
    assert!(out.contains("--high-water needs a value"), "{out}");
}
