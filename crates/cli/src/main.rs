//! `kn-cli` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! kn-cli figure <3|7|9|11|12|doall|all>   per-figure comparison report
//! kn-cli figure8                          DOACROSS grids for Figure 7's loop
//! kn-cli table1 [seeds] [iters]           Table 1(a)+(b) (default 25, 100)
//! kn-cli --seq ...                        disable the parallel experiment driver
//! kn-cli --link single ...                one-message-at-a-time links (contended)
//! kn-cli --engine <heap|calendar> ...     event-queue engine for contended runs
//! kn-cli ablate <arrival|detector|misestimate|procs>
//! kn-cli codegen <figure7|cytron86|...>   transformed parallel loop
//! kn-cli schedule <file> [k] [procs]      schedule a graph from a text file
//! kn-cli dot <workload>                   GraphViz export (with classes)
//! kn-cli serve [--workers N] [--requests FILE] [--out FILE] [--stats FILE]
//! ```
//!
//! ## `serve` — the batch scheduling service
//!
//! `serve` runs the long-lived work-queue service
//! ([`kn_core::service`]) against a batch of requests: one request per
//! line (`key=value` fields; format documented in
//! [`kn_core::service::wire`]), read from `--requests FILE` or stdin.
//! Responses are JSON lines in request order — deterministic regardless
//! of `--workers` (CI diffs them against `corpus/service_golden.jsonl`).
//! `--stats FILE` additionally writes the run-varying throughput /
//! per-phase-latency JSON. Example:
//!
//! ```text
//! $ echo "corpus=figure7 k=2 procs=2" | kn serve --workers 4
//! {"id": 0, "status": "ok", "kind": "loop", "name": "figure7", ...}
//! ```
//!
//! The text-file format is documented in `kn_ddg::text`; ready-made files
//! live in `corpus/`.

use kn_core::experiments::{ablate, figures, table1};
use kn_core::sim::{EventEngine, LinkModel, SimOptions};
use kn_core::workloads as wl;
use std::io::Write as _;

/// Extract `--name value` from the argument list. `Ok(None)` = flag
/// absent; `Err(())` = flag present but the value is missing (the caller
/// must diagnose rather than fall back to a default the user didn't ask
/// for).
fn take_flag_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, ()> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        args.remove(i);
        return Err(());
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

fn workload(name: &str) -> Option<wl::Workload> {
    wl::by_name(name)
}

/// `kn serve`: run the batch scheduling service over a request file (or
/// stdin) and emit one deterministic JSON response line per request, in
/// request order. Returns a non-`Ok` status message on setup errors.
fn run_serve(out: &mut impl std::io::Write, args: &mut Vec<String>) -> std::io::Result<()> {
    use kn_core::service::{wire, Service, ServiceError};

    let workers = match take_flag_value(args, "--workers") {
        Ok(None) => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                writeln!(out, "--workers needs a positive integer, got {v:?}")?;
                return Ok(());
            }
        },
        Err(()) => {
            writeln!(out, "--workers needs a value")?;
            return Ok(());
        }
    };
    let mut path_flag = |name: &str| -> Result<Option<String>, ()> { take_flag_value(args, name) };
    let (requests_path, out_path, stats_path) = match (
        path_flag("--requests"),
        path_flag("--out"),
        path_flag("--stats"),
    ) {
        (Ok(r), Ok(o), Ok(s)) => (r, o, s),
        _ => {
            writeln!(out, "--requests/--out/--stats need a value")?;
            return Ok(());
        }
    };
    if !args.is_empty() {
        // A typoed flag (`--request`, `--workers=4`) must not silently
        // fall back to defaults — with no --requests that would block on
        // stdin forever in a non-interactive CI step.
        writeln!(
            out,
            "serve: unexpected argument(s) {args:?} (flags are --workers N, --requests FILE, --out FILE, --stats FILE)"
        )?;
        return Ok(());
    }

    let input = match &requests_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                writeln!(out, "cannot read {path}: {e}")?;
                return Ok(());
            }
        },
        None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf)?;
            buf
        }
    };

    // Parse and submit in one pass so execution overlaps parsing; every
    // non-comment line gets a response slot (malformed lines answer
    // immediately with an error response and never reach the pool).
    enum Slot {
        Pending(kn_core::service::RequestId),
        Immediate(ServiceError),
    }
    let svc = Service::new(workers);
    let started = std::time::Instant::now();
    let mut slots: Vec<Slot> = Vec::new();
    for line in input.lines() {
        match wire::parse_request_line(line) {
            Ok(None) => {}
            Ok(Some(req)) => slots.push(Slot::Pending(svc.submit(req))),
            Err(e) => slots.push(Slot::Immediate(ServiceError::BadRequest(e))),
        }
    }
    let mut done: std::collections::HashMap<_, _> = svc.drain().into_iter().collect();
    let wall_ns = started.elapsed().as_nanos() as u64;
    let stats = svc.stats();

    let mut lines = String::new();
    let mut errors = 0usize;
    for (id, slot) in slots.iter().enumerate() {
        let resp = match slot {
            Slot::Pending(rid) => done.remove(rid).expect("drain returned every id"),
            Slot::Immediate(e) => Err(e.clone()),
        };
        if resp.is_err() {
            errors += 1;
        }
        lines.push_str(&wire::response_json(id as u64, &resp));
        lines.push('\n');
    }

    match &out_path {
        Some(path) => {
            std::fs::write(path, &lines)?;
            writeln!(
                out,
                "served {} request(s) ({} error(s)) on {} worker(s) in {:.1} ms -> {}",
                slots.len(),
                errors,
                workers,
                wall_ns as f64 / 1e6,
                path
            )?;
        }
        None => write!(out, "{lines}")?,
    }
    if let Some(path) = &stats_path {
        std::fs::write(
            path,
            wire::throughput_json(workers, slots.len() as u64, errors as u64, wall_ns, &stats),
        )?;
        if out_path.is_some() {
            writeln!(out, "throughput JSON -> {path}")?;
        }
    }
    Ok(())
}

fn print_figure(
    out: &mut impl std::io::Write,
    name: &str,
    sim: &SimOptions,
) -> std::io::Result<()> {
    let Some(w) = workload(name) else {
        writeln!(out, "unknown workload {name:?}")?;
        return Ok(());
    };
    print_figure_workload(out, &w, sim)
}

fn print_figure_workload(
    out: &mut impl std::io::Write,
    w: &wl::Workload,
    sim: &SimOptions,
) -> std::io::Result<()> {
    let r = figures::figure_report_with(w, 100, sim);
    print_report(out, w, &r)
}

fn print_report(
    out: &mut impl std::io::Write,
    w: &wl::Workload,
    r: &figures::FigureReport,
) -> std::io::Result<()> {
    writeln!(out, "=== {} ===", r.name)?;
    writeln!(out, "{}", w.description)?;
    writeln!(
        out,
        "sequential {} cycles for {} iterations (k = {})",
        r.seq_time, r.iters, w.k
    )?;
    writeln!(out, "{}", r.pattern)?;
    writeln!(out, "{}", figures::summary_line(r))?;
    writeln!(
        out,
        "DOACROSS natural {} cycles, best reorder {} cycles (best Sp {:.1}%)",
        r.doacross_natural_time, r.doacross_best_time, r.doacross_best_sp
    )?;
    writeln!(
        out,
        "\nCyclic-sched enumeration order (paper Fig. 3(b)/7(c)):"
    )?;
    writeln!(out, "  {}", r.enumeration)?;
    writeln!(out, "\nschedule grid, first iterations (paper-style):")?;
    writeln!(out, "{}", r.grid)?;
    if let Some(code) = &r.code {
        writeln!(out, "transformed loop (paper Fig. 7(e)/10 style):")?;
        writeln!(out, "{code}")?;
    }
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Experiments fan out across threads by default (deterministic: the
    // parallel drivers reduce in seed order and are tested equal to the
    // sequential ones); `--seq` forces the sequential paths.
    let parallel = {
        let before = args.len();
        args.retain(|a| a != "--seq");
        args.len() == before
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // Execution model for the drivers that run programs: `--link single`
    // switches to one-message-at-a-time links, `--engine heap|calendar`
    // picks the event queue for those contended runs (identical results,
    // different cost; calendar is the default).
    let engine = match take_flag_value(&mut args, "--engine") {
        Ok(None) => EventEngine::Calendar,
        Ok(Some(v)) => match EventEngine::from_name(&v) {
            Some(e) => e,
            None => {
                writeln!(out, "unknown engine {v:?} (heap|calendar)").unwrap();
                return;
            }
        },
        Err(()) => {
            writeln!(out, "--engine needs a value (heap|calendar)").unwrap();
            return;
        }
    };
    let link = match take_flag_value(&mut args, "--link") {
        Ok(None) => LinkModel::Unlimited,
        Ok(Some(v)) => match LinkModel::from_name(&v) {
            Some(l) => l,
            None => {
                writeln!(out, "unknown link model {v:?} (unlimited|single)").unwrap();
                return;
            }
        },
        Err(()) => {
            writeln!(out, "--link needs a value (unlimited|single)").unwrap();
            return;
        }
    };
    let sim = SimOptions { link, engine };
    let cmd = args.first().cloned();
    match cmd.as_deref() {
        Some("serve") => {
            args.remove(0);
            run_serve(&mut out, &mut args).unwrap();
        }
        Some("figure") => {
            let which = args.get(1).map(String::as_str).unwrap_or("all");
            if which == "all" {
                let names = ["figure3", "figure7", "cytron86", "livermore18", "elliptic"];
                if parallel {
                    let ws: Vec<wl::Workload> =
                        names.iter().map(|n| workload(n).unwrap()).collect();
                    let reports = figures::figure_reports_par_with(ws.clone(), 100, sim);
                    for (w, r) in ws.iter().zip(reports) {
                        print_report(&mut out, w, &r).unwrap();
                    }
                } else {
                    for name in names {
                        print_figure(&mut out, name, &sim).unwrap();
                    }
                }
            } else {
                print_figure(&mut out, which, &sim).unwrap();
            }
        }
        Some("figure8") => {
            let w = wl::figure7();
            let (nat, best) = figures::doacross_report(&w, 3, 4);
            writeln!(out, "DOACROSS, natural order (paper Fig. 8(a)):\n{nat}").unwrap();
            writeln!(
                out,
                "DOACROSS, optimally reordered (paper Fig. 8(b)):\n{best}"
            )
            .unwrap();
            writeln!(
                out,
                "No pipelining either way: the (E,A) carried dependence spans the body."
            )
            .unwrap();
        }
        Some("table1") => {
            let seeds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(25);
            let iters: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);
            let cfg = table1::Table1Config {
                seeds: (1..=seeds).collect(),
                iters,
                sim,
                ..Default::default()
            };
            let r = if parallel {
                table1::run_table1_par(&cfg)
            } else {
                table1::run_table1(&cfg)
            };
            writeln!(
                out,
                "Table 1(a): percentage parallelism, ours (x) vs DOACROSS, k = {}, {} PEs, {} iterations\n",
                cfg.k, cfg.procs, cfg.iters
            )
            .unwrap();
            writeln!(out, "{}", r.render_rows()).unwrap();
            writeln!(out, "Table 1(b): averages\n").unwrap();
            writeln!(out, "{}", r.render_summary()).unwrap();
        }
        Some("ablate") => match args.get(1).map(String::as_str) {
            Some("arrival") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::arrival_ablation_par(&seeds, 3, 8)
                } else {
                    ablate::arrival_ablation(&seeds, 3, 8)
                };
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("detector") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::detector_ablation_par(&seeds, 3, 8)
                } else {
                    ablate::detector_ablation(&seeds, 3, 8)
                };
                writeln!(
                    out,
                    "state vs window detector: {}/{} loops agree on steady II",
                    r.agreements,
                    r.seeds.len()
                )
                .unwrap();
                for (i, s) in r.seeds.iter().enumerate() {
                    writeln!(
                        out,
                        "  seed {s}: state {:.3}, window {:.3}",
                        r.state_ii[i], r.window_ii[i]
                    )
                    .unwrap();
                }
            }
            Some("misestimate") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::misestimation_ablation_par(&seeds, &[1, 2, 3, 4, 6], 3, 8, 100)
                } else {
                    ablate::misestimation_ablation(&seeds, &[1, 2, 3, 4, 6], 3, 8, 100)
                };
                writeln!(out, "schedule with k_est, execute with actual k = 3:\n").unwrap();
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("comm") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::comm_awareness_ablation_par(&seeds, 3, 8, 100)
                } else {
                    ablate::comm_awareness_ablation(&seeds, 3, 8, 100)
                };
                writeln!(
                    out,
                    "schedule with k=3 (aware) vs k=0 (oblivious), execute at k=3:\n"
                )
                .unwrap();
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("contention") => {
                let seeds: Vec<u64> = (1..=8).collect();
                let r = if parallel {
                    ablate::contention_ablation_par_with(&seeds, 3, 8, 100, engine)
                } else {
                    ablate::contention_ablation_with(&seeds, 3, 8, 100, engine)
                };
                writeln!(
                    out,
                    "fully-overlapped links vs one-message-at-a-time links:\n"
                )
                .unwrap();
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("procs") => {
                for seed in [1u64, 2, 3] {
                    let sweep = ablate::processor_sweep(seed, 3, &[1, 2, 4, 8, 16]);
                    writeln!(out, "seed {seed}: {sweep:?}").unwrap();
                }
            }
            other => {
                writeln!(out, "unknown ablation {other:?} (arrival|detector|misestimate|comm|contention|procs)")
                    .unwrap();
            }
        },
        Some("codegen") => {
            let name = args.get(1).map(String::as_str).unwrap_or("figure7");
            let Some(w) = workload(name) else {
                writeln!(out, "unknown workload {name:?}").unwrap();
                return;
            };
            let r = figures::figure_report(&w, 50);
            match r.code {
                Some(code) => writeln!(out, "{code}").unwrap(),
                None => writeln!(out, "(no single-pattern codegen for {name})").unwrap(),
            }
        }
        Some("schedule") => {
            // Schedule a graph from a text file (see kn_ddg::text for the
            // format): kn-cli schedule <file> [k] [procs] [iters]
            let Some(path) = args.get(1) else {
                writeln!(out, "usage: kn-cli schedule <file> [k] [procs] [iters]").unwrap();
                return;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    writeln!(out, "cannot read {path}: {e}").unwrap();
                    return;
                }
            };
            let graph = match kn_core::ddg::parse_text(&text) {
                Ok(g) => g,
                Err(e) => {
                    writeln!(out, "parse error: {e}").unwrap();
                    return;
                }
            };
            let k: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
            let procs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);
            let w = wl::Workload {
                name: "file",
                graph,
                k,
                procs,
                description: "user-supplied graph",
            };
            print_figure_workload(&mut out, &w, &sim).unwrap();
        }
        Some("dot") => {
            let name = args.get(1).map(String::as_str).unwrap_or("figure7");
            let Some(w) = workload(name) else {
                writeln!(out, "unknown workload {name:?}").unwrap();
                return;
            };
            let classes = kn_core::ddg::classify(&w.graph);
            writeln!(
                out,
                "{}",
                kn_core::ddg::dot::to_dot(&w.graph, Some(&classes))
            )
            .unwrap();
        }
        _ => {
            writeln!(
                out,
                "usage: kn-cli [--seq] [--link unlimited|single] [--engine heap|calendar] \
                 <figure [n|all] | figure8 | table1 [seeds] [iters] | \
                 ablate <axis> | codegen <workload> | schedule <file> [k] [procs] | \
                 dot <workload> | \
                 serve [--workers N] [--requests FILE] [--out FILE] [--stats FILE]>\n\
                 \n\
                 serve: batch scheduling service — requests are key=value lines \
                 (corpus=NAME | ddg=FILE, k=, procs=, iters=, link=, engine=, \
                 scheduler=cyclic|doacross|doacross-best, mm=, seed=) from --requests \
                 or stdin; responses are JSON lines in request order, deterministic \
                 for any --workers; --stats writes the throughput JSON."
            )
            .unwrap();
        }
    }
}
