//! `kn-cli` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! kn-cli figure <3|7|9|11|12|doall|all>   per-figure comparison report
//! kn-cli figure8                          DOACROSS grids for Figure 7's loop
//! kn-cli table1 [seeds] [iters]           Table 1(a)+(b) (default 25, 100)
//! kn-cli --seq ...                        disable the parallel experiment driver
//! kn-cli --link single ...                one-message-at-a-time links (contended)
//! kn-cli --engine <heap|calendar> ...     event-queue engine for contended runs
//! kn-cli ablate <arrival|detector|misestimate|procs>
//! kn-cli codegen <figure7|cytron86|...>   transformed parallel loop
//! kn-cli schedule <file> [k] [procs]      schedule a graph from a text file
//! kn-cli dot <workload>                   GraphViz export (with classes)
//! ```
//!
//! The text-file format is documented in `kn_ddg::text`; ready-made files
//! live in `corpus/`.

use kn_core::experiments::{ablate, figures, table1};
use kn_core::sim::{EventEngine, LinkModel, SimOptions};
use kn_core::workloads as wl;
use std::io::Write as _;

/// Extract `--name value` from the argument list. `Ok(None)` = flag
/// absent; `Err(())` = flag present but the value is missing (the caller
/// must diagnose rather than fall back to a default the user didn't ask
/// for).
fn take_flag_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, ()> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        args.remove(i);
        return Err(());
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

fn workload(name: &str) -> Option<wl::Workload> {
    Some(match name {
        "3" | "figure3" => wl::figure3(),
        "7" | "figure7" => wl::figure7(),
        "9" | "10" | "cytron86" => wl::cytron86(),
        "11" | "livermore18" => wl::livermore18(),
        "12" | "elliptic" => wl::elliptic(),
        "doall" => wl::doall(),
        "livermore5" | "ll5" => wl::livermore5(),
        "livermore23" | "ll23" => wl::livermore23(),
        "rate_gap" | "rategap" => wl::rate_gap(),
        _ => return None,
    })
}

fn print_figure(
    out: &mut impl std::io::Write,
    name: &str,
    sim: &SimOptions,
) -> std::io::Result<()> {
    let Some(w) = workload(name) else {
        writeln!(out, "unknown workload {name:?}")?;
        return Ok(());
    };
    print_figure_workload(out, &w, sim)
}

fn print_figure_workload(
    out: &mut impl std::io::Write,
    w: &wl::Workload,
    sim: &SimOptions,
) -> std::io::Result<()> {
    let r = figures::figure_report_with(w, 100, sim);
    print_report(out, w, &r)
}

fn print_report(
    out: &mut impl std::io::Write,
    w: &wl::Workload,
    r: &figures::FigureReport,
) -> std::io::Result<()> {
    writeln!(out, "=== {} ===", r.name)?;
    writeln!(out, "{}", w.description)?;
    writeln!(
        out,
        "sequential {} cycles for {} iterations (k = {})",
        r.seq_time, r.iters, w.k
    )?;
    writeln!(out, "{}", r.pattern)?;
    writeln!(out, "{}", figures::summary_line(r))?;
    writeln!(
        out,
        "DOACROSS natural {} cycles, best reorder {} cycles (best Sp {:.1}%)",
        r.doacross_natural_time, r.doacross_best_time, r.doacross_best_sp
    )?;
    writeln!(
        out,
        "\nCyclic-sched enumeration order (paper Fig. 3(b)/7(c)):"
    )?;
    writeln!(out, "  {}", r.enumeration)?;
    writeln!(out, "\nschedule grid, first iterations (paper-style):")?;
    writeln!(out, "{}", r.grid)?;
    if let Some(code) = &r.code {
        writeln!(out, "transformed loop (paper Fig. 7(e)/10 style):")?;
        writeln!(out, "{code}")?;
    }
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Experiments fan out across threads by default (deterministic: the
    // parallel drivers reduce in seed order and are tested equal to the
    // sequential ones); `--seq` forces the sequential paths.
    let parallel = {
        let before = args.len();
        args.retain(|a| a != "--seq");
        args.len() == before
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // Execution model for the drivers that run programs: `--link single`
    // switches to one-message-at-a-time links, `--engine heap|calendar`
    // picks the event queue for those contended runs (identical results,
    // different cost; calendar is the default).
    let engine = match take_flag_value(&mut args, "--engine") {
        Ok(None) => EventEngine::Calendar,
        Ok(Some(v)) => match v.as_str() {
            "calendar" => EventEngine::Calendar,
            "heap" => EventEngine::Heap,
            other => {
                writeln!(out, "unknown engine {other:?} (heap|calendar)").unwrap();
                return;
            }
        },
        Err(()) => {
            writeln!(out, "--engine needs a value (heap|calendar)").unwrap();
            return;
        }
    };
    let link = match take_flag_value(&mut args, "--link") {
        Ok(None) => LinkModel::Unlimited,
        Ok(Some(v)) => match v.as_str() {
            "unlimited" => LinkModel::Unlimited,
            "single" | "single-message" => LinkModel::SingleMessage,
            other => {
                writeln!(out, "unknown link model {other:?} (unlimited|single)").unwrap();
                return;
            }
        },
        Err(()) => {
            writeln!(out, "--link needs a value (unlimited|single)").unwrap();
            return;
        }
    };
    let sim = SimOptions { link, engine };
    match args.first().map(String::as_str) {
        Some("figure") => {
            let which = args.get(1).map(String::as_str).unwrap_or("all");
            if which == "all" {
                let names = ["figure3", "figure7", "cytron86", "livermore18", "elliptic"];
                if parallel {
                    let ws: Vec<wl::Workload> =
                        names.iter().map(|n| workload(n).unwrap()).collect();
                    let reports = figures::figure_reports_par_with(ws.clone(), 100, sim);
                    for (w, r) in ws.iter().zip(reports) {
                        print_report(&mut out, w, &r).unwrap();
                    }
                } else {
                    for name in names {
                        print_figure(&mut out, name, &sim).unwrap();
                    }
                }
            } else {
                print_figure(&mut out, which, &sim).unwrap();
            }
        }
        Some("figure8") => {
            let w = wl::figure7();
            let (nat, best) = figures::doacross_report(&w, 3, 4);
            writeln!(out, "DOACROSS, natural order (paper Fig. 8(a)):\n{nat}").unwrap();
            writeln!(
                out,
                "DOACROSS, optimally reordered (paper Fig. 8(b)):\n{best}"
            )
            .unwrap();
            writeln!(
                out,
                "No pipelining either way: the (E,A) carried dependence spans the body."
            )
            .unwrap();
        }
        Some("table1") => {
            let seeds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(25);
            let iters: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);
            let cfg = table1::Table1Config {
                seeds: (1..=seeds).collect(),
                iters,
                sim,
                ..Default::default()
            };
            let r = if parallel {
                table1::run_table1_par(&cfg)
            } else {
                table1::run_table1(&cfg)
            };
            writeln!(
                out,
                "Table 1(a): percentage parallelism, ours (x) vs DOACROSS, k = {}, {} PEs, {} iterations\n",
                cfg.k, cfg.procs, cfg.iters
            )
            .unwrap();
            writeln!(out, "{}", r.render_rows()).unwrap();
            writeln!(out, "Table 1(b): averages\n").unwrap();
            writeln!(out, "{}", r.render_summary()).unwrap();
        }
        Some("ablate") => match args.get(1).map(String::as_str) {
            Some("arrival") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::arrival_ablation_par(&seeds, 3, 8)
                } else {
                    ablate::arrival_ablation(&seeds, 3, 8)
                };
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("detector") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::detector_ablation_par(&seeds, 3, 8)
                } else {
                    ablate::detector_ablation(&seeds, 3, 8)
                };
                writeln!(
                    out,
                    "state vs window detector: {}/{} loops agree on steady II",
                    r.agreements,
                    r.seeds.len()
                )
                .unwrap();
                for (i, s) in r.seeds.iter().enumerate() {
                    writeln!(
                        out,
                        "  seed {s}: state {:.3}, window {:.3}",
                        r.state_ii[i], r.window_ii[i]
                    )
                    .unwrap();
                }
            }
            Some("misestimate") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::misestimation_ablation_par(&seeds, &[1, 2, 3, 4, 6], 3, 8, 100)
                } else {
                    ablate::misestimation_ablation(&seeds, &[1, 2, 3, 4, 6], 3, 8, 100)
                };
                writeln!(out, "schedule with k_est, execute with actual k = 3:\n").unwrap();
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("comm") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::comm_awareness_ablation_par(&seeds, 3, 8, 100)
                } else {
                    ablate::comm_awareness_ablation(&seeds, 3, 8, 100)
                };
                writeln!(
                    out,
                    "schedule with k=3 (aware) vs k=0 (oblivious), execute at k=3:\n"
                )
                .unwrap();
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("contention") => {
                let seeds: Vec<u64> = (1..=8).collect();
                let r = if parallel {
                    ablate::contention_ablation_par_with(&seeds, 3, 8, 100, engine)
                } else {
                    ablate::contention_ablation_with(&seeds, 3, 8, 100, engine)
                };
                writeln!(
                    out,
                    "fully-overlapped links vs one-message-at-a-time links:\n"
                )
                .unwrap();
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("procs") => {
                for seed in [1u64, 2, 3] {
                    let sweep = ablate::processor_sweep(seed, 3, &[1, 2, 4, 8, 16]);
                    writeln!(out, "seed {seed}: {sweep:?}").unwrap();
                }
            }
            other => {
                writeln!(out, "unknown ablation {other:?} (arrival|detector|misestimate|comm|contention|procs)")
                    .unwrap();
            }
        },
        Some("codegen") => {
            let name = args.get(1).map(String::as_str).unwrap_or("figure7");
            let Some(w) = workload(name) else {
                writeln!(out, "unknown workload {name:?}").unwrap();
                return;
            };
            let r = figures::figure_report(&w, 50);
            match r.code {
                Some(code) => writeln!(out, "{code}").unwrap(),
                None => writeln!(out, "(no single-pattern codegen for {name})").unwrap(),
            }
        }
        Some("schedule") => {
            // Schedule a graph from a text file (see kn_ddg::text for the
            // format): kn-cli schedule <file> [k] [procs] [iters]
            let Some(path) = args.get(1) else {
                writeln!(out, "usage: kn-cli schedule <file> [k] [procs] [iters]").unwrap();
                return;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    writeln!(out, "cannot read {path}: {e}").unwrap();
                    return;
                }
            };
            let graph = match kn_core::ddg::parse_text(&text) {
                Ok(g) => g,
                Err(e) => {
                    writeln!(out, "parse error: {e}").unwrap();
                    return;
                }
            };
            let k: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
            let procs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);
            let w = wl::Workload {
                name: "file",
                graph,
                k,
                procs,
                description: "user-supplied graph",
            };
            print_figure_workload(&mut out, &w, &sim).unwrap();
        }
        Some("dot") => {
            let name = args.get(1).map(String::as_str).unwrap_or("figure7");
            let Some(w) = workload(name) else {
                writeln!(out, "unknown workload {name:?}").unwrap();
                return;
            };
            let classes = kn_core::ddg::classify(&w.graph);
            writeln!(
                out,
                "{}",
                kn_core::ddg::dot::to_dot(&w.graph, Some(&classes))
            )
            .unwrap();
        }
        _ => {
            writeln!(
                out,
                "usage: kn-cli [--seq] [--link unlimited|single] [--engine heap|calendar] \
                 <figure [n|all] | figure8 | table1 [seeds] [iters] | \
                 ablate <axis> | codegen <workload> | schedule <file> [k] [procs] | \
                 dot <workload>>"
            )
            .unwrap();
        }
    }
}
