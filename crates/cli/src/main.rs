#![forbid(unsafe_code)]
//! `kn-cli` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! kn-cli figure <3|7|9|11|12|doall|all>   per-figure comparison report
//! kn-cli figure8                          DOACROSS grids for Figure 7's loop
//! kn-cli table1 [seeds] [iters]           Table 1(a)+(b) (default 25, 100)
//! kn-cli --seq ...                        disable the parallel experiment driver
//! kn-cli --link single ...                one-message-at-a-time links (contended)
//! kn-cli --engine <heap|calendar> ...     event-queue engine for contended runs
//! kn-cli ablate <arrival|detector|misestimate|procs>
//! kn-cli codegen <figure7|cytron86|...>   transformed parallel loop
//! kn-cli schedule <file> [k] [procs]      schedule a graph from a text file
//! kn-cli lint <file> [--json] [--annotate OUT.dot]
//!                                         KN0xx DDG lint (docs/diagnostics.md)
//! kn-cli verify <file> [--scheduler cyclic|doacross|doacross-best]
//!                                         schedule + static certification
//! kn-cli dot <workload>                   GraphViz export (with classes)
//! kn-cli serve [--workers N] [--requests FILE] [--out FILE] [--stats FILE]
//!              [--listen ADDR] [--queue-capacity N] [--max-attempts N]
//!              [--high-water N] [--deadline-ms MS]
//!              [--fault-seed S] [--fault-rate PCT]
//!              [--cache-capacity N] [--no-cache]
//! ```
//!
//! ## `serve` — the batch scheduling service
//!
//! `serve` runs the long-lived work-queue service
//! ([`kn_core::service`]) against a batch of requests: one request per
//! line (`key=value` fields; format documented in
//! [`kn_core::service::wire`]), read from `--requests FILE` or stdin.
//! Responses are JSON lines in request order — deterministic regardless
//! of `--workers` (CI diffs them against `corpus/service_golden.jsonl`).
//! `--stats FILE` additionally writes the run-varying throughput /
//! per-phase-latency JSON. A run exits non-zero if any request line
//! failed to parse. `--listen ADDR` serves the same protocol over TCP
//! ([`kn_core::service::net`]); combined with `--requests` it replays
//! the file through a real socket and shuts the server down gracefully
//! (the CI `fault-smoke` path). `--queue-capacity`/`--max-attempts`/
//! `--high-water`/`--deadline-ms` set the lifecycle knobs (`--queue-cap`
//! and `--retries` remain as aliases) and `--fault-seed`/`--fault-rate`
//! enable the deterministic fault-injection harness. The fingerprinted
//! response cache + in-flight dedup is on by default (1024 entries);
//! `--cache-capacity N` (alias `--cache-cap`) resizes it and
//! `--no-cache` disables it — responses are byte-identical either way,
//! only the counters in the health/stats JSON move. Request lines may
//! carry `priority=high|normal|low`; a bare `health` line returns a pool
//! health snapshot. `kn serve --help` lists every flag.
//! Example:
//!
//! ```text
//! $ echo "corpus=figure7 k=2 procs=2" | kn serve --workers 4
//! {"id": 0, "status": "ok", "kind": "loop", "name": "figure7", ...}
//! ```
//!
//! The text-file format is documented in `kn_ddg::text`; ready-made files
//! live in `corpus/`.

use kn_core::experiments::{ablate, figures, table1};
use kn_core::sim::{EventEngine, LinkModel, SimOptions};
use kn_core::workloads as wl;
use std::io::Write as _;

/// Extract `--name value` from the argument list. `Ok(None)` = flag
/// absent; `Err(())` = flag present but the value is missing (the caller
/// must diagnose rather than fall back to a default the user didn't ask
/// for).
fn take_flag_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, ()> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        args.remove(i);
        return Err(());
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

fn workload(name: &str) -> Option<wl::Workload> {
    wl::by_name(name)
}

/// `kn serve --help` text; also appended to the unexpected-argument
/// diagnostic so a typo shows the full flag inventory.
const SERVE_USAGE: &str = "\
usage: kn serve [flags]
  --workers N         worker threads (default: available parallelism)
  --requests FILE     request lines to serve (default: stdin)
  --out FILE          write response lines here instead of stdout
  --stats FILE        write the run-varying throughput JSON here
  --listen ADDR       serve the wire protocol over TCP on ADDR
  --queue-capacity N  bound the admission queue (alias: --queue-cap)
  --max-attempts N    per-request attempt budget (alias: --retries)
  --high-water N      queue depth that starts brownout shedding of
                      priority=low arrivals (default: off)
  --deadline-ms MS    default per-request deadline
  --fault-seed S      seed for the deterministic fault-injection plan
  --fault-rate PCT    percent of requests the plan faults (enables it)
  --cache-capacity N  response cache entries (alias: --cache-cap;
                      default: 1024; 0 disables)
  --no-cache          disable the response cache and in-flight dedup
  --help              print this help and exit 0

Request lines are key=value pairs (corpus=NAME | ddg=FILE, k=, procs=,
iters=, link=, engine=, scheduler=, mm=, seed=, deadline_ms=,
priority=high|normal|low); a bare `health` line answers with a pool
health snapshot (workers, heartbeats, replaced_workers, queue depths,
cache counters).";

/// `kn serve`: run the batch scheduling service over a request file (or
/// stdin) and emit one deterministic JSON response line per request, in
/// request order; with `--listen ADDR` the same semantics are served
/// over TCP. Returns the process exit code: non-zero when any request
/// line failed to parse in batch mode, or on a setup error.
fn run_serve(
    out: &mut impl std::io::Write,
    args: &mut Vec<String>,
) -> std::io::Result<std::process::ExitCode> {
    use kn_core::service::faultinject::FaultPlan;
    use kn_core::service::{
        wire, Deadline, Service, ServiceConfig, ServiceError, SubmitOptions, SubmitOutcome,
    };
    use std::time::Duration;

    const FAIL: std::process::ExitCode = std::process::ExitCode::FAILURE;

    if args.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{}", SERVE_USAGE)?;
        return Ok(std::process::ExitCode::SUCCESS);
    }

    let workers = match take_flag_value(args, "--workers") {
        Ok(None) => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                writeln!(out, "--workers needs a positive integer, got {v:?}")?;
                return Ok(FAIL);
            }
        },
        Err(()) => {
            writeln!(out, "--workers needs a value")?;
            return Ok(FAIL);
        }
    };
    // Lifecycle flags: numeric ones share a parser; a bad value is a
    // setup error, not a silent default.
    fn num_flag(args: &mut Vec<String>, name: &str) -> Result<Option<u64>, String> {
        match take_flag_value(args, name) {
            Ok(None) => Ok(None),
            Ok(Some(v)) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("{name} needs a non-negative integer, got {v:?}")),
            Err(()) => Err(format!("{name} needs a value")),
        }
    }
    // `--queue-capacity`/`--max-attempts` are the documented names;
    // `--queue-cap`/`--retries` stay as accepted aliases (existing CI
    // scripts use them). When both spellings appear the canonical one
    // wins.
    fn aliased(
        args: &mut Vec<String>,
        canonical: &str,
        alias: &str,
    ) -> Result<Option<u64>, String> {
        let a = num_flag(args, alias)?;
        Ok(num_flag(args, canonical)?.or(a))
    }
    // `--no-cache` is a bare boolean (the `--json` pattern).
    let no_cache = {
        let before = args.len();
        args.retain(|a| a != "--no-cache");
        args.len() != before
    };
    let lifecycle = (|| -> Result<_, String> {
        Ok((
            aliased(args, "--queue-capacity", "--queue-cap")?,
            aliased(args, "--max-attempts", "--retries")?,
            num_flag(args, "--high-water")?,
            num_flag(args, "--deadline-ms")?,
            num_flag(args, "--fault-seed")?,
            num_flag(args, "--fault-rate")?,
            aliased(args, "--cache-capacity", "--cache-cap")?,
        ))
    })();
    let (queue_cap, retries, high_water, deadline_ms, fault_seed, fault_rate, cache_cap) =
        match lifecycle {
            Ok(v) => v,
            Err(e) => {
                writeln!(out, "{e}")?;
                return Ok(FAIL);
            }
        };
    let mut path_flag = |name: &str| -> Result<Option<String>, ()> { take_flag_value(args, name) };
    let (requests_path, out_path, stats_path, listen_addr) = match (
        path_flag("--requests"),
        path_flag("--out"),
        path_flag("--stats"),
        path_flag("--listen"),
    ) {
        (Ok(r), Ok(o), Ok(s), Ok(l)) => (r, o, s, l),
        _ => {
            writeln!(out, "--requests/--out/--stats/--listen need a value")?;
            return Ok(FAIL);
        }
    };
    if !args.is_empty() {
        // A typoed flag (`--request`, `--workers=4`) must not silently
        // fall back to defaults — with no --requests that would block on
        // stdin forever in a non-interactive CI step.
        writeln!(out, "serve: unexpected argument(s) {args:?}\n{SERVE_USAGE}")?;
        return Ok(FAIL);
    }

    let mut config = ServiceConfig {
        workers,
        ..ServiceConfig::default()
    };
    if let Some(cap) = queue_cap {
        config.queue_capacity = cap as usize;
    }
    if let Some(r) = retries {
        config.max_attempts = (r as u32).max(1);
    }
    if let Some(hw) = high_water {
        config.high_water = hw as usize;
    }
    if let Some(rate) = fault_rate {
        config.fault_plan = Some(FaultPlan::seeded(
            fault_seed.unwrap_or(0),
            rate.min(100) as u32,
        ));
    }
    // Serving a batch of repeating requests is exactly the cache's case,
    // so `kn serve` turns it on by default (the library default stays 0:
    // embedded pools opt in).
    config.cache_capacity = if no_cache {
        0
    } else {
        cache_cap.map_or(1024, |c| c as usize)
    };
    let default_deadline = deadline_ms.map(Duration::from_millis);

    if let Some(addr) = &listen_addr {
        return run_serve_listen(
            out,
            addr,
            config,
            default_deadline,
            requests_path.as_deref(),
            out_path.as_deref(),
            stats_path.as_deref(),
        );
    }

    let input = match &requests_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                writeln!(out, "cannot read {path}: {e}")?;
                return Ok(FAIL);
            }
        },
        None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf)?;
            buf
        }
    };

    // Parse and submit in one pass so execution overlaps parsing; every
    // non-comment line gets a response slot (malformed lines answer
    // immediately with an error response and never reach the pool, but
    // they do make the whole run exit non-zero).
    enum Slot {
        Pending(kn_core::service::RequestId),
        Immediate(ServiceError),
        Health,
    }
    let svc = Service::with_config(config);
    let started = std::time::Instant::now();
    let mut slots: Vec<Slot> = Vec::new();
    let mut parse_failures = 0usize;
    for line in input.lines() {
        if wire::is_health_line(line) {
            slots.push(Slot::Health);
            continue;
        }
        match wire::parse_request_line(line) {
            Ok(None) => {}
            Ok(Some(parsed)) => {
                let deadline = parsed
                    .deadline_ms
                    .map(Duration::from_millis)
                    .or(default_deadline)
                    .map(Deadline::after);
                let opts = SubmitOptions {
                    deadline,
                    priority: parsed.priority,
                    ..SubmitOptions::default()
                };
                match svc.submit_opts(parsed.req, opts) {
                    SubmitOutcome::Accepted(id) => slots.push(Slot::Pending(id)),
                    SubmitOutcome::Rejected(kn_core::service::RejectReason::InvalidDdg {
                        code,
                        message,
                    }) => slots.push(Slot::Immediate(ServiceError::InvalidDdg { code, message })),
                    SubmitOutcome::Rejected(kn_core::service::RejectReason::Overloaded) => {
                        slots.push(Slot::Immediate(ServiceError::Overloaded))
                    }
                    _ => slots.push(Slot::Immediate(ServiceError::ShuttingDown)),
                }
            }
            Err(e) => {
                parse_failures += 1;
                slots.push(Slot::Immediate(ServiceError::BadRequest(e)));
            }
        }
    }
    let ids: Vec<_> = slots
        .iter()
        .filter_map(|s| match s {
            Slot::Pending(id) => Some(*id),
            Slot::Immediate(_) | Slot::Health => None,
        })
        .collect();
    let mut done: std::collections::HashMap<_, _> = svc
        .collect_detailed(&ids, None)
        .into_iter()
        .map(|c| (c.id, c))
        .collect();
    let wall_ns = started.elapsed().as_nanos() as u64;
    let stats = svc.stats();

    let mut lines = String::new();
    let mut errors = 0usize;
    for (id, slot) in slots.iter().enumerate() {
        let (resp, attempts) = match slot {
            Slot::Pending(rid) => {
                let c = done.remove(rid).expect("collect returned every id");
                (c.result, c.attempts)
            }
            Slot::Immediate(e) => (Err(e.clone()), 0),
            Slot::Health => {
                // A health probe answers in-line with a pool snapshot
                // (never deterministic: heartbeats vary run to run).
                lines.push_str(&wire::health_json(id as u64, &svc.health()));
                lines.push('\n');
                continue;
            }
        };
        if resp.is_err() {
            errors += 1;
        }
        lines.push_str(&wire::response_json_with(id as u64, &resp, attempts));
        lines.push('\n');
    }

    match &out_path {
        Some(path) => {
            std::fs::write(path, &lines)?;
            writeln!(
                out,
                "served {} request(s) ({} error(s)) on {} worker(s) in {:.1} ms -> {}",
                slots.len(),
                errors,
                workers,
                wall_ns as f64 / 1e6,
                path
            )?;
        }
        None => write!(out, "{lines}")?,
    }
    if let Some(path) = &stats_path {
        std::fs::write(
            path,
            wire::throughput_json(
                workers,
                slots.len() as u64,
                errors as u64,
                wall_ns,
                &stats,
                svc.health().cache_entries,
            ),
        )?;
        if out_path.is_some() {
            writeln!(out, "throughput JSON -> {path}")?;
        }
    }
    if parse_failures > 0 {
        writeln!(out, "{parse_failures} request line(s) failed to parse")?;
        return Ok(FAIL);
    }
    Ok(std::process::ExitCode::SUCCESS)
}

/// `kn serve --listen ADDR`: the TCP front-end. With `--requests FILE`
/// the batch is replayed through a real socket (connect, stream every
/// line, read responses until the server closes) and the server is shut
/// down gracefully afterwards — this is what the `fault-smoke` CI job
/// runs. Without `--requests` the server runs until the process is
/// killed.
fn run_serve_listen(
    out: &mut impl std::io::Write,
    addr: &str,
    config: kn_core::service::ServiceConfig,
    default_deadline: Option<std::time::Duration>,
    requests_path: Option<&str>,
    out_path: Option<&str>,
    stats_path: Option<&str>,
) -> std::io::Result<std::process::ExitCode> {
    use kn_core::service::net::{NetConfig, NetServer};
    use kn_core::service::{wire, DrainPolicy, Service};
    use std::io::Read as _;

    let workers = config.workers;
    let svc = std::sync::Arc::new(Service::with_config(config));
    let net_cfg = NetConfig {
        default_deadline,
        ..NetConfig::default()
    };
    let server = match NetServer::bind(std::sync::Arc::clone(&svc), addr, net_cfg) {
        Ok(s) => s,
        Err(e) => {
            writeln!(out, "cannot listen on {addr}: {e}")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    let local = server.local_addr();

    let Some(path) = requests_path else {
        writeln!(out, "listening on {local} ({workers} worker(s))")?;
        out.flush()?;
        loop {
            std::thread::park();
        }
    };

    let input = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            writeln!(out, "cannot read {path}: {e}")?;
            server.shutdown(DrainPolicy::Shed);
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    let started = std::time::Instant::now();
    let mut sock = std::net::TcpStream::connect(local)?;
    std::io::Write::write_all(&mut sock, input.as_bytes())?;
    sock.shutdown(std::net::Shutdown::Write)?;
    let mut responses = String::new();
    sock.read_to_string(&mut responses)?;
    let wall_ns = started.elapsed().as_nanos() as u64;

    server.shutdown(DrainPolicy::Finish);
    let stats = svc.stats();
    let requests = responses.lines().count() as u64;
    let errors = responses
        .lines()
        .filter(|l| l.contains("\"status\": \"error\""))
        .count() as u64;

    match out_path {
        Some(path) => {
            std::fs::write(path, &responses)?;
            writeln!(
                out,
                "replayed {requests} request(s) ({errors} error(s)) over {local} on {workers} worker(s) in {:.1} ms -> {path}",
                wall_ns as f64 / 1e6,
            )?;
        }
        None => write!(out, "{responses}")?,
    }
    if let Some(path) = stats_path {
        std::fs::write(
            path,
            wire::throughput_json(
                workers,
                requests,
                errors,
                wall_ns,
                &stats,
                svc.health().cache_entries,
            ),
        )?;
        if out_path.is_some() {
            writeln!(out, "throughput JSON -> {path}")?;
        }
    }
    Ok(std::process::ExitCode::SUCCESS)
}

/// `kn lint <file> [--json] [--annotate OUT.dot]`: run the `kn-verify`
/// DDG lint pass over a text-format graph. Exit non-zero iff the report
/// contains an `Error`-severity finding (warnings and info never fail).
fn run_lint(
    out: &mut impl std::io::Write,
    args: &mut Vec<String>,
) -> std::io::Result<std::process::ExitCode> {
    use kn_core::verify as v;
    let json = {
        let before = args.len();
        args.retain(|a| a != "--json");
        args.len() != before
    };
    let annotate = match take_flag_value(args, "--annotate") {
        Ok(p) => p,
        Err(()) => {
            writeln!(out, "--annotate needs a value (output .dot path)")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    let Some(path) = args.first() else {
        writeln!(
            out,
            "usage: kn-cli lint <file> [--json] [--annotate OUT.dot]"
        )?;
        return Ok(std::process::ExitCode::FAILURE);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            writeln!(out, "cannot read {path}: {e}")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    let lint = match v::lint_text(&text) {
        Ok(l) => l,
        Err(e) => {
            writeln!(out, "DDG parse error: {e}")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    if json {
        writeln!(out, "{}", lint.report.render_json())?;
    } else {
        writeln!(out, "{}", lint.report.render_human().trim_end())?;
    }
    if let Some(dot_path) = annotate {
        let dot = kn_core::ddg::dot::to_dot_annotated(
            &lint.nodes,
            &lint.edges,
            &lint.report.flagged_nodes(),
            &lint.report.flagged_edges(),
        );
        if let Err(e) = std::fs::write(&dot_path, dot) {
            writeln!(out, "cannot write {dot_path}: {e}")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
        writeln!(out, "annotated graph written to {dot_path}")?;
    }
    Ok(if lint.report.has_errors() {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    })
}

/// `kn verify <file> [--scheduler cyclic|doacross|doacross-best]
/// [--procs N] [--k N] [--iters N] [--json]`: schedule the graph and run
/// the static certifier over the produced schedule (dependences,
/// resources, coverage, MII bound). Exit non-zero if the graph fails
/// lint or the certifier finds an `Error`.
fn run_verify(
    out: &mut impl std::io::Write,
    args: &mut Vec<String>,
) -> std::io::Result<std::process::ExitCode> {
    use kn_core::verify as v;
    let json = {
        let before = args.len();
        args.retain(|a| a != "--json");
        args.len() != before
    };
    let mut flag = |name: &str, default: u64| -> Result<u64, String> {
        match take_flag_value(args, name) {
            Ok(None) => Ok(default),
            Ok(Some(s)) => s
                .parse()
                .map_err(|_| format!("{name} needs an integer, got {s:?}")),
            Err(()) => Err(format!("{name} needs a value")),
        }
    };
    let parsed = (|| -> Result<(u64, u64, u64), String> {
        Ok((flag("--procs", 8)?, flag("--k", 3)?, flag("--iters", 64)?))
    })();
    let (procs, k, iters) = match parsed {
        Ok(t) => t,
        Err(msg) => {
            writeln!(out, "{msg}")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    let scheduler = match take_flag_value(args, "--scheduler") {
        Ok(None) => "cyclic".to_string(),
        Ok(Some(s)) => s,
        Err(()) => {
            writeln!(
                out,
                "--scheduler needs a value (cyclic|doacross|doacross-best)"
            )?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    let Some(path) = args.first() else {
        writeln!(
            out,
            "usage: kn-cli verify <file> [--scheduler cyclic|doacross|doacross-best] \
             [--procs N] [--k N] [--iters N] [--json]"
        )?;
        return Ok(std::process::ExitCode::FAILURE);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            writeln!(out, "cannot read {path}: {e}")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    // Gate on lint first: certifying a schedule of a malformed graph is
    // meaningless, and this is the same gate the service applies.
    let graph = match v::lint_text(&text) {
        Ok(l) if l.report.has_errors() => {
            writeln!(out, "{}", l.report.render_human().trim_end())?;
            return Ok(std::process::ExitCode::FAILURE);
        }
        Ok(l) => l.graph.expect("no lint errors implies a valid graph"),
        Err(e) => {
            writeln!(out, "DDG parse error: {e}")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    let m = kn_core::sched::MachineConfig::new(procs as usize, k as u32);
    let iters = (iters as u32).max(1);
    let report = match scheduler.as_str() {
        "cyclic" => {
            let r = match kn_core::parallelize(&graph, &m, iters, &Default::default()) {
                Ok(r) => r,
                Err(e) => {
                    writeln!(out, "scheduling failed: {e}")?;
                    return Ok(std::process::ExitCode::FAILURE);
                }
            };
            v::certify_loop(&r.normalized, &m, &r.schedule)
        }
        "doacross" | "doacross-best" => {
            let reorder = if scheduler == "doacross-best" {
                kn_core::doacross::Reorder::Best {
                    exhaustive_cap: 5040,
                }
            } else {
                kn_core::doacross::Reorder::Natural
            };
            let opts = kn_core::doacross::DoacrossOptions {
                reorder,
                ..Default::default()
            };
            let s = match kn_core::doacross::doacross_schedule(&graph, &m, iters, &opts) {
                Ok(s) => s,
                Err(e) => {
                    writeln!(out, "scheduling failed: {e}")?;
                    return Ok(std::process::ExitCode::FAILURE);
                }
            };
            v::certify_timed(&graph, &m, &s.timing, iters)
        }
        other => {
            writeln!(
                out,
                "unknown scheduler {other:?} (cyclic|doacross|doacross-best)"
            )?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    let bounds = v::mii_bounds(&graph, &m);
    if json {
        writeln!(out, "{}", report.render_json())?;
    } else {
        writeln!(
            out,
            "MII bounds: recurrence {:.2}, resource {:.2} cycles/iteration",
            bounds.recurrence_mii, bounds.resource_mii
        )?;
        writeln!(out, "{}", report.render_human().trim_end())?;
    }
    Ok(if report.has_errors() {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    })
}

/// `kn transform <file.ir|workload> [--fission] [--reduce] [--json]
/// [--emit-dir DIR]`: run the `kn-xform` front-end over a loop body and
/// report what fired (with per-piece MII) or why not (stable `XSnn`/
/// `XRnn` skip codes). With no pass flag, both passes run. The source is
/// a `kn_ir::text` file when the path exists, else a body-sourced corpus
/// workload name ([`kn_core::workloads::body_by_name`]). `--emit-dir`
/// writes each piece's DDG in `kn_ddg::text` format, ready for
/// `kn schedule` / `kn verify` / `kn serve` to consume.
fn run_transform(
    out: &mut impl std::io::Write,
    args: &mut Vec<String>,
) -> std::io::Result<std::process::ExitCode> {
    use kn_core::xform as x;
    let mut take_switch = |name: &str| {
        let before = args.len();
        args.retain(|a| a != name);
        args.len() != before
    };
    let json = take_switch("--json");
    let fission = take_switch("--fission");
    let reduce = take_switch("--reduce");
    let emit_dir = match take_flag_value(args, "--emit-dir") {
        Ok(d) => d,
        Err(()) => {
            writeln!(out, "--emit-dir needs a value (output directory)")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    let Some(src) = args.first() else {
        writeln!(
            out,
            "usage: kn-cli transform <file.ir|workload> [--fission] [--reduce] \
             [--json] [--emit-dir DIR]"
        )?;
        return Ok(std::process::ExitCode::FAILURE);
    };
    let opts = if fission || reduce {
        x::TransformOptions { fission, reduce }
    } else {
        x::TransformOptions::all()
    };
    let (name, body) = if std::path::Path::new(src).exists() {
        let text = match std::fs::read_to_string(src) {
            Ok(t) => t,
            Err(e) => {
                writeln!(out, "cannot read {src}: {e}")?;
                return Ok(std::process::ExitCode::FAILURE);
            }
        };
        let body = match kn_core::ir::parse_loop(&text) {
            Ok(b) => b,
            Err(e) => {
                writeln!(out, "IR parse error in {src}: {e}")?;
                return Ok(std::process::ExitCode::FAILURE);
            }
        };
        let stem = std::path::Path::new(src)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("loop")
            .to_string();
        (stem, body)
    } else if let Some(body) = kn_core::workloads::body_by_name(src) {
        (src.clone(), body)
    } else {
        writeln!(
            out,
            "{src:?} is neither a readable .ir file nor a body-sourced corpus workload"
        )?;
        return Ok(std::process::ExitCode::FAILURE);
    };
    let result = match x::transform_loop(&name, &body, &opts) {
        Ok(r) => r,
        Err(e) => {
            writeln!(out, "transform failed: {e}")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
    };
    if json {
        writeln!(out, "{}", result.to_json())?;
    } else {
        writeln!(out, "{}", result.render_human().trim_end())?;
    }
    if let Some(dir) = emit_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            writeln!(out, "cannot create {dir}: {e}")?;
            return Ok(std::process::ExitCode::FAILURE);
        }
        for piece in &result.transformed.pieces {
            // Piece names can carry corpus slashes (reduction/sum.p1);
            // flatten them so every piece lands directly in --emit-dir.
            let fname = format!("{}.ddg", piece.name.replace('/', "_"));
            let path = std::path::Path::new(&dir).join(&fname);
            if let Err(e) = std::fs::write(&path, kn_core::ddg::text::render(&piece.graph)) {
                writeln!(out, "cannot write {}: {e}", path.display())?;
                return Ok(std::process::ExitCode::FAILURE);
            }
            writeln!(out, "piece DDG -> {}", path.display())?;
        }
    }
    Ok(std::process::ExitCode::SUCCESS)
}

fn print_figure(
    out: &mut impl std::io::Write,
    name: &str,
    sim: &SimOptions,
) -> std::io::Result<()> {
    let Some(w) = workload(name) else {
        writeln!(out, "unknown workload {name:?}")?;
        return Ok(());
    };
    print_figure_workload(out, &w, sim)
}

fn print_figure_workload(
    out: &mut impl std::io::Write,
    w: &wl::Workload,
    sim: &SimOptions,
) -> std::io::Result<()> {
    let r = figures::figure_report_with(w, 100, sim);
    print_report(out, w, &r)
}

fn print_report(
    out: &mut impl std::io::Write,
    w: &wl::Workload,
    r: &figures::FigureReport,
) -> std::io::Result<()> {
    writeln!(out, "=== {} ===", r.name)?;
    writeln!(out, "{}", w.description)?;
    writeln!(
        out,
        "sequential {} cycles for {} iterations (k = {})",
        r.seq_time, r.iters, w.k
    )?;
    writeln!(out, "{}", r.pattern)?;
    writeln!(out, "{}", figures::summary_line(r))?;
    writeln!(
        out,
        "DOACROSS natural {} cycles, best reorder {} cycles (best Sp {:.1}%)",
        r.doacross_natural_time, r.doacross_best_time, r.doacross_best_sp
    )?;
    writeln!(
        out,
        "\nCyclic-sched enumeration order (paper Fig. 3(b)/7(c)):"
    )?;
    writeln!(out, "  {}", r.enumeration)?;
    writeln!(out, "\nschedule grid, first iterations (paper-style):")?;
    writeln!(out, "{}", r.grid)?;
    if let Some(code) = &r.code {
        writeln!(out, "transformed loop (paper Fig. 7(e)/10 style):")?;
        writeln!(out, "{code}")?;
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Experiments fan out across threads by default (deterministic: the
    // parallel drivers reduce in seed order and are tested equal to the
    // sequential ones); `--seq` forces the sequential paths.
    let parallel = {
        let before = args.len();
        args.retain(|a| a != "--seq");
        args.len() == before
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // Execution model for the drivers that run programs: `--link single`
    // switches to one-message-at-a-time links, `--engine heap|calendar`
    // picks the event queue for those contended runs (identical results,
    // different cost; calendar is the default).
    let engine = match take_flag_value(&mut args, "--engine") {
        Ok(None) => EventEngine::Calendar,
        Ok(Some(v)) => match EventEngine::from_name(&v) {
            Some(e) => e,
            None => {
                writeln!(out, "unknown engine {v:?} (heap|calendar)").unwrap();
                return std::process::ExitCode::FAILURE;
            }
        },
        Err(()) => {
            writeln!(out, "--engine needs a value (heap|calendar)").unwrap();
            return std::process::ExitCode::FAILURE;
        }
    };
    let link = match take_flag_value(&mut args, "--link") {
        Ok(None) => LinkModel::Unlimited,
        Ok(Some(v)) => match LinkModel::from_name(&v) {
            Some(l) => l,
            None => {
                writeln!(out, "unknown link model {v:?} (unlimited|single)").unwrap();
                return std::process::ExitCode::FAILURE;
            }
        },
        Err(()) => {
            writeln!(out, "--link needs a value (unlimited|single)").unwrap();
            return std::process::ExitCode::FAILURE;
        }
    };
    let sim = SimOptions { link, engine };
    let cmd = args.first().cloned();
    match cmd.as_deref() {
        Some("serve") => {
            args.remove(0);
            let code = run_serve(&mut out, &mut args).unwrap();
            out.flush().unwrap();
            return code;
        }
        Some("figure") => {
            let which = args.get(1).map(String::as_str).unwrap_or("all");
            if which == "all" {
                let names = ["figure3", "figure7", "cytron86", "livermore18", "elliptic"];
                if parallel {
                    let ws: Vec<wl::Workload> =
                        names.iter().map(|n| workload(n).unwrap()).collect();
                    let reports = figures::figure_reports_par_with(ws.clone(), 100, sim);
                    for (w, r) in ws.iter().zip(reports) {
                        print_report(&mut out, w, &r).unwrap();
                    }
                } else {
                    for name in names {
                        print_figure(&mut out, name, &sim).unwrap();
                    }
                }
            } else {
                print_figure(&mut out, which, &sim).unwrap();
            }
        }
        Some("figure8") => {
            let w = wl::figure7();
            let (nat, best) = figures::doacross_report(&w, 3, 4);
            writeln!(out, "DOACROSS, natural order (paper Fig. 8(a)):\n{nat}").unwrap();
            writeln!(
                out,
                "DOACROSS, optimally reordered (paper Fig. 8(b)):\n{best}"
            )
            .unwrap();
            writeln!(
                out,
                "No pipelining either way: the (E,A) carried dependence spans the body."
            )
            .unwrap();
        }
        Some("table1") => {
            let seeds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(25);
            let iters: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);
            let cfg = table1::Table1Config {
                seeds: (1..=seeds).collect(),
                iters,
                sim,
                ..Default::default()
            };
            let r = if parallel {
                table1::run_table1_par(&cfg)
            } else {
                table1::run_table1(&cfg)
            };
            writeln!(
                out,
                "Table 1(a): percentage parallelism, ours (x) vs DOACROSS, k = {}, {} PEs, {} iterations\n",
                cfg.k, cfg.procs, cfg.iters
            )
            .unwrap();
            writeln!(out, "{}", r.render_rows()).unwrap();
            writeln!(out, "Table 1(b): averages\n").unwrap();
            writeln!(out, "{}", r.render_summary()).unwrap();
        }
        Some("ablate") => match args.get(1).map(String::as_str) {
            Some("arrival") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::arrival_ablation_par(&seeds, 3, 8)
                } else {
                    ablate::arrival_ablation(&seeds, 3, 8)
                };
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("detector") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::detector_ablation_par(&seeds, 3, 8)
                } else {
                    ablate::detector_ablation(&seeds, 3, 8)
                };
                writeln!(
                    out,
                    "state vs window detector: {}/{} loops agree on steady II",
                    r.agreements,
                    r.seeds.len()
                )
                .unwrap();
                for (i, s) in r.seeds.iter().enumerate() {
                    writeln!(
                        out,
                        "  seed {s}: state {:.3}, window {:.3}",
                        r.state_ii[i], r.window_ii[i]
                    )
                    .unwrap();
                }
            }
            Some("misestimate") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::misestimation_ablation_par(&seeds, &[1, 2, 3, 4, 6], 3, 8, 100)
                } else {
                    ablate::misestimation_ablation(&seeds, &[1, 2, 3, 4, 6], 3, 8, 100)
                };
                writeln!(out, "schedule with k_est, execute with actual k = 3:\n").unwrap();
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("comm") => {
                let seeds: Vec<u64> = (1..=10).collect();
                let r = if parallel {
                    ablate::comm_awareness_ablation_par(&seeds, 3, 8, 100)
                } else {
                    ablate::comm_awareness_ablation(&seeds, 3, 8, 100)
                };
                writeln!(
                    out,
                    "schedule with k=3 (aware) vs k=0 (oblivious), execute at k=3:\n"
                )
                .unwrap();
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("contention") => {
                let seeds: Vec<u64> = (1..=8).collect();
                let r = if parallel {
                    ablate::contention_ablation_par_with(&seeds, 3, 8, 100, engine)
                } else {
                    ablate::contention_ablation_with(&seeds, 3, 8, 100, engine)
                };
                writeln!(
                    out,
                    "fully-overlapped links vs one-message-at-a-time links:\n"
                )
                .unwrap();
                writeln!(out, "{}", r.render()).unwrap();
            }
            Some("procs") => {
                for seed in [1u64, 2, 3] {
                    let sweep = ablate::processor_sweep(seed, 3, &[1, 2, 4, 8, 16]);
                    writeln!(out, "seed {seed}: {sweep:?}").unwrap();
                }
            }
            other => {
                writeln!(out, "unknown ablation {other:?} (arrival|detector|misestimate|comm|contention|procs)")
                    .unwrap();
            }
        },
        Some("codegen") => {
            let name = args.get(1).map(String::as_str).unwrap_or("figure7");
            let Some(w) = workload(name) else {
                writeln!(out, "unknown workload {name:?}").unwrap();
                return std::process::ExitCode::FAILURE;
            };
            let r = figures::figure_report(&w, 50);
            match r.code {
                Some(code) => writeln!(out, "{code}").unwrap(),
                None => writeln!(out, "(no single-pattern codegen for {name})").unwrap(),
            }
        }
        Some("schedule") => {
            // Schedule a graph from a text file (see kn_ddg::text for the
            // format): kn-cli schedule <file> [k] [procs] [iters]
            let Some(path) = args.get(1) else {
                writeln!(out, "usage: kn-cli schedule <file> [k] [procs] [iters]").unwrap();
                return std::process::ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    writeln!(out, "cannot read {path}: {e}").unwrap();
                    return std::process::ExitCode::FAILURE;
                }
            };
            let graph = match kn_core::ddg::parse_text(&text) {
                Ok(g) => g,
                Err(e) => {
                    writeln!(out, "parse error: {e}").unwrap();
                    return std::process::ExitCode::FAILURE;
                }
            };
            let k: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
            let procs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);
            let w = wl::Workload {
                name: "file",
                graph,
                k,
                procs,
                description: "user-supplied graph",
            };
            print_figure_workload(&mut out, &w, &sim).unwrap();
        }
        Some("lint") => {
            args.remove(0);
            let code = run_lint(&mut out, &mut args).unwrap();
            out.flush().unwrap();
            return code;
        }
        Some("verify") => {
            args.remove(0);
            let code = run_verify(&mut out, &mut args).unwrap();
            out.flush().unwrap();
            return code;
        }
        Some("transform") => {
            args.remove(0);
            let code = run_transform(&mut out, &mut args).unwrap();
            out.flush().unwrap();
            return code;
        }
        Some("dot") => {
            let name = args.get(1).map(String::as_str).unwrap_or("figure7");
            let Some(w) = workload(name) else {
                writeln!(out, "unknown workload {name:?}").unwrap();
                return std::process::ExitCode::FAILURE;
            };
            let classes = kn_core::ddg::classify(&w.graph);
            writeln!(
                out,
                "{}",
                kn_core::ddg::dot::to_dot(&w.graph, Some(&classes))
            )
            .unwrap();
        }
        _ => {
            writeln!(
                out,
                "usage: kn-cli [--seq] [--link unlimited|single] [--engine heap|calendar] \
                 <figure [n|all] | figure8 | table1 [seeds] [iters] | \
                 ablate <axis> | codegen <workload> | schedule <file> [k] [procs] | \
                 lint <file> [--json] [--annotate OUT.dot] | \
                 verify <file> [--scheduler cyclic|doacross|doacross-best] \
                 [--procs N] [--k N] [--iters N] [--json] | \
                 transform <file.ir|workload> [--fission] [--reduce] [--json] \
                 [--emit-dir DIR] | \
                 dot <workload> | \
                 serve [--workers N] [--requests FILE] [--out FILE] [--stats FILE] \
                 [--listen ADDR] [--queue-capacity N] [--max-attempts N] \
                 [--high-water N] [--deadline-ms MS] \
                 [--fault-seed S] [--fault-rate PCT] \
                 [--cache-capacity N] [--no-cache]>\n\
                 \n\
                 serve: batch scheduling service — requests are key=value lines \
                 (corpus=NAME | ddg=FILE, k=, procs=, iters=, link=, engine=, \
                 scheduler=cyclic|doacross|doacross-best, transform=off|fission|reduce|all, \
                 mm=, seed=, deadline_ms=, \
                 priority=high|normal|low) \
                 from --requests or stdin; responses are JSON lines in request order, \
                 deterministic for any --workers; --stats writes the throughput JSON; \
                 --listen serves the same protocol over TCP (with --requests: replay \
                 the file through the socket, then shut down gracefully). \
                 See `kn serve --help`."
            )
            .unwrap();
            return std::process::ExitCode::FAILURE;
        }
    }
    std::process::ExitCode::SUCCESS
}
