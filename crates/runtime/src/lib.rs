#![forbid(unsafe_code)]
//! # kn-runtime — real threaded execution of scheduled loops
//!
//! The paper evaluates on a simulated multiprocessor; this crate goes one
//! step further and *runs* a scheduled [`Program`] on OS threads — one
//! thread per processor, values flowing through mpsc channels exactly
//! where the schedule has a cross-processor dependence edge. It serves two
//! purposes:
//!
//! 1. **semantic validation** — a schedule is only correct if the parallel
//!    execution computes the same values as the sequential loop; the test
//!    suite checks bit-identical results against the sequential
//!    interpreter for every workload and for randomized loops;
//! 2. **a demonstration** that the paper's transformed loops (per-processor
//!    subloops with sends/receives, Figures 7(e)/10) are directly
//!    executable on a real MIMD machine (a multicore host).
//!
//! ## Value model
//!
//! Each node computes one `u64` per iteration: `v = f(iter, inputs)` where
//! `inputs` are the values of its dependence predecessors, **in edge
//! declaration order**. A predecessor from before iteration 0 (distance
//! running off the front of the loop) contributes a per-node boundary
//! value — the loop's "initial array contents". Both engines use the same
//! convention, so results are comparable bit for bit.

pub mod from_ir;

pub use from_ir::{semantics_from_ir, FromIrError};

use kn_ddg::{intra_topo_order, Ddg, InstanceId, NodeId};
use kn_sched::{Program, ProgramError};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-node computation: `f(iteration, operand values) -> value`.
pub type NodeFn = Arc<dyn Fn(u32, &[u64]) -> u64 + Send + Sync>;

/// Node semantics for a whole graph.
#[derive(Clone)]
pub struct Semantics {
    fns: Vec<NodeFn>,
}

impl Semantics {
    /// Build from explicit per-node functions (indexed by `NodeId`).
    pub fn new(fns: Vec<NodeFn>) -> Self {
        Self { fns }
    }

    /// Default semantics: a strong hash of `(node, iteration, operands…)`.
    /// Any scheduling error — wrong operand, wrong iteration, wrong order —
    /// changes downstream values with overwhelming probability, which is
    /// exactly what a validation oracle wants.
    pub fn hashing(g: &Ddg) -> Self {
        let fns = g
            .node_ids()
            .map(|v| {
                let id = v.0 as u64;
                let f: NodeFn = Arc::new(move |iter, inputs| {
                    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ id.wrapping_mul(0x100_0000_01b3);
                    h = mix(h, iter as u64);
                    for &x in inputs {
                        h = mix(h, x);
                    }
                    h
                });
                f
            })
            .collect();
        Self { fns }
    }

    /// The boundary value standing in for `(node, iteration < 0)` operands.
    pub fn boundary(node: NodeId) -> u64 {
        (node.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Evaluate node `node` at iteration `iter` on operand values `inputs`.
    pub fn eval(&self, node: NodeId, iter: u32, inputs: &[u64]) -> u64 {
        (self.fns[node.index()])(iter, inputs)
    }
}

#[inline]
fn mix(h: u64, x: u64) -> u64 {
    let mut z = h ^ x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = z.rotate_left(31).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 29)
}

/// Errors from the threaded executor.
#[derive(Debug)]
pub enum RuntimeError {
    /// The program failed validation before any thread was spawned.
    Program(ProgramError),
    /// A worker thread panicked.
    WorkerPanic,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Program(e) => write!(f, "invalid program: {e}"),
            RuntimeError::WorkerPanic => write!(f, "worker thread panicked"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ProgramError> for RuntimeError {
    fn from(e: ProgramError) -> Self {
        RuntimeError::Program(e)
    }
}

/// All values computed by a run, keyed by `(node, iteration)`.
pub type Values = HashMap<(NodeId, u32), u64>;

/// Gather a node instance's operand values. `lookup` resolves an in-range
/// predecessor instance to its value.
fn gather_inputs(g: &Ddg, inst: InstanceId, mut lookup: impl FnMut(InstanceId) -> u64) -> Vec<u64> {
    let mut inputs = Vec::with_capacity(g.in_degree(inst.node));
    for (_, e) in g.in_edges(inst.node) {
        if e.distance > inst.iter {
            inputs.push(Semantics::boundary(e.src));
        } else {
            inputs.push(lookup(InstanceId {
                node: e.src,
                iter: inst.iter - e.distance,
            }));
        }
    }
    inputs
}

/// Reference engine: execute the loop sequentially, iteration by
/// iteration, statements in intra-iteration topological order.
pub fn run_sequential(g: &Ddg, sem: &Semantics, iters: u32) -> Values {
    let order = intra_topo_order(g).expect("validated graph");
    let mut values: Values = HashMap::with_capacity(g.node_count() * iters as usize);
    for i in 0..iters {
        for &v in &order {
            let inst = InstanceId { node: v, iter: i };
            let inputs = gather_inputs(g, inst, |p| values[&(p.node, p.iter)]);
            values.insert((v, i), sem.eval(v, i, &inputs));
        }
    }
    values
}

/// Execute a scheduled program on real threads — one per processor, values
/// crossing processors through channels. Blocks until completion.
///
/// The program is validated first (feasible order) so the thread phase
/// cannot deadlock. Predecessor instances that are not part of the program
/// contribute their boundary value (only relevant when executing a subset
/// program, e.g. a Cyclic core in isolation).
pub fn run_threaded(g: &Ddg, sem: &Semantics, prog: &Program) -> Result<Values, RuntimeError> {
    // A deadlocking order would hang real threads; reject it up front using
    // the static timing oracle (costs are irrelevant for feasibility).
    let probe = kn_sched::MachineConfig::new(prog.processors().max(1), 1);
    kn_sched::static_times(prog, g, &probe)?;

    let assign = prog.assignment();
    let nprocs = prog.processors();
    type Msg = ((u32, u32), u64);
    let mut senders = Vec::with_capacity(nprocs);
    let mut receivers = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let (s, r) = std::sync::mpsc::channel::<Msg>();
        senders.push(s);
        receivers.push(r);
    }

    let results = std::thread::scope(|scope| -> Result<Vec<Values>, RuntimeError> {
        let mut handles = Vec::with_capacity(nprocs);
        for (p, receiver) in receivers.into_iter().enumerate() {
            let seq = &prog.seqs[p];
            let senders = senders.clone();
            let assign = &assign;
            let sem = sem.clone();
            handles.push(scope.spawn(move || -> Values {
                let mut local: Values = HashMap::with_capacity(seq.len());
                let mut inbox: HashMap<(u32, u32), u64> = HashMap::new();
                for &inst in seq {
                    let inputs = gather_inputs(g, inst, |pred| match assign.get(&pred) {
                        None => Semantics::boundary(pred.node),
                        Some(&pp) if pp == p => local[&(pred.node, pred.iter)],
                        Some(_) => {
                            let key = (pred.node.0, pred.iter);
                            loop {
                                if let Some(&v) = inbox.get(&key) {
                                    break v;
                                }
                                let (k, v) =
                                    receiver.recv().expect("sender alive while values pending");
                                inbox.insert(k, v);
                            }
                        }
                    });
                    let value = sem.eval(inst.node, inst.iter, &inputs);
                    local.insert((inst.node, inst.iter), value);
                    // Forward to every distinct remote consumer processor.
                    let mut sent: Vec<usize> = Vec::new();
                    for (_, e) in g.out_edges(inst.node) {
                        let succ = InstanceId {
                            node: e.dst,
                            iter: inst.iter + e.distance,
                        };
                        if let Some(&sp) = assign.get(&succ) {
                            if sp != p && !sent.contains(&sp) {
                                sent.push(sp);
                                senders[sp]
                                    .send(((inst.node.0, inst.iter), value))
                                    .expect("receiver alive");
                            }
                        }
                    }
                }
                local
            }));
        }
        drop(senders);
        let mut out = Vec::with_capacity(nprocs);
        for h in handles {
            out.push(h.join().map_err(|_| RuntimeError::WorkerPanic)?);
        }
        Ok(out)
    })?;

    let mut merged: Values = HashMap::with_capacity(prog.len());
    for part in results {
        merged.extend(part);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::DdgBuilder;
    use kn_sched::{cyclic_schedule, CyclicOptions, MachineConfig, ScheduleTable};

    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    fn pattern_program(g: &Ddg, m: &MachineConfig, iters: u32) -> Program {
        let out = cyclic_schedule(g, m, &CyclicOptions::default()).unwrap();
        ScheduleTable::new(out.instantiate(iters)).to_program(iters)
    }

    #[test]
    fn threaded_matches_sequential_on_figure7() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let iters = 200;
        let prog = pattern_program(&g, &m, iters);
        let sem = Semantics::hashing(&g);
        let seq = run_sequential(&g, &sem, iters);
        let par = run_threaded(&g, &sem, &prog).unwrap();
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq, par, "parallel execution must be bit-identical");
    }

    #[test]
    fn real_arithmetic_semantics() {
        // Figure 7 with actual arithmetic: A[i] = A[i-1] * E[i-1] etc.
        // (wrapping u64), checked against the sequential interpreter and a
        // hand-rolled value for iteration 0.
        let g = figure7();
        let fns: Vec<NodeFn> = vec![
            // A: inputs in edge order: A(d1), E(d1)
            Arc::new(|_, x: &[u64]| x[0].wrapping_mul(x[1])),
            // B: input A
            Arc::new(|_, x: &[u64]| x[0]),
            // C: input B
            Arc::new(|_, x: &[u64]| x[0]),
            // D: inputs D(d1), C(d1)
            Arc::new(|_, x: &[u64]| x[0].wrapping_mul(x[1]).wrapping_add(1)),
            // E: input D
            Arc::new(|_, x: &[u64]| x[0]),
        ];
        let sem = Semantics::new(fns);
        let m = MachineConfig::new(2, 2);
        let iters = 50;
        let prog = pattern_program(&g, &m, iters);
        let par = run_threaded(&g, &sem, &prog).unwrap();
        let seq = run_sequential(&g, &sem, iters);
        assert_eq!(par, seq);
        let a0 = Semantics::boundary(NodeId(0)).wrapping_mul(Semantics::boundary(NodeId(4)));
        assert_eq!(par[&(NodeId(0), 0)], a0);
    }

    #[test]
    fn boundary_values_are_stable_per_node() {
        assert_eq!(
            Semantics::boundary(NodeId(3)),
            Semantics::boundary(NodeId(3))
        );
        assert_ne!(
            Semantics::boundary(NodeId(3)),
            Semantics::boundary(NodeId(4))
        );
    }

    #[test]
    fn single_processor_program_runs() {
        let g = figure7();
        let m = MachineConfig::new(1, 2);
        let iters = 30;
        let prog = pattern_program(&g, &m, iters);
        let sem = Semantics::hashing(&g);
        assert_eq!(
            run_threaded(&g, &sem, &prog).unwrap(),
            run_sequential(&g, &sem, iters)
        );
    }

    #[test]
    fn many_processor_doall_runs() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        let iters = 64;
        // Hand-built program: x on P0..P3 round robin, y two procs over to
        // force communication on every edge.
        let mut seqs = vec![Vec::new(); 4];
        for i in 0..iters {
            seqs[(i % 4) as usize].push(InstanceId { node: x, iter: i });
            seqs[((i + 2) % 4) as usize].push(InstanceId { node: y, iter: i });
        }
        let prog = Program { seqs, iters };
        let sem = Semantics::hashing(&g);
        assert_eq!(
            run_threaded(&g, &sem, &prog).unwrap(),
            run_sequential(&g, &sem, iters)
        );
    }

    #[test]
    fn deadlocking_program_rejected_before_spawning() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        let prog = Program {
            seqs: vec![vec![
                InstanceId { node: y, iter: 0 },
                InstanceId { node: x, iter: 0 },
            ]],
            iters: 1,
        };
        let sem = Semantics::hashing(&g);
        assert!(matches!(
            run_threaded(&g, &sem, &prog),
            Err(RuntimeError::Program(ProgramError::Deadlock { .. }))
        ));
    }

    #[test]
    fn subset_program_uses_boundaries_for_missing_preds() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        // Program contains only y: its x operand falls back to boundary.
        let prog = Program {
            seqs: vec![vec![InstanceId { node: y, iter: 0 }]],
            iters: 1,
        };
        let sem = Semantics::hashing(&g);
        let vals = run_threaded(&g, &sem, &prog).unwrap();
        let expect = sem.eval(y, 0, &[Semantics::boundary(x)]);
        assert_eq!(vals[&(y, 0)], expect);
    }

    #[test]
    fn hashing_semantics_sensitive_to_operand_order() {
        let g = figure7();
        let sem = Semantics::hashing(&g);
        let a = sem.eval(NodeId(0), 0, &[1, 2]);
        let b = sem.eval(NodeId(0), 0, &[2, 1]);
        assert_ne!(a, b);
    }
}
