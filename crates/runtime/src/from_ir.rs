//! Deriving runtime semantics from the `kn-ir` front end.
//!
//! A loop lowered by `kn_ir::lower_loop` carries full expression trees, so
//! the runtime can evaluate the *actual program* — real arithmetic, not
//! hashes — and verify that the parallel schedule computes exactly what
//! the sequential loop computes.
//!
//! The derivation maps every syntactic read of statement `t` to either
//! * a **dataflow input**: the position of the flow edge `(def → t, d)` in
//!   `t`'s dependence-input vector, or
//! * an **external read**: an array never written in the loop (or a read
//!   that precedes every in-loop write of its element), valued by the
//!   reproducible per-element hash `kn_ir::external_value`.
//!
//! Limitations (checked, not assumed): guarded (if-converted) assignments
//! and multiple static definitions of one array/scalar are not supported —
//! use [`crate::Semantics::hashing`] for those.

use crate::{NodeFn, Semantics};
use kn_ddg::Ddg;
use kn_ir::{eval_expr, external_value, EvalContext, GuardedAssign, Target};
use std::collections::HashMap;
use std::sync::Arc;

/// Why semantics could not be derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FromIrError {
    /// Statement count does not match the graph's node count.
    ShapeMismatch { nodes: usize, stmts: usize },
    /// Guarded assignments (if-converted bodies) are not supported.
    Guarded(usize),
    /// Two statements define the same array/scalar.
    MultipleDefs(String),
    /// A read's flow producer has no corresponding dependence edge — the
    /// graph was not produced by `lower_loop` on this body.
    MissingEdge { stmt: usize, var: String },
}

impl std::fmt::Display for FromIrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FromIrError::ShapeMismatch { nodes, stmts } => {
                write!(f, "{nodes} graph nodes vs {stmts} statements")
            }
            FromIrError::Guarded(i) => write!(f, "statement {i} is guarded (if-converted)"),
            FromIrError::MultipleDefs(v) => write!(f, "multiple definitions of {v}"),
            FromIrError::MissingEdge { stmt, var } => {
                write!(f, "statement {stmt}: no flow edge for read of {var}")
            }
        }
    }
}

impl std::error::Error for FromIrError {}

/// Where a syntactic read gets its value.
#[derive(Clone, Copy, Debug)]
enum Source {
    /// `inputs[pos]` of the node's dependence-input vector.
    Input(usize),
    /// Pre-loop memory, hashed per element.
    External,
}

/// Derive per-node value functions from the lowered body. `flat` must be
/// the statement list returned by `kn_ir::lower_loop` for the same graph.
pub fn semantics_from_ir(g: &Ddg, flat: &[GuardedAssign]) -> Result<Semantics, FromIrError> {
    if g.node_count() != flat.len() {
        return Err(FromIrError::ShapeMismatch {
            nodes: g.node_count(),
            stmts: flat.len(),
        });
    }
    if let Some(i) = flat.iter().position(|ga| !ga.unconditional()) {
        return Err(FromIrError::Guarded(i));
    }

    // Single static definition per location class.
    let mut array_def: HashMap<&str, (usize, i32)> = HashMap::new();
    let mut scalar_def: HashMap<&str, usize> = HashMap::new();
    for (i, ga) in flat.iter().enumerate() {
        match &ga.assign.target {
            Target::Array { array, offset } => {
                if array_def.insert(array, (i, *offset)).is_some() {
                    return Err(FromIrError::MultipleDefs(array.clone()));
                }
            }
            Target::Scalar(s) => {
                if scalar_def.insert(s, i).is_some() {
                    return Err(FromIrError::MultipleDefs(s.clone()));
                }
            }
        }
    }

    let mut fns: Vec<NodeFn> = Vec::with_capacity(flat.len());
    for (t, ga) in flat.iter().enumerate() {
        let node = kn_ddg::NodeId(t as u32);
        // Input-vector position of each in-edge, keyed by (src node, dist).
        let mut edge_pos: HashMap<(u32, u32), usize> = HashMap::new();
        for (pos, (_, e)) in g.in_edges(node).enumerate() {
            edge_pos.entry((e.src.0, e.distance)).or_insert(pos);
        }

        // Resolve array reads.
        let mut array_src: HashMap<(String, i32), Source> = HashMap::new();
        for (a, ro) in ga.assign.rhs.array_reads() {
            let src = match array_def.get(a) {
                None => Source::External,
                Some(&(s, def_off)) => {
                    let d = def_off as i64 - ro as i64;
                    if d < 0 || (s >= t && d == 0) {
                        // Future write (anti), or a same-iteration element
                        // whose write comes textually at-or-after this read
                        // (each element is written exactly once, so the
                        // read sees pre-loop memory).
                        Source::External
                    } else {
                        let pos = edge_pos.get(&(s as u32, d as u32)).copied().ok_or(
                            FromIrError::MissingEdge {
                                stmt: t,
                                var: a.to_string(),
                            },
                        )?;
                        Source::Input(pos)
                    }
                }
            };
            array_src.insert((a.to_string(), ro), src);
        }
        // Resolve scalar reads.
        let mut scalar_src: HashMap<String, Source> = HashMap::new();
        for sname in ga.assign.rhs.scalar_reads() {
            let src =
                match scalar_def.get(sname) {
                    None => Source::External,
                    Some(&s) => {
                        // Textual def-before-use reads this iteration's value
                        // (distance 0); use-before-def reads last iteration's.
                        let d = if s < t { 0u32 } else { 1 };
                        let pos = edge_pos.get(&(s as u32, d)).copied().ok_or(
                            FromIrError::MissingEdge {
                                stmt: t,
                                var: sname.to_string(),
                            },
                        )?;
                        Source::Input(pos)
                    }
                };
            scalar_src.insert(sname.to_string(), src);
        }

        let rhs = ga.assign.rhs.clone();
        let f: NodeFn = Arc::new(move |iter, inputs| {
            struct Ctx<'a> {
                arrays: &'a HashMap<(String, i32), Source>,
                scalars: &'a HashMap<String, Source>,
                inputs: &'a [u64],
                iter: u32,
            }
            impl EvalContext for Ctx<'_> {
                fn array(&mut self, array: &str, offset: i32) -> u64 {
                    match self.arrays[&(array.to_string(), offset)] {
                        Source::Input(pos) => self.inputs[pos],
                        Source::External => external_value(array, self.iter as i64 + offset as i64),
                    }
                }
                fn scalar(&mut self, name: &str) -> u64 {
                    match self.scalars[name] {
                        Source::Input(pos) => self.inputs[pos],
                        Source::External => external_value(name, 0),
                    }
                }
            }
            eval_expr(
                &rhs,
                &mut Ctx {
                    arrays: &array_src,
                    scalars: &scalar_src,
                    inputs,
                    iter,
                },
            )
        });
        fns.push(f);
    }
    Ok(Semantics::new(fns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_sequential, run_threaded};
    use kn_ir::{arr, arr_at, assign, binop, lower_loop, BinOp, LoopBody};
    use kn_sched::{cyclic_schedule, CyclicOptions, MachineConfig, ScheduleTable};

    fn figure7_ir() -> (Ddg, Vec<GuardedAssign>) {
        let body = LoopBody::new(vec![
            assign(
                "A",
                "A",
                0,
                binop(BinOp::Mul, arr_at("A", -1), arr_at("E", -1)),
            ),
            assign("B", "B", 0, arr("A")),
            assign("C", "C", 0, arr("B")),
            assign(
                "D",
                "D",
                0,
                binop(BinOp::Mul, arr_at("D", -1), arr_at("C", -1)),
            ),
            assign("E", "E", 0, arr("D")),
        ]);
        lower_loop(&body, &Default::default()).unwrap()
    }

    #[test]
    fn figure7_parallel_matches_sequential_numerically() {
        let (g, flat) = figure7_ir();
        let sem = semantics_from_ir(&g, &flat).unwrap();
        let m = MachineConfig::new(2, 2);
        let iters = 100;
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let prog = ScheduleTable::new(out.instantiate(iters)).to_program(iters);
        let par = run_threaded(&g, &sem, &prog).unwrap();
        let seq = run_sequential(&g, &sem, iters);
        assert_eq!(par, seq);
    }

    #[test]
    fn external_arrays_read_reproducible_memory() {
        // S: Y[I] = X[I-2] + 1   (X never written in the loop)
        let body = LoopBody::new(vec![assign(
            "S",
            "Y",
            0,
            binop(BinOp::Add, arr_at("X", -2), kn_ir::c(1)),
        )]);
        let (g, flat) = lower_loop(&body, &Default::default()).unwrap();
        let sem = semantics_from_ir(&g, &flat).unwrap();
        let vals = run_sequential(&g, &sem, 3);
        for i in 0..3u32 {
            let expect = external_value("X", i as i64 - 2).wrapping_add(1);
            assert_eq!(vals[&(kn_ddg::NodeId(0), i)], expect);
        }
    }

    #[test]
    fn anti_dependence_reads_preloop_memory() {
        // S0: B[I] = A[I+1]  (reads ahead of S1's write)
        // S1: A[I] = B[I]
        let body = LoopBody::new(vec![
            assign("S0", "B", 0, arr_at("A", 1)),
            assign("S1", "A", 0, arr("B")),
        ]);
        let (g, flat) = lower_loop(&body, &Default::default()).unwrap();
        let sem = semantics_from_ir(&g, &flat).unwrap();
        let vals = run_sequential(&g, &sem, 2);
        // B[0] = pre-loop A[1], even though A[1] is written at iteration 1.
        assert_eq!(vals[&(kn_ddg::NodeId(0), 0)], external_value("A", 1));
    }

    #[test]
    fn guarded_bodies_rejected() {
        use kn_ir::{if_stmt, scalar};
        let body = LoopBody::new(vec![if_stmt(
            binop(BinOp::Gt, scalar("x"), kn_ir::c(0)),
            vec![assign("S", "A", 0, kn_ir::c(1))],
            vec![],
        )]);
        let (g, flat) = lower_loop(&body, &Default::default()).unwrap();
        assert!(matches!(
            semantics_from_ir(&g, &flat),
            Err(FromIrError::Guarded(_))
        ));
    }

    #[test]
    fn multiple_defs_rejected() {
        let body = LoopBody::new(vec![
            assign("S0", "A", 0, kn_ir::c(1)),
            assign("S1", "A", -1, kn_ir::c(2)),
        ]);
        let (g, flat) = lower_loop(&body, &Default::default()).unwrap();
        assert!(matches!(
            semantics_from_ir(&g, &flat),
            Err(FromIrError::MultipleDefs(_))
        ));
    }

    #[test]
    fn scalar_recurrence_evaluates() {
        use kn_ir::{assign_scalar, scalar};
        // S0: B[I] = s + 1   (s read before written: carried)
        // S1: s = B[I]
        let body = LoopBody::new(vec![
            assign("S0", "B", 0, binop(BinOp::Add, scalar("s"), kn_ir::c(1))),
            assign_scalar("S1", "s", arr("B")),
        ]);
        let (g, flat) = lower_loop(&body, &Default::default()).unwrap();
        let sem = semantics_from_ir(&g, &flat).unwrap();
        let vals = run_sequential(&g, &sem, 3);
        let b0 = vals[&(kn_ddg::NodeId(0), 0)];
        let b1 = vals[&(kn_ddg::NodeId(0), 1)];
        assert_eq!(b1, b0.wrapping_add(1), "B grows by one per iteration");
    }
}
