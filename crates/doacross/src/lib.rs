#![forbid(unsafe_code)]
//! # kn-doacross — the DOACROSS baseline (Cytron 1986)
//!
//! The iteration-pipelining technique the paper compares against:
//! iterations are interleaved over `p` processors (`iteration i` runs on
//! processor `i mod p`), each iteration executes the loop body *serially*
//! in a fixed statement order, and loop-carried dependences become
//! cross-processor synchronization. All parallelism inside an iteration is
//! ignored — the unit of scheduling is the whole iteration, which is
//! exactly the limitation the paper's technique removes (§1).
//!
//! Includes the paper's "optimal reordering" variant (Figure 8(b)): the
//! body statement order is chosen to minimize the pipeline delay, by
//! exhaustive search over topological orders when the body is small and by
//! a delay-driven heuristic otherwise. "In general, optimal reordering of
//! nodes is NP-hard" (paper §3, citing Cytron).
//!
//! DOACROSS does not require dependence distances to be normalized; any
//! distance is handled by the synchronization.

use kn_ddg::{all_intra_topo_orders, intra_topo_order, Ddg, InstanceId, NodeId};
use kn_sched::{static_times, Cycle, MachineConfig, Program, ProgramError, TimedProgram};

/// How the loop body is ordered inside each iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reorder {
    /// The natural (smallest-node-id topological) statement order — how the
    /// programmer wrote the loop.
    Natural,
    /// A caller-supplied order (must be a topological order of the
    /// distance-0 subgraph).
    Fixed(Vec<NodeId>),
    /// Minimize the pipeline delay: exhaustive over topological orders when
    /// there are at most `exhaustive_cap` of them, else the delay-driven
    /// heuristic.
    Best { exhaustive_cap: usize },
}

impl Default for Reorder {
    fn default() -> Self {
        Reorder::Best {
            exhaustive_cap: 5040,
        }
    }
}

/// Options for [`doacross_schedule`].
#[derive(Clone, Debug, Default)]
pub struct DoacrossOptions {
    pub reorder: Reorder,
    /// Optional static certification hook, run on the timed program before
    /// it is returned. `kn-verify` provides `certify_timed_hook`; `kn-core`
    /// installs it in debug builds.
    pub certify: Option<CertifyTimedHook>,
}

/// Signature of the [`DoacrossOptions::certify`] hook.
pub type CertifyTimedHook = fn(&Ddg, &MachineConfig, &TimedProgram) -> Result<(), String>;

/// A complete DOACROSS schedule.
#[derive(Clone, Debug)]
pub struct DoacrossSchedule {
    /// The statement order used in every iteration.
    pub body_order: Vec<NodeId>,
    /// Per-processor iteration-interleaved program.
    pub program: Program,
    /// Static timing under estimated communication costs.
    pub timing: TimedProgram,
    /// The compile-time pipeline delay of `body_order` (see [`delay`]).
    pub delay: Cycle,
}

impl DoacrossSchedule {
    /// Completion time under estimated costs.
    pub fn makespan(&self) -> Cycle {
        self.timing.makespan
    }
}

/// Build the DOACROSS program: processor `j` executes iterations
/// `j, j+p, j+2p, …`, each as the serial statement sequence `order`.
pub fn doacross_program(order: &[NodeId], processors: usize, iters: u32) -> Program {
    let mut seqs: Vec<Vec<InstanceId>> = vec![Vec::new(); processors];
    for i in 0..iters {
        let p = i as usize % processors;
        for &n in order {
            seqs[p].push(InstanceId { node: n, iter: i });
        }
    }
    Program { seqs, iters }
}

/// Cytron's compile-time pipeline delay for a body order: the minimum
/// stagger `d` between the starts of consecutive iterations such that every
/// loop-carried dependence is satisfied, assuming consecutive iterations
/// run on different processors (the worst — and for `p ≥ 2` the typical —
/// placement) and charging the machine's estimated communication cost.
///
/// `start_{i+dist}(v) ≥ finish_i(u) + comm` with `start_i(x) = i*d + off(x)`
/// gives `d ≥ (ready(u) - off(v)) / dist` per edge.
pub fn delay(g: &Ddg, order: &[NodeId], m: &MachineConfig) -> Cycle {
    let mut off = vec![0 as Cycle; g.node_count()];
    let mut t = 0;
    for &n in order {
        off[n.index()] = t;
        t += g.latency(n) as Cycle;
    }
    let mut d = 0 as Cycle;
    for (_, e) in g.carried_edges() {
        let fin = off[e.src.index()] + g.latency(e.src) as Cycle;
        let ready = m.remote_ready(fin, m.edge_cost(e));
        let need = ready.saturating_sub(off[e.dst.index()]);
        // Distance > 1 spreads the slack over `distance` iteration gaps.
        d = d.max(need.div_ceil(e.distance as Cycle));
    }
    d
}

/// The delay-driven heuristic order: a topological order of the distance-0
/// subgraph that schedules loop-carried *consumers* as early and
/// loop-carried *producers* as late as dependences allow, shrinking
/// `ready(src) - off(dst)` for every carried edge.
pub fn heuristic_order(g: &Ddg) -> Vec<NodeId> {
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for v in g.node_ids() {
        indeg[v.index()] = g.intra_in_degree(v);
    }
    // Priority: nodes feeding carried edges late (+), nodes consuming
    // carried values early (-). Ties by node id for determinism.
    let weight = |v: NodeId| -> i64 {
        let mut w = 0i64;
        for (_, e) in g.out_edges(v) {
            if e.distance >= 1 {
                w += g.latency(v) as i64;
            }
        }
        for (_, e) in g.in_edges(v) {
            if e.distance >= 1 {
                w -= g.latency(e.src) as i64;
            }
        }
        w
    };
    let mut ready: Vec<NodeId> = g.node_ids().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        // Smallest weight first (consumers early, producers late).
        let (pos, _) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| (weight(v), v.0))
            .expect("nonempty");
        let v = ready.swap_remove(pos);
        order.push(v);
        for (_, e) in g.out_edges(v) {
            if e.distance == 0 {
                let d = e.dst.index();
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    ready.push(e.dst);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Pick the body order according to `reorder`, minimizing [`delay`]
/// (ties broken toward the natural order).
pub fn choose_order(g: &Ddg, m: &MachineConfig, reorder: &Reorder) -> Vec<NodeId> {
    match reorder {
        Reorder::Natural => intra_topo_order(g).expect("validated graph"),
        Reorder::Fixed(order) => order.clone(),
        Reorder::Best { exhaustive_cap } => {
            let natural = intra_topo_order(g).expect("validated graph");
            let candidates = all_intra_topo_orders(g, *exhaustive_cap + 1);
            if candidates.len() <= *exhaustive_cap {
                candidates
                    .into_iter()
                    .min_by_key(|o| delay(g, o, m))
                    .unwrap_or(natural)
            } else {
                // Too many orders: compare natural vs heuristic.
                let h = heuristic_order(g);
                if delay(g, &h, m) < delay(g, &natural, m) {
                    h
                } else {
                    natural
                }
            }
        }
    }
}

/// Build and statically time a DOACROSS schedule for `iters` iterations on
/// `m.processors` processors.
pub fn doacross_schedule(
    g: &Ddg,
    m: &MachineConfig,
    iters: u32,
    opts: &DoacrossOptions,
) -> Result<DoacrossSchedule, ProgramError> {
    let body_order = choose_order(g, m, &opts.reorder);
    let program = doacross_program(&body_order, m.processors, iters);
    program.check_complete(g)?;
    let timing = static_times(&program, g, m)?;
    if let Some(certify) = opts.certify {
        certify(g, m, &timing).map_err(ProgramError::Certify)?;
    }
    let d = delay(g, &body_order, m);
    Ok(DoacrossSchedule {
        body_order,
        program,
        timing,
        delay: d,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::DdgBuilder;
    use kn_sched::ScheduleTable;

    /// Paper Figure 7 loop.
    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    /// A DOALL loop (no carried edges).
    fn doall() -> Ddg {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        b.build().unwrap()
    }

    #[test]
    fn figure7_doacross_is_fully_serial() {
        // Paper Figure 8: the (E, A) carried chain plus sync cost leaves no
        // pipelining; DOACROSS time equals sequential time (Sp = 0) even
        // with optimal reordering.
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let iters = 10;
        let seq = g.body_latency() * iters as u64;
        for reorder in [
            Reorder::Natural,
            Reorder::Best {
                exhaustive_cap: 5040,
            },
        ] {
            let s = doacross_schedule(
                &g,
                &m,
                iters,
                &DoacrossOptions {
                    reorder,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                s.makespan() >= seq,
                "DOACROSS cannot beat sequential here: {} < {seq}",
                s.makespan()
            );
        }
    }

    #[test]
    fn figure7_delay_is_at_least_body_latency() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let natural = intra_topo_order(&g).unwrap();
        // A is first, E is last; E -> A carried with k=2 forces the next
        // iteration to start after the whole body plus comm slack.
        assert!(delay(&g, &natural, &m) >= g.body_latency());
    }

    #[test]
    fn doall_speedup_near_processor_count() {
        let g = doall();
        let m = MachineConfig::new(4, 2);
        let iters = 40;
        let s = doacross_schedule(&g, &m, iters, &DoacrossOptions::default()).unwrap();
        let seq = g.body_latency() * iters as u64;
        // No carried deps: iterations perfectly parallel over 4 procs.
        assert_eq!(s.makespan(), seq / 4);
        assert_eq!(s.delay, 0);
    }

    #[test]
    fn program_round_robins_iterations() {
        let g = doall();
        let prog = doacross_program(&intra_topo_order(&g).unwrap(), 3, 7);
        assert_eq!(prog.processors(), 3);
        assert_eq!(prog.seqs[0].len(), 3 * 2); // iterations 0,3,6
        assert_eq!(prog.seqs[1].len(), 2 * 2); // iterations 1,4
        assert_eq!(prog.seqs[0][0].iter, 0);
        assert_eq!(prog.seqs[0][2].iter, 3);
    }

    #[test]
    fn schedule_validates_against_machine_model() {
        let g = figure7();
        let m = MachineConfig::new(3, 2);
        let s = doacross_schedule(&g, &m, 9, &DoacrossOptions::default()).unwrap();
        ScheduleTable::from_timed(&s.timing)
            .validate(&g, &m)
            .unwrap();
        assert_eq!(s.program.len(), 9 * g.node_count());
    }

    #[test]
    fn reordering_helps_when_it_can() {
        // u (producer of carried value) naturally sits last; v (consumer)
        // first. With u early / v late the delay shrinks.
        //   order-sensitive: w1 w2 u? Let's build: v consumes u's carried
        //   value; u and v are independent within an iteration; filler w
        //   extends the body.
        let mut b = DdgBuilder::new();
        let u = b.node_lat("u", 1);
        let v = b.node_lat("v", 1);
        let w = b.node_lat("w", 4);
        b.carried(u, v);
        let g = b.build().unwrap();
        let m = MachineConfig::new(4, 1);
        let natural = intra_topo_order(&g).unwrap(); // u v w by id
        let bad = vec![w, u, v]; // u late, v early next iteration? v at off 5
        let best = choose_order(
            &g,
            &m,
            &Reorder::Best {
                exhaustive_cap: 100,
            },
        );
        assert!(delay(&g, &best, &m) <= delay(&g, &natural, &m));
        assert!(delay(&g, &best, &m) <= delay(&g, &bad, &m));
        // Optimal: u first (fin 1), v last (off 5): delay = max(0, 1-5) = 0.
        assert_eq!(delay(&g, &best, &m), 0);
        let _ = (u, v);
    }

    #[test]
    fn heuristic_order_is_topological() {
        let g = figure7();
        let order = heuristic_order(&g);
        assert_eq!(order.len(), g.node_count());
        let mut pos = vec![0usize; g.node_count()];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (_, e) in g.intra_edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn delay_spreads_over_distance() {
        // u -> v carried at distance 2: the slack amortizes over two
        // iteration gaps.
        let mut b = DdgBuilder::new();
        let u = b.node_lat("u", 6);
        let v = b.node("v");
        b.dep_dist(u, v, 2);
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 1);
        let order = vec![u, v];
        // off(u)=0 fin 6, remote ready 6; off(v)=6 -> need 0 -> d=0.
        assert_eq!(delay(&g, &order, &m), 0);
        let order = vec![v, u];
        // off(v)=0; u fin 7, ready 7; need 7 over 2 gaps -> ceil(7/2)=4.
        assert_eq!(delay(&g, &order, &m), 4);
    }

    #[test]
    fn single_processor_doacross_is_sequential() {
        let g = figure7();
        let m = MachineConfig::new(1, 2);
        let s = doacross_schedule(&g, &m, 6, &DoacrossOptions::default()).unwrap();
        assert_eq!(s.makespan(), 6 * g.body_latency());
    }

    #[test]
    fn unnormalized_distances_supported() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.dep_dist(x, x, 3);
        let g = b.build().unwrap();
        let m = MachineConfig::new(3, 1);
        let s = doacross_schedule(&g, &m, 9, &DoacrossOptions::default()).unwrap();
        ScheduleTable::from_timed(&s.timing)
            .validate(&g, &m)
            .unwrap();
        // Distance 3 means iterations {0,1,2} are independent: with 3
        // processors the chain advances 3 iterations per latency.
        assert_eq!(s.makespan(), 3);
    }
}
