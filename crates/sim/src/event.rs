//! Event-driven simulator with an explicit interconnect model.
//!
//! The paper assumes **fully overlapped** communication — any number of
//! messages in flight, no link contention (§4). That is exactly
//! [`crate::simulate`]. This module generalizes the machine with a
//! discrete-event engine whose links can instead carry **one message at a
//! time** ([`LinkModel::SingleMessage`]): messages between the same
//! ordered processor pair serialize, modelling a narrow point-to-point
//! interconnect. With [`LinkModel::Unlimited`] the event engine reproduces
//! the fixpoint simulator cycle for cycle (tested), which pins its
//! correctness.
//!
//! # Event-ordering contract
//!
//! The engine guarantees, independently of the queue implementation:
//!
//! 1. **Time order**: events pop in non-decreasing cycle order.
//! 2. **FIFO ties**: events scheduled for the *same* cycle pop in the
//!    order they were pushed. Every event carries a monotone sequence
//!    number assigned at push time; the queue orders by `(cycle, seq)` and
//!    nothing else. (Before this contract existed, same-cycle ties popped
//!    in the derived `Ord` of `EventKind` — deterministic but accidental:
//!    reordering enum variants would have silently changed tie order.)
//! 3. **Link send order = event order**: a `SingleMessage` link's frontier
//!    (`link_free`) advances in the order transmissions are processed, so
//!    the FIFO tie rule is exactly the statement "messages queue on a link
//!    in send order".
//!
//! # Queue engines
//!
//! Two interchangeable queues implement the contract
//! ([`EventEngine::Heap`], [`EventEngine::Calendar`]); they produce
//! byte-identical [`SimResult`]s (corpus- and property-tested):
//!
//! * **Heap** — a `BinaryHeap` keyed by `(cycle, seq)`: `O(log n)` per
//!   operation, no tuning, the reference implementation.
//! * **Calendar** (default) — a bucketed calendar queue: a cycle-indexed
//!   ring of buckets covering `[now, now + buckets.len())`, one bucket per
//!   cycle, each bucket a vector drained in push (= seq) order, so
//!   same-cycle FIFO holds *by construction*. Push and pop are `O(1)`
//!   amortized. Events beyond the ring horizon park in an overflow heap
//!   and migrate into the ring as the horizon advances; sustained overflow
//!   pressure lazily doubles the ring (up to the internal `MAX_BUCKETS`
//!   cap), so
//!   long-horizon contention backlogs — the expensive case for the heap,
//!   whose `log n` grows with the backlog — stay `O(1)` per event. This is
//!   what makes 10⁵-iteration `SingleMessage` sweeps cheap (see
//!   `BENCH_sched.json`'s `event_entries`).

use crate::dense::DenseProgram;
use crate::{ProcStats, SimResult, TrafficModel};
use kn_ddg::{Ddg, InstanceId};
use kn_sched::{ArrivalConvention, Cycle, MachineConfig, Program, ProgramError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Interconnect capacity model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LinkModel {
    /// Fully overlapped communication (the paper's assumption): unlimited
    /// messages in flight per link.
    #[default]
    Unlimited,
    /// Each directed processor pair carries one message at a time;
    /// messages queue in send order.
    SingleMessage,
}

impl LinkModel {
    /// Parse a user-facing token (CLI `--link`, service wire `link=`):
    /// `unlimited`, `single`, or `single-message`. One table so the two
    /// front ends cannot drift.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "unlimited" => Some(LinkModel::Unlimited),
            "single" | "single-message" => Some(LinkModel::SingleMessage),
            _ => None,
        }
    }
}

/// Which event-queue implementation drives the engine. Both satisfy the
/// module-level ordering contract and produce identical results; they
/// differ only in cost (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EventEngine {
    /// `BinaryHeap` keyed by `(cycle, seq)`: `O(log n)` per event.
    Heap,
    /// Bucketed calendar queue: `O(1)` amortized per event, FIFO ties by
    /// construction. The default.
    #[default]
    Calendar,
}

impl EventEngine {
    /// Parse a user-facing token (CLI `--engine`, service wire
    /// `engine=`): `heap` or `calendar`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "heap" => Some(EventEngine::Heap),
            "calendar" => Some(EventEngine::Calendar),
            _ => None,
        }
    }
}

/// `EventKind` needs no ordering of its own: ties are broken exclusively
/// by the sequence number (unique per queue), so the derived `Ord` used by
/// the heap-backed queue's tuples is never consulted between distinct
/// kinds at the same `(cycle, seq)` — such a pair cannot exist.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum EventKind {
    /// An instance finished on a processor: `(proc, node, iter)`.
    Finish(usize, u32, u32),
    /// A remote operand became usable by `(node, iter)` on its processor.
    Arrive(u32, u32),
}

/// Heap entry: `Reverse` turns the max-heap into a min-queue on
/// `(cycle, seq)`. The `seq` component is unique, so `EventKind` never
/// decides an ordering.
type HeapEntry = Reverse<(Cycle, u64, EventKind)>;

/// Reference queue: binary heap with the FIFO tie-break.
struct HeapQueue {
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
}

impl HeapQueue {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    #[inline]
    fn push(&mut self, time: Cycle, kind: EventKind) {
        self.heap.push(Reverse((time, self.seq, kind)));
        self.seq += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<(Cycle, EventKind)> {
        self.heap.pop().map(|Reverse((t, _, k))| (t, k))
    }
}

/// Ring size the calendar queue starts with; doubles under overflow
/// pressure. 1024 buckets is 24 KiB of headers — small enough to always
/// pay, large enough that short sims never resize.
const INITIAL_BUCKETS: usize = 1024;
/// Lazy-resize ceiling: ~10⁶ cycles of horizon. Beyond this span the far
/// future stays in the overflow heap (still correct, merely `O(log n)` for
/// those events).
const MAX_BUCKETS: usize = 1 << 20;

/// Bucketed calendar queue (see the module docs for the design).
///
/// Invariants:
/// * `buckets[t & mask]` holds exactly the pending events for cycle `t`,
///   for `t` in `[now, now + buckets.len())`, as `(seq, kind)` pairs in
///   increasing `seq` order;
/// * entries in `[0, cursor)` of the current bucket (`now & mask`) have
///   already been popped; past buckets are cleared when `now` advances;
/// * `overflow` holds exactly the events at cycles `>= now +
///   buckets.len()`, keyed `(cycle, seq)`.
///
/// Per-bucket seq order needs no sorting: a direct push to cycle `t`
/// happens only while `t` is inside the horizon, an overflow park only
/// while it is outside, and the horizon end is monotone — so every
/// overflow event for `t` predates (in seq) every direct push for `t`,
/// and migration drains the overflow heap in `(cycle, seq)` order before
/// any direct push can target the newly covered cycle.
struct CalendarQueue {
    buckets: Vec<Vec<(u64, EventKind)>>,
    mask: u64,
    /// Cycle owning the bucket currently being drained; never decreases.
    now: Cycle,
    /// Read index into the current bucket.
    cursor: usize,
    /// Live events stored in the ring.
    ring_len: usize,
    /// Events beyond the ring horizon.
    overflow: BinaryHeap<HeapEntry>,
    seq: u64,
}

impl CalendarQueue {
    fn new() -> Self {
        Self::with_capacity(INITIAL_BUCKETS)
    }

    /// `capacity` is rounded up to a power of two. Small capacities are
    /// used by tests to force the overflow/grow/jump paths.
    fn with_capacity(capacity: usize) -> Self {
        let n = capacity.next_power_of_two().min(MAX_BUCKETS);
        Self {
            buckets: vec![Vec::new(); n],
            mask: n as u64 - 1,
            now: 0,
            cursor: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
        }
    }

    #[inline]
    fn horizon_end(&self) -> Cycle {
        self.now + self.buckets.len() as Cycle
    }

    #[inline]
    fn push(&mut self, time: Cycle, kind: EventKind) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        if time < self.horizon_end() {
            self.buckets[(time & self.mask) as usize].push((seq, kind));
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse((time, seq, kind)));
            // Every parked event is handled twice (heap round-trip plus
            // the ring), so resize eagerly: a quarter-full overflow
            // already means the horizon chronically trails the backlog.
            if self.overflow.len() * 4 > self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
                self.grow();
            }
        }
    }

    fn pop(&mut self) -> Option<(Cycle, EventKind)> {
        loop {
            let idx = (self.now & self.mask) as usize;
            if self.cursor < self.buckets[idx].len() {
                let (seq, kind) = self.buckets[idx][self.cursor];
                debug_assert!(
                    self.cursor == 0 || self.buckets[idx][self.cursor - 1].0 < seq,
                    "bucket not in push order"
                );
                let _ = seq;
                self.cursor += 1;
                self.ring_len -= 1;
                return Some((self.now, kind));
            }
            // Current bucket exhausted: recycle it and move time forward.
            self.buckets[idx].clear();
            self.cursor = 0;
            if self.ring_len > 0 {
                // Next event is inside the horizon; step one cycle.
                self.now += 1;
            } else {
                // Ring empty: jump straight to the earliest parked cycle.
                let &Reverse((t, _, _)) = self.overflow.peek()?;
                self.now = t;
            }
            self.migrate();
        }
    }

    /// Pull every parked event now inside the horizon into the ring, in
    /// `(cycle, seq)` order.
    fn migrate(&mut self) {
        let end = self.horizon_end();
        while let Some(&Reverse((t, _, _))) = self.overflow.peek() {
            if t >= end {
                break;
            }
            let Reverse((t, s, k)) = self.overflow.pop().expect("peeked");
            self.buckets[(t & self.mask) as usize].push((s, k));
            self.ring_len += 1;
        }
    }

    /// Double the ring and re-home its live range, then drain newly
    /// covered overflow. Amortized against the overflow pressure that
    /// triggered it.
    fn grow(&mut self) {
        let new_len = (self.buckets.len() * 2).min(MAX_BUCKETS);
        if new_len == self.buckets.len() {
            return;
        }
        let new_mask = new_len as u64 - 1;
        let mut buckets: Vec<Vec<(u64, EventKind)>> = vec![Vec::new(); new_len];
        for t in self.now..self.horizon_end() {
            let old = std::mem::take(&mut self.buckets[(t & self.mask) as usize]);
            if !old.is_empty() {
                buckets[(t & new_mask) as usize] = old;
            }
        }
        self.buckets = buckets;
        self.mask = new_mask;
        self.migrate();
    }
}

/// The engine's event queue: one of the two interchangeable
/// implementations of the ordering contract.
enum Queue {
    Heap(HeapQueue),
    Calendar(CalendarQueue),
}

impl Queue {
    fn new(engine: EventEngine) -> Self {
        match engine {
            EventEngine::Heap => Queue::Heap(HeapQueue::new()),
            EventEngine::Calendar => Queue::Calendar(CalendarQueue::new()),
        }
    }

    #[inline]
    fn push(&mut self, time: Cycle, kind: EventKind) {
        match self {
            Queue::Heap(q) => q.push(time, kind),
            Queue::Calendar(q) => q.push(time, kind),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(Cycle, EventKind)> {
        match self {
            Queue::Heap(q) => q.pop(),
            Queue::Calendar(q) => q.pop(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct InstState {
    /// Predecessor values still outstanding.
    waits: u32,
    /// Max over operand-ready times seen so far.
    ready: Cycle,
}

/// Run `prog` through the event engine with the default queue
/// ([`EventEngine::Calendar`]).
pub fn simulate_event(
    prog: &Program,
    g: &Ddg,
    m: &MachineConfig,
    traffic: &TrafficModel,
    link: LinkModel,
) -> Result<SimResult, ProgramError> {
    simulate_event_with(prog, g, m, traffic, link, EventEngine::default())
}

/// Run `prog` through the event engine with an explicit queue choice.
pub fn simulate_event_with(
    prog: &Program,
    g: &Ddg,
    m: &MachineConfig,
    traffic: &TrafficModel,
    link: LinkModel,
    engine: EventEngine,
) -> Result<SimResult, ProgramError> {
    // Dense per-instance tables indexed by `node * iters + iter` — the
    // bounds are known up front, so no `HashMap<InstanceId, _>` is needed
    // anywhere in the engine.
    let dense = DenseProgram::build(prog, g)?;
    let nprocs = prog.processors();
    let total = prog.len();

    // Per-instance dependence bookkeeping.
    let mut state: Vec<InstState> = vec![InstState { waits: 0, ready: 0 }; dense.table_len()];
    for seq in prog.seqs.iter() {
        for &inst in seq {
            let waits = g
                .in_edges(inst.node)
                .filter(|(_, e)| {
                    e.distance <= inst.iter
                        && dense
                            .proc_of(InstanceId {
                                node: e.src,
                                iter: inst.iter - e.distance,
                            })
                            .is_some()
                })
                .count() as u32;
            state[dense.idx(inst)].waits = waits;
        }
    }

    let mut head = vec![0usize; nprocs];
    let mut busy = vec![false; nprocs];
    let mut clock = vec![0 as Cycle; nprocs];
    let mut stats: Vec<ProcStats> = vec![ProcStats::default(); nprocs];
    // `(proc, start)` per instance; `proc == u32::MAX` marks "not started".
    let mut start_times: Vec<(u32, Cycle)> = vec![(u32::MAX, 0); dense.table_len()];
    // Directed-pair link frontier, `p * nprocs + sp`.
    let mut link_free: Vec<Cycle> = vec![0; nprocs * nprocs];
    let mut queue = Queue::new(engine);
    let mut messages = 0u64;
    let mut comm_cycles = 0u64;
    let mut done = 0usize;

    // Try to issue the head instance of processor `p` at time `now`.
    let try_start = |p: usize,
                     now: Cycle,
                     head: &mut [usize],
                     busy: &mut [bool],
                     clock: &mut [Cycle],
                     state: &[InstState],
                     start_times: &mut [(u32, Cycle)],
                     stats: &mut [ProcStats],
                     queue: &mut Queue| {
        if busy[p] || head[p] >= prog.seqs[p].len() {
            return;
        }
        let inst = prog.seqs[p][head[p]];
        let st = state[dense.idx(inst)];
        if st.waits > 0 {
            return;
        }
        let start = clock[p].max(st.ready).max(now);
        let lat = g.latency(inst.node) as Cycle;
        start_times[dense.idx(inst)] = (p as u32, start);
        stats[p].busy += lat;
        stats[p].executed += 1;
        busy[p] = true;
        queue.push(start + lat, EventKind::Finish(p, inst.node.0, inst.iter));
    };

    // Seed: every processor attempts its first instance at time 0.
    for p in 0..nprocs {
        try_start(
            p,
            0,
            &mut head,
            &mut busy,
            &mut clock,
            &state,
            &mut start_times,
            &mut stats,
            &mut queue,
        );
    }

    let mut makespan = 0;
    while let Some((now, kind)) = queue.pop() {
        match kind {
            EventKind::Finish(p, node, iter) => {
                let inst = InstanceId {
                    node: kn_ddg::NodeId(node),
                    iter,
                };
                clock[p] = now;
                stats[p].finish = now;
                busy[p] = false;
                head[p] += 1;
                done += 1;
                makespan = makespan.max(now);

                // Release consumers.
                for (eid, e) in g.out_edges(inst.node) {
                    let succ = InstanceId {
                        node: e.dst,
                        iter: inst.iter + e.distance,
                    };
                    let Some(sp) = dense.proc_of(succ) else {
                        continue;
                    };
                    if sp == p {
                        let st = &mut state[dense.idx(succ)];
                        st.waits -= 1;
                        st.ready = st.ready.max(now);
                        if st.waits == 0 {
                            try_start(
                                p,
                                now,
                                &mut head,
                                &mut busy,
                                &mut clock,
                                &state,
                                &mut start_times,
                                &mut stats,
                                &mut queue,
                            );
                        }
                    } else {
                        // Transmit. Send order on a link = event order
                        // (the FIFO tie rule of the module contract).
                        let cost = (m.edge_cost(e) + traffic.fluctuation(eid, succ.iter)).max(1);
                        messages += 1;
                        comm_cycles += cost as u64;
                        let depart = match link {
                            LinkModel::Unlimited => now,
                            LinkModel::SingleMessage => {
                                let free = &mut link_free[p * nprocs + sp];
                                let depart = (*free).max(now);
                                *free = depart + cost as Cycle;
                                depart
                            }
                        };
                        let usable = match m.arrival {
                            ArrivalConvention::ConsumeAtArrival => {
                                depart + cost.saturating_sub(1) as Cycle
                            }
                            ArrivalConvention::AfterArrival => depart + cost as Cycle,
                        };
                        queue.push(usable, EventKind::Arrive(succ.node.0, succ.iter));
                    }
                }
                // This processor may proceed with its next instance.
                try_start(
                    p,
                    now,
                    &mut head,
                    &mut busy,
                    &mut clock,
                    &state,
                    &mut start_times,
                    &mut stats,
                    &mut queue,
                );
            }
            EventKind::Arrive(node, iter) => {
                let inst = InstanceId {
                    node: kn_ddg::NodeId(node),
                    iter,
                };
                let p = dense.proc_of(inst).expect("in program");
                let st = &mut state[dense.idx(inst)];
                st.waits -= 1;
                st.ready = st.ready.max(now);
                if st.waits == 0 {
                    try_start(
                        p,
                        now,
                        &mut head,
                        &mut busy,
                        &mut clock,
                        &state,
                        &mut start_times,
                        &mut stats,
                        &mut queue,
                    );
                }
            }
        }
    }

    if done != total {
        return Err(ProgramError::Deadlock { timed: done, total });
    }
    Ok(SimResult {
        start: dense.export_starts(prog, &start_times),
        makespan,
        messages,
        comm_cycles,
        procs: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, TrafficModel};
    use kn_ddg::DdgBuilder;
    use kn_sched::{cyclic_schedule, CyclicOptions, ScheduleTable};

    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    fn fig7_program(m: &MachineConfig, iters: u32) -> (Ddg, Program) {
        let g = figure7();
        let out = cyclic_schedule(&g, m, &CyclicOptions::default()).unwrap();
        let prog = ScheduleTable::new(out.instantiate(iters)).to_program(iters);
        (g, prog)
    }

    fn both_engines() -> [EventEngine; 2] {
        [EventEngine::Heap, EventEngine::Calendar]
    }

    #[test]
    fn unlimited_links_match_fixpoint_simulator_exactly() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = fig7_program(&m, 20);
        for engine in both_engines() {
            for mm in [1u32, 3, 5] {
                let t = TrafficModel { mm, seed: 5 };
                let a = simulate(&prog, &g, &m, &t).unwrap();
                let b =
                    simulate_event_with(&prog, &g, &m, &t, LinkModel::Unlimited, engine).unwrap();
                assert_eq!(a.makespan, b.makespan, "mm={mm} {engine:?}");
                for (inst, &(p, s)) in &a.start {
                    assert_eq!(b.start[inst], (p, s), "mm={mm} {engine:?} {inst}");
                }
            }
        }
    }

    #[test]
    fn contention_only_delays() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = fig7_program(&m, 30);
        let t = TrafficModel::stable(0);
        for engine in both_engines() {
            let free =
                simulate_event_with(&prog, &g, &m, &t, LinkModel::Unlimited, engine).unwrap();
            let tight =
                simulate_event_with(&prog, &g, &m, &t, LinkModel::SingleMessage, engine).unwrap();
            assert!(tight.makespan >= free.makespan);
            for (inst, &(_, s)) in &free.start {
                assert!(tight.start[inst].1 >= s, "{engine:?} {inst}");
            }
        }
    }

    #[test]
    fn contention_actually_bites_on_a_fanout() {
        // One producer feeding 4 consumers on another processor: with a
        // single-message link the transmissions serialize.
        let mut b = DdgBuilder::new();
        let src = b.node("src");
        let sinks: Vec<_> = (0..4).map(|i| b.node(format!("s{i}"))).collect();
        for &s in &sinks {
            b.dep(src, s);
        }
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 3);
        let prog = Program {
            seqs: vec![
                vec![InstanceId { node: src, iter: 0 }],
                sinks
                    .iter()
                    .map(|&n| InstanceId { node: n, iter: 0 })
                    .collect(),
            ],
            iters: 1,
        };
        let t = TrafficModel::stable(0);
        for engine in both_engines() {
            let free =
                simulate_event_with(&prog, &g, &m, &t, LinkModel::Unlimited, engine).unwrap();
            let tight =
                simulate_event_with(&prog, &g, &m, &t, LinkModel::SingleMessage, engine).unwrap();
            // Unlimited: all four messages arrive at cycle 3, the consumer
            // processor drains them serially -> makespan 7. SingleMessage:
            // departures at 1,4,7,10, usable at 3,6,9,12, last sink
            // finishes at 13.
            assert_eq!(free.makespan, 7, "{engine:?}");
            assert_eq!(tight.makespan, 13, "{engine:?}");
        }
    }

    #[test]
    fn deterministic_under_contention() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = fig7_program(&m, 25);
        let t = TrafficModel { mm: 3, seed: 11 };
        for engine in both_engines() {
            let a =
                simulate_event_with(&prog, &g, &m, &t, LinkModel::SingleMessage, engine).unwrap();
            let b =
                simulate_event_with(&prog, &g, &m, &t, LinkModel::SingleMessage, engine).unwrap();
            assert_eq!(a, b, "{engine:?}");
        }
    }

    #[test]
    fn engines_agree_byte_for_byte() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = fig7_program(&m, 40);
        for link in [LinkModel::Unlimited, LinkModel::SingleMessage] {
            for mm in [1u32, 3, 5] {
                let t = TrafficModel { mm, seed: 3 };
                let h = simulate_event_with(&prog, &g, &m, &t, link, EventEngine::Heap).unwrap();
                let c =
                    simulate_event_with(&prog, &g, &m, &t, link, EventEngine::Calendar).unwrap();
                assert_eq!(h, c, "link={link:?} mm={mm}");
            }
        }
    }

    #[test]
    fn deadlock_detected_by_event_engine() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        let m = MachineConfig::new(1, 1);
        let prog = Program {
            seqs: vec![vec![
                InstanceId { node: y, iter: 0 },
                InstanceId { node: x, iter: 0 },
            ]],
            iters: 1,
        };
        for engine in both_engines() {
            assert!(matches!(
                simulate_event_with(
                    &prog,
                    &g,
                    &m,
                    &TrafficModel::stable(0),
                    LinkModel::Unlimited,
                    engine,
                ),
                Err(ProgramError::Deadlock { .. })
            ));
        }
    }

    // ---- queue-level regression and property tests ----

    /// Regression for the tie-break bugfix: an `Arrive` and a `Finish`
    /// scheduled for the same cycle must pop in insertion order. The old
    /// key `(cycle, EventKind)` popped `Finish` first regardless of push
    /// order (derived variant order); with the link contract "send order
    /// on a link = event order", the queue primitive the link frontier is
    /// driven from must be FIFO within a cycle.
    #[test]
    fn same_cycle_arrive_finish_pop_in_insertion_order() {
        let arrive = EventKind::Arrive(7, 3);
        let finish = EventKind::Finish(1, 7, 3);
        for engine in both_engines() {
            let mut q = Queue::new(engine);
            q.push(10, arrive);
            q.push(10, finish);
            q.push(11, finish);
            assert_eq!(q.pop(), Some((10, arrive)), "{engine:?}: FIFO within cycle");
            assert_eq!(q.pop(), Some((10, finish)), "{engine:?}");
            assert_eq!(q.pop(), Some((11, finish)), "{engine:?}");
            assert_eq!(q.pop(), None, "{engine:?}");

            // Reversed insertion order reverses the tie order — the queue
            // follows insertion, not kind.
            let mut q = Queue::new(engine);
            q.push(10, finish);
            q.push(10, arrive);
            assert_eq!(q.pop(), Some((10, finish)), "{engine:?}");
            assert_eq!(q.pop(), Some((10, arrive)), "{engine:?}");
        }
    }

    /// End-to-end regression for the link contract: two same-cycle events
    /// (the producer's `Finish` and an earlier `Arrive`) coexisting in the
    /// queue must leave the `SingleMessage` link frontier identical to the
    /// event (= send) order, which the exact makespans pin.
    #[test]
    fn link_send_order_matches_event_order_under_same_cycle_ties() {
        // p0 runs two producers back to back (x at [0,1), y at [1,2));
        // both feed consumers on p1 over the same link, and x also feeds a
        // local consumer whose Arrive-free release coincides with y's
        // Finish. Messages depart in event order: x's at 1, y's at 4.
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let cx = b.node("cx");
        let cy = b.node("cy");
        let z = b.node("z");
        b.dep(x, cx);
        b.dep(y, cy);
        b.dep(x, z);
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 3);
        let prog = Program {
            seqs: vec![
                vec![
                    InstanceId { node: x, iter: 0 },
                    InstanceId { node: y, iter: 0 },
                    InstanceId { node: z, iter: 0 },
                ],
                vec![
                    InstanceId { node: cx, iter: 0 },
                    InstanceId { node: cy, iter: 0 },
                ],
            ],
            iters: 1,
        };
        let t = TrafficModel::stable(0);
        for engine in both_engines() {
            let r =
                simulate_event_with(&prog, &g, &m, &t, LinkModel::SingleMessage, engine).unwrap();
            // x finishes at 1: cx's message departs at 1, usable at 3.
            // y finishes at 2: cy's message departs at 4 (link busy until
            // then), usable at 6 — send order = event order.
            assert_eq!(
                r.start[&InstanceId { node: cx, iter: 0 }],
                (1, 3),
                "{engine:?}"
            );
            assert_eq!(
                r.start[&InstanceId { node: cy, iter: 0 }],
                (1, 6),
                "{engine:?}"
            );
        }
    }

    /// Drive both queues with an identical random monotone event stream
    /// (interleaved pushes and pops, bursts of same-cycle ties, spans far
    /// beyond the calendar's initial capacity) and require identical pop
    /// sequences. A tiny initial ring forces the overflow, grow, and
    /// empty-ring jump paths.
    #[test]
    fn calendar_queue_matches_heap_queue_on_random_streams() {
        let mut rng: u64 = 0x2545_F491_4F6C_DD1D;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for trial in 0..20u32 {
            let mut heap = HeapQueue::new();
            let mut cal = CalendarQueue::with_capacity(4);
            let mut now: Cycle = 0;
            let mut pending = 0usize;
            for step in 0..5_000u32 {
                if pending == 0 || next() % 3 != 0 {
                    // Push: time >= now, sometimes exactly now (tie),
                    // sometimes far beyond the ring horizon.
                    let gap = match next() % 4 {
                        0 => 0,
                        1 => next() % 3,
                        2 => next() % 64,
                        _ => next() % 4096,
                    };
                    let kind = EventKind::Arrive(trial, step);
                    heap.push(now + gap, kind);
                    cal.push(now + gap, kind);
                    pending += 1;
                } else {
                    let h = heap.pop();
                    let c = cal.pop();
                    assert_eq!(h, c, "trial {trial} step {step}");
                    now = h.expect("pending > 0").0;
                    pending -= 1;
                }
            }
            loop {
                let h = heap.pop();
                let c = cal.pop();
                assert_eq!(h, c, "trial {trial} drain");
                if h.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn calendar_queue_jumps_over_large_gaps() {
        let mut q = CalendarQueue::with_capacity(4);
        let k = EventKind::Finish(0, 0, 0);
        q.push(0, k);
        q.push(1_000_000, k);
        q.push(5_000_000, k);
        assert_eq!(q.pop(), Some((0, k)));
        assert_eq!(q.pop(), Some((1_000_000, k)));
        q.push(5_000_000, EventKind::Arrive(0, 0)); // tie with the parked event
        assert_eq!(q.pop(), Some((5_000_000, k)), "overflow order: seq-first");
        assert_eq!(q.pop(), Some((5_000_000, EventKind::Arrive(0, 0))));
        assert_eq!(q.pop(), None);
    }
}
