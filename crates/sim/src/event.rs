//! Event-driven simulator with an explicit interconnect model.
//!
//! The paper assumes **fully overlapped** communication — any number of
//! messages in flight, no link contention (§4). That is exactly
//! [`crate::simulate`]. This module generalizes the machine with a
//! discrete-event engine whose links can instead carry **one message at a
//! time** ([`LinkModel::SingleMessage`]): messages between the same
//! ordered processor pair serialize, modelling a narrow point-to-point
//! interconnect. With [`LinkModel::Unlimited`] the event engine reproduces
//! the fixpoint simulator cycle for cycle (tested), which pins its
//! correctness.
//!
//! Event order is fully deterministic: the heap is keyed by
//! `(time, kind, processor/instance ids)`, and message queueing follows
//! event order, so results are reproducible across runs and platforms.

use crate::dense::DenseProgram;
use crate::{ProcStats, SimResult, TrafficModel};
use kn_ddg::{Ddg, InstanceId};
use kn_sched::{ArrivalConvention, Cycle, MachineConfig, Program, ProgramError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Interconnect capacity model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LinkModel {
    /// Fully overlapped communication (the paper's assumption): unlimited
    /// messages in flight per link.
    #[default]
    Unlimited,
    /// Each directed processor pair carries one message at a time;
    /// messages queue in send order.
    SingleMessage,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum EventKind {
    /// An instance finished on a processor: `(proc, node, iter)`.
    Finish(usize, u32, u32),
    /// A remote operand became usable by `(node, iter)` on its processor.
    Arrive(u32, u32),
}

type Event = Reverse<(Cycle, EventKind)>;

#[derive(Clone, Copy, Debug)]
struct InstState {
    /// Predecessor values still outstanding.
    waits: u32,
    /// Max over operand-ready times seen so far.
    ready: Cycle,
}

/// Run `prog` through the event engine.
pub fn simulate_event(
    prog: &Program,
    g: &Ddg,
    m: &MachineConfig,
    traffic: &TrafficModel,
    link: LinkModel,
) -> Result<SimResult, ProgramError> {
    // Dense per-instance tables indexed by `node * iters + iter` — the
    // bounds are known up front, so no `HashMap<InstanceId, _>` is needed
    // anywhere in the engine.
    let dense = DenseProgram::build(prog, g)?;
    let nprocs = prog.processors();
    let total = prog.len();

    // Per-instance dependence bookkeeping.
    let mut state: Vec<InstState> = vec![InstState { waits: 0, ready: 0 }; dense.table_len()];
    for seq in prog.seqs.iter() {
        for &inst in seq {
            let waits = g
                .in_edges(inst.node)
                .filter(|(_, e)| {
                    e.distance <= inst.iter
                        && dense
                            .proc_of(InstanceId {
                                node: e.src,
                                iter: inst.iter - e.distance,
                            })
                            .is_some()
                })
                .count() as u32;
            state[dense.idx(inst)].waits = waits;
        }
    }

    let mut head = vec![0usize; nprocs];
    let mut busy = vec![false; nprocs];
    let mut clock = vec![0 as Cycle; nprocs];
    let mut stats: Vec<ProcStats> = vec![ProcStats::default(); nprocs];
    // `(proc, start)` per instance; `proc == u32::MAX` marks "not started".
    let mut start_times: Vec<(u32, Cycle)> = vec![(u32::MAX, 0); dense.table_len()];
    // Directed-pair link frontier, `p * nprocs + sp`.
    let mut link_free: Vec<Cycle> = vec![0; nprocs * nprocs];
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut messages = 0u64;
    let mut comm_cycles = 0u64;
    let mut done = 0usize;

    // Try to issue the head instance of processor `p` at time `now`.
    let try_start = |p: usize,
                     now: Cycle,
                     head: &mut [usize],
                     busy: &mut [bool],
                     clock: &mut [Cycle],
                     state: &[InstState],
                     start_times: &mut [(u32, Cycle)],
                     stats: &mut [ProcStats],
                     heap: &mut BinaryHeap<Event>| {
        if busy[p] || head[p] >= prog.seqs[p].len() {
            return;
        }
        let inst = prog.seqs[p][head[p]];
        let st = state[dense.idx(inst)];
        if st.waits > 0 {
            return;
        }
        let start = clock[p].max(st.ready).max(now);
        let lat = g.latency(inst.node) as Cycle;
        start_times[dense.idx(inst)] = (p as u32, start);
        stats[p].busy += lat;
        stats[p].executed += 1;
        busy[p] = true;
        heap.push(Reverse((
            start + lat,
            EventKind::Finish(p, inst.node.0, inst.iter),
        )));
    };

    // Seed: every processor attempts its first instance at time 0.
    for p in 0..nprocs {
        try_start(
            p,
            0,
            &mut head,
            &mut busy,
            &mut clock,
            &state,
            &mut start_times,
            &mut stats,
            &mut heap,
        );
    }

    let mut makespan = 0;
    while let Some(Reverse((now, kind))) = heap.pop() {
        match kind {
            EventKind::Finish(p, node, iter) => {
                let inst = InstanceId {
                    node: kn_ddg::NodeId(node),
                    iter,
                };
                clock[p] = now;
                stats[p].finish = now;
                busy[p] = false;
                head[p] += 1;
                done += 1;
                makespan = makespan.max(now);

                // Release consumers.
                for (eid, e) in g.out_edges(inst.node) {
                    let succ = InstanceId {
                        node: e.dst,
                        iter: inst.iter + e.distance,
                    };
                    let Some(sp) = dense.proc_of(succ) else {
                        continue;
                    };
                    if sp == p {
                        let st = &mut state[dense.idx(succ)];
                        st.waits -= 1;
                        st.ready = st.ready.max(now);
                        if st.waits == 0 {
                            try_start(
                                p,
                                now,
                                &mut head,
                                &mut busy,
                                &mut clock,
                                &state,
                                &mut start_times,
                                &mut stats,
                                &mut heap,
                            );
                        }
                    } else {
                        // Transmit. Send order on a link = event order.
                        let cost = (m.edge_cost(e) + traffic.fluctuation(eid, succ.iter)).max(1);
                        messages += 1;
                        comm_cycles += cost as u64;
                        let depart = match link {
                            LinkModel::Unlimited => now,
                            LinkModel::SingleMessage => {
                                let free = &mut link_free[p * nprocs + sp];
                                let depart = (*free).max(now);
                                *free = depart + cost as Cycle;
                                depart
                            }
                        };
                        let usable = match m.arrival {
                            ArrivalConvention::ConsumeAtArrival => {
                                depart + cost.saturating_sub(1) as Cycle
                            }
                            ArrivalConvention::AfterArrival => depart + cost as Cycle,
                        };
                        heap.push(Reverse((usable, EventKind::Arrive(succ.node.0, succ.iter))));
                    }
                }
                // This processor may proceed with its next instance.
                try_start(
                    p,
                    now,
                    &mut head,
                    &mut busy,
                    &mut clock,
                    &state,
                    &mut start_times,
                    &mut stats,
                    &mut heap,
                );
            }
            EventKind::Arrive(node, iter) => {
                let inst = InstanceId {
                    node: kn_ddg::NodeId(node),
                    iter,
                };
                let p = dense.proc_of(inst).expect("in program");
                let st = &mut state[dense.idx(inst)];
                st.waits -= 1;
                st.ready = st.ready.max(now);
                if st.waits == 0 {
                    try_start(
                        p,
                        now,
                        &mut head,
                        &mut busy,
                        &mut clock,
                        &state,
                        &mut start_times,
                        &mut stats,
                        &mut heap,
                    );
                }
            }
        }
    }

    if done != total {
        return Err(ProgramError::Deadlock { timed: done, total });
    }
    Ok(SimResult {
        start: dense.export_starts(prog, &start_times),
        makespan,
        messages,
        comm_cycles,
        procs: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, TrafficModel};
    use kn_ddg::DdgBuilder;
    use kn_sched::{cyclic_schedule, CyclicOptions, ScheduleTable};

    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    fn fig7_program(m: &MachineConfig, iters: u32) -> (Ddg, Program) {
        let g = figure7();
        let out = cyclic_schedule(&g, m, &CyclicOptions::default()).unwrap();
        let prog = ScheduleTable::new(out.instantiate(iters)).to_program(iters);
        (g, prog)
    }

    #[test]
    fn unlimited_links_match_fixpoint_simulator_exactly() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = fig7_program(&m, 20);
        for mm in [1u32, 3, 5] {
            let t = TrafficModel { mm, seed: 5 };
            let a = simulate(&prog, &g, &m, &t).unwrap();
            let b = simulate_event(&prog, &g, &m, &t, LinkModel::Unlimited).unwrap();
            assert_eq!(a.makespan, b.makespan, "mm={mm}");
            for (inst, &(p, s)) in &a.start {
                assert_eq!(b.start[inst], (p, s), "mm={mm} {inst}");
            }
        }
    }

    #[test]
    fn contention_only_delays() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = fig7_program(&m, 30);
        let t = TrafficModel::stable(0);
        let free = simulate_event(&prog, &g, &m, &t, LinkModel::Unlimited).unwrap();
        let tight = simulate_event(&prog, &g, &m, &t, LinkModel::SingleMessage).unwrap();
        assert!(tight.makespan >= free.makespan);
        for (inst, &(_, s)) in &free.start {
            assert!(tight.start[inst].1 >= s, "{inst}");
        }
    }

    #[test]
    fn contention_actually_bites_on_a_fanout() {
        // One producer feeding 4 consumers on another processor: with a
        // single-message link the transmissions serialize.
        let mut b = DdgBuilder::new();
        let src = b.node("src");
        let sinks: Vec<_> = (0..4).map(|i| b.node(format!("s{i}"))).collect();
        for &s in &sinks {
            b.dep(src, s);
        }
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 3);
        let prog = Program {
            seqs: vec![
                vec![InstanceId { node: src, iter: 0 }],
                sinks
                    .iter()
                    .map(|&n| InstanceId { node: n, iter: 0 })
                    .collect(),
            ],
            iters: 1,
        };
        let t = TrafficModel::stable(0);
        let free = simulate_event(&prog, &g, &m, &t, LinkModel::Unlimited).unwrap();
        let tight = simulate_event(&prog, &g, &m, &t, LinkModel::SingleMessage).unwrap();
        // Unlimited: all four messages arrive at cycle 3, the consumer
        // processor drains them serially -> makespan 7. SingleMessage:
        // departures at 1,4,7,10, usable at 3,6,9,12, last sink finishes
        // at 13.
        assert_eq!(free.makespan, 7);
        assert_eq!(tight.makespan, 13);
    }

    #[test]
    fn deterministic_under_contention() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = fig7_program(&m, 25);
        let t = TrafficModel { mm: 3, seed: 11 };
        let a = simulate_event(&prog, &g, &m, &t, LinkModel::SingleMessage).unwrap();
        let b = simulate_event(&prog, &g, &m, &t, LinkModel::SingleMessage).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.start, b.start);
    }

    #[test]
    fn deadlock_detected_by_event_engine() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        let m = MachineConfig::new(1, 1);
        let prog = Program {
            seqs: vec![vec![
                InstanceId { node: y, iter: 0 },
                InstanceId { node: x, iter: 0 },
            ]],
            iters: 1,
        };
        assert!(matches!(
            simulate_event(
                &prog,
                &g,
                &m,
                &TrafficModel::stable(0),
                LinkModel::Unlimited
            ),
            Err(ProgramError::Deadlock { .. })
        ));
    }
}
