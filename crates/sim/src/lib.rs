#![forbid(unsafe_code)]
//! # kn-sim — simulated asynchronous MIMD multiprocessor
//!
//! The evaluation substrate for the paper's §4 experiments. Processors
//! execute their program sequences asynchronously: each instance starts as
//! soon as (a) the previous instance on the same processor finished and
//! (b) every operand has arrived. Communication is **fully overlapped**
//! (sends never block) and every message's actual cost fluctuates between
//! the compile-time estimate and `estimate + mm - 1` cycles — the paper's
//! `mm` traffic model ("the run time cost of each communication link varied
//! between k and k+mm-1", §4). `mm = 1` reproduces the static schedule
//! exactly; `mm = 5` under-estimates communication by up to 2.3× (the
//! paper's "very unstable asynchronous traffic").
//!
//! Fluctuation is sampled *per message* by hashing `(seed, edge, iteration)`
//! so results are deterministic and independent of event-processing order.

mod dense;
pub mod event;

pub use event::{simulate_event, simulate_event_with, EventEngine, LinkModel};

use kn_ddg::{Ddg, EdgeId, InstanceId};
use kn_sched::{Cycle, MachineConfig, Program, ProgramError};
use std::collections::HashMap;

/// Run-time communication traffic model.
#[derive(Clone, Copy, Debug)]
pub struct TrafficModel {
    /// Fluctuation factor: actual message cost is
    /// `estimate + (0 .. mm-1)`. `mm = 1` means no fluctuation.
    pub mm: u32,
    /// Seed for the per-message hash.
    pub seed: u64,
}

impl TrafficModel {
    /// The paper's three experimental settings.
    pub fn stable(seed: u64) -> Self {
        Self { mm: 1, seed }
    }

    /// Deterministic per-message fluctuation in `0..mm`.
    #[inline]
    pub fn fluctuation(&self, edge: EdgeId, iter: u32) -> u32 {
        if self.mm <= 1 {
            return 0;
        }
        // SplitMix64-style mix of (seed, edge, iter): uniform enough for a
        // traffic model and perfectly reproducible.
        let mut z = self
            .seed
            .wrapping_add((edge.0 as u64) << 32)
            .wrapping_add(iter as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z % self.mm as u64) as u32
    }
}

/// How to execute a program: interconnect capacity plus the event-queue
/// engine driving the discrete-event simulator. The single knob the
/// experiment drivers, CLI, and bench harness all plumb through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimOptions {
    /// Interconnect capacity model.
    pub link: LinkModel,
    /// Event-queue implementation (only consulted when the event engine
    /// runs; see [`SimOptions::run`]).
    pub engine: EventEngine,
}

impl SimOptions {
    /// One-message-at-a-time links with the default (calendar) engine.
    pub fn contended() -> Self {
        Self {
            link: LinkModel::SingleMessage,
            ..Self::default()
        }
    }

    /// Execute `prog` under these options. [`LinkModel::Unlimited`]
    /// dispatches to the fixpoint simulator ([`simulate`]) — the event
    /// engine reproduces it cycle for cycle (tested), and the fixpoint
    /// sweep is the cheaper of the two; [`LinkModel::SingleMessage`] runs
    /// the event engine with the chosen queue. Use [`simulate_event_with`]
    /// directly to force the event engine on uncontended links.
    pub fn run(
        &self,
        prog: &kn_sched::Program,
        g: &Ddg,
        m: &MachineConfig,
        traffic: &TrafficModel,
    ) -> Result<SimResult, ProgramError> {
        match self.link {
            LinkModel::Unlimited => simulate(prog, g, m, traffic),
            LinkModel::SingleMessage => {
                simulate_event_with(prog, g, m, traffic, self.link, self.engine)
            }
        }
    }
}

/// Per-processor execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycles spent executing instances.
    pub busy: Cycle,
    /// Completion time of the processor's last instance.
    pub finish: Cycle,
    /// Number of instances executed.
    pub executed: usize,
}

/// Result of a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Start cycle and processor per instance.
    pub start: HashMap<InstanceId, (usize, Cycle)>,
    /// Completion time of the whole program.
    pub makespan: Cycle,
    /// Cross-processor messages delivered.
    pub messages: u64,
    /// Total actual communication cycles across all messages.
    pub comm_cycles: u64,
    /// Per-processor statistics.
    pub procs: Vec<ProcStats>,
}

impl SimResult {
    /// Start cycle of an instance.
    pub fn start_of(&self, inst: InstanceId) -> Option<Cycle> {
        self.start.get(&inst).map(|&(_, t)| t)
    }

    /// Machine utilization: busy cycles over (processors × makespan).
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.procs.is_empty() {
            return 0.0;
        }
        let busy: Cycle = self.procs.iter().map(|p| p.busy).sum();
        busy as f64 / (self.makespan as f64 * self.procs.len() as f64)
    }
}

/// Sequential execution time: one processor, no communication — the `s` of
/// the paper's percentage-parallelism metric.
pub fn sequential_time(g: &Ddg, iters: u32) -> Cycle {
    g.body_latency() * iters as u64
}

/// Execute `prog` on the simulated multiprocessor.
///
/// ```
/// use kn_ddg::{DdgBuilder, InstanceId};
/// use kn_sched::{MachineConfig, Program};
/// use kn_sim::{simulate, TrafficModel};
///
/// let mut b = DdgBuilder::new();
/// let x = b.node("x");
/// let y = b.node("y");
/// b.dep(x, y);
/// let g = b.build().unwrap();
///
/// // y runs on another processor: one message, k = 3.
/// let m = MachineConfig::new(2, 3);
/// let prog = Program {
///     seqs: vec![
///         vec![InstanceId { node: x, iter: 0 }],
///         vec![InstanceId { node: y, iter: 0 }],
///     ],
///     iters: 1,
/// };
/// let r = simulate(&prog, &g, &m, &TrafficModel::stable(0)).unwrap();
/// assert_eq!(r.messages, 1);
/// assert_eq!(r.makespan, 4); // x: [0,1), message, y starts at 3
/// ```
///
/// Identical to `kn_sched::static_times` except that each message's cost is
/// the estimate plus the traffic model's fluctuation. Start times are the
/// least fixpoint of the dataflow constraints, computed by a work-list
/// sweep over processor heads; the result is therefore *the* asynchronous
/// execution (it does not depend on any event ordering).
pub fn simulate(
    prog: &Program,
    g: &Ddg,
    m: &MachineConfig,
    traffic: &TrafficModel,
) -> Result<SimResult, ProgramError> {
    // Dense per-instance tables (`node * iters + iter`); see `dense`.
    let d = dense::DenseProgram::build(prog, g)?;
    let total = prog.len();
    let nprocs = prog.processors();
    // `(proc, start)` per instance; `proc == u32::MAX` marks "not timed".
    let mut start: Vec<(u32, Cycle)> = vec![(u32::MAX, 0); d.table_len()];
    let mut head = vec![0usize; nprocs];
    let mut clock = vec![0 as Cycle; nprocs];
    let mut stats: Vec<ProcStats> = vec![ProcStats::default(); nprocs];
    let mut timed = 0usize;
    let mut makespan = 0;
    let mut messages = 0u64;
    let mut comm_cycles = 0u64;

    loop {
        let mut progress = false;
        for p in 0..nprocs {
            while head[p] < prog.seqs[p].len() {
                let inst = prog.seqs[p][head[p]];
                let mut ready: Cycle = clock[p];
                let mut ok = true;
                for (eid, e) in g.in_edges(inst.node) {
                    if e.distance > inst.iter {
                        continue;
                    }
                    let pred = InstanceId {
                        node: e.src,
                        iter: inst.iter - e.distance,
                    };
                    if d.proc_of(pred).is_some() {
                        match start[d.idx(pred)] {
                            (sp, st) if sp != u32::MAX => {
                                let fin = m.finish(st, g.latency(pred.node));
                                let r = if sp as usize == p {
                                    m.local_ready(fin)
                                } else {
                                    let cost = m.edge_cost(e) + traffic.fluctuation(eid, inst.iter);
                                    messages += 1;
                                    comm_cycles += cost as u64;
                                    m.remote_ready(fin, cost)
                                };
                                ready = ready.max(r);
                            }
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if !ok {
                    break;
                }
                let lat = g.latency(inst.node) as Cycle;
                let fin = ready + lat;
                start[d.idx(inst)] = (p as u32, ready);
                clock[p] = fin;
                stats[p].busy += lat;
                stats[p].finish = fin;
                stats[p].executed += 1;
                makespan = makespan.max(fin);
                head[p] += 1;
                timed += 1;
                progress = true;
            }
        }
        if timed == total {
            return Ok(SimResult {
                start: d.export_starts(prog, &start),
                makespan,
                messages,
                comm_cycles,
                procs: stats,
            });
        }
        if !progress {
            return Err(ProgramError::Deadlock { timed, total });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::DdgBuilder;
    use kn_sched::{cyclic_schedule, static_times, CyclicOptions, Placement, ScheduleTable};

    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    fn figure7_program(m: &MachineConfig, iters: u32) -> (Ddg, Program) {
        let g = figure7();
        let out = cyclic_schedule(&g, m, &CyclicOptions::default()).unwrap();
        let table = ScheduleTable::new(out.instantiate(iters));
        let prog = table.to_program(iters);
        (g, prog)
    }

    #[test]
    fn stable_traffic_reproduces_static_schedule_exactly() {
        // The pinning invariant: with mm = 1 (actual = estimated), the
        // asynchronous execution of the scheduled program gives exactly the
        // start times the scheduler computed.
        let m = MachineConfig::new(2, 2);
        let (g, prog) = figure7_program(&m, 12);
        let sim = simulate(&prog, &g, &m, &TrafficModel::stable(7)).unwrap();
        let stat = static_times(&prog, &g, &m).unwrap();
        assert_eq!(sim.makespan, stat.makespan);
        for (inst, &(p, t)) in &stat.start {
            assert_eq!(sim.start[inst], (p, t), "instance {inst}");
        }
    }

    #[test]
    fn fluctuation_only_delays() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = figure7_program(&m, 16);
        let base = simulate(&prog, &g, &m, &TrafficModel::stable(1)).unwrap();
        for mm in [2u32, 3, 5] {
            let noisy = simulate(&prog, &g, &m, &TrafficModel { mm, seed: 42 }).unwrap();
            assert!(
                noisy.makespan >= base.makespan,
                "mm={mm}: {} < {}",
                noisy.makespan,
                base.makespan
            );
            // Every instance starts no earlier than in the stable run
            // (monotonicity of the dataflow fixpoint).
            for (inst, &(_, t)) in &base.start {
                assert!(noisy.start[inst].1 >= t);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = figure7_program(&m, 10);
        let a = simulate(&prog, &g, &m, &TrafficModel { mm: 5, seed: 9 }).unwrap();
        let b = simulate(&prog, &g, &m, &TrafficModel { mm: 5, seed: 9 }).unwrap();
        assert_eq!(a.makespan, b.makespan);
        let c = simulate(&prog, &g, &m, &TrafficModel { mm: 5, seed: 10 }).unwrap();
        // Different seed: allowed to differ (and virtually always does).
        let _ = c;
    }

    #[test]
    fn message_accounting() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 3);
        let prog = Program {
            seqs: vec![
                vec![InstanceId { node: x, iter: 0 }],
                vec![InstanceId { node: y, iter: 0 }],
            ],
            iters: 1,
        };
        let sim = simulate(&prog, &g, &m, &TrafficModel::stable(0)).unwrap();
        assert_eq!(sim.messages, 1);
        assert_eq!(sim.comm_cycles, 3);
        // y starts at remote_ready(1, 3) = 3.
        assert_eq!(sim.start_of(InstanceId { node: y, iter: 0 }), Some(3));
    }

    #[test]
    fn utilization_bounds() {
        let m = MachineConfig::new(2, 2);
        let (g, prog) = figure7_program(&m, 20);
        let sim = simulate(&prog, &g, &m, &TrafficModel::stable(3)).unwrap();
        let u = sim.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn doacross_program_simulates() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let s = kn_doacross::doacross_schedule(&g, &m, 8, &Default::default()).unwrap();
        let sim = simulate(&s.program, &g, &m, &TrafficModel::stable(1)).unwrap();
        assert_eq!(sim.makespan, s.makespan());
        // Fluctuating traffic degrades DOACROSS too.
        let noisy = simulate(&s.program, &g, &m, &TrafficModel { mm: 5, seed: 1 }).unwrap();
        assert!(noisy.makespan >= sim.makespan);
    }

    #[test]
    fn sequential_time_is_body_latency_times_iters() {
        let g = figure7();
        assert_eq!(sequential_time(&g, 10), 50);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        let m = MachineConfig::new(1, 1);
        let prog = Program {
            seqs: vec![vec![
                InstanceId { node: y, iter: 0 },
                InstanceId { node: x, iter: 0 },
            ]],
            iters: 1,
        };
        assert!(matches!(
            simulate(&prog, &g, &m, &TrafficModel::stable(0)),
            Err(ProgramError::Deadlock { .. })
        ));
    }

    #[test]
    fn fluctuation_is_bounded_and_stable() {
        let t = TrafficModel { mm: 5, seed: 123 };
        for e in 0..20u32 {
            for i in 0..50u32 {
                let f = t.fluctuation(EdgeId(e), i);
                assert!(f < 5);
                assert_eq!(f, t.fluctuation(EdgeId(e), i), "deterministic");
            }
        }
        let stable = TrafficModel::stable(9);
        assert_eq!(stable.fluctuation(EdgeId(0), 0), 0);
    }

    #[test]
    fn pattern_schedule_stays_valid_under_mm_one() {
        // End-to-end: instantiate, convert to program, simulate, validate
        // the observed placement as a schedule.
        let m = MachineConfig::new(2, 2);
        let (g, prog) = figure7_program(&m, 8);
        let sim = simulate(&prog, &g, &m, &TrafficModel::stable(2)).unwrap();
        let placements: Vec<Placement> = sim
            .start
            .iter()
            .map(|(&inst, &(proc, start))| Placement { inst, proc, start })
            .collect();
        ScheduleTable::new(placements).validate(&g, &m).unwrap();
    }
}
