//! Dense per-instance indexing shared by the simulation engines.
//!
//! A [`kn_sched::Program`] normally covers a rectangular instance space —
//! every instance is `(node, iter)` with bounds discoverable in one pass —
//! so per-instance tables can be flat `Vec`s indexed by
//! `node * iters + iter` instead of `HashMap<InstanceId, _>`. On the
//! simulator hot paths (one lookup per dependence edge per instance) this
//! removes all hashing and heap churn.
//!
//! Hand-built programs are not obliged to be rectangular, though: a single
//! instance at iteration 10⁹ would stretch the rectangle to `nodes × 10⁹`
//! slots. When the rectangle is much larger than the instance count the
//! index falls back to a compact map — the pre-dense engines' behavior —
//! so degenerate programs stay cheap instead of aborting on allocation.

use kn_ddg::{Ddg, InstanceId};
use kn_sched::{Cycle, Program, ProgramError};
use std::collections::HashMap;

/// When the `nodes × iters` rectangle exceeds this many times the actual
/// instance count (plus slack for tiny programs), use the sparse fallback.
const SPARSE_FACTOR: usize = 8;
const SPARSE_SLACK: usize = 4096;

enum Index {
    /// `assign[node * iters + iter]`; `u32::MAX` marks "not in program".
    /// Slot index == flat rectangle index.
    Dense { iters: u32, assign: Vec<u32> },
    /// `(proc, slot)` per instance; slots are assigned 0..len in program
    /// order, so parallel tables stay `prog.len()`-sized.
    Sparse(HashMap<InstanceId, (u32, u32)>),
}

/// Processor-assignment table plus the index geometry for any other
/// per-instance table of the same program.
pub(crate) struct DenseProgram {
    nodes: usize,
    iters: u32,
    table_len: usize,
    index: Index,
}

impl DenseProgram {
    /// One pass over the program: find the bounds, build the assignment
    /// table, and reject duplicate instances (same check the map-based
    /// engines performed via `assignment().len()`).
    pub(crate) fn build(prog: &Program, g: &Ddg) -> Result<Self, ProgramError> {
        let mut nodes = g.node_count();
        let mut iters = prog.iters.max(1);
        for inst in prog.seqs.iter().flatten() {
            nodes = nodes.max(inst.node.0 as usize + 1);
            iters = iters.max(inst.iter + 1);
        }
        let rectangle = nodes.saturating_mul(iters as usize);
        if rectangle > prog.len().saturating_mul(SPARSE_FACTOR) + SPARSE_SLACK {
            let mut assign: HashMap<InstanceId, (u32, u32)> = HashMap::with_capacity(prog.len());
            let mut slot = 0u32;
            for (p, seq) in prog.seqs.iter().enumerate() {
                for &inst in seq {
                    if assign.insert(inst, (p as u32, slot)).is_some() {
                        return Err(ProgramError::DuplicateInstance);
                    }
                    slot += 1;
                }
            }
            return Ok(Self {
                nodes,
                iters,
                table_len: prog.len(),
                index: Index::Sparse(assign),
            });
        }
        let mut assign = vec![u32::MAX; rectangle];
        for (p, seq) in prog.seqs.iter().enumerate() {
            for &inst in seq {
                let i = inst.node.0 as usize * iters as usize + inst.iter as usize;
                if assign[i] != u32::MAX {
                    return Err(ProgramError::DuplicateInstance);
                }
                assign[i] = p as u32;
            }
        }
        Ok(Self {
            nodes,
            iters,
            table_len: rectangle,
            index: Index::Dense { iters, assign },
        })
    }

    /// Size for a parallel per-instance table.
    #[inline]
    pub(crate) fn table_len(&self) -> usize {
        self.table_len
    }

    /// Slot of an instance **known to be part of the program** (e.g. taken
    /// from its `seqs`, or positively identified via [`Self::proc_of`]).
    #[inline]
    pub(crate) fn idx(&self, inst: InstanceId) -> usize {
        match &self.index {
            Index::Dense { iters, .. } => {
                debug_assert!((inst.node.0 as usize) < self.nodes && inst.iter < self.iters);
                inst.node.0 as usize * *iters as usize + inst.iter as usize
            }
            Index::Sparse(map) => map[&inst].1 as usize,
        }
    }

    /// Processor of `inst`, or `None` when the instance is not part of the
    /// program (including instances outside the rectangular bounds, e.g. a
    /// successor `iter + distance` past the last iteration).
    #[inline]
    pub(crate) fn proc_of(&self, inst: InstanceId) -> Option<usize> {
        match &self.index {
            Index::Dense { iters, assign } => {
                if inst.node.0 as usize >= self.nodes || inst.iter >= *iters {
                    return None;
                }
                let p = assign[inst.node.0 as usize * *iters as usize + inst.iter as usize];
                (p != u32::MAX).then_some(p as usize)
            }
            Index::Sparse(map) => map.get(&inst).map(|&(p, _)| p as usize),
        }
    }

    /// Convert a per-slot `(proc, start)` table (proc `u32::MAX` = never
    /// started) into the public `SimResult` map.
    pub(crate) fn export_starts(
        &self,
        prog: &Program,
        starts: &[(u32, Cycle)],
    ) -> HashMap<InstanceId, (usize, Cycle)> {
        let mut out = HashMap::with_capacity(prog.len());
        for &inst in prog.seqs.iter().flatten() {
            let (p, t) = starts[self.idx(inst)];
            if p != u32::MAX {
                out.insert(inst, (p as usize, t));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::{DdgBuilder, NodeId};

    fn inst(node: u32, iter: u32) -> InstanceId {
        InstanceId {
            node: NodeId(node),
            iter,
        }
    }

    fn two_node_graph() -> Ddg {
        let mut b = DdgBuilder::new();
        b.node("x");
        b.node("y");
        b.build().unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let g = two_node_graph();
        let prog = Program {
            seqs: vec![vec![inst(0, 0), inst(0, 1)], vec![inst(1, 0)]],
            iters: 2,
        };
        let d = DenseProgram::build(&prog, &g).unwrap();
        assert_eq!(d.proc_of(inst(0, 0)), Some(0));
        assert_eq!(d.proc_of(inst(0, 1)), Some(0));
        assert_eq!(d.proc_of(inst(1, 0)), Some(1));
        assert_eq!(d.proc_of(inst(1, 1)), None, "in bounds but absent");
        assert_eq!(d.proc_of(inst(1, 7)), None, "iteration out of bounds");
        assert_eq!(d.proc_of(inst(9, 0)), None, "node out of bounds");
    }

    #[test]
    fn duplicates_rejected() {
        let g = two_node_graph();
        let prog = Program {
            seqs: vec![vec![inst(0, 0)], vec![inst(0, 0)]],
            iters: 1,
        };
        assert!(matches!(
            DenseProgram::build(&prog, &g),
            Err(ProgramError::DuplicateInstance)
        ));
    }

    #[test]
    fn bounds_cover_instances_beyond_declared_iters() {
        // Hand-built programs may exceed `prog.iters`; the table stretches.
        let g = two_node_graph();
        let prog = Program {
            seqs: vec![vec![inst(1, 5)]],
            iters: 1,
        };
        let d = DenseProgram::build(&prog, &g).unwrap();
        assert_eq!(d.proc_of(inst(1, 5)), Some(0));
        assert_eq!(d.proc_of(inst(1, 4)), None);
    }

    #[test]
    fn export_skips_unstarted() {
        let g = two_node_graph();
        let prog = Program {
            seqs: vec![vec![inst(0, 0), inst(1, 0)]],
            iters: 1,
        };
        let d = DenseProgram::build(&prog, &g).unwrap();
        let mut starts = vec![(u32::MAX, 0); d.table_len()];
        starts[d.idx(inst(0, 0))] = (0, 3);
        let m = d.export_starts(&prog, &starts);
        assert_eq!(m.len(), 1);
        assert_eq!(m[&inst(0, 0)], (0, 3));
    }

    #[test]
    fn sparse_and_dense_indexing_yield_identical_sim_results() {
        // The same degenerate program, straddling the SPARSE_FACTOR
        // threshold from both sides: the graph's node count sets the
        // rectangle size, so padding the graph with isolated (never
        // instantiated) nodes pushes the identical program from the dense
        // index into the sparse fallback without changing its semantics.
        // Every engine must produce byte-identical `SimResult`s on both.
        use crate::{simulate, simulate_event_with, EventEngine, LinkModel, TrafficModel};

        let build_graph = |pads: usize| {
            let mut b = kn_ddg::DdgBuilder::new();
            let x = b.node("x");
            let y = b.node("y");
            b.dep(x, y);
            for i in 0..pads {
                b.node(format!("pad{i}"));
            }
            b.build().unwrap()
        };
        // len = 2, iters = 41 -> sparse iff nodes * 41 > 2 * 8 + 4096.
        let dense_g = build_graph(98); // 100 * 41 = 4100 <= 4112
        let sparse_g = build_graph(99); // 101 * 41 = 4141 > 4112
        let prog = Program {
            seqs: vec![vec![inst(0, 40)], vec![inst(1, 40)]],
            iters: 41,
        };
        assert!(matches!(
            DenseProgram::build(&prog, &dense_g).unwrap().index,
            Index::Dense { .. }
        ));
        assert!(matches!(
            DenseProgram::build(&prog, &sparse_g).unwrap().index,
            Index::Sparse(_)
        ));

        let m = kn_sched::MachineConfig::new(2, 3);
        let t = TrafficModel { mm: 3, seed: 17 };
        let a = simulate(&prog, &dense_g, &m, &t).unwrap();
        let b = simulate(&prog, &sparse_g, &m, &t).unwrap();
        assert_eq!(a, b, "fixpoint: dense vs sparse");
        assert!(a.makespan > 0 && a.messages == 1);
        for link in [LinkModel::Unlimited, LinkModel::SingleMessage] {
            for engine in [EventEngine::Heap, EventEngine::Calendar] {
                let a = simulate_event_with(&prog, &dense_g, &m, &t, link, engine).unwrap();
                let b = simulate_event_with(&prog, &sparse_g, &m, &t, link, engine).unwrap();
                assert_eq!(a, b, "event {link:?} {engine:?}: dense vs sparse");
            }
        }
    }

    #[test]
    fn degenerate_high_iteration_uses_sparse_fallback() {
        // One instance at iteration 2^31: the rectangle would be ~2 * 2^31
        // slots (> 8 GB of u32); the sparse index keeps it at one entry.
        let g = two_node_graph();
        let prog = Program {
            seqs: vec![vec![inst(1, 1 << 31)], vec![inst(0, 0)]],
            iters: 1,
        };
        let d = DenseProgram::build(&prog, &g).unwrap();
        assert!(matches!(d.index, Index::Sparse(_)));
        assert_eq!(d.table_len(), 2);
        assert_eq!(d.proc_of(inst(1, 1 << 31)), Some(0));
        assert_eq!(d.proc_of(inst(0, 0)), Some(1));
        assert_eq!(d.proc_of(inst(0, 7)), None);
        // Slots are distinct and within the table.
        let (a, b) = (d.idx(inst(1, 1 << 31)), d.idx(inst(0, 0)));
        assert!(a != b && a < 2 && b < 2);
        // Duplicates still rejected in sparse mode.
        let dup = Program {
            seqs: vec![vec![inst(1, 1 << 31)], vec![inst(1, 1 << 31)]],
            iters: 1,
        };
        assert!(matches!(
            DenseProgram::build(&dup, &g),
            Err(ProgramError::DuplicateInstance)
        ));
    }
}
