//! The event-engine contract, pinned three ways:
//!
//! 1. **Golden sims** — exact `SimResult` scalars for contended
//!    long-ish-horizon runs of the paper's Figure 7 loop, so any change to
//!    event ordering (tie-break, queue swap) that shifts observable
//!    behavior fails loudly;
//! 2. **Corpus equivalence** — on every paper workload (both our schedule
//!    and DOACROSS's), the heap and calendar queues produce byte-identical
//!    `SimResult`s across link models and traffic settings;
//! 3. **Property equivalence** — the same, over the §4 random-loop
//!    distribution, plus a long-horizon fanout program whose arrival
//!    backlog forces the calendar queue through its overflow, grow, and
//!    jump paths.

use kn_ddg::{DdgBuilder, InstanceId};
use kn_sched::{schedule_loop, MachineConfig, Program};
use kn_sim::{
    simulate, simulate_event_with, EventEngine, LinkModel, SimOptions, SimResult, TrafficModel,
};
use kn_workloads::{random_cyclic_loop, RandomLoopConfig, Workload};
use proptest::prelude::*;

const ENGINES: [EventEngine; 2] = [EventEngine::Heap, EventEngine::Calendar];
const LINKS: [LinkModel; 2] = [LinkModel::Unlimited, LinkModel::SingleMessage];

fn program_for(w: &Workload, iters: u32) -> (MachineConfig, Program) {
    let m = MachineConfig::new(w.procs, w.k);
    let s = schedule_loop(&w.graph, &m, iters, &Default::default()).expect("schedulable");
    (m, s.program)
}

fn assert_engines_agree(prog: &Program, g: &kn_ddg::Ddg, m: &MachineConfig, label: &str) {
    for link in LINKS {
        for mm in [1u32, 3, 5] {
            let t = TrafficModel {
                mm,
                seed: 0xC0FFEE ^ mm as u64,
            };
            let h = simulate_event_with(prog, g, m, &t, link, EventEngine::Heap).unwrap();
            let c = simulate_event_with(prog, g, m, &t, link, EventEngine::Calendar).unwrap();
            assert_eq!(h, c, "{label}: link={link:?} mm={mm}");
        }
    }
}

/// Golden contended runs of Figure 7: both engines must reproduce these
/// scalars exactly. The values were recorded from the heap engine *after*
/// the FIFO tie-break fix and pin today's behavior for future queue work.
#[test]
fn golden_contended_figure7() {
    let w = kn_workloads::figure7();
    let (m, prog) = program_for(&w, 200);
    let g = &w.graph;

    for engine in ENGINES {
        let stable = simulate_event_with(
            &prog,
            g,
            &m,
            &TrafficModel::stable(0),
            LinkModel::SingleMessage,
            engine,
        )
        .unwrap();
        assert_eq!(stable.makespan, 500, "{engine:?}");
        assert_eq!(stable.messages, 398, "{engine:?}");
        assert_eq!(stable.comm_cycles, 796, "{engine:?}");
        assert_eq!(
            stable.procs.iter().map(|p| p.executed).sum::<usize>(),
            prog.len(),
            "{engine:?}"
        );

        let noisy = simulate_event_with(
            &prog,
            g,
            &m,
            &TrafficModel { mm: 5, seed: 11 },
            LinkModel::SingleMessage,
            engine,
        )
        .unwrap();
        assert_eq!(noisy.makespan, 941, "{engine:?}");
        assert_eq!(noisy.messages, 398, "{engine:?}");
        assert_eq!(noisy.comm_cycles, 1573, "{engine:?}");
    }
}

/// The default engine is the calendar queue, and `SimOptions` routes
/// contended runs through it.
#[test]
fn default_engine_and_sim_options_dispatch() {
    let w = kn_workloads::figure7();
    let (m, prog) = program_for(&w, 60);
    let g = &w.graph;
    let t = TrafficModel { mm: 3, seed: 4 };

    assert_eq!(SimOptions::default().engine, EventEngine::Calendar);
    // SimOptions with unlimited links = the fixpoint simulator.
    let fix: SimResult = simulate(&prog, g, &m, &t).unwrap();
    assert_eq!(SimOptions::default().run(&prog, g, &m, &t).unwrap(), fix);
    // Contended SimOptions = the event engine under SingleMessage.
    let ev = kn_sim::simulate_event(&prog, g, &m, &t, LinkModel::SingleMessage).unwrap();
    assert_eq!(SimOptions::contended().run(&prog, g, &m, &t).unwrap(), ev);
    for engine in ENGINES {
        let opts = SimOptions {
            link: LinkModel::SingleMessage,
            engine,
        };
        assert_eq!(opts.run(&prog, g, &m, &t).unwrap(), ev, "{engine:?}");
    }
}

/// Heap and calendar queues agree byte for byte on every paper workload,
/// for both our schedule and the DOACROSS baseline.
#[test]
fn corpus_engines_agree() {
    for w in [
        kn_workloads::figure3(),
        kn_workloads::figure7(),
        kn_workloads::cytron86(),
        kn_workloads::livermore18(),
        kn_workloads::elliptic(),
    ] {
        let (m, prog) = program_for(&w, 40);
        assert_engines_agree(&prog, &w.graph, &m, w.name);

        let da = kn_doacross::doacross_schedule(&w.graph, &m, 40, &Default::default())
            .expect("doacross schedulable");
        assert_engines_agree(&da.program, &w.graph, &m, &format!("{} doacross", w.name));
    }
}

/// A producer feeding remote consumers for many iterations builds an
/// arrival backlog whose span far exceeds the calendar's initial ring, so
/// this exercises overflow parking, lazy growth, and empty-ring jumps —
/// and the engines must still agree exactly.
#[test]
fn long_horizon_fanout_engines_agree() {
    let consumers = 3usize;
    let iters = 4_000u32;
    let mut b = DdgBuilder::new();
    let src = b.node("src");
    let sinks: Vec<_> = (0..consumers).map(|i| b.node(format!("s{i}"))).collect();
    for &s in &sinks {
        b.dep(src, s);
    }
    let g = b.build().unwrap();
    let m = MachineConfig::new(consumers + 1, 3);
    let mut seqs = vec![(0..iters)
        .map(|iter| InstanceId { node: src, iter })
        .collect::<Vec<_>>()];
    for &s in &sinks {
        seqs.push(
            (0..iters)
                .map(|iter| InstanceId { node: s, iter })
                .collect(),
        );
    }
    let prog = Program { seqs, iters };
    assert_engines_agree(&prog, &g, &m, "fanout");

    // And the backlog really bites: contended makespan far exceeds free.
    let t = TrafficModel::stable(0);
    let free = simulate_event_with(
        &prog,
        &g,
        &m,
        &t,
        LinkModel::Unlimited,
        EventEngine::Calendar,
    )
    .unwrap();
    let tight = simulate_event_with(
        &prog,
        &g,
        &m,
        &t,
        LinkModel::SingleMessage,
        EventEngine::Calendar,
    )
    .unwrap();
    assert!(
        tight.makespan > 2 * free.makespan,
        "contention dominates: {} vs {}",
        tight.makespan,
        free.makespan
    );
}

fn small_cfg(nodes: usize) -> RandomLoopConfig {
    RandomLoopConfig {
        nodes,
        lcds: nodes / 2,
        sds: nodes / 2,
        min_latency: 1,
        max_latency: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Over the §4 random-loop distribution: schedule, then require the
    /// two queues to produce byte-identical results under both link
    /// models and fluctuating traffic.
    #[test]
    fn random_loops_engines_agree(
        seed in 0u64..4000,
        nodes in 4usize..12,
        k in 0u32..4,
        procs in 2usize..6,
        mm in 1u32..5,
    ) {
        let g = random_cyclic_loop(seed, &small_cfg(nodes));
        let m = MachineConfig::new(procs, k);
        let s = schedule_loop(&g, &m, 16, &Default::default()).unwrap();
        let t = TrafficModel { mm, seed };
        for link in LINKS {
            let h = simulate_event_with(&s.program, &g, &m, &t, link, EventEngine::Heap).unwrap();
            let c =
                simulate_event_with(&s.program, &g, &m, &t, link, EventEngine::Calendar).unwrap();
            prop_assert_eq!(&h, &c, "seed={} link={:?}", seed, link);
        }
    }
}
