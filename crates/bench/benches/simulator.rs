//! Simulated-multiprocessor throughput: instances executed per second for
//! long programs, stable and fluctuating traffic, plus the threaded
//! runtime for comparison (a real machine executing the same program).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kn_core::prelude::*;
use kn_core::runtime::{run_threaded, Semantics};
use kn_core::sim::{simulate, TrafficModel};
use kn_core::workloads;

fn figure7_program(iters: u32) -> (kn_core::ddg::Ddg, MachineConfig, kn_core::sched::Program) {
    let w = workloads::figure7();
    let m = MachineConfig::new(w.procs, w.k);
    let s = schedule_loop(&w.graph, &m, iters, &Default::default()).unwrap();
    (w.graph, m, s.program)
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for iters in [100u32, 1000, 5000] {
        let (g, m, prog) = figure7_program(iters);
        group.throughput(Throughput::Elements(prog.len() as u64));
        group.bench_with_input(BenchmarkId::new("stable", iters), &prog, |b, prog| {
            b.iter(|| simulate(prog, &g, &m, &TrafficModel::stable(1)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("mm5", iters), &prog, |b, prog| {
            b.iter(|| simulate(prog, &g, &m, &TrafficModel { mm: 5, seed: 1 }).unwrap())
        });
    }
    group.finish();
}

fn bench_threaded_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(20);
    let (g, _m, prog) = figure7_program(2000);
    let sem = Semantics::hashing(&g);
    group.throughput(Throughput::Elements(prog.len() as u64));
    group.bench_function("threaded_figure7_2000", |b| {
        b.iter(|| run_threaded(&g, &sem, &prog).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_simulate, bench_threaded_runtime);
criterion_main!(benches);
