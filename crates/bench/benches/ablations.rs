//! Design-choice ablations as benchmarks: arrival convention, detector
//! choice, DOACROSS reordering policy, and the cost of the §3 merge
//! heuristic's measurement step.

use criterion::{criterion_group, criterion_main, Criterion};
use kn_core::doacross::{choose_order, Reorder};
use kn_core::experiments::ablate;
use kn_core::prelude::*;
use kn_core::sched::FullOptions;
use kn_core::workloads;

fn bench_arrival(c: &mut Criterion) {
    c.bench_function("ablate/arrival_5seeds", |b| {
        b.iter(|| ablate::arrival_ablation(&[1, 2, 3, 4, 5], 3, 8))
    });
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate/detector");
    group.sample_size(20);
    group.bench_function("both_5seeds", |b| {
        b.iter(|| {
            let r = ablate::detector_ablation(&[1, 2, 3, 4, 5], 3, 8);
            assert_eq!(r.agreements, 5, "detectors must agree");
            r
        })
    });
    group.finish();
}

fn bench_misestimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate/misestimation");
    group.sample_size(10);
    group.bench_function("k1_to_6", |b| {
        b.iter(|| ablate::misestimation_ablation(&[1, 2, 3], &[1, 2, 3, 4, 6], 3, 8, 60))
    });
    group.finish();
}

fn bench_doacross_reorder(c: &mut Criterion) {
    let w = workloads::cytron86();
    let m = MachineConfig::new(5, w.k);
    let mut group = c.benchmark_group("ablate/doacross_reorder");
    group.bench_function("natural", |b| {
        b.iter(|| choose_order(&w.graph, &m, &Reorder::Natural))
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            choose_order(
                &w.graph,
                &m,
                &Reorder::Best {
                    exhaustive_cap: 5040,
                },
            )
        })
    });
    group.finish();
}

fn bench_merge_heuristic(c: &mut Criterion) {
    let w = workloads::elliptic();
    let m = MachineConfig::new(w.procs, w.k);
    let mut group = c.benchmark_group("ablate/flow_merge");
    group.sample_size(20);
    group.bench_function("with_merge", |b| {
        b.iter(|| schedule_loop(&w.graph, &m, 60, &FullOptions::default()).unwrap())
    });
    group.bench_function("separate_only", |b| {
        let opts = FullOptions {
            merge_tolerance: None,
            ..FullOptions::default()
        };
        b.iter(|| schedule_loop(&w.graph, &m, 60, &opts).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arrival,
    bench_detectors,
    bench_misestimation,
    bench_doacross_reorder,
    bench_merge_heuristic
);
criterion_main!(benches);
