//! Regenerate every §3 figure comparison (Figures 3, 7/8, 9/10, 11, 12)
//! and assert the paper's shape each time the bench runs — a benchmark
//! that doubles as a regression gate on the scientific result.

use criterion::{criterion_group, criterion_main, Criterion};
use kn_core::experiments::figures::{doacross_report, figure_report};
use kn_core::workloads;

fn bench_figure_reports(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    for (w, check) in [
        (
            workloads::figure3(),
            Box::new(|_o: f64, _d: f64| {}) as Box<dyn Fn(f64, f64)>,
        ),
        (
            workloads::figure7(),
            Box::new(|o: f64, d: f64| {
                assert!(o >= 40.0 && d == 0.0, "fig7: {o} vs {d}");
            }),
        ),
        (
            workloads::cytron86(),
            Box::new(|o: f64, d: f64| {
                assert!(o > 55.0 && d < 45.0, "cytron86: {o} vs {d}");
            }),
        ),
        (
            workloads::livermore18(),
            Box::new(|o: f64, d: f64| {
                assert!(o > 40.0 && d < o, "livermore18: {o} vs {d}");
            }),
        ),
        (
            workloads::elliptic(),
            Box::new(|o: f64, d: f64| {
                assert!(o > 15.0 && d == 0.0, "elliptic: {o} vs {d}");
            }),
        ),
    ] {
        group.bench_function(w.name, |b| {
            b.iter(|| {
                let r = figure_report(&w, 100);
                check(r.ours_sp, r.doacross_sp);
                r
            })
        });
    }
    group.finish();
}

fn bench_figure8(c: &mut Criterion) {
    let w = workloads::figure7();
    c.bench_function("figures/figure8_doacross_grids", |b| {
        b.iter(|| doacross_report(&w, 3, 4))
    });
}

criterion_group!(benches, bench_figure_reports, bench_figure8);
criterion_main!(benches);
