//! Regenerate the paper's Table 1 (random loops × traffic fluctuation).
//!
//! `table1/row` times one loop through the full protocol (generate →
//! schedule both ways → simulate under mm = 1/3/5); `table1/full_small`
//! runs a condensed table end to end and asserts the paper's Table 1(b)
//! shape (ours ahead on average, ratio not collapsing with traffic).

use criterion::{criterion_group, criterion_main, Criterion};
use kn_core::experiments::table1::{run_table1, Table1Config};

fn bench_row(c: &mut Criterion) {
    c.bench_function("table1/row", |b| {
        let cfg = Table1Config {
            seeds: vec![1],
            iters: 100,
            ..Default::default()
        };
        b.iter(|| run_table1(&cfg))
    });
}

fn bench_full_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("full_small", |b| {
        let cfg = Table1Config {
            seeds: (1..=8).collect(),
            iters: 100,
            ..Default::default()
        };
        b.iter(|| {
            let r = run_table1(&cfg);
            assert!(r.avg_ours[0] > r.avg_doacross[0], "Table 1(b) shape");
            assert!(
                *r.factor.last().unwrap() >= r.factor[0] * 0.7,
                "factor robust to traffic: {:?}",
                r.factor
            );
            r
        })
    });
    group.finish();
}

criterion_group!(benches, bench_row, bench_full_small);
criterion_main!(benches);
