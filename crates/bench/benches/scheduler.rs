//! Scheduler performance: how fast `Cyclic-sched` finds its pattern.
//!
//! The paper's complexity discussion (§2.2) says `M` (unrollings to find a
//! pattern) "is typically very small, less than 10 in all the examples we
//! ran" and that pattern detection "approached O(N)" in practice. These
//! benches measure exactly that: end-to-end scheduling time per workload
//! and per random-loop size, for both detectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kn_core::sched::{cyclic_schedule, CyclicOptions, DetectorKind, MachineConfig};
use kn_core::workloads::{self, random_cyclic_loop, RandomLoopConfig};

fn bench_paper_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("cyclic_sched/paper");
    for w in [
        workloads::figure3(),
        workloads::figure7(),
        workloads::cytron86(),
        workloads::livermore18(),
        workloads::elliptic(),
    ] {
        let cls = kn_core::ddg::classify(&w.graph);
        let (g, _) = w.graph.induced_subgraph(&cls.cyclic);
        let m = MachineConfig::new(w.procs, w.k);
        group.bench_function(w.name, |b| {
            b.iter(|| cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_random_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cyclic_sched/random");
    for nodes in [10usize, 20, 40, 80] {
        let cfg = RandomLoopConfig {
            nodes,
            lcds: nodes / 2,
            sds: nodes / 2,
            min_latency: 1,
            max_latency: 3,
        };
        let g = random_cyclic_loop(1, &cfg);
        let m = MachineConfig::new(8, 3);
        group.bench_with_input(BenchmarkId::new("state", nodes), &g, |b, g| {
            b.iter(|| cyclic_schedule(g, &m, &CyclicOptions::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("window", nodes), &g, |b, g| {
            b.iter(|| {
                cyclic_schedule(
                    g,
                    &m,
                    &CyclicOptions {
                        detector: DetectorKind::ConfigurationWindow,
                        ..CyclicOptions::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_loop");
    for w in [workloads::cytron86(), workloads::livermore18()] {
        let m = MachineConfig::new(w.procs, w.k);
        group.bench_function(w.name, |b| {
            b.iter(|| {
                kn_core::sched::schedule_loop(&w.graph, &m, 100, &Default::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_paper_workloads,
    bench_random_sizes,
    bench_full_pipeline
);
criterion_main!(benches);
