//! `bench-compare` — the ROADMAP's bench trajectory gate.
//!
//! Compares a candidate `BENCH_sched.json` against a committed baseline
//! and exits non-zero when a tracked number regressed beyond the budget.
//!
//! Usage: `bench-compare <baseline.json> <candidate.json>
//!         [--max-regress PCT] [--ratios-only] [--service-max-regress PCT]`
//!
//!   --max-regress PCT  regression budget in percent (default 25)
//!   --ratios-only      gate only machine-portable speedup ratios, not
//!                      absolute ns/op — the right mode when baseline and
//!                      candidate ran on different machines (CI's shared
//!                      runners vs the committed reference measurement)
//!   --service-max-regress PCT
//!                      tighter budget for the service_entries section
//!                      only. `--service-max-regress 10` is the
//!                      "lifecycle layer keeps >= 0.9x of the PR 3
//!                      service throughput" gate.

use kn_bench::trajectory::{compare, parse, GatePolicy};
use std::process::ExitCode;

fn load(path: &str) -> Result<kn_bench::trajectory::BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ratios_only = false;
    let mut max_regress_pct = 25.0;
    let mut service_max_regress_pct = None;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ratios-only" => ratios_only = true,
            "--max-regress" => match it.next().and_then(|v| v.parse().ok()) {
                Some(pct) => max_regress_pct = pct,
                None => {
                    eprintln!("bench-compare: --max-regress needs a numeric value");
                    return ExitCode::from(2);
                }
            },
            "--service-max-regress" => match it.next().and_then(|v| v.parse().ok()) {
                Some(pct) => service_max_regress_pct = Some(pct),
                None => {
                    eprintln!("bench-compare: --service-max-regress needs a numeric value");
                    return ExitCode::from(2);
                }
            },
            _ => paths.push(a),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench-compare <baseline.json> <candidate.json> \
             [--max-regress PCT] [--ratios-only]"
        );
        return ExitCode::from(2);
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench-compare: {e}");
                }
            }
            return ExitCode::from(2);
        }
    };
    let policy = GatePolicy {
        max_regress_pct,
        ratios_only,
        service_max_regress_pct,
    };
    let violations = compare(&baseline, &candidate, policy);
    if violations.is_empty() {
        println!(
            "bench-compare: OK ({} sched + {} event + {} service + {} lifecycle + {} overload + {} cache + {} xform entries gated, budget {}%{}{})",
            baseline.entries.len(),
            baseline.event_entries.len(),
            baseline.service_entries.len(),
            baseline.lifecycle_entries.len(),
            candidate.overload_entries.len(),
            candidate.cache_entries.len(),
            candidate.xform_entries.len(),
            max_regress_pct,
            match service_max_regress_pct {
                Some(pct) => format!(", service {pct}%"),
                None => String::new(),
            },
            if ratios_only { ", ratios only" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench-compare: {} regression(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
