//! `kn-bench` — machine-readable scheduler + simulator benchmark harness.
//!
//! Measures end-to-end `cyclic_schedule` time (ns/op, median of samples)
//! for the five paper workloads and random 10/20/40/80-node loops, for
//! both the optimized arena core and the retained map-based reference
//! (`kn_sched::reference`), plus the event engine's heap vs calendar
//! queues on long-horizon `SingleMessage` (contended) simulations, plus
//! the batch scheduling service's throughput against the sequential
//! driver on mixed request batches (`service_entries`, schema v3), plus
//! the response cache against a duplicate-heavy seeded Zipf mix and a
//! cold all-unique mix (`cache_entries`, schema v6), plus the loop
//! transformation pipeline's MII trajectory on the transform-family
//! corpus (`xform_entries`, schema v7), and writes the
//! results plus speedup ratios to `BENCH_sched.json`. Future PRs compare
//! their JSON against this one to see the perf trajectory (see the
//! `bench-compare` binary and `kn_bench::trajectory`).
//!
//! Usage: `kn-bench [--out PATH] [--quick]`
//!   --out PATH   output file (default BENCH_sched.json)
//!   --quick      fewer samples / shorter budget / shorter sims (CI smoke)

use kn_core::ddg::{classify, Ddg, DdgBuilder, InstanceId};
use kn_core::sched::reference::cyclic_schedule_ref;
use kn_core::sched::{
    cyclic_schedule, schedule_loop, CyclicOptions, MachineConfig, PatternOutcome, Program,
};
use kn_core::service::faultinject::FaultPlan;
use kn_core::service::loadgen::{self, LoadPlan};
use kn_core::service::{
    self, Deadline, LoopRequest, LoopSource, Priority, ScheduleRequest, Service, ServiceConfig,
    SubmitOptions, SubmitOutcome,
};
use kn_core::sim::{simulate_event_with, EventEngine, LinkModel, SimOptions, TrafficModel};
use kn_core::workloads::{self, random_cyclic_loop_min, RandomLoopConfig};
use kn_core::xform::{transform_loop, TransformOptions};
use std::sync::Arc;
use std::time::Instant;

struct Case {
    name: String,
    graph: Ddg,
    machine: MachineConfig,
}

struct Entry {
    name: String,
    nodes: usize,
    arena_ns: f64,
    reference_ns: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.arena_ns > 0.0 {
            self.reference_ns / self.arena_ns
        } else {
            f64::INFINITY
        }
    }
}

fn cyclic_core(g: &Ddg) -> Option<Ddg> {
    let c = classify(g);
    if c.cyclic.is_empty() {
        return None;
    }
    Some(g.induced_subgraph(&c.cyclic).0)
}

fn cases() -> Vec<Case> {
    let mut cases = Vec::new();
    for w in [
        workloads::figure3(),
        workloads::figure7(),
        workloads::cytron86(),
        workloads::livermore18(),
        workloads::elliptic(),
    ] {
        let graph = cyclic_core(&w.graph).expect("paper workloads have Cyclic cores");
        cases.push(Case {
            name: w.name.to_string(),
            graph,
            machine: MachineConfig::new(w.procs, w.k),
        });
    }
    for nodes in [10usize, 20, 40, 80] {
        // Dense enough that the Cyclic core keeps most of the loop
        // (~60-90% of `nodes`); the sparse paper recipe mostly collapses
        // to 2-4 node cores, which would benchmark the wrong thing.
        let cfg = RandomLoopConfig {
            nodes,
            lcds: nodes,
            sds: 2 * nodes,
            min_latency: 1,
            max_latency: 3,
        };
        cases.push(Case {
            name: format!("random{nodes}"),
            graph: random_cyclic_loop_min(1, &cfg, nodes / 2),
            machine: MachineConfig::new(8, 3),
        });
    }
    cases
}

/// A long-horizon contended simulation case for the event-engine bench.
struct EventCase {
    name: String,
    graph: Ddg,
    machine: MachineConfig,
    prog: Program,
    traffic: TrafficModel,
}

struct EventEntry {
    name: String,
    iters: u32,
    events: u64,
    heap_ns: f64,
    calendar_ns: f64,
}

impl EventEntry {
    fn speedup(&self) -> f64 {
        if self.calendar_ns > 0.0 {
            self.heap_ns / self.calendar_ns
        } else {
            f64::INFINITY
        }
    }
}

/// The cases behind the ISSUE's "long-horizon contention sims become
/// cheap" claim:
///
/// * `fanout8` — one free-running producer feeding 7 remote consumers
///   over one-message links for `iters` iterations. The producer outruns
///   the links, so the pending-arrival backlog (and with it the heap's
///   `log n`) grows to hundreds of thousands of events — the calendar
///   queue's O(1) case and the acceptance gate (>= 2x over the heap).
/// * `figure7` — the paper's loop, `Cyclic-sched`-scheduled, under
///   contended links: a dependence-throttled sim whose queue stays small
///   (the calendar's break-even case, recorded for honesty).
fn event_cases(iters: u32) -> Vec<EventCase> {
    let mut cases = Vec::new();
    {
        let consumers = 7usize;
        let mut b = DdgBuilder::new();
        let src = b.node("src");
        let sinks: Vec<_> = (0..consumers).map(|i| b.node(format!("s{i}"))).collect();
        for &s in &sinks {
            b.dep(src, s);
        }
        let graph = b.build().unwrap();
        let mut seqs = vec![(0..iters)
            .map(|iter| InstanceId { node: src, iter })
            .collect::<Vec<_>>()];
        for &s in &sinks {
            seqs.push(
                (0..iters)
                    .map(|iter| InstanceId { node: s, iter })
                    .collect(),
            );
        }
        cases.push(EventCase {
            name: "fanout8".into(),
            graph,
            machine: MachineConfig::new(consumers + 1, 3),
            prog: Program { seqs, iters },
            traffic: TrafficModel::stable(1),
        });
    }
    {
        let w = workloads::figure7();
        let machine = MachineConfig::new(w.procs, w.k);
        let prog = schedule_loop(&w.graph, &machine, iters, &Default::default())
            .expect("figure7 schedulable")
            .program;
        cases.push(EventCase {
            name: "figure7".into(),
            graph: w.graph,
            machine,
            prog,
            traffic: TrafficModel { mm: 3, seed: 7 },
        });
    }
    cases
}

/// A service-throughput case: a fixed request batch, timed through the
/// sequential reference executor and through a persistent [`Service`].
struct ServiceCase {
    name: String,
    requests: Vec<ScheduleRequest>,
}

struct ServiceEntry {
    name: String,
    requests: usize,
    workers: usize,
    seq_ns: f64,
    service_ns: f64,
}

impl ServiceEntry {
    fn speedup(&self) -> f64 {
        if self.service_ns > 0.0 {
            self.seq_ns / self.service_ns
        } else {
            f64::INFINITY
        }
    }
}

/// The batches behind the service-vs-sequential-driver throughput gate:
///
/// * `corpus_mix` — the four big paper loops × both event engines × two
///   traffic settings on contended links: the mixed, embarrassingly
///   parallel request stream a deployed service would see.
/// * `table1_cells` — Table 1 experiment cells (one seed each), i.e. the
///   exact work `run_table1_par` now routes through the service.
fn service_cases(quick: bool) -> Vec<ServiceCase> {
    let loop_iters: u32 = if quick { 60 } else { 200 };
    let mut mix = Vec::new();
    for name in ["figure7", "cytron86", "livermore18", "elliptic"] {
        for engine in [EventEngine::Heap, EventEngine::Calendar] {
            for mm in [1u32, 3] {
                mix.push(ScheduleRequest::Loop(LoopRequest {
                    source: LoopSource::Corpus(name.to_string()),
                    iters: loop_iters,
                    sim: SimOptions {
                        link: LinkModel::SingleMessage,
                        engine,
                    },
                    traffic: TrafficModel { mm, seed: 1 },
                    ..LoopRequest::default()
                }));
            }
        }
    }
    let t1 = Arc::new(kn_core::experiments::table1::Table1Config {
        seeds: Vec::new(), // seeds ride on the requests, not the config
        iters: if quick { 40 } else { 80 },
        ..Default::default()
    });
    let cells = (1..=8u64)
        .map(|seed| ScheduleRequest::Table1Row {
            config: Arc::clone(&t1),
            seed,
        })
        .collect();
    vec![
        ServiceCase {
            name: "corpus_mix".into(),
            requests: mix,
        },
        ServiceCase {
            name: "table1_cells".into(),
            requests: cells,
        },
    ]
}

/// One request-lifecycle measurement (schema v4): the fault-tolerant
/// service under a seeded fault plan, bounded admission, and deadlines.
struct LifecycleEntry {
    name: String,
    workers: usize,
    requests: usize,
    rejected: u64,
    expired: u64,
    retries: u64,
    p50_ns: f64,
    p99_ns: f64,
    wall_ns: u64,
}

impl LifecycleEntry {
    fn rejection_rate(&self) -> f64 {
        self.rejected as f64 / self.requests.max(1) as f64
    }
    fn deadline_miss_rate(&self) -> f64 {
        self.expired as f64 / self.requests.max(1) as f64
    }
}

/// Run one batch through the lifecycle layer: 10% injected faults
/// (retried), a small admission queue (so backpressure events are real —
/// a `WouldBlock` is recorded, then the submitter waits for space), and a
/// generous per-request deadline (the enforcement path runs; misses stay
/// rare). Latency is per-request admission-to-completion.
fn lifecycle_run(name: &str, requests: &[ScheduleRequest], workers: usize) -> LifecycleEntry {
    let svc = Service::with_config(ServiceConfig {
        workers,
        queue_capacity: 4,
        fault_plan: Some(FaultPlan::seeded(0x5EED, 10)),
        ..ServiceConfig::default()
    });
    let t0 = Instant::now();
    let mut ids = Vec::with_capacity(requests.len());
    for req in requests {
        let opts = || SubmitOptions {
            deadline: Some(Deadline::after(std::time::Duration::from_secs(10))),
            ..SubmitOptions::default()
        };
        let id = match svc.try_submit(req.clone(), opts()) {
            SubmitOutcome::Accepted(id) => id,
            // Queue full: the backpressure event is recorded in stats;
            // wait for space so no request is lost.
            SubmitOutcome::WouldBlock => match svc.submit_opts(req.clone(), opts()) {
                SubmitOutcome::Accepted(id) => id,
                other => panic!("blocking admission failed: {other:?}"),
            },
            SubmitOutcome::Rejected(_) => panic!("service rejected during bench"),
        };
        ids.push(id);
    }
    let completed = svc.collect_detailed(&ids, None);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let stats = svc.stats();
    let mut lat: Vec<u64> = completed.iter().map(|c| c.latency_ns).collect();
    lat.sort_unstable();
    let pick = |q: f64| lat[(((lat.len() - 1) as f64) * q) as usize] as f64;
    LifecycleEntry {
        name: name.to_string(),
        workers,
        requests: requests.len(),
        rejected: stats.rejected,
        expired: stats.expired,
        retries: stats.retries,
        p50_ns: pick(0.50),
        p99_ns: pick(0.99),
        wall_ns,
    }
}

/// One overload measurement (schema v5): the deterministic open-loop
/// 2×-saturation run (`kn_core::service::loadgen`) against the priority
/// lanes + brownout policy on a bounded queue. The recorded rates are
/// scheduling-policy outcomes — machine-independent by construction — so
/// `bench-compare` gates them as absolute invariants (High misses no
/// deadlines, Low sheds first), not as baseline-relative ratios.
struct OverloadEntry {
    name: String,
    workers: usize,
    total: u64,
    high_submitted: u64,
    high_expired: u64,
    high_shed: u64,
    normal_submitted: u64,
    normal_shed: u64,
    low_submitted: u64,
    low_shed: u64,
    replaced_workers: u64,
    over_high_water: bool,
}

impl OverloadEntry {
    fn high_miss_rate(&self) -> f64 {
        self.high_expired as f64 / self.high_submitted.max(1) as f64
    }
    fn normal_shed_rate(&self) -> f64 {
        self.normal_shed as f64 / self.normal_submitted.max(1) as f64
    }
    fn low_shed_rate(&self) -> f64 {
        self.low_shed as f64 / self.low_submitted.max(1) as f64
    }
}

fn overload_run(workers: usize, quick: bool) -> OverloadEntry {
    let svc = Service::with_config(ServiceConfig {
        workers,
        queue_capacity: 8,
        high_water: 4,
        ..ServiceConfig::default()
    });
    let plan = LoadPlan {
        total: if quick { 60 } else { 120 },
        ..LoadPlan::default()
    };
    let report = loadgen::run(&svc, &plan);
    let lane = |p: Priority| report.lane(p);
    OverloadEntry {
        name: "overload_2x".into(),
        workers,
        total: plan.total,
        high_submitted: lane(Priority::High).submitted,
        high_expired: lane(Priority::High).expired,
        high_shed: lane(Priority::High).total_shed(),
        normal_submitted: lane(Priority::Normal).submitted,
        normal_shed: lane(Priority::Normal).total_shed(),
        low_submitted: lane(Priority::Low).submitted,
        low_shed: lane(Priority::Low).total_shed(),
        replaced_workers: report.replaced_workers,
        over_high_water: report.over_high_water_seen,
    }
}

/// One response-cache measurement (schema v6): the same seeded arrival
/// stream (`service::loadgen`) through the service with the cache on
/// (capacity 64) and off, at a given worker count.
///
/// * `zipf8` — arrivals draw their traffic seed from Zipf(s=1) over 8
///   distinct values: the duplicate-heavy production mix. Hit rate and
///   miss count are deterministic functions of the draw sequence
///   (machine-independent), so the trajectory gate checks them as
///   absolute invariants; the cache-on/cache-off wall ratio is the
///   superlinear-throughput acceptance gate (>= 2x at 4 workers).
/// * `cold` — every arrival distinct: the cache can only add overhead
///   (fingerprint + insert + eviction churn past capacity). Hit rate is
///   exactly zero by construction and the wall ratio gates no-regress
///   (>= 0.9x of cache-off).
struct CacheEntry {
    name: String,
    workers: usize,
    total: u64,
    /// Distinct traffic seeds in the mix; `0` = all-unique (cold).
    distinct: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
    cached_wall_ns: u64,
    uncached_wall_ns: u64,
}

impl CacheEntry {
    /// Fraction of arrivals answered without a fresh computation. The
    /// hit/coalesce *split* depends on worker timing, but their sum is a
    /// pure function of the draw sequence.
    fn hit_rate(&self) -> f64 {
        (self.hits + self.coalesced) as f64 / self.total.max(1) as f64
    }
    fn speedup(&self) -> f64 {
        if self.cached_wall_ns > 0 {
            self.uncached_wall_ns as f64 / self.cached_wall_ns as f64
        } else {
            f64::INFINITY
        }
    }
}

fn cache_run(name: &str, distinct: Option<u64>, workers: usize, quick: bool) -> CacheEntry {
    let plan = LoadPlan {
        total: if quick { 120 } else { 400 },
        zipf_distinct: distinct,
        ..LoadPlan::default()
    };
    // Min-of-2 walls per mode; each rep gets a *fresh* service so every
    // run starts cold (a reused service would replay the previous rep's
    // cache and turn the cold mix into an all-hit one). Counters come
    // from the first cache-on rep — their gated combinations are
    // deterministic, the split is just a point sample.
    let mut walls = [u64::MAX; 2];
    let mut stats = None;
    for (slot, capacity) in [(0usize, 64usize), (1, 0)] {
        for rep in 0..2 {
            let svc = Service::with_config(ServiceConfig {
                workers,
                cache_capacity: capacity,
                ..ServiceConfig::default()
            });
            let t0 = Instant::now();
            loadgen::run(&svc, &plan);
            walls[slot] = walls[slot].min(t0.elapsed().as_nanos() as u64);
            if slot == 0 && rep == 0 {
                stats = Some(svc.stats());
            }
        }
    }
    let s = stats.expect("cache-on rep ran");
    CacheEntry {
        name: name.to_string(),
        workers,
        total: plan.total,
        distinct: distinct.unwrap_or(0),
        hits: s.cache_hits,
        misses: s.cache_misses,
        coalesced: s.cache_coalesced,
        evictions: s.cache_evictions,
        cached_wall_ns: walls[0],
        uncached_wall_ns: walls[1],
    }
}

/// One loop-transformation measurement (schema v7): a transform-family
/// corpus loop through the full pipeline (reduction recognition then
/// fission), recording the MII before/after and which passes fired. The
/// numbers are pure functions of the loop body — machine-independent —
/// so the trajectory gate checks them as absolute invariants: no entry
/// may get worse (improvement >= 1.0), and every recognized reduction
/// must collapse its recurrence (improvement >= 1.5 on the `reduction/`
/// family). The negatives (`reduction/scan`, `reduction/nonassoc`,
/// `fissionable/storage`) ride along at exactly 1.0 to pin that the
/// passes keep declining them.
struct XformEntry {
    name: String,
    reduce: String,
    fission: String,
    pieces: usize,
    mii_before: f64,
    mii_after: f64,
    improvement: f64,
    /// Whole-pipeline cost including the differential certification run
    /// (8 seeds x 48 iterations) — recorded, not gated.
    xform_ns: f64,
}

const XFORM_FAMILIES: &[&str] = &[
    "fissionable/twophase",
    "fissionable/islands",
    "fissionable/storage",
    "reduction/sum",
    "reduction/max",
    "reduction/scan",
    "reduction/nonassoc",
];

fn xform_run(name: &str, samples: usize, budget_ns: u64) -> XformEntry {
    let body = workloads::body_by_name(name).expect("transform family has a body");
    let opts = TransformOptions::all();
    let out = transform_loop(name, &body, &opts).expect("family transform certifies");
    let xform_ns = measure(samples, budget_ns, || {
        transform_loop(name, &body, &opts).unwrap()
    });
    XformEntry {
        name: name.to_string(),
        reduce: out.report.reduce.render(),
        fission: out.report.fission.render(),
        pieces: out.transformed.pieces.len(),
        mii_before: out.report.mii_before,
        mii_after: out.report.mii_after,
        improvement: out.improvement(),
        xform_ns,
    }
}

/// Median ns per call of `f`, over `samples` samples of a time-budgeted
/// inner loop (calibrated once so each sample runs long enough to trust).
fn measure<R>(samples: usize, budget_ns: u64, mut f: impl FnMut() -> R) -> f64 {
    // Calibrate.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let iters = (budget_ns / once).clamp(1, 100_000);

    let mut meds: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    meds.sort_by(|a, b| a.total_cmp(b));
    meds[meds.len() / 2]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_sched.json")
        .to_string();
    let (samples, budget_ns) = if quick {
        (5, 10_000_000)
    } else {
        (11, 50_000_000)
    };

    let opts = CyclicOptions::default();
    let mut entries = Vec::new();
    for case in cases() {
        let (g, m) = (&case.graph, &case.machine);
        // Sanity: both implementations agree before being timed.
        let a = cyclic_schedule(g, m, &opts).unwrap();
        let b = cyclic_schedule_ref(g, m, &opts).unwrap();
        match (&a, &b) {
            (PatternOutcome::Found(pa), PatternOutcome::Found(pb)) => {
                assert_eq!(pa.kernel, pb.kernel, "{}: kernels diverge", case.name);
            }
            (PatternOutcome::CapFallback(_), PatternOutcome::CapFallback(_)) => {}
            _ => panic!("{}: outcome kinds diverge", case.name),
        }

        let arena_ns = measure(samples, budget_ns, || cyclic_schedule(g, m, &opts).unwrap());
        let reference_ns = measure(samples, budget_ns, || {
            cyclic_schedule_ref(g, m, &opts).unwrap()
        });
        let e = Entry {
            name: case.name.clone(),
            nodes: g.node_count(),
            arena_ns,
            reference_ns,
        };
        println!(
            "{:<12} ({:>3} cyclic nodes)  arena {:>12.0} ns/op   reference {:>12.0} ns/op   speedup {:>5.2}x",
            e.name,
            e.nodes,
            e.arena_ns,
            e.reference_ns,
            e.speedup()
        );
        entries.push(e);
    }

    let random80 = entries
        .iter()
        .find(|e| e.name == "random80")
        .expect("random80 case present");
    println!(
        "\nrandom80 speedup (acceptance gate, target >= 3x): {:.2}x",
        random80.speedup()
    );

    // Event-engine bench: heap vs calendar queue on long-horizon
    // contended sims. One "op" is a whole simulation run, so trim the
    // sample count rather than the (irrelevant) inner-loop budget.
    let event_iters: u32 = if quick { 20_000 } else { 100_000 };
    let event_samples = if quick { 3 } else { 5 };
    let mut event_entries = Vec::new();
    println!("\nevent engine, SingleMessage links, {event_iters} iterations:");
    for case in event_cases(event_iters) {
        let (g, m, prog, t) = (&case.graph, &case.machine, &case.prog, &case.traffic);
        let run =
            |engine| simulate_event_with(prog, g, m, t, LinkModel::SingleMessage, engine).unwrap();
        // Sanity: the queues agree byte for byte before being timed.
        let h = run(EventEngine::Heap);
        let c = run(EventEngine::Calendar);
        assert_eq!(h, c, "{}: engines diverge", case.name);
        let events = h.messages + prog.len() as u64;

        let heap_ns = measure(event_samples, budget_ns, || run(EventEngine::Heap));
        let calendar_ns = measure(event_samples, budget_ns, || run(EventEngine::Calendar));
        let e = EventEntry {
            name: case.name.clone(),
            iters: event_iters,
            events,
            heap_ns,
            calendar_ns,
        };
        println!(
            "{:<12} ({:>9} events)  heap {:>12.0} ns/run   calendar {:>12.0} ns/run   speedup {:>5.2}x",
            e.name,
            e.events,
            e.heap_ns,
            e.calendar_ns,
            e.speedup()
        );
        event_entries.push(e);
    }
    let fanout = event_entries
        .iter()
        .find(|e| e.name == "fanout8")
        .expect("fanout8 case present");
    println!(
        "\nfanout8 calendar-vs-heap speedup (acceptance gate, target >= 2x): {:.2}x",
        fanout.speedup()
    );

    // Service throughput: the same request batch through the sequential
    // reference executor (`service::execute`) and through a persistent
    // worker pool. One "op" is a whole batch; the pool outlives every
    // sample, so warm-worker reuse (the service's design point) is what
    // gets measured. The speedup ratio is machine-portable only in the
    // sense that it can't collapse without the service having lost its
    // advantage on that runner — on a single-core host it is ~1x by
    // construction, and the trajectory gate budgets for that.
    let service_workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(4);
    let service_samples = if quick { 3 } else { 5 };
    let mut service_entries = Vec::new();
    println!("\nbatch scheduling service, {service_workers} worker(s):");
    for case in service_cases(quick) {
        let svc = Service::new(service_workers);
        // Sanity: service responses equal the sequential executor's
        // (keyed by id = input order) before anything is timed.
        let ids = svc.submit_batch(case.requests.clone());
        let via_service = svc.collect(&ids);
        for ((_, got), req) in via_service.iter().zip(&case.requests) {
            let want = service::execute(req);
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "{}: service and sequential responses diverge",
                case.name
            );
        }

        let seq_ns = measure(service_samples, budget_ns, || {
            for r in &case.requests {
                std::hint::black_box(service::execute(r).ok());
            }
        });
        let service_ns = measure(service_samples, budget_ns, || {
            let ids = svc.submit_batch(case.requests.clone());
            svc.collect(&ids).len()
        });
        let e = ServiceEntry {
            name: case.name.clone(),
            requests: case.requests.len(),
            workers: service_workers,
            seq_ns,
            service_ns,
        };
        println!(
            "{:<12} ({:>3} requests)  sequential {:>12.0} ns/batch   service {:>12.0} ns/batch   speedup {:>5.2}x",
            e.name,
            e.requests,
            e.seq_ns,
            e.service_ns,
            e.speedup()
        );
        service_entries.push(e);
    }
    let corpus_mix = service_entries
        .iter()
        .find(|e| e.name == "corpus_mix")
        .expect("corpus_mix case present");
    println!(
        "\ncorpus_mix service-vs-sequential throughput ratio: {:.2}x ({} workers)",
        corpus_mix.speedup(),
        corpus_mix.workers
    );

    // Request-lifecycle bench (schema v4): the corpus_mix batch through
    // the fault-tolerant layer at several worker counts. Run once per
    // count (not median-of-samples): the recorded rates are fault-plan
    // properties and the latency percentiles are per-request, so one
    // batch already carries `requests` samples.
    let lifecycle_reqs = service_cases(quick)
        .into_iter()
        .find(|c| c.name == "corpus_mix")
        .expect("corpus_mix case present")
        .requests;
    let mut lifecycle_entries = Vec::new();
    println!("\nrequest lifecycle, 10% injected faults, queue cap 4:");
    for workers in [1usize, 4, 8] {
        let e = lifecycle_run("corpus_mix", &lifecycle_reqs, workers);
        println!(
            "{:<12} ({} workers)  p50 {:>10.0} ns   p99 {:>10.0} ns   rejected {:>2} ({:.0}%)   expired {}   retries {}",
            e.name,
            e.workers,
            e.p50_ns,
            e.p99_ns,
            e.rejected,
            e.rejection_rate() * 100.0,
            e.expired,
            e.retries
        );
        lifecycle_entries.push(e);
    }

    // Overload bench (schema v5): the 2x-saturation open-loop run against
    // the priority lanes + brownout policy, at 1 and 4 workers.
    let mut overload_entries = Vec::new();
    println!("\noverload, 2x saturation, 10/60/30 mix, queue cap 8, high water 4:");
    for workers in [1usize, 4] {
        let e = overload_run(workers, quick);
        println!(
            "{:<12} ({} workers)  high miss {:.4}   high shed {}   normal shed rate {:.3}   low shed rate {:.3}   over hw {}",
            e.name,
            e.workers,
            e.high_miss_rate(),
            e.high_shed,
            e.normal_shed_rate(),
            e.low_shed_rate(),
            e.over_high_water,
        );
        overload_entries.push(e);
    }

    // Response-cache bench (schema v6): the duplicate-heavy seeded Zipf
    // mix and the cold all-unique mix through `service::loadgen`, cache
    // on (capacity 64) vs off, at 1 and 4 workers.
    let mut cache_entries = Vec::new();
    println!("\nresponse cache, zipf(8) vs cold mix, capacity 64 vs off:");
    for (name, distinct) in [("zipf8", Some(8u64)), ("cold", None)] {
        for workers in [1usize, 4] {
            let e = cache_run(name, distinct, workers, quick);
            println!(
                "{:<12} ({} workers)  cached {:>12} ns   uncached {:>12} ns   hit rate {:.3}   misses {:>3}   evictions {:>3}   speedup {:>5.2}x",
                e.name,
                e.workers,
                e.cached_wall_ns,
                e.uncached_wall_ns,
                e.hit_rate(),
                e.misses,
                e.evictions,
                e.speedup()
            );
            cache_entries.push(e);
        }
    }
    let zipf4 = cache_entries
        .iter()
        .find(|e| e.name == "zipf8" && e.workers == 4)
        .expect("zipf8 4-worker case present");
    println!(
        "\nzipf8 cache-on vs cache-off throughput (acceptance gate, target >= 2x at 4 workers): {:.2}x",
        zipf4.speedup()
    );

    // Loop-transformation bench (schema v7): the transform-family corpus
    // through the full pipeline. MII numbers are body properties, so the
    // trajectory gate holds them as absolute invariants.
    let mut xform_entries = Vec::new();
    println!("\nloop transformation, reduce+fission, differentially certified:");
    for name in XFORM_FAMILIES {
        let e = xform_run(name, if quick { 3 } else { 5 }, budget_ns);
        println!(
            "{:<22} reduce {:<14} fission {:<14} pieces {}   mii {:>5.2} -> {:>5.2}   improvement {:>5.2}x   {:>10.0} ns/op",
            e.name, e.reduce, e.fission, e.pieces, e.mii_before, e.mii_after, e.improvement, e.xform_ns
        );
        xform_entries.push(e);
    }
    let worst = xform_entries
        .iter()
        .map(|e| e.improvement)
        .fold(f64::INFINITY, f64::min);
    let reduction_floor = xform_entries
        .iter()
        .filter(|e| e.name.starts_with("reduction/") && e.reduce == "applied")
        .map(|e| e.improvement)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nxform worst improvement (gate, never < 1x): {worst:.2}x; recognized reductions (gate, >= 1.5x): {reduction_floor:.2}x"
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"kn-bench-sched-v7\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!(
        "  \"random80_speedup\": {:.4},\n",
        random80.speedup()
    ));
    json.push_str(&format!("  \"event_speedup\": {:.4},\n", fanout.speedup()));
    json.push_str(&format!(
        "  \"service_speedup\": {:.4},\n",
        corpus_mix.speedup()
    ));
    json.push_str(&format!("  \"cache_speedup\": {:.4},\n", zipf4.speedup()));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cyclic_nodes\": {}, \"arena_ns_per_op\": {:.1}, \"reference_ns_per_op\": {:.1}, \"speedup\": {:.4}}}{}\n",
            json_escape(&e.name),
            e.nodes,
            e.arena_ns,
            e.reference_ns,
            e.speedup(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"event_entries\": [\n");
    for (i, e) in event_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"events\": {}, \"heap_ns_per_run\": {:.1}, \"calendar_ns_per_run\": {:.1}, \"speedup\": {:.4}}}{}\n",
            json_escape(&e.name),
            e.iters,
            e.events,
            e.heap_ns,
            e.calendar_ns,
            e.speedup(),
            if i + 1 < event_entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"service_entries\": [\n");
    for (i, e) in service_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"requests\": {}, \"workers\": {}, \"seq_ns_per_batch\": {:.1}, \"service_ns_per_batch\": {:.1}, \"speedup\": {:.4}}}{}\n",
            json_escape(&e.name),
            e.requests,
            e.workers,
            e.seq_ns,
            e.service_ns,
            e.speedup(),
            if i + 1 < service_entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"lifecycle_entries\": [\n");
    for (i, e) in lifecycle_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"workers\": {}, \"requests\": {}, \"rejected\": {}, \"rejection_rate\": {:.4}, \"expired\": {}, \"deadline_miss_rate\": {:.4}, \"retries\": {}, \"p50_latency_ns\": {:.1}, \"p99_latency_ns\": {:.1}, \"wall_ns\": {}}}{}\n",
            json_escape(&e.name),
            e.workers,
            e.requests,
            e.rejected,
            e.rejection_rate(),
            e.expired,
            e.deadline_miss_rate(),
            e.retries,
            e.p50_ns,
            e.p99_ns,
            e.wall_ns,
            if i + 1 < lifecycle_entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"overload_entries\": [\n");
    for (i, e) in overload_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"workers\": {}, \"total\": {}, \"high_submitted\": {}, \"high_expired\": {}, \"high_shed\": {}, \"high_miss_rate\": {:.4}, \"normal_submitted\": {}, \"normal_shed\": {}, \"normal_shed_rate\": {:.4}, \"low_submitted\": {}, \"low_shed\": {}, \"low_shed_rate\": {:.4}, \"replaced_workers\": {}, \"over_high_water\": {}}}{}\n",
            json_escape(&e.name),
            e.workers,
            e.total,
            e.high_submitted,
            e.high_expired,
            e.high_shed,
            e.high_miss_rate(),
            e.normal_submitted,
            e.normal_shed,
            e.normal_shed_rate(),
            e.low_submitted,
            e.low_shed,
            e.low_shed_rate(),
            e.replaced_workers,
            e.over_high_water,
            if i + 1 < overload_entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"cache_entries\": [\n");
    for (i, e) in cache_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"workers\": {}, \"total\": {}, \"distinct\": {}, \"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"evictions\": {}, \"hit_rate\": {:.4}, \"cached_wall_ns\": {}, \"uncached_wall_ns\": {}, \"speedup\": {:.4}}}{}\n",
            json_escape(&e.name),
            e.workers,
            e.total,
            e.distinct,
            e.hits,
            e.misses,
            e.coalesced,
            e.evictions,
            e.hit_rate(),
            e.cached_wall_ns,
            e.uncached_wall_ns,
            e.speedup(),
            if i + 1 < cache_entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"xform_entries\": [\n");
    for (i, e) in xform_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"reduce\": \"{}\", \"fission\": \"{}\", \"pieces\": {}, \"mii_before\": {:.4}, \"mii_after\": {:.4}, \"improvement\": {:.4}, \"xform_ns_per_op\": {:.1}}}{}\n",
            json_escape(&e.name),
            json_escape(&e.reduce),
            json_escape(&e.fission),
            e.pieces,
            e.mii_before,
            e.mii_after,
            e.improvement,
            e.xform_ns,
            if i + 1 < xform_entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
