//! `kn-bench` — machine-readable scheduler benchmark harness.
//!
//! Measures end-to-end `cyclic_schedule` time (ns/op, median of samples)
//! for the five paper workloads and random 10/20/40/80-node loops, for
//! both the optimized arena core and the retained map-based reference
//! (`kn_sched::reference`), and writes the results plus speedup ratios to
//! `BENCH_sched.json`. Future PRs compare their JSON against this one to
//! see the perf trajectory.
//!
//! Usage: `kn-bench [--out PATH] [--quick]`
//!   --out PATH   output file (default BENCH_sched.json)
//!   --quick      fewer samples / shorter budget (CI smoke)

use kn_core::ddg::{classify, Ddg};
use kn_core::sched::reference::cyclic_schedule_ref;
use kn_core::sched::{cyclic_schedule, CyclicOptions, MachineConfig, PatternOutcome};
use kn_core::workloads::{self, random_cyclic_loop_min, RandomLoopConfig};
use std::time::Instant;

struct Case {
    name: String,
    graph: Ddg,
    machine: MachineConfig,
}

struct Entry {
    name: String,
    nodes: usize,
    arena_ns: f64,
    reference_ns: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.arena_ns > 0.0 {
            self.reference_ns / self.arena_ns
        } else {
            f64::INFINITY
        }
    }
}

fn cyclic_core(g: &Ddg) -> Option<Ddg> {
    let c = classify(g);
    if c.cyclic.is_empty() {
        return None;
    }
    Some(g.induced_subgraph(&c.cyclic).0)
}

fn cases() -> Vec<Case> {
    let mut cases = Vec::new();
    for w in [
        workloads::figure3(),
        workloads::figure7(),
        workloads::cytron86(),
        workloads::livermore18(),
        workloads::elliptic(),
    ] {
        let graph = cyclic_core(&w.graph).expect("paper workloads have Cyclic cores");
        cases.push(Case {
            name: w.name.to_string(),
            graph,
            machine: MachineConfig::new(w.procs, w.k),
        });
    }
    for nodes in [10usize, 20, 40, 80] {
        // Dense enough that the Cyclic core keeps most of the loop
        // (~60-90% of `nodes`); the sparse paper recipe mostly collapses
        // to 2-4 node cores, which would benchmark the wrong thing.
        let cfg = RandomLoopConfig {
            nodes,
            lcds: nodes,
            sds: 2 * nodes,
            min_latency: 1,
            max_latency: 3,
        };
        cases.push(Case {
            name: format!("random{nodes}"),
            graph: random_cyclic_loop_min(1, &cfg, nodes / 2),
            machine: MachineConfig::new(8, 3),
        });
    }
    cases
}

/// Median ns per call of `f`, over `samples` samples of a time-budgeted
/// inner loop (calibrated once so each sample runs long enough to trust).
fn measure<R>(samples: usize, budget_ns: u64, mut f: impl FnMut() -> R) -> f64 {
    // Calibrate.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let iters = (budget_ns / once).clamp(1, 100_000);

    let mut meds: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    meds.sort_by(|a, b| a.total_cmp(b));
    meds[meds.len() / 2]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_sched.json")
        .to_string();
    let (samples, budget_ns) = if quick {
        (5, 10_000_000)
    } else {
        (11, 50_000_000)
    };

    let opts = CyclicOptions::default();
    let mut entries = Vec::new();
    for case in cases() {
        let (g, m) = (&case.graph, &case.machine);
        // Sanity: both implementations agree before being timed.
        let a = cyclic_schedule(g, m, &opts).unwrap();
        let b = cyclic_schedule_ref(g, m, &opts).unwrap();
        match (&a, &b) {
            (PatternOutcome::Found(pa), PatternOutcome::Found(pb)) => {
                assert_eq!(pa.kernel, pb.kernel, "{}: kernels diverge", case.name);
            }
            (PatternOutcome::CapFallback(_), PatternOutcome::CapFallback(_)) => {}
            _ => panic!("{}: outcome kinds diverge", case.name),
        }

        let arena_ns = measure(samples, budget_ns, || cyclic_schedule(g, m, &opts).unwrap());
        let reference_ns = measure(samples, budget_ns, || {
            cyclic_schedule_ref(g, m, &opts).unwrap()
        });
        let e = Entry {
            name: case.name.clone(),
            nodes: g.node_count(),
            arena_ns,
            reference_ns,
        };
        println!(
            "{:<12} ({:>3} cyclic nodes)  arena {:>12.0} ns/op   reference {:>12.0} ns/op   speedup {:>5.2}x",
            e.name,
            e.nodes,
            e.arena_ns,
            e.reference_ns,
            e.speedup()
        );
        entries.push(e);
    }

    let random80 = entries
        .iter()
        .find(|e| e.name == "random80")
        .expect("random80 case present");
    println!(
        "\nrandom80 speedup (acceptance gate, target >= 3x): {:.2}x",
        random80.speedup()
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"kn-bench-sched-v1\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!(
        "  \"random80_speedup\": {:.4},\n",
        random80.speedup()
    ));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cyclic_nodes\": {}, \"arena_ns_per_op\": {:.1}, \"reference_ns_per_op\": {:.1}, \"speedup\": {:.4}}}{}\n",
            json_escape(&e.name),
            e.nodes,
            e.arena_ns,
            e.reference_ns,
            e.speedup(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
