//! Parse and compare `BENCH_sched.json` files — the ROADMAP's bench
//! trajectory gate.
//!
//! The parser is deliberately schema-specific (the workspace vendors no
//! JSON crate): it understands exactly the object layout `kn-bench`
//! emits — a flat object of scalars plus the `entries` /
//! `event_entries` / `service_entries` / `lifecycle_entries` /
//! `overload_entries` / `cache_entries` / `xform_entries` arrays of flat
//! objects — and accepts the v1 schema (no event entries), v2 (no
//! service entries), v3 (no lifecycle entries), v4 (no overload
//! entries), v5 (no cache entries), v6 (no xform entries), and v7.
//!
//! Comparison modes:
//!
//! * **full** — gates absolute ns/op (`arena_ns_per_op`,
//!   `calendar_ns_per_run`, `service_ns_per_batch`) *and* the speedup
//!   ratios. Only meaningful when baseline and candidate ran on the same
//!   runner class.
//! * **ratios-only** — gates just the machine-portable ratios
//!   (arena-vs-reference speedup, calendar-vs-heap speedup,
//!   service-vs-sequential-driver throughput). This is what CI uses:
//!   shared runners make absolute ns noise, but a collapsed ratio still
//!   means the optimized path lost its advantage.

/// One scheduler entry (`entries`).
#[derive(Clone, Debug, PartialEq)]
pub struct SchedEntry {
    pub name: String,
    pub arena_ns_per_op: f64,
    pub reference_ns_per_op: f64,
    pub speedup: f64,
}

/// One event-engine entry (`event_entries`, schema v2).
#[derive(Clone, Debug, PartialEq)]
pub struct EventEntry {
    pub name: String,
    pub heap_ns_per_run: f64,
    pub calendar_ns_per_run: f64,
    pub speedup: f64,
}

/// One batch-scheduling-service entry (`service_entries`, schema v3).
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceEntry {
    pub name: String,
    pub workers: f64,
    pub seq_ns_per_batch: f64,
    pub service_ns_per_batch: f64,
    pub speedup: f64,
}

/// One request-lifecycle entry (`lifecycle_entries`, schema v4): the
/// fault-tolerant service under a seeded fault plan at a given worker
/// count. Rates are fractions of the batch; latency is per-request
/// admission-to-completion.
#[derive(Clone, Debug, PartialEq)]
pub struct LifecycleEntry {
    pub name: String,
    pub workers: f64,
    pub rejection_rate: f64,
    pub deadline_miss_rate: f64,
    pub p50_latency_ns: f64,
    pub p99_latency_ns: f64,
}

/// One overload entry (`overload_entries`, schema v5): the deterministic
/// 2×-saturation open-loop run against the priority lanes + brownout
/// policy. The rates are scheduling-policy outcomes (machine-independent
/// by construction), so the gate checks them as **absolute invariants**
/// on the candidate — High misses no deadlines, Low sheds real traffic
/// and at a rate no lower than Normal — rather than baseline ratios.
#[derive(Clone, Debug, PartialEq)]
pub struct OverloadEntry {
    pub name: String,
    pub workers: f64,
    pub high_miss_rate: f64,
    pub high_shed: f64,
    pub low_shed: f64,
    pub low_shed_rate: f64,
    pub normal_shed_rate: f64,
}

/// One response-cache entry (`cache_entries`, schema v6): the seeded
/// arrival mix through the service, cache on vs off. `hit_rate` is a
/// pure function of the draw sequence and `speedup` is a same-run
/// cache-on/cache-off wall ratio, so both are machine-independent and
/// gated as **absolute invariants** on the candidate: the Zipf mix must
/// reuse at least half its arrivals (rate >= 0.5) and go >= 2x faster
/// with the cache at 4 workers; the cold all-unique mix must hit exactly
/// never and cost at most 10% overhead (ratio >= 0.9).
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    pub name: String,
    pub workers: f64,
    /// Distinct traffic seeds in the mix; `0` = all-unique (cold).
    pub distinct: f64,
    pub hit_rate: f64,
    pub speedup: f64,
}

/// One loop-transformation entry (`xform_entries`, schema v7): a
/// transform-family corpus loop through the reduction-recognition +
/// fission pipeline. The MII trajectory is a pure function of the loop
/// body — machine-independent — so the gate checks **absolute
/// invariants** on the candidate: no entry may come out worse than it
/// went in (`improvement >= 1.0`), every recognized reduction must
/// actually collapse its recurrence (`improvement >= 1.5` on applied
/// `reduction/` entries), and at least one reduction must be recognized
/// at all (a pipeline that stops firing is inert, not neutral).
#[derive(Clone, Debug, PartialEq)]
pub struct XformEntry {
    pub name: String,
    /// `PassStatus::render()`: "off", "applied", or "skipped(XRnn)".
    pub reduce: String,
    /// `PassStatus::render()`: "off", "applied", or "skipped(XSnn)".
    pub fission: String,
    pub pieces: f64,
    pub mii_before: f64,
    pub mii_after: f64,
    pub improvement: f64,
}

/// A parsed `BENCH_sched.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    pub schema: String,
    pub entries: Vec<SchedEntry>,
    pub event_entries: Vec<EventEntry>,
    pub service_entries: Vec<ServiceEntry>,
    pub lifecycle_entries: Vec<LifecycleEntry>,
    pub overload_entries: Vec<OverloadEntry>,
    pub cache_entries: Vec<CacheEntry>,
    pub xform_entries: Vec<XformEntry>,
}

/// Split the body of a JSON array of flat objects into object bodies.
/// Sufficient for `kn-bench` output: no nested arrays/objects inside an
/// entry, no `{`/`}`/`[`/`]` inside strings (names are identifiers).
fn object_bodies(array_body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = array_body;
    while let Some(start) = rest.find('{') {
        let Some(end) = rest[start..].find('}') else {
            break;
        };
        out.push(&rest[start + 1..start + end]);
        rest = &rest[start + end + 1..];
    }
    out
}

/// The body of the named array (`"name": [ ... ]`), if present.
fn array_body<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let open = json[at..].find('[')? + at;
    let close = json[open..].find(']')? + open;
    Some(&json[open + 1..close])
}

fn str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)?;
    let colon = obj[at..].find(':')? + at;
    let rest = obj[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn f64_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)?;
    let colon = obj[at..].find(':')? + at;
    let rest = obj[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a `BENCH_sched.json` (schema v1 or v2).
pub fn parse(json: &str) -> Result<BenchReport, String> {
    let schema = str_field(json, "schema").ok_or("missing \"schema\"")?;
    if !schema.starts_with("kn-bench-sched-") {
        return Err(format!("unrecognized schema {schema:?}"));
    }
    // Cut the flat arrays apart first so `entries` keys never read values
    // from `event_entries` objects.
    let mut entries = Vec::new();
    for obj in object_bodies(array_body(json, "entries").ok_or("missing \"entries\"")?) {
        entries.push(SchedEntry {
            name: str_field(obj, "name").ok_or("entry missing \"name\"")?,
            arena_ns_per_op: f64_field(obj, "arena_ns_per_op")
                .ok_or("entry missing \"arena_ns_per_op\"")?,
            reference_ns_per_op: f64_field(obj, "reference_ns_per_op")
                .ok_or("entry missing \"reference_ns_per_op\"")?,
            speedup: f64_field(obj, "speedup").ok_or("entry missing \"speedup\"")?,
        });
    }
    let mut event_entries = Vec::new();
    if let Some(body) = array_body(json, "event_entries") {
        for obj in object_bodies(body) {
            event_entries.push(EventEntry {
                name: str_field(obj, "name").ok_or("event entry missing \"name\"")?,
                heap_ns_per_run: f64_field(obj, "heap_ns_per_run")
                    .ok_or("event entry missing \"heap_ns_per_run\"")?,
                calendar_ns_per_run: f64_field(obj, "calendar_ns_per_run")
                    .ok_or("event entry missing \"calendar_ns_per_run\"")?,
                speedup: f64_field(obj, "speedup").ok_or("event entry missing \"speedup\"")?,
            });
        }
    }
    let mut service_entries = Vec::new();
    if let Some(body) = array_body(json, "service_entries") {
        for obj in object_bodies(body) {
            service_entries.push(ServiceEntry {
                name: str_field(obj, "name").ok_or("service entry missing \"name\"")?,
                workers: f64_field(obj, "workers").ok_or("service entry missing \"workers\"")?,
                seq_ns_per_batch: f64_field(obj, "seq_ns_per_batch")
                    .ok_or("service entry missing \"seq_ns_per_batch\"")?,
                service_ns_per_batch: f64_field(obj, "service_ns_per_batch")
                    .ok_or("service entry missing \"service_ns_per_batch\"")?,
                speedup: f64_field(obj, "speedup").ok_or("service entry missing \"speedup\"")?,
            });
        }
    }
    let mut lifecycle_entries = Vec::new();
    if let Some(body) = array_body(json, "lifecycle_entries") {
        for obj in object_bodies(body) {
            lifecycle_entries.push(LifecycleEntry {
                name: str_field(obj, "name").ok_or("lifecycle entry missing \"name\"")?,
                workers: f64_field(obj, "workers").ok_or("lifecycle entry missing \"workers\"")?,
                rejection_rate: f64_field(obj, "rejection_rate")
                    .ok_or("lifecycle entry missing \"rejection_rate\"")?,
                deadline_miss_rate: f64_field(obj, "deadline_miss_rate")
                    .ok_or("lifecycle entry missing \"deadline_miss_rate\"")?,
                p50_latency_ns: f64_field(obj, "p50_latency_ns")
                    .ok_or("lifecycle entry missing \"p50_latency_ns\"")?,
                p99_latency_ns: f64_field(obj, "p99_latency_ns")
                    .ok_or("lifecycle entry missing \"p99_latency_ns\"")?,
            });
        }
    }
    let mut overload_entries = Vec::new();
    if let Some(body) = array_body(json, "overload_entries") {
        for obj in object_bodies(body) {
            overload_entries.push(OverloadEntry {
                name: str_field(obj, "name").ok_or("overload entry missing \"name\"")?,
                workers: f64_field(obj, "workers").ok_or("overload entry missing \"workers\"")?,
                high_miss_rate: f64_field(obj, "high_miss_rate")
                    .ok_or("overload entry missing \"high_miss_rate\"")?,
                high_shed: f64_field(obj, "high_shed")
                    .ok_or("overload entry missing \"high_shed\"")?,
                low_shed: f64_field(obj, "low_shed")
                    .ok_or("overload entry missing \"low_shed\"")?,
                low_shed_rate: f64_field(obj, "low_shed_rate")
                    .ok_or("overload entry missing \"low_shed_rate\"")?,
                normal_shed_rate: f64_field(obj, "normal_shed_rate")
                    .ok_or("overload entry missing \"normal_shed_rate\"")?,
            });
        }
    }
    let mut cache_entries = Vec::new();
    if let Some(body) = array_body(json, "cache_entries") {
        for obj in object_bodies(body) {
            cache_entries.push(CacheEntry {
                name: str_field(obj, "name").ok_or("cache entry missing \"name\"")?,
                workers: f64_field(obj, "workers").ok_or("cache entry missing \"workers\"")?,
                distinct: f64_field(obj, "distinct").ok_or("cache entry missing \"distinct\"")?,
                hit_rate: f64_field(obj, "hit_rate").ok_or("cache entry missing \"hit_rate\"")?,
                speedup: f64_field(obj, "speedup").ok_or("cache entry missing \"speedup\"")?,
            });
        }
    }
    let mut xform_entries = Vec::new();
    if let Some(body) = array_body(json, "xform_entries") {
        for obj in object_bodies(body) {
            xform_entries.push(XformEntry {
                name: str_field(obj, "name").ok_or("xform entry missing \"name\"")?,
                reduce: str_field(obj, "reduce").ok_or("xform entry missing \"reduce\"")?,
                fission: str_field(obj, "fission").ok_or("xform entry missing \"fission\"")?,
                pieces: f64_field(obj, "pieces").ok_or("xform entry missing \"pieces\"")?,
                mii_before: f64_field(obj, "mii_before")
                    .ok_or("xform entry missing \"mii_before\"")?,
                mii_after: f64_field(obj, "mii_after")
                    .ok_or("xform entry missing \"mii_after\"")?,
                improvement: f64_field(obj, "improvement")
                    .ok_or("xform entry missing \"improvement\"")?,
            });
        }
    }
    Ok(BenchReport {
        schema,
        entries,
        event_entries,
        service_entries,
        lifecycle_entries,
        overload_entries,
        cache_entries,
        xform_entries,
    })
}

/// `candidate` regressed against `baseline` when it is more than
/// `max_regress_pct` percent worse (slower for ns, smaller for speedups).
#[derive(Clone, Copy, Debug)]
pub struct GatePolicy {
    pub max_regress_pct: f64,
    /// Skip the absolute-ns gates (cross-machine comparisons).
    pub ratios_only: bool,
    /// Tighter budget for the `service_entries` section, overriding
    /// `max_regress_pct` there. This is the "robustness must not tax the
    /// happy path" gate: with the lifecycle layer in front of the pool, a
    /// 10% budget on the service-vs-sequential throughput ratio enforces
    /// >= 0.9x of the pre-lifecycle baseline.
    pub service_max_regress_pct: Option<f64>,
}

fn pct_worse(
    violations: &mut Vec<String>,
    what: String,
    base: f64,
    cand: f64,
    pct: f64,
    higher_is_better: bool,
) {
    if base <= 0.0 {
        return;
    }
    let change = if higher_is_better {
        (base - cand) / base * 100.0
    } else {
        (cand - base) / base * 100.0
    };
    if change > pct {
        violations.push(format!(
            "{what}: {base:.1} -> {cand:.1} ({change:+.1}% worse, limit {pct:.0}%)"
        ));
    }
}

/// Compare two reports under `policy`; returns human-readable violations
/// (empty = gate passes). Entries are matched by name; an entry present on
/// only one side is ignored (adding or retiring a bench case is not a
/// regression) — but a section where *nothing* matches fails, otherwise a
/// wholesale rename or an empty candidate run would turn the gate into a
/// silent no-op.
pub fn compare(baseline: &BenchReport, candidate: &BenchReport, policy: GatePolicy) -> Vec<String> {
    let pct = policy.max_regress_pct;
    let mut violations = Vec::new();
    let mut matched_sched = 0usize;
    let mut matched_event = 0usize;
    for b in &baseline.entries {
        let Some(c) = candidate.entries.iter().find(|c| c.name == b.name) else {
            continue;
        };
        matched_sched += 1;
        if !policy.ratios_only {
            pct_worse(
                &mut violations,
                format!("{} arena_ns_per_op", b.name),
                b.arena_ns_per_op,
                c.arena_ns_per_op,
                pct,
                false,
            );
        }
        pct_worse(
            &mut violations,
            format!("{} arena speedup", b.name),
            b.speedup,
            c.speedup,
            pct,
            true,
        );
    }
    for b in &baseline.event_entries {
        let Some(c) = candidate.event_entries.iter().find(|c| c.name == b.name) else {
            continue;
        };
        matched_event += 1;
        if !policy.ratios_only {
            pct_worse(
                &mut violations,
                format!("{} calendar_ns_per_run", b.name),
                b.calendar_ns_per_run,
                c.calendar_ns_per_run,
                pct,
                false,
            );
        }
        pct_worse(
            &mut violations,
            format!("{} calendar-vs-heap speedup", b.name),
            b.speedup,
            c.speedup,
            pct,
            true,
        );
    }
    let mut matched_service = 0usize;
    let service_pct = policy.service_max_regress_pct.unwrap_or(pct);
    for b in &baseline.service_entries {
        let Some(c) = candidate.service_entries.iter().find(|c| c.name == b.name) else {
            continue;
        };
        matched_service += 1;
        if !policy.ratios_only {
            pct_worse(
                &mut violations,
                format!("{} service_ns_per_batch", b.name),
                b.service_ns_per_batch,
                c.service_ns_per_batch,
                service_pct,
                false,
            );
        }
        pct_worse(
            &mut violations,
            format!("{} service-vs-sequential throughput", b.name),
            b.speedup,
            c.speedup,
            service_pct,
            true,
        );
    }
    // Lifecycle entries carry absolute latency (machine-specific), so they
    // are gated only in full (same-machine) mode; the fault-mix rates are
    // recorded for trajectory plots, not gated — they move with queue
    // timing, not code quality.
    let mut matched_lifecycle = 0usize;
    for b in &baseline.lifecycle_entries {
        let Some(c) = candidate
            .lifecycle_entries
            .iter()
            .find(|c| c.name == b.name && c.workers == b.workers)
        else {
            continue;
        };
        matched_lifecycle += 1;
        if !policy.ratios_only {
            pct_worse(
                &mut violations,
                format!("{} w{} p99_latency_ns", b.name, b.workers),
                b.p99_latency_ns,
                c.p99_latency_ns,
                pct,
                false,
            );
        }
    }
    if !baseline.entries.is_empty() && matched_sched == 0 {
        violations
            .push("no scheduler entry names matched the baseline — gate compared nothing".into());
    }
    if !baseline.event_entries.is_empty() && matched_event == 0 {
        violations.push("no event entry names matched the baseline — gate compared nothing".into());
    }
    if !baseline.service_entries.is_empty() && matched_service == 0 {
        violations
            .push("no service entry names matched the baseline — gate compared nothing".into());
    }
    if !baseline.lifecycle_entries.is_empty() && matched_lifecycle == 0 {
        violations
            .push("no lifecycle entry names matched the baseline — gate compared nothing".into());
    }
    // Overload entries are policy invariants, machine-independent by
    // construction — gated as absolutes on the candidate (in both modes),
    // not as baseline-relative ratios.
    let mut matched_overload = 0usize;
    for c in &candidate.overload_entries {
        if baseline
            .overload_entries
            .iter()
            .any(|b| b.name == c.name && b.workers == c.workers)
        {
            matched_overload += 1;
        }
        let what = format!("{} w{}", c.name, c.workers);
        if c.high_miss_rate > 0.001 {
            violations.push(format!(
                "{what}: High deadline-miss rate {:.4} exceeds 0.001 under overload",
                c.high_miss_rate
            ));
        }
        if c.high_shed > 0.0 {
            violations.push(format!(
                "{what}: {} High request(s) were shed — High is never shed",
                c.high_shed
            ));
        }
        if c.low_shed <= 0.0 {
            violations.push(format!(
                "{what}: 2x saturation shed no Low traffic — brownout policy inert"
            ));
        }
        if c.low_shed_rate + 1e-9 < c.normal_shed_rate {
            violations.push(format!(
                "{what}: Low shed rate {:.4} below Normal's {:.4} — Low must shed first",
                c.low_shed_rate, c.normal_shed_rate
            ));
        }
    }
    if !baseline.overload_entries.is_empty() && matched_overload == 0 {
        violations
            .push("no overload entry names matched the baseline — gate compared nothing".into());
    }
    // Cache entries are machine-independent by construction (seeded draw
    // sequence, same-run wall ratio) — gated as absolutes on the
    // candidate (in both modes), not as baseline-relative ratios.
    let mut matched_cache = 0usize;
    for c in &candidate.cache_entries {
        if baseline
            .cache_entries
            .iter()
            .any(|b| b.name == c.name && b.workers == c.workers)
        {
            matched_cache += 1;
        }
        let what = format!("{} w{}", c.name, c.workers);
        if c.distinct > 0.0 {
            if c.hit_rate < 0.5 {
                violations.push(format!(
                    "{what}: duplicate-heavy hit rate {:.4} below 0.5 — cache inert on its own mix",
                    c.hit_rate
                ));
            }
            if c.workers >= 4.0 && c.speedup < 2.0 {
                violations.push(format!(
                    "{what}: cache-on throughput only {:.2}x cache-off — below the 2x gate",
                    c.speedup
                ));
            }
        } else {
            if c.hit_rate > 1e-9 {
                violations.push(format!(
                    "{what}: all-unique mix reports hit rate {:.4} — cache served a wrong answer",
                    c.hit_rate
                ));
            }
            if c.speedup < 0.9 {
                violations.push(format!(
                    "{what}: cache overhead cost {:.2}x on the cold mix — below the 0.9x no-regress gate",
                    c.speedup
                ));
            }
        }
    }
    if !baseline.cache_entries.is_empty() && matched_cache == 0 {
        violations.push("no cache entry names matched the baseline — gate compared nothing".into());
    }
    // Xform entries are pure functions of the loop body — gated as
    // absolutes on the candidate (in both modes). The negatives ride
    // along at exactly 1.0x, so the never-worse floor also pins that a
    // pass which starts to misfire (transforming what it must decline,
    // or degrading what it transforms) fails loudly.
    let mut matched_xform = 0usize;
    let mut applied_reductions = 0usize;
    for c in &candidate.xform_entries {
        if baseline.xform_entries.iter().any(|b| b.name == c.name) {
            matched_xform += 1;
        }
        if c.improvement < 1.0 - 1e-6 {
            violations.push(format!(
                "{}: transform made the loop worse ({:.2}x, mii {:.2} -> {:.2}) — below the 1x never-worse gate",
                c.name, c.improvement, c.mii_before, c.mii_after
            ));
        }
        if c.name.starts_with("reduction/") && c.reduce == "applied" {
            applied_reductions += 1;
            if c.improvement < 1.5 {
                violations.push(format!(
                    "{}: recognized reduction improved MII only {:.2}x — below the 1.5x reduction-family gate",
                    c.name, c.improvement
                ));
            }
        }
    }
    if !candidate.xform_entries.is_empty() && applied_reductions == 0 {
        violations.push(
            "no reduction/ entry reports reduce=applied — reduction recognition inert".into(),
        );
    }
    if !baseline.xform_entries.is_empty() && matched_xform == 0 {
        violations.push("no xform entry names matched the baseline — gate compared nothing".into());
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const V2: &str = r#"{
  "schema": "kn-bench-sched-v2",
  "quick": false,
  "samples": 11,
  "random80_speedup": 6.3199,
  "event_speedup": 2.7,
  "entries": [
    {"name": "figure7", "cyclic_nodes": 5, "arena_ns_per_op": 1889.6, "reference_ns_per_op": 7056.6, "speedup": 3.7344},
    {"name": "random80", "cyclic_nodes": 58, "arena_ns_per_op": 33995.0, "reference_ns_per_op": 214844.1, "speedup": 6.3199}
  ],
  "event_entries": [
    {"name": "fanout8", "iters": 100000, "events": 1500000, "heap_ns_per_run": 300000000.0, "calendar_ns_per_run": 110000000.0, "speedup": 2.7272}
  ]
}
"#;

    const V3: &str = r#"{
  "schema": "kn-bench-sched-v3",
  "quick": false,
  "samples": 11,
  "random80_speedup": 6.3199,
  "event_speedup": 2.7,
  "service_speedup": 3.1,
  "entries": [
    {"name": "figure7", "cyclic_nodes": 5, "arena_ns_per_op": 1889.6, "reference_ns_per_op": 7056.6, "speedup": 3.7344}
  ],
  "event_entries": [
    {"name": "fanout8", "iters": 100000, "events": 1500000, "heap_ns_per_run": 300000000.0, "calendar_ns_per_run": 110000000.0, "speedup": 2.7272}
  ],
  "service_entries": [
    {"name": "corpus_mix", "requests": 16, "workers": 4, "seq_ns_per_batch": 40000000.0, "service_ns_per_batch": 12900000.0, "speedup": 3.1007},
    {"name": "table1_cells", "requests": 8, "workers": 4, "seq_ns_per_batch": 30000000.0, "service_ns_per_batch": 11000000.0, "speedup": 2.7272}
  ]
}
"#;

    const V4: &str = r#"{
  "schema": "kn-bench-sched-v4",
  "quick": false,
  "samples": 11,
  "entries": [
    {"name": "figure7", "cyclic_nodes": 5, "arena_ns_per_op": 1889.6, "reference_ns_per_op": 7056.6, "speedup": 3.7344}
  ],
  "event_entries": [
    {"name": "fanout8", "iters": 100000, "events": 1500000, "heap_ns_per_run": 300000000.0, "calendar_ns_per_run": 110000000.0, "speedup": 2.7272}
  ],
  "service_entries": [
    {"name": "corpus_mix", "requests": 16, "workers": 4, "seq_ns_per_batch": 40000000.0, "service_ns_per_batch": 12900000.0, "speedup": 3.1007}
  ],
  "lifecycle_entries": [
    {"name": "corpus_mix", "workers": 1, "requests": 16, "rejected": 2, "rejection_rate": 0.125, "expired": 0, "deadline_miss_rate": 0.0, "retries": 2, "p50_latency_ns": 900000.0, "p99_latency_ns": 4100000.0, "wall_ns": 16000000},
    {"name": "corpus_mix", "workers": 4, "requests": 16, "rejected": 0, "rejection_rate": 0.0, "expired": 0, "deadline_miss_rate": 0.0, "retries": 2, "p50_latency_ns": 500000.0, "p99_latency_ns": 2100000.0, "wall_ns": 6000000}
  ]
}
"#;

    const V5: &str = r#"{
  "schema": "kn-bench-sched-v5",
  "quick": false,
  "samples": 11,
  "entries": [
    {"name": "figure7", "cyclic_nodes": 5, "arena_ns_per_op": 1889.6, "reference_ns_per_op": 7056.6, "speedup": 3.7344}
  ],
  "event_entries": [
    {"name": "fanout8", "iters": 100000, "events": 1500000, "heap_ns_per_run": 300000000.0, "calendar_ns_per_run": 110000000.0, "speedup": 2.7272}
  ],
  "service_entries": [
    {"name": "corpus_mix", "requests": 16, "workers": 4, "seq_ns_per_batch": 40000000.0, "service_ns_per_batch": 12900000.0, "speedup": 3.1007}
  ],
  "lifecycle_entries": [
    {"name": "corpus_mix", "workers": 4, "requests": 16, "rejected": 0, "rejection_rate": 0.0, "expired": 0, "deadline_miss_rate": 0.0, "retries": 2, "p50_latency_ns": 500000.0, "p99_latency_ns": 2100000.0, "wall_ns": 6000000}
  ],
  "overload_entries": [
    {"name": "overload_2x", "workers": 1, "total": 120, "high_submitted": 13, "high_expired": 0, "high_shed": 0, "high_miss_rate": 0.0000, "normal_submitted": 71, "normal_shed": 20, "normal_shed_rate": 0.2817, "low_submitted": 36, "low_shed": 30, "low_shed_rate": 0.8333, "replaced_workers": 0, "over_high_water": true},
    {"name": "overload_2x", "workers": 4, "total": 120, "high_submitted": 13, "high_expired": 0, "high_shed": 0, "high_miss_rate": 0.0000, "normal_submitted": 71, "normal_shed": 15, "normal_shed_rate": 0.2113, "low_submitted": 36, "low_shed": 28, "low_shed_rate": 0.7778, "replaced_workers": 0, "over_high_water": true}
  ]
}
"#;

    const V6: &str = r#"{
  "schema": "kn-bench-sched-v6",
  "quick": false,
  "samples": 11,
  "entries": [
    {"name": "figure7", "cyclic_nodes": 5, "arena_ns_per_op": 1889.6, "reference_ns_per_op": 7056.6, "speedup": 3.7344}
  ],
  "event_entries": [
    {"name": "fanout8", "iters": 100000, "events": 1500000, "heap_ns_per_run": 300000000.0, "calendar_ns_per_run": 110000000.0, "speedup": 2.7272}
  ],
  "service_entries": [
    {"name": "corpus_mix", "requests": 16, "workers": 4, "seq_ns_per_batch": 40000000.0, "service_ns_per_batch": 12900000.0, "speedup": 3.1007}
  ],
  "lifecycle_entries": [
    {"name": "corpus_mix", "workers": 4, "requests": 16, "rejected": 0, "rejection_rate": 0.0, "expired": 0, "deadline_miss_rate": 0.0, "retries": 2, "p50_latency_ns": 500000.0, "p99_latency_ns": 2100000.0, "wall_ns": 6000000}
  ],
  "overload_entries": [
    {"name": "overload_2x", "workers": 4, "total": 120, "high_submitted": 13, "high_expired": 0, "high_shed": 0, "high_miss_rate": 0.0000, "normal_submitted": 71, "normal_shed": 15, "normal_shed_rate": 0.2113, "low_submitted": 36, "low_shed": 28, "low_shed_rate": 0.7778, "replaced_workers": 0, "over_high_water": true}
  ],
  "cache_entries": [
    {"name": "zipf8", "workers": 1, "total": 400, "distinct": 8, "hits": 350, "misses": 8, "coalesced": 42, "evictions": 0, "hit_rate": 0.9800, "cached_wall_ns": 4000000, "uncached_wall_ns": 30000000, "speedup": 7.5000},
    {"name": "zipf8", "workers": 4, "total": 400, "distinct": 8, "hits": 360, "misses": 8, "coalesced": 32, "evictions": 0, "hit_rate": 0.9800, "cached_wall_ns": 3000000, "uncached_wall_ns": 12000000, "speedup": 4.0000},
    {"name": "cold", "workers": 4, "total": 400, "distinct": 0, "hits": 0, "misses": 400, "coalesced": 0, "evictions": 336, "hit_rate": 0.0000, "cached_wall_ns": 12500000, "uncached_wall_ns": 12000000, "speedup": 0.9600}
  ]
}
"#;

    const V7: &str = r#"{
  "schema": "kn-bench-sched-v7",
  "quick": false,
  "samples": 11,
  "entries": [
    {"name": "figure7", "cyclic_nodes": 5, "arena_ns_per_op": 1889.6, "reference_ns_per_op": 7056.6, "speedup": 3.7344}
  ],
  "event_entries": [
    {"name": "fanout8", "iters": 100000, "events": 1500000, "heap_ns_per_run": 300000000.0, "calendar_ns_per_run": 110000000.0, "speedup": 2.7272}
  ],
  "service_entries": [
    {"name": "corpus_mix", "requests": 16, "workers": 4, "seq_ns_per_batch": 40000000.0, "service_ns_per_batch": 12900000.0, "speedup": 3.1007}
  ],
  "lifecycle_entries": [
    {"name": "corpus_mix", "workers": 4, "requests": 16, "rejected": 0, "rejection_rate": 0.0, "expired": 0, "deadline_miss_rate": 0.0, "retries": 2, "p50_latency_ns": 500000.0, "p99_latency_ns": 2100000.0, "wall_ns": 6000000}
  ],
  "overload_entries": [
    {"name": "overload_2x", "workers": 4, "total": 120, "high_submitted": 13, "high_expired": 0, "high_shed": 0, "high_miss_rate": 0.0000, "normal_submitted": 71, "normal_shed": 15, "normal_shed_rate": 0.2113, "low_submitted": 36, "low_shed": 28, "low_shed_rate": 0.7778, "replaced_workers": 0, "over_high_water": true}
  ],
  "cache_entries": [
    {"name": "zipf8", "workers": 4, "total": 400, "distinct": 8, "hits": 360, "misses": 8, "coalesced": 32, "evictions": 0, "hit_rate": 0.9800, "cached_wall_ns": 3000000, "uncached_wall_ns": 12000000, "speedup": 4.0000}
  ],
  "xform_entries": [
    {"name": "fissionable/twophase", "reduce": "skipped(XR03)", "fission": "applied", "pieces": 3, "mii_before": 2.0000, "mii_after": 2.0000, "improvement": 1.0000, "xform_ns_per_op": 120000.0},
    {"name": "reduction/sum", "reduce": "applied", "fission": "skipped(XS01)", "pieces": 1, "mii_before": 2.0000, "mii_after": 0.0000, "improvement": 2.0000, "xform_ns_per_op": 80000.0},
    {"name": "reduction/scan", "reduce": "skipped(XR02)", "fission": "skipped(XS02)", "pieces": 1, "mii_before": 2.0000, "mii_after": 2.0000, "improvement": 1.0000, "xform_ns_per_op": 20000.0}
  ]
}
"#;

    fn policy(pct: f64, ratios_only: bool) -> GatePolicy {
        GatePolicy {
            max_regress_pct: pct,
            ratios_only,
            service_max_regress_pct: None,
        }
    }

    #[test]
    fn parses_v2() {
        let r = parse(V2).unwrap();
        assert_eq!(r.schema, "kn-bench-sched-v2");
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].name, "figure7");
        assert_eq!(r.entries[0].arena_ns_per_op, 1889.6);
        assert_eq!(r.entries[1].speedup, 6.3199);
        assert_eq!(r.event_entries.len(), 1);
        assert_eq!(r.event_entries[0].name, "fanout8");
        assert_eq!(r.event_entries[0].calendar_ns_per_run, 110000000.0);
    }

    #[test]
    fn parses_v3_with_service_entries() {
        let r = parse(V3).unwrap();
        assert_eq!(r.schema, "kn-bench-sched-v3");
        assert_eq!(r.service_entries.len(), 2);
        assert_eq!(r.service_entries[0].name, "corpus_mix");
        assert_eq!(r.service_entries[0].workers, 4.0);
        assert_eq!(r.service_entries[0].service_ns_per_batch, 12900000.0);
        assert_eq!(r.service_entries[1].speedup, 2.7272);
        // The v2 sections still parse alongside.
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.event_entries.len(), 1);
        assert!(compare(&r, &r, policy(25.0, false)).is_empty());
    }

    #[test]
    fn service_throughput_collapse_fails_both_gates() {
        let base = parse(V3).unwrap();
        let mut cand = base.clone();
        cand.service_entries[0].speedup = 1.0; // pool lost its advantage
        for ratios_only in [false, true] {
            let v = compare(&base, &cand, policy(25.0, ratios_only));
            assert!(
                v.iter()
                    .any(|v| v.contains("corpus_mix service-vs-sequential")),
                "{v:?}"
            );
        }
        // Absolute batch time is gated only in full mode.
        let mut slow = base.clone();
        slow.service_entries[1].service_ns_per_batch *= 2.0;
        let v = compare(&base, &slow, policy(25.0, false));
        assert!(
            v.iter()
                .any(|v| v.contains("table1_cells service_ns_per_batch")),
            "{v:?}"
        );
        assert!(compare(&base, &slow, policy(25.0, true)).is_empty());
    }

    #[test]
    fn renamed_service_section_fails_instead_of_passing_vacuously() {
        let base = parse(V3).unwrap();
        let mut cand = base.clone();
        for e in &mut cand.service_entries {
            e.name = format!("renamed-{}", e.name);
        }
        let v = compare(&base, &cand, policy(25.0, true));
        assert!(
            v.iter()
                .any(|v| v.contains("no service entry names matched")),
            "{v:?}"
        );
        // A v2 candidate (no service section at all) also fails the v3 gate.
        let v2 = parse(V2).unwrap();
        let v = compare(&base, &v2, policy(25.0, true));
        assert!(
            v.iter()
                .any(|v| v.contains("no service entry names matched")),
            "{v:?}"
        );
    }

    #[test]
    fn parses_v4_with_lifecycle_entries() {
        let r = parse(V4).unwrap();
        assert_eq!(r.schema, "kn-bench-sched-v4");
        assert_eq!(r.lifecycle_entries.len(), 2);
        assert_eq!(r.lifecycle_entries[0].name, "corpus_mix");
        assert_eq!(r.lifecycle_entries[0].workers, 1.0);
        assert_eq!(r.lifecycle_entries[0].rejection_rate, 0.125);
        assert_eq!(r.lifecycle_entries[1].p99_latency_ns, 2100000.0);
        // The v3 sections still parse alongside.
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.event_entries.len(), 1);
        assert_eq!(r.service_entries.len(), 1);
        assert!(compare(&r, &r, policy(25.0, false)).is_empty());
    }

    #[test]
    fn lifecycle_latency_is_gated_in_full_mode_only() {
        let base = parse(V4).unwrap();
        let mut cand = base.clone();
        cand.lifecycle_entries[1].p99_latency_ns *= 2.0;
        let v = compare(&base, &cand, policy(25.0, false));
        assert!(
            v.iter().any(|v| v.contains("corpus_mix w4 p99_latency_ns")),
            "{v:?}"
        );
        // Absolute latency is machine-specific: ratios-only ignores it.
        assert!(compare(&base, &cand, policy(25.0, true)).is_empty());
        // Rates are recorded, not gated.
        let mut rates = base.clone();
        rates.lifecycle_entries[0].rejection_rate = 0.9;
        assert!(compare(&base, &rates, policy(25.0, false)).is_empty());
    }

    #[test]
    fn missing_lifecycle_section_fails_a_v4_gate() {
        let base = parse(V4).unwrap();
        let v3 = parse(V3).unwrap();
        let v = compare(&base, &v3, policy(25.0, true));
        assert!(
            v.iter()
                .any(|v| v.contains("no lifecycle entry names matched")),
            "{v:?}"
        );
    }

    #[test]
    fn service_section_honors_its_tighter_budget() {
        let base = parse(V3).unwrap();
        let mut cand = base.clone();
        // 15% throughput loss: inside the generic 60% budget, outside the
        // 10% service budget (the >= 0.9x happy-path gate).
        cand.service_entries[0].speedup *= 0.85;
        let loose = GatePolicy {
            max_regress_pct: 60.0,
            ratios_only: true,
            service_max_regress_pct: None,
        };
        assert!(compare(&base, &cand, loose).is_empty());
        let gated = GatePolicy {
            service_max_regress_pct: Some(10.0),
            ..loose
        };
        let v = compare(&base, &cand, gated);
        assert!(
            v.iter()
                .any(|v| v.contains("corpus_mix service-vs-sequential")),
            "{v:?}"
        );
        // Other sections keep the loose budget.
        let mut arena = base.clone();
        arena.entries[0].speedup *= 0.85;
        assert!(compare(&base, &arena, gated).is_empty());
    }

    #[test]
    fn parses_v5_with_overload_entries() {
        let r = parse(V5).unwrap();
        assert_eq!(r.schema, "kn-bench-sched-v5");
        assert_eq!(r.overload_entries.len(), 2);
        assert_eq!(r.overload_entries[0].name, "overload_2x");
        assert_eq!(r.overload_entries[0].workers, 1.0);
        assert_eq!(r.overload_entries[0].high_miss_rate, 0.0);
        assert_eq!(r.overload_entries[1].low_shed, 28.0);
        // The earlier sections still parse alongside.
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.service_entries.len(), 1);
        assert_eq!(r.lifecycle_entries.len(), 1);
        assert!(compare(&r, &r, policy(25.0, false)).is_empty());
        assert!(compare(&r, &r, policy(25.0, true)).is_empty());
    }

    #[test]
    fn overload_invariants_are_gated_absolutely_in_both_modes() {
        let base = parse(V5).unwrap();
        // High missing deadlines fails, whatever the baseline said.
        let mut miss = base.clone();
        miss.overload_entries[0].high_miss_rate = 0.05;
        // Low shedding less than Normal fails.
        let mut inverted = base.clone();
        inverted.overload_entries[1].low_shed_rate = 0.1;
        // A run that shed no Low at 2x saturation is an inert policy.
        let mut inert = base.clone();
        inert.overload_entries[0].low_shed = 0.0;
        // Any shed High request fails.
        let mut shed_high = base.clone();
        shed_high.overload_entries[0].high_shed = 1.0;
        for ratios_only in [false, true] {
            let v = compare(&base, &miss, policy(25.0, ratios_only));
            assert!(v.iter().any(|v| v.contains("deadline-miss")), "{v:?}");
            let v = compare(&base, &inverted, policy(25.0, ratios_only));
            assert!(v.iter().any(|v| v.contains("Low must shed first")), "{v:?}");
            let v = compare(&base, &inert, policy(25.0, ratios_only));
            assert!(
                v.iter().any(|v| v.contains("brownout policy inert")),
                "{v:?}"
            );
            let v = compare(&base, &shed_high, policy(25.0, ratios_only));
            assert!(v.iter().any(|v| v.contains("High is never shed")), "{v:?}");
        }
    }

    #[test]
    fn missing_overload_section_fails_a_v5_gate() {
        let base = parse(V5).unwrap();
        let v4 = parse(V4).unwrap();
        let v = compare(&base, &v4, policy(25.0, true));
        assert!(
            v.iter()
                .any(|v| v.contains("no overload entry names matched")),
            "{v:?}"
        );
    }

    #[test]
    fn parses_v6_with_cache_entries() {
        let r = parse(V6).unwrap();
        assert_eq!(r.schema, "kn-bench-sched-v6");
        assert_eq!(r.cache_entries.len(), 3);
        assert_eq!(r.cache_entries[0].name, "zipf8");
        assert_eq!(r.cache_entries[0].workers, 1.0);
        assert_eq!(r.cache_entries[0].hit_rate, 0.98);
        assert_eq!(r.cache_entries[2].distinct, 0.0);
        assert_eq!(r.cache_entries[2].speedup, 0.96);
        // The earlier sections still parse alongside.
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.overload_entries.len(), 1);
        assert!(compare(&r, &r, policy(25.0, false)).is_empty());
        assert!(compare(&r, &r, policy(25.0, true)).is_empty());
    }

    #[test]
    fn cache_invariants_are_gated_absolutely_in_both_modes() {
        let base = parse(V6).unwrap();
        // The Zipf mix barely reusing anything = an inert cache.
        let mut inert = base.clone();
        inert.cache_entries[0].hit_rate = 0.2;
        // Cache-on slower than 2x cache-off at 4 workers fails the gate.
        let mut slow = base.clone();
        slow.cache_entries[1].speedup = 1.4;
        // A nonzero hit rate on the all-unique mix means the fingerprint
        // conflated two distinct requests — the one unforgivable bug.
        let mut wrong = base.clone();
        wrong.cache_entries[2].hit_rate = 0.01;
        // Cold-mix overhead past 10% fails no-regress.
        let mut taxed = base.clone();
        taxed.cache_entries[2].speedup = 0.7;
        for ratios_only in [false, true] {
            let v = compare(&base, &inert, policy(25.0, ratios_only));
            assert!(v.iter().any(|v| v.contains("cache inert")), "{v:?}");
            let v = compare(&base, &slow, policy(25.0, ratios_only));
            assert!(v.iter().any(|v| v.contains("below the 2x gate")), "{v:?}");
            let v = compare(&base, &wrong, policy(25.0, ratios_only));
            assert!(v.iter().any(|v| v.contains("wrong answer")), "{v:?}");
            let v = compare(&base, &taxed, policy(25.0, ratios_only));
            assert!(v.iter().any(|v| v.contains("0.9x no-regress")), "{v:?}");
        }
        // 1-worker Zipf speedup is recorded, not held to the 2x gate
        // (a single worker can't parallelize the uncached side).
        let mut one_worker = base.clone();
        one_worker.cache_entries[0].speedup = 1.5;
        assert!(compare(&base, &one_worker, policy(25.0, true)).is_empty());
    }

    #[test]
    fn parses_v7_with_xform_entries() {
        let r = parse(V7).unwrap();
        assert_eq!(r.schema, "kn-bench-sched-v7");
        assert_eq!(r.xform_entries.len(), 3);
        assert_eq!(r.xform_entries[0].name, "fissionable/twophase");
        assert_eq!(r.xform_entries[0].fission, "applied");
        assert_eq!(r.xform_entries[0].pieces, 3.0);
        assert_eq!(r.xform_entries[1].reduce, "applied");
        assert_eq!(r.xform_entries[1].improvement, 2.0);
        assert_eq!(r.xform_entries[2].reduce, "skipped(XR02)");
        // The earlier sections still parse alongside.
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.cache_entries.len(), 1);
        assert!(compare(&r, &r, policy(25.0, false)).is_empty());
        assert!(compare(&r, &r, policy(25.0, true)).is_empty());
    }

    #[test]
    fn xform_invariants_are_gated_absolutely_in_both_modes() {
        let base = parse(V7).unwrap();
        // A transform that makes any loop worse fails, whatever the
        // baseline said.
        let mut worse = base.clone();
        worse.xform_entries[0].mii_after = 3.0;
        worse.xform_entries[0].improvement = 0.6667;
        // A recognized reduction that barely moves the MII fails the
        // 1.5x family gate.
        let mut weak = base.clone();
        weak.xform_entries[1].improvement = 1.2;
        // Skipped negatives at exactly 1.0 are fine — but if reduction
        // recognition stops firing everywhere, the section is inert.
        let mut inert = base.clone();
        inert.xform_entries[1].reduce = "skipped(XR03)".into();
        inert.xform_entries[1].improvement = 1.0;
        for ratios_only in [false, true] {
            let v = compare(&base, &worse, policy(25.0, ratios_only));
            assert!(v.iter().any(|v| v.contains("never-worse gate")), "{v:?}");
            let v = compare(&base, &weak, policy(25.0, ratios_only));
            assert!(
                v.iter().any(|v| v.contains("1.5x reduction-family gate")),
                "{v:?}"
            );
            let v = compare(&base, &inert, policy(25.0, ratios_only));
            assert!(
                v.iter().any(|v| v.contains("reduction recognition inert")),
                "{v:?}"
            );
        }
        // The non-reduction pieces keeping their recurrence (1.0x) is
        // not a violation.
        assert!(compare(&base, &base, policy(25.0, true)).is_empty());
    }

    #[test]
    fn missing_xform_section_fails_a_v7_gate() {
        let base = parse(V7).unwrap();
        let v6 = parse(V6).unwrap();
        let v = compare(&base, &v6, policy(25.0, true));
        assert!(
            v.iter().any(|v| v.contains("no xform entry names matched")),
            "{v:?}"
        );
    }

    #[test]
    fn missing_cache_section_fails_a_v6_gate() {
        let base = parse(V6).unwrap();
        let v5 = parse(V5).unwrap();
        let v = compare(&base, &v5, policy(25.0, true));
        assert!(
            v.iter().any(|v| v.contains("no cache entry names matched")),
            "{v:?}"
        );
    }

    #[test]
    fn parses_v1_without_event_entries() {
        let v1 = r#"{
  "schema": "kn-bench-sched-v1",
  "entries": [
    {"name": "a", "cyclic_nodes": 1, "arena_ns_per_op": 10.0, "reference_ns_per_op": 30.0, "speedup": 3.0}
  ]
}"#;
        let r = parse(v1).unwrap();
        assert_eq!(r.entries.len(), 1);
        assert!(r.event_entries.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"schema\": \"other\", \"entries\": []}").is_err());
    }

    #[test]
    fn identical_reports_pass() {
        let r = parse(V2).unwrap();
        assert!(compare(&r, &r, policy(25.0, false)).is_empty());
    }

    #[test]
    fn ns_regression_fails_full_gate_only() {
        let base = parse(V2).unwrap();
        let mut cand = base.clone();
        cand.entries[0].arena_ns_per_op *= 1.5; // +50% slower
        let v = compare(&base, &cand, policy(25.0, false));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("figure7 arena_ns_per_op"), "{v:?}");
        assert!(compare(&base, &cand, policy(25.0, true)).is_empty());
        // A 20% slowdown is inside the default budget.
        let mut mild = base.clone();
        mild.entries[0].arena_ns_per_op *= 1.2;
        assert!(compare(&base, &mild, policy(25.0, false)).is_empty());
    }

    #[test]
    fn ratio_collapse_fails_both_gates() {
        let base = parse(V2).unwrap();
        let mut cand = base.clone();
        cand.event_entries[0].speedup = 1.1; // calendar lost its edge
        for ratios_only in [false, true] {
            let v = compare(&base, &cand, policy(25.0, ratios_only));
            assert!(
                v.iter().any(|v| v.contains("fanout8 calendar-vs-heap")),
                "{v:?}"
            );
        }
    }

    #[test]
    fn partially_unmatched_entries_are_ignored() {
        // Retiring one case is fine as long as something still matches.
        let base = parse(V2).unwrap();
        let mut cand = base.clone();
        cand.entries.remove(0);
        assert!(compare(&base, &cand, policy(25.0, false)).is_empty());
    }

    #[test]
    fn fully_unmatched_section_fails_instead_of_passing_vacuously() {
        // A wholesale rename (or an empty candidate run) must not turn
        // the gate into a silent no-op.
        let base = parse(V2).unwrap();
        let mut cand = base.clone();
        cand.event_entries.clear();
        let v = compare(&base, &cand, policy(25.0, true));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no event entry names matched"), "{v:?}");
        for e in &mut cand.entries {
            e.name = format!("renamed-{}", e.name);
        }
        let v = compare(&base, &cand, policy(25.0, true));
        assert!(
            v.iter()
                .any(|v| v.contains("no scheduler entry names matched")),
            "{v:?}"
        );
    }
}
