#![forbid(unsafe_code)]
//! Criterion benches regenerating the paper's tables and figures live in
//! benches/; the `kn-bench` binary emits `BENCH_sched.json` and the
//! `bench-compare` binary gates a candidate JSON against a committed
//! baseline (see [`trajectory`]).

pub mod trajectory;
