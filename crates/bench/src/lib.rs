//! Criterion benches regenerating the paper's tables and figures live in benches/.
