//! Patterns: the repeating kernels that the paper's Theorem 1 guarantees.
//!
//! `Cyclic-sched` schedules the infinitely unwound Cyclic subgraph greedily;
//! the resulting schedule eventually repeats a *pattern* — a set of
//! placements that recurs every `cycles_per_period` cycles with iteration
//! indices advanced by `iters_per_period`. Once the pattern is found the
//! loop can be emitted as `prologue; repeat kernel` (paper §1, §2.2).

use crate::machine::Cycle;
use crate::table::Placement;
use kn_ddg::InstanceId;

/// A periodic schedule: prologue (in scheduling order) followed by a kernel
/// that repeats with fixed iteration and time shifts.
#[derive(Clone, Debug)]
pub struct Pattern {
    /// Placements before the first kernel occurrence, in scheduling order.
    pub prologue: Vec<Placement>,
    /// One kernel period, in scheduling order, at its first occurrence's
    /// absolute coordinates.
    pub kernel: Vec<Placement>,
    /// Iteration shift per period (`d` of the paper's Definition 1).
    pub iters_per_period: u32,
    /// Time shift per period.
    pub cycles_per_period: Cycle,
}

impl Pattern {
    /// Steady-state initiation interval: cycles per loop iteration once the
    /// kernel is reached. The figure of merit the paper optimizes.
    pub fn steady_ii(&self) -> f64 {
        self.cycles_per_period as f64 / self.iters_per_period as f64
    }

    /// Height `H` of the pattern in cycles (used by `Flow-in-sched`,
    /// paper Figure 5).
    pub fn height(&self) -> Cycle {
        self.cycles_per_period
    }

    /// Number of distinct processors the kernel touches.
    pub fn kernel_processors(&self) -> usize {
        let mut procs: Vec<usize> = self.kernel.iter().map(|p| p.proc).collect();
        procs.sort_unstable();
        procs.dedup();
        procs.len()
    }

    /// The `r`-th occurrence of the kernel (`r = 0` is the stored one).
    pub fn kernel_occurrence(&self, r: u64) -> impl Iterator<Item = Placement> + '_ {
        let di = self.iters_per_period as u64 * r;
        let dt = self.cycles_per_period * r;
        self.kernel.iter().map(move |p| Placement {
            inst: InstanceId {
                node: p.inst.node,
                iter: p.inst.iter + di as u32,
            },
            proc: p.proc,
            start: p.start + dt,
        })
    }

    /// Materialize the schedule for iterations `0..iters`: the prologue and
    /// as many kernel occurrences as still contain an instance with
    /// `iter < iters`, dropping out-of-range instances. This is exactly the
    /// infinite greedy schedule restricted to the first `iters` iterations,
    /// so it inherits its validity.
    ///
    /// Degenerate patterns are total rather than panicking or diverging: an
    /// empty kernel yields just the (filtered) prologue — there is nothing
    /// to repeat — and a zero `iters_per_period` (a kernel that would never
    /// advance the iteration space) contributes its single occurrence once
    /// instead of looping forever. `Cyclic-sched` never emits either shape;
    /// the guards keep the public API safe on hand-built patterns.
    pub fn instantiate(&self, iters: u32) -> Vec<Placement> {
        let mut out: Vec<Placement> = self
            .prologue
            .iter()
            .copied()
            .filter(|p| p.inst.iter < iters)
            .collect();
        let Some(min_iter) = self.kernel.iter().map(|p| p.inst.iter).min() else {
            return out;
        };
        if self.iters_per_period == 0 {
            out.extend(self.kernel_occurrence(0).filter(|p| p.inst.iter < iters));
            return out;
        }
        let mut r = 0u64;
        while min_iter as u64 + r * (self.iters_per_period as u64) < iters as u64 {
            out.extend(self.kernel_occurrence(r).filter(|p| p.inst.iter < iters));
            r += 1;
        }
        out
    }

    /// Infinite stream of placements in scheduling order (prologue then
    /// kernel occurrences). Used to verify Theorem 1 against a raw greedy
    /// run.
    pub fn stream(&self) -> impl Iterator<Item = Placement> + '_ {
        self.prologue
            .iter()
            .copied()
            .chain((0u64..).flat_map(move |r| self.kernel_occurrence(r)))
    }

    /// Rewrite node ids (used when a pattern computed on an extracted
    /// subgraph is mapped back to the full loop's node ids).
    pub fn map_nodes(&self, f: impl Fn(kn_ddg::NodeId) -> kn_ddg::NodeId) -> Pattern {
        let remap = |ps: &[Placement]| {
            ps.iter()
                .map(|p| Placement {
                    inst: InstanceId {
                        node: f(p.inst.node),
                        iter: p.inst.iter,
                    },
                    proc: p.proc,
                    start: p.start,
                })
                .collect()
        };
        Pattern {
            prologue: remap(&self.prologue),
            kernel: remap(&self.kernel),
            iters_per_period: self.iters_per_period,
            cycles_per_period: self.cycles_per_period,
        }
    }

    /// Shift all processor indices (used to pack independently scheduled
    /// components onto disjoint processor ranges).
    pub fn offset_procs(&self, offset: usize) -> Pattern {
        let remap = |ps: &[Placement]| {
            ps.iter()
                .map(|p| Placement {
                    proc: p.proc + offset,
                    ..*p
                })
                .collect()
        };
        Pattern {
            prologue: remap(&self.prologue),
            kernel: remap(&self.kernel),
            iters_per_period: self.iters_per_period,
            cycles_per_period: self.cycles_per_period,
        }
    }
}

/// Fallback when no pattern was found within the unroll cap (never observed
/// on the paper's workloads; kept so that the API is total): a block of
/// `block_iters` iterations scheduled as a finite DAG, tiled with a period
/// long enough that every cross-block dependence (distance ≤ block_iters)
/// is trivially satisfied.
#[derive(Clone, Debug)]
pub struct BlockSchedule {
    /// Placements for iterations `0..block_iters`.
    pub block: Vec<Placement>,
    pub block_iters: u32,
    /// Time shift between consecutive blocks.
    pub period: Cycle,
}

impl BlockSchedule {
    /// Materialize iterations `0..iters` by tiling the block. A degenerate
    /// zero-iteration block tiles nothing (instead of diverging).
    pub fn instantiate(&self, iters: u32) -> Vec<Placement> {
        let mut out = Vec::new();
        if self.block_iters == 0 {
            return out;
        }
        let mut base_iter = 0u32;
        let mut base_time = 0 as Cycle;
        while base_iter < iters {
            out.extend(
                self.block
                    .iter()
                    .map(|p| Placement {
                        inst: InstanceId {
                            node: p.inst.node,
                            iter: p.inst.iter + base_iter,
                        },
                        proc: p.proc,
                        start: p.start + base_time,
                    })
                    .filter(|p| p.inst.iter < iters),
            );
            base_iter += self.block_iters;
            base_time += self.period;
        }
        out
    }

    /// Average cycles per iteration of the tiled schedule.
    pub fn steady_ii(&self) -> f64 {
        self.period as f64 / self.block_iters as f64
    }
}

/// Result of `Cyclic-sched`: the paper's pattern, or the block fallback.
#[derive(Clone, Debug)]
pub enum PatternOutcome {
    Found(Pattern),
    CapFallback(BlockSchedule),
}

impl PatternOutcome {
    /// Steady-state cycles per iteration.
    pub fn steady_ii(&self) -> f64 {
        match self {
            PatternOutcome::Found(p) => p.steady_ii(),
            PatternOutcome::CapFallback(b) => b.steady_ii(),
        }
    }

    /// Materialize a finite schedule.
    pub fn instantiate(&self, iters: u32) -> Vec<Placement> {
        match self {
            PatternOutcome::Found(p) => p.instantiate(iters),
            PatternOutcome::CapFallback(b) => b.instantiate(iters),
        }
    }

    /// The pattern, if one was found.
    pub fn pattern(&self) -> Option<&Pattern> {
        match self {
            PatternOutcome::Found(p) => Some(p),
            PatternOutcome::CapFallback(_) => None,
        }
    }

    /// Rewrite node ids (see [`Pattern::map_nodes`]).
    pub fn map_nodes(&self, f: impl Fn(kn_ddg::NodeId) -> kn_ddg::NodeId) -> PatternOutcome {
        match self {
            PatternOutcome::Found(p) => PatternOutcome::Found(p.map_nodes(f)),
            PatternOutcome::CapFallback(b) => PatternOutcome::CapFallback(BlockSchedule {
                block: b
                    .block
                    .iter()
                    .map(|p| Placement {
                        inst: InstanceId {
                            node: f(p.inst.node),
                            iter: p.inst.iter,
                        },
                        ..*p
                    })
                    .collect(),
                block_iters: b.block_iters,
                period: b.period,
            }),
        }
    }

    /// Shift all processor indices (see [`Pattern::offset_procs`]).
    pub fn offset_procs(&self, offset: usize) -> PatternOutcome {
        match self {
            PatternOutcome::Found(p) => PatternOutcome::Found(p.offset_procs(offset)),
            PatternOutcome::CapFallback(b) => PatternOutcome::CapFallback(BlockSchedule {
                block: b
                    .block
                    .iter()
                    .map(|p| Placement {
                        proc: p.proc + offset,
                        ..*p
                    })
                    .collect(),
                block_iters: b.block_iters,
                period: b.period,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::NodeId;

    fn inst(node: u32, iter: u32) -> InstanceId {
        InstanceId {
            node: NodeId(node),
            iter,
        }
    }

    fn simple_pattern() -> Pattern {
        // Prologue: (0,0)@P0 t0. Kernel: (0,1)@P0 t1 repeating every
        // 1 iteration / 1 cycle.
        Pattern {
            prologue: vec![Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            }],
            kernel: vec![Placement {
                inst: inst(0, 1),
                proc: 0,
                start: 1,
            }],
            iters_per_period: 1,
            cycles_per_period: 1,
        }
    }

    #[test]
    fn steady_ii_simple() {
        assert_eq!(simple_pattern().steady_ii(), 1.0);
    }

    #[test]
    fn instantiate_covers_each_iteration_once() {
        let p = simple_pattern();
        let placements = p.instantiate(5);
        assert_eq!(placements.len(), 5);
        let mut iters: Vec<u32> = placements.iter().map(|p| p.inst.iter).collect();
        iters.sort_unstable();
        assert_eq!(iters, vec![0, 1, 2, 3, 4]);
        // times advance by the period
        let t4 = placements.iter().find(|p| p.inst.iter == 4).unwrap().start;
        assert_eq!(t4, 4);
    }

    #[test]
    fn multi_iteration_kernel() {
        // Kernel covers iterations {1,2} and repeats by 2 iters / 5 cycles.
        let p = Pattern {
            prologue: vec![Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            }],
            kernel: vec![
                Placement {
                    inst: inst(0, 1),
                    proc: 0,
                    start: 3,
                },
                Placement {
                    inst: inst(0, 2),
                    proc: 1,
                    start: 4,
                },
            ],
            iters_per_period: 2,
            cycles_per_period: 5,
        };
        assert_eq!(p.steady_ii(), 2.5);
        let placements = p.instantiate(6);
        assert_eq!(placements.len(), 6);
        // Iteration 5 comes from kernel instance (0,1) (start 3, proc 0)
        // shifted by two periods: 3 + 2*5 = 13.
        let t5 = placements.iter().find(|q| q.inst.iter == 5).unwrap();
        assert_eq!(t5.start, 13);
        assert_eq!(t5.proc, 0);
        assert_eq!(p.kernel_processors(), 2);
    }

    #[test]
    fn instantiate_filters_partial_period() {
        let p = Pattern {
            prologue: vec![],
            kernel: vec![
                Placement {
                    inst: inst(0, 0),
                    proc: 0,
                    start: 0,
                },
                Placement {
                    inst: inst(0, 1),
                    proc: 0,
                    start: 1,
                },
            ],
            iters_per_period: 2,
            cycles_per_period: 2,
        };
        // 3 iterations: second period contributes only iter 2.
        let placements = p.instantiate(3);
        assert_eq!(placements.len(), 3);
    }

    #[test]
    fn stream_is_prologue_then_kernels() {
        let p = simple_pattern();
        let first4: Vec<Placement> = p.stream().take(4).collect();
        assert_eq!(first4[0].inst, inst(0, 0));
        assert_eq!(first4[1].inst, inst(0, 1));
        assert_eq!(first4[3].inst, inst(0, 3));
        assert_eq!(first4[3].start, 3);
    }

    #[test]
    fn empty_kernel_instantiates_to_prologue_without_panicking() {
        // Regression: the min-over-kernel used to be an unguarded
        // `.unwrap()` — an empty kernel must yield the filtered prologue,
        // not a panic.
        let p = Pattern {
            prologue: vec![
                Placement {
                    inst: inst(0, 0),
                    proc: 0,
                    start: 0,
                },
                Placement {
                    inst: inst(0, 7),
                    proc: 0,
                    start: 7,
                },
            ],
            kernel: vec![],
            iters_per_period: 1,
            cycles_per_period: 1,
        };
        let placements = p.instantiate(5);
        assert_eq!(placements.len(), 1, "prologue filtered to iter < 5");
        assert_eq!(placements[0].inst, inst(0, 0));
        // Fully empty pattern: empty instantiation.
        let empty = Pattern {
            prologue: vec![],
            kernel: vec![],
            iters_per_period: 1,
            cycles_per_period: 1,
        };
        assert!(empty.instantiate(10).is_empty());
    }

    #[test]
    fn zero_iters_per_period_terminates_with_one_occurrence() {
        let p = Pattern {
            prologue: vec![],
            kernel: vec![Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            }],
            iters_per_period: 0,
            cycles_per_period: 1,
        };
        assert_eq!(p.instantiate(4).len(), 1);
    }

    #[test]
    fn zero_iteration_block_instantiates_empty() {
        let b = BlockSchedule {
            block: vec![Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            }],
            block_iters: 0,
            period: 1,
        };
        assert!(b.instantiate(3).is_empty());
    }

    #[test]
    fn block_schedule_tiles() {
        let b = BlockSchedule {
            block: vec![
                Placement {
                    inst: inst(0, 0),
                    proc: 0,
                    start: 0,
                },
                Placement {
                    inst: inst(0, 1),
                    proc: 0,
                    start: 2,
                },
            ],
            block_iters: 2,
            period: 6,
        };
        let placements = b.instantiate(5);
        assert_eq!(placements.len(), 5);
        let t4 = placements.iter().find(|p| p.inst.iter == 4).unwrap().start;
        assert_eq!(t4, 12);
        assert_eq!(b.steady_ii(), 3.0);
    }

    #[test]
    fn outcome_dispatch() {
        let o = PatternOutcome::Found(simple_pattern());
        assert_eq!(o.steady_ii(), 1.0);
        assert!(o.pattern().is_some());
        assert_eq!(o.instantiate(3).len(), 3);
    }
}
