//! The complete scheduling pipeline (paper Figure 6):
//!
//! 1. identify Flow-in / Cyclic / Flow-out subsets (`classification`);
//! 2. schedule the Cyclic subset (`Cyclic-sched`);
//! 3. schedule the Flow-in subset (`Flow-in-sched`);
//! 4. schedule the Flow-out subset (`Flow-out-sched`).
//!
//! This module additionally applies the paper's §3 refinement — folding
//! non-Cyclic nodes into a relatively idle Cyclic processor when that costs
//! "little or no additional delay" — by *measuring* both variants with
//! [`crate::program::static_times`] and keeping the merged one only if its
//! makespan stays within a configurable tolerance.
//!
//! Disconnected Cyclic subgraphs are scheduled per weakly-connected
//! component (paper §2.1), each on its own processor range.

use crate::cyclic::{cyclic_schedule, CyclicError, CyclicOptions};
use crate::flow::{flow_sequences, merge_candidate, subset_latency};
use crate::machine::{Cycle, MachineConfig};
use crate::pattern::PatternOutcome;
use crate::program::{static_times, Program, ProgramError, TimedProgram};
use crate::table::Placement;
use kn_ddg::{classify, split_components, Classification, Ddg, InstanceId, NodeId};

/// Options for [`schedule_loop`].
#[derive(Clone, Debug)]
pub struct FullOptions {
    /// Options forwarded to `Cyclic-sched`.
    pub cyclic: CyclicOptions,
    /// Relative makespan slowdown tolerated by the §3 merge heuristic
    /// (e.g. `0.1` = accept the merged program if it is at most 10% slower
    /// than the separate-processors program). `None` disables merging.
    pub merge_tolerance: Option<f64>,
    /// Optional static certification hook, run on every schedule this
    /// pipeline produces before it is returned. `kn-verify` provides
    /// `certify_loop_hook`; `kn-core` installs it in debug builds so any
    /// unsound schedule fails loudly instead of silently mis-executing.
    pub certify: Option<CertifyHook>,
}

/// Signature of the [`FullOptions::certify`] hook.
pub type CertifyHook = fn(&Ddg, &MachineConfig, &LoopSchedule) -> Result<(), String>;

impl Default for FullOptions {
    fn default() -> Self {
        Self {
            cyclic: CyclicOptions::default(),
            merge_tolerance: Some(0.10),
            certify: None,
        }
    }
}

/// How the non-Cyclic nodes ended up being placed.
#[derive(Clone, Debug, PartialEq)]
pub enum FlowDecision {
    /// The loop has no non-Cyclic nodes.
    NoFlowNodes,
    /// Figure 5: dedicated extra processors.
    Separate {
        flow_in_procs: usize,
        flow_out_procs: usize,
    },
    /// §3 heuristic: folded into an idle Cyclic processor.
    Merged { proc: usize },
}

/// Errors from [`schedule_loop`].
#[derive(Clone, Debug, PartialEq)]
pub enum SchedLoopError {
    /// Distances must be pre-normalized (see `kn_ddg::normalize_distances`;
    /// the `kn-core` facade does this automatically).
    NotNormalized,
    Cyclic(CyclicError),
    Program(ProgramError),
    /// The `FullOptions::certify` hook rejected the produced schedule.
    Certify(String),
}

impl std::fmt::Display for SchedLoopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedLoopError::NotNormalized => write!(f, "distances must be 0/1"),
            SchedLoopError::Cyclic(e) => write!(f, "cyclic scheduling failed: {e}"),
            SchedLoopError::Program(e) => write!(f, "program construction failed: {e}"),
            SchedLoopError::Certify(msg) => write!(f, "schedule certification failed: {msg}"),
        }
    }
}

impl std::error::Error for SchedLoopError {}

impl From<CyclicError> for SchedLoopError {
    fn from(e: CyclicError) -> Self {
        SchedLoopError::Cyclic(e)
    }
}

impl From<ProgramError> for SchedLoopError {
    fn from(e: ProgramError) -> Self {
        SchedLoopError::Program(e)
    }
}

/// A fully scheduled loop: assignment, order, and static timing for
/// `iters` iterations.
#[derive(Clone, Debug)]
pub struct LoopSchedule {
    /// The Flow-in / Cyclic / Flow-out split.
    pub classification: Classification,
    /// Pattern (or block fallback) per Cyclic component, node ids mapped
    /// back to the input graph, processors packed onto disjoint ranges.
    pub cyclic_outcomes: Vec<PatternOutcome>,
    /// The executable program (all subsets included).
    pub program: Program,
    /// Static timing of `program` under the machine's estimated costs.
    pub timing: TimedProgram,
    /// How non-Cyclic nodes were placed.
    pub flow_decision: FlowDecision,
    /// Number of iterations materialized.
    pub iters: u32,
}

impl LoopSchedule {
    /// Completion time under estimated costs.
    pub fn makespan(&self) -> Cycle {
        self.timing.makespan
    }

    /// Steady-state cycles per iteration of the Cyclic core (the slowest
    /// component gates the loop). `None` for DOALL loops.
    pub fn cyclic_ii(&self) -> Option<f64> {
        self.cyclic_outcomes
            .iter()
            .map(|o| o.steady_ii())
            .max_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Processors actually used.
    pub fn processors_used(&self) -> usize {
        self.program.used_processors()
    }
}

/// Schedule a loop end to end (paper Figure 6) for `iters` iterations.
pub fn schedule_loop(
    g: &Ddg,
    m: &MachineConfig,
    iters: u32,
    opts: &FullOptions,
) -> Result<LoopSchedule, SchedLoopError> {
    let sched = schedule_loop_inner(g, m, iters, opts)?;
    if let Some(certify) = opts.certify {
        certify(g, m, &sched).map_err(SchedLoopError::Certify)?;
    }
    Ok(sched)
}

fn schedule_loop_inner(
    g: &Ddg,
    m: &MachineConfig,
    iters: u32,
    opts: &FullOptions,
) -> Result<LoopSchedule, SchedLoopError> {
    if !g.distances_normalized() {
        return Err(SchedLoopError::NotNormalized);
    }
    let classification = classify(g);

    // DOALL loop: no Cyclic nodes; plain iteration interleaving over the
    // whole machine is optimal up to communication (paper §2.1).
    if classification.cyclic.is_empty() {
        let seqs = flow_sequences(g, &g.node_ids().collect::<Vec<_>>(), m.processors, iters);
        let program = Program { seqs, iters };
        program.check_complete(g)?;
        let timing = static_times(&program, g, m)?;
        return Ok(LoopSchedule {
            classification,
            cyclic_outcomes: Vec::new(),
            program,
            timing,
            flow_decision: FlowDecision::NoFlowNodes,
            iters,
        });
    }

    // --- Step 2: Cyclic-sched per weakly-connected Cyclic component. ---
    let (cyclic_sub, back) = g.induced_subgraph(&classification.cyclic);
    let mut outcomes: Vec<PatternOutcome> = Vec::new();
    let mut cyclic_placements: Vec<Placement> = Vec::new();
    let mut proc_base = 0usize;
    for (comp, comp_back) in split_components(&cyclic_sub) {
        let outcome = cyclic_schedule(&comp, m, &opts.cyclic)?;
        // Map node ids: component -> cyclic subgraph -> original graph.
        let outcome = outcome
            .map_nodes(|v| back[comp_back[v.index()].index()])
            .offset_procs(proc_base);
        let placements = outcome.instantiate(iters);
        let used = placements
            .iter()
            .map(|p| p.proc + 1)
            .max()
            .unwrap_or(proc_base);
        proc_base = used;
        cyclic_placements.extend(placements);
        outcomes.push(outcome);
    }
    let cyclic_procs = proc_base;

    // Per-processor cyclic sequences, ordered by start time.
    let mut by_proc: Vec<Vec<Placement>> = vec![Vec::new(); cyclic_procs];
    for p in &cyclic_placements {
        by_proc[p.proc].push(*p);
    }
    for seq in &mut by_proc {
        seq.sort_by_key(|p| (p.start, p.inst.iter, p.inst.node.0));
    }

    let flow_in = classification.flow_in.clone();
    let flow_out = classification.flow_out.clone();
    if flow_in.is_empty() && flow_out.is_empty() {
        let seqs: Vec<Vec<InstanceId>> = by_proc
            .iter()
            .map(|ps| ps.iter().map(|p| p.inst).collect())
            .collect();
        let program = Program { seqs, iters };
        program.check_complete(g)?;
        let timing = static_times(&program, g, m)?;
        return Ok(LoopSchedule {
            classification,
            cyclic_outcomes: outcomes,
            program,
            timing,
            flow_decision: FlowDecision::NoFlowNodes,
            iters,
        });
    }

    // --- Steps 3-4: Flow-in-sched / Flow-out-sched (Figure 5). ---
    let ii = outcomes
        .iter()
        .map(|o| o.steady_ii())
        .max_by(|a, b| a.partial_cmp(b).unwrap())
        .unwrap_or(1.0)
        .max(1e-9);
    let fi_lat = subset_latency(g, &flow_in);
    let fo_lat = subset_latency(g, &flow_out);
    let fi_procs = if fi_lat == 0 {
        0
    } else {
        ((fi_lat as f64 / ii).ceil() as usize).max(1)
    };
    let fo_procs = if fo_lat == 0 {
        0
    } else {
        ((fo_lat as f64 / ii).ceil() as usize).max(1)
    };

    let separate = build_separate(g, iters, &by_proc, &flow_in, &flow_out, fi_procs, fo_procs);
    separate.check_complete(g)?;
    let separate_timing = static_times(&separate, g, m)?;

    // --- §3 merge heuristic: measured, not assumed. ---
    let merged_choice = opts.merge_tolerance.and_then(|tol| {
        // Only attempt when a single pattern governs the core.
        let pattern = match outcomes.as_slice() {
            [PatternOutcome::Found(p)] => p,
            _ => return None,
        };
        let target = merge_candidate(pattern, g, fi_lat + fo_lat)?;
        let merged = build_merged(
            g,
            iters,
            &by_proc,
            &cyclic_placements,
            &flow_in,
            &flow_out,
            target,
        );
        merged.check_complete(g).ok()?;
        let timing = static_times(&merged, g, m).ok()?;
        let limit = separate_timing.makespan as f64 * (1.0 + tol);
        (timing.makespan as f64 <= limit).then_some((target, merged, timing))
    });

    let (program, timing, flow_decision) = match merged_choice {
        Some((proc, program, timing)) => (program, timing, FlowDecision::Merged { proc }),
        None => (
            separate,
            separate_timing,
            FlowDecision::Separate {
                flow_in_procs: fi_procs,
                flow_out_procs: fo_procs,
            },
        ),
    };

    Ok(LoopSchedule {
        classification,
        cyclic_outcomes: outcomes,
        program,
        timing,
        flow_decision,
        iters,
    })
}

/// Figure 5 layout: Cyclic processors first, then Flow-in processors, then
/// Flow-out processors.
fn build_separate(
    g: &Ddg,
    iters: u32,
    cyclic_by_proc: &[Vec<Placement>],
    flow_in: &[NodeId],
    flow_out: &[NodeId],
    fi_procs: usize,
    fo_procs: usize,
) -> Program {
    let mut seqs: Vec<Vec<InstanceId>> = cyclic_by_proc
        .iter()
        .map(|ps| ps.iter().map(|p| p.inst).collect())
        .collect();
    seqs.extend(flow_sequences(g, flow_in, fi_procs, iters));
    seqs.extend(flow_sequences(g, flow_out, fo_procs, iters));
    Program { seqs, iters }
}

/// §3 merged layout: non-Cyclic nodes interleaved into processor `target`.
/// Flow-in nodes of iteration `i` are keyed just before the earliest Cyclic
/// instance of iteration `i`; Flow-out nodes just after the latest. If the
/// resulting order were infeasible, `static_times` reports a deadlock and
/// the caller falls back to the separate layout.
fn build_merged(
    g: &Ddg,
    iters: u32,
    cyclic_by_proc: &[Vec<Placement>],
    cyclic_placements: &[Placement],
    flow_in: &[NodeId],
    flow_out: &[NodeId],
    target: usize,
) -> Program {
    let mut min_start = vec![Cycle::MAX; iters as usize];
    let mut max_finish = vec![0 as Cycle; iters as usize];
    for p in cyclic_placements {
        let i = p.inst.iter as usize;
        min_start[i] = min_start[i].min(p.start);
        max_finish[i] = max_finish[i].max(p.start + g.latency(p.inst.node) as Cycle);
    }
    // Keys: 2*start for cyclic work, 2*min_start - 1 for Flow-in (before),
    // 2*max_finish + 1 for Flow-out (after); stable secondary ordering by
    // (class, iteration, topo position).
    let topo = kn_ddg::intra_topo_order(g).expect("validated graph");
    let topo_pos = {
        let mut v = vec![0usize; g.node_count()];
        for (i, &n) in topo.iter().enumerate() {
            v[n.index()] = i;
        }
        v
    };
    let mut keyed: Vec<(i128, u8, u32, usize, InstanceId)> = Vec::new();
    for p in &cyclic_by_proc[target] {
        keyed.push((
            2 * p.start as i128,
            1,
            p.inst.iter,
            topo_pos[p.inst.node.index()],
            p.inst,
        ));
    }
    for i in 0..iters {
        for &n in flow_in {
            let key = 2 * min_start[i as usize] as i128 - 1;
            keyed.push((
                key,
                0,
                i,
                topo_pos[n.index()],
                InstanceId { node: n, iter: i },
            ));
        }
        for &n in flow_out {
            let key = 2 * max_finish[i as usize] as i128 + 1;
            keyed.push((
                key,
                2,
                i,
                topo_pos[n.index()],
                InstanceId { node: n, iter: i },
            ));
        }
    }
    keyed.sort();
    let mut seqs: Vec<Vec<InstanceId>> = cyclic_by_proc
        .iter()
        .map(|ps| ps.iter().map(|p| p.inst).collect())
        .collect();
    seqs[target] = keyed.into_iter().map(|(_, _, _, _, inst)| inst).collect();
    Program { seqs, iters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ScheduleTable;
    use kn_ddg::{DdgBuilder, SubsetKind};

    /// Figure 7's all-Cyclic loop.
    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    /// A loop with all three subsets: chain in -> core -> out.
    fn mixed() -> Ddg {
        let mut b = DdgBuilder::new();
        let fin1 = b.node("i1");
        let fin2 = b.node("i2");
        let c1 = b.node("c1");
        let c2 = b.node("c2");
        let out1 = b.node("o1");
        b.dep(fin1, fin2);
        b.dep(fin2, c1);
        b.dep(c1, c2);
        b.carried(c2, c1);
        b.dep(c2, out1);
        b.build().unwrap()
    }

    #[test]
    fn figure7_full_schedule_valid() {
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 12, &FullOptions::default()).unwrap();
        assert_eq!(s.flow_decision, FlowDecision::NoFlowNodes);
        assert_eq!(s.program.len(), 12 * g.node_count());
        let table = ScheduleTable::from_timed(&s.timing);
        table.validate(&g, &m).unwrap();
        assert!((s.cyclic_ii().unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn mixed_loop_covers_all_subsets() {
        let g = mixed();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 10, &FullOptions::default()).unwrap();
        let c = &s.classification;
        assert_eq!(c.kind_of(g.find("i1").unwrap()), SubsetKind::FlowIn);
        assert_eq!(c.kind_of(g.find("c1").unwrap()), SubsetKind::Cyclic);
        assert_eq!(c.kind_of(g.find("o1").unwrap()), SubsetKind::FlowOut);
        assert_eq!(s.program.len(), 10 * g.node_count());
        ScheduleTable::from_timed(&s.timing)
            .validate(&g, &m)
            .unwrap();
    }

    #[test]
    fn merge_heuristic_saves_processors_when_core_is_idle() {
        // Core: c1 -> c2 -> (carried) c1: II = 2 on one processor with the
        // other slot busy... actually both on one processor; core leaves
        // plenty of idle room only if spread over 2 procs. Use a wider
        // tolerance and simply assert both variants are *valid*; the
        // decision itself is measured.
        let g = mixed();
        let m = MachineConfig::new(4, 1);
        let merged = schedule_loop(
            &g,
            &m,
            16,
            &FullOptions {
                merge_tolerance: Some(10.0),
                ..FullOptions::default()
            },
        )
        .unwrap();
        let separate = schedule_loop(
            &g,
            &m,
            16,
            &FullOptions {
                merge_tolerance: None,
                ..FullOptions::default()
            },
        )
        .unwrap();
        assert!(matches!(
            separate.flow_decision,
            FlowDecision::Separate { .. }
        ));
        ScheduleTable::from_timed(&merged.timing)
            .validate(&g, &m)
            .unwrap();
        ScheduleTable::from_timed(&separate.timing)
            .validate(&g, &m)
            .unwrap();
        if let FlowDecision::Merged { .. } = merged.flow_decision {
            assert!(merged.processors_used() <= separate.processors_used());
        }
    }

    #[test]
    fn doall_loop_interleaves_iterations() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.dep(x, y);
        let g = b.build().unwrap();
        let m = MachineConfig::new(4, 1);
        let s = schedule_loop(&g, &m, 8, &FullOptions::default()).unwrap();
        assert!(s.classification.is_doall());
        assert!(s.cyclic_ii().is_none());
        assert_eq!(s.processors_used(), 4);
        ScheduleTable::from_timed(&s.timing)
            .validate(&g, &m)
            .unwrap();
        // 8 iterations of latency 2 over 4 procs: makespan 4.
        assert_eq!(s.makespan(), 4);
    }

    #[test]
    fn disconnected_cyclic_components_get_disjoint_processors() {
        let mut b = DdgBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        b.carried(a, a);
        b.carried(c, c);
        let g = b.build().unwrap();
        let m = MachineConfig::new(4, 2);
        let s = schedule_loop(&g, &m, 10, &FullOptions::default()).unwrap();
        assert_eq!(s.cyclic_outcomes.len(), 2);
        let table = ScheduleTable::from_timed(&s.timing);
        table.validate(&g, &m).unwrap();
        // Each self-loop runs on its own processor at II = 1.
        assert_eq!(s.makespan(), 10);
        assert_eq!(s.processors_used(), 2);
    }

    #[test]
    fn rejects_unnormalized() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.dep_dist(x, x, 3);
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 1);
        assert_eq!(
            schedule_loop(&g, &m, 4, &FullOptions::default()).unwrap_err(),
            SchedLoopError::NotNormalized
        );
    }

    #[test]
    fn elliptic_filter_merges_its_flow_out_node() {
        // The real §3 case: the elliptic filter's single Flow-out node fits
        // into a Cyclic processor's idle slots; the measured merge decision
        // must fire and save a processor vs the separate layout.
        let w = kn_workloads::elliptic();
        let m = MachineConfig::new(w.procs, w.k);
        let merged = schedule_loop(&w.graph, &m, 30, &FullOptions::default()).unwrap();
        assert!(
            matches!(merged.flow_decision, FlowDecision::Merged { .. }),
            "expected merge, got {:?}",
            merged.flow_decision
        );
        let separate = schedule_loop(
            &w.graph,
            &m,
            30,
            &FullOptions {
                merge_tolerance: None,
                ..FullOptions::default()
            },
        )
        .unwrap();
        assert!(merged.processors_used() < separate.processors_used());
        // And the merged program costs (almost) nothing.
        let limit = separate.makespan() as f64 * 1.10;
        assert!((merged.makespan() as f64) <= limit);
        ScheduleTable::from_timed(&merged.timing)
            .validate(&w.graph, &m)
            .unwrap();
    }

    #[test]
    fn cytron86_uses_five_subloops_like_figure10() {
        let w = kn_workloads::cytron86();
        let m = MachineConfig::new(w.procs, w.k);
        let s = schedule_loop(&w.graph, &m, 30, &FullOptions::default()).unwrap();
        match s.flow_decision {
            FlowDecision::Separate {
                flow_in_procs,
                flow_out_procs,
            } => {
                assert_eq!(flow_in_procs, 3, "ceil(13/6) Flow-in processors");
                assert_eq!(flow_out_procs, 0);
                assert_eq!(
                    s.processors_used(),
                    5,
                    "2 Cyclic + 3 Flow-in (paper Fig. 10)"
                );
            }
            other => panic!("expected separate flow processors, got {other:?}"),
        }
    }

    #[test]
    fn timing_is_at_least_pattern_rate() {
        // The full program's makespan per iteration cannot beat the
        // pattern's steady II.
        let g = figure7();
        let m = MachineConfig::new(4, 2);
        let iters = 40;
        let s = schedule_loop(&g, &m, iters, &FullOptions::default()).unwrap();
        let per_iter = s.makespan() as f64 / iters as f64;
        assert!(per_iter + 1e-9 >= s.cyclic_ii().unwrap() * 0.99);
    }
}
