//! The paper's configuration-window pattern detector (§2.3).
//!
//! The proof of Theorem 1 imagines a window of width `p` (all processors)
//! and height `k + 1` sliding down the infinite schedule; the portion of
//! the schedule inside the window is a *configuration*, and two
//! configurations are *identical* when one's node set is an
//! iteration-shifted form of the other with exactly the same relative
//! placement (Definitions 1–2). A repeated configuration marks a pattern
//! (Lemmas 5–7).
//!
//! Implementation notes:
//!
//! * The window top is sampled at each placement of the anchor node rather
//!   than at every cycle — a sparser slide that finds the same repeats on
//!   every workload in this repository, faster.
//! * A window is only inspected once it is **final**: no future placement
//!   can start before `min_j proc_free[j]`, so the window `[t, t+h)` is
//!   immutable once that frontier passes `t + h`.
//! * With latencies above 1 a `k+1`-high window can under-capture state
//!   (the paper's unit-latency argument in Lemma 6's footnote does not
//!   directly apply), so the height is widened to at least the maximum
//!   node latency, and every candidate is verified by replay before being
//!   accepted. Candidates that fail replay are simply discarded.

use crate::machine::{Cycle, MachineConfig};
use crate::state::StateStamp;
use crate::table::Placement;
use kn_ddg::Ddg;
use std::collections::{HashMap, VecDeque};

/// Canonical form of one configuration: sorted
/// `(proc, start - window_top, node, iter - min_iter_in_window)`.
type CanonConfig = Vec<(u32, i64, u32, i64)>;

/// Sliding-window detector state, owned by `cyclic_schedule` when the
/// [`crate::cyclic::DetectorKind::ConfigurationWindow`] strategy is chosen.
#[derive(Debug)]
pub struct WindowDetector {
    height: Cycle,
    pending: VecDeque<StateStamp>,
    seen: HashMap<CanonConfig, StateStamp>,
}

impl WindowDetector {
    /// Window height: `k + 1` (paper §2.3), widened to the largest node
    /// latency so multi-cycle nodes fit the frame.
    pub fn new(g: &Ddg, m: &MachineConfig) -> Self {
        let max_lat = g
            .node_ids()
            .map(|v| g.latency(v) as Cycle)
            .max()
            .unwrap_or(1);
        Self {
            height: (m.comm_upper_bound as Cycle + 1).max(max_lat),
            pending: VecDeque::new(),
            seen: HashMap::new(),
        }
    }

    /// Record an anchor placement and check any windows that have since
    /// become final (`future_floor` is a lower bound on every future
    /// placement's start time). Returns the `(earlier, later)` stamps of a
    /// repeated configuration, if one is detected.
    pub fn on_anchor(
        &mut self,
        placements: &[Placement],
        future_floor: Cycle,
        stamp: StateStamp,
    ) -> Option<(StateStamp, StateStamp)> {
        self.pending.push_back(stamp);
        while let Some(&st) = self.pending.front() {
            if st.time + self.height > future_floor {
                break;
            }
            self.pending.pop_front();
            let config = canon_config(placements, st.time, self.height);
            match self.seen.get(&config) {
                Some(prev) if st.iter > prev.iter && st.time > prev.time => {
                    let prev = *prev;
                    // Refresh the stored stamp: if this candidate fails
                    // replay (the earlier window was still in the warmup
                    // transient), the next match pairs two steady-state
                    // windows instead of dragging the transient along.
                    self.seen.insert(config, st);
                    return Some((prev, st));
                }
                Some(_) => {}
                None => {
                    self.seen.insert(config, st);
                }
            }
        }
        None
    }

    /// Number of distinct configurations recorded (diagnostics).
    pub fn configurations_seen(&self) -> usize {
        self.seen.len()
    }
}

fn canon_config(placements: &[Placement], top: Cycle, height: Cycle) -> CanonConfig {
    let in_window: Vec<&Placement> = placements
        .iter()
        .filter(|p| p.start >= top && p.start < top + height)
        .collect();
    let min_iter = in_window.iter().map(|p| p.inst.iter).min().unwrap_or(0) as i64;
    let mut cfg: CanonConfig = in_window
        .iter()
        .map(|p| {
            (
                p.proc as u32,
                (p.start - top) as i64,
                p.inst.node.0,
                p.inst.iter as i64 - min_iter,
            )
        })
        .collect();
    cfg.sort_unstable();
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::{InstanceId, NodeId};

    fn pl(node: u32, iter: u32, proc: usize, start: Cycle) -> Placement {
        Placement {
            inst: InstanceId {
                node: NodeId(node),
                iter,
            },
            proc,
            start,
        }
    }

    #[test]
    fn canon_config_is_shift_invariant() {
        let a = vec![pl(0, 0, 0, 10), pl(1, 1, 1, 11)];
        let b = vec![pl(0, 5, 0, 40), pl(1, 6, 1, 41)];
        assert_eq!(canon_config(&a, 10, 3), canon_config(&b, 40, 3));
    }

    #[test]
    fn canon_config_detects_different_layout() {
        let a = vec![pl(0, 0, 0, 10), pl(1, 0, 1, 11)];
        let b = vec![pl(0, 0, 1, 10), pl(1, 0, 0, 11)]; // swapped processors
        assert_ne!(canon_config(&a, 10, 3), canon_config(&b, 10, 3));
    }

    #[test]
    fn windows_wait_for_finality() {
        let g = {
            let mut b = kn_ddg::DdgBuilder::new();
            b.node("x");
            b.build().unwrap()
        };
        let m = MachineConfig::new(2, 1);
        let mut det = WindowDetector::new(&g, &m);
        let placements = vec![pl(0, 0, 0, 0)];
        // Floor at 1 < height 2: window not final, nothing seen yet.
        let r = det.on_anchor(
            &placements,
            1,
            StateStamp {
                iter: 0,
                time: 0,
                index: 0,
            },
        );
        assert!(r.is_none());
        assert_eq!(det.configurations_seen(), 0);
    }

    #[test]
    fn repeated_configuration_detected() {
        let g = {
            let mut b = kn_ddg::DdgBuilder::new();
            b.node("x");
            b.build().unwrap()
        };
        let m = MachineConfig::new(1, 1);
        let mut det = WindowDetector::new(&g, &m);
        // x every 2 cycles on P0 — identical windows at t=0, t=2.
        let placements: Vec<Placement> = (0..6u32).map(|i| pl(0, i, 0, 2 * i as Cycle)).collect();
        let mut hit = None;
        for i in 0..6u32 {
            let stamp = StateStamp {
                iter: i,
                time: 2 * i as Cycle,
                index: i as usize,
            };
            if let Some(h) = det.on_anchor(&placements, 12, stamp) {
                hit = Some(h);
                break;
            }
        }
        let (prev, cur) = hit.expect("identical configurations repeat");
        assert_eq!(cur.time - prev.time, 2);
        assert_eq!(cur.iter - prev.iter, 1);
    }
}
