//! The retained map-based greedy scheduler — the executable specification
//! the optimized arena core in [`crate::cyclic`] is tested against.
//!
//! This is the original `Cyclic-sched` implementation, byte for byte in
//! behavior: `live` in a `BTreeMap`, `remaining` in a `HashMap`, a freshly
//! allocated and sorted [`CanonState`] per anchor placement, and the
//! full-state [`StateDictionary`]. It exists for three reasons:
//!
//! 1. **equivalence testing** — golden-snapshot and property tests assert
//!    the arena scheduler emits byte-identical `Placement` sequences and
//!    identical patterns (see `tests/golden_equivalence.rs`);
//! 2. **benchmarking** — the `kn-bench` binary measures the optimized core
//!    against this baseline and records the ratio in `BENCH_sched.json`;
//! 3. **legibility** — the maps-and-sorts formulation reads closest to the
//!    paper's Figure 4 and is the best starting point for understanding
//!    the scheduler.
//!
//! Nothing in the production pipeline calls into this module.

use crate::cyclic::{CyclicError, CyclicOptions, DetectorKind};
use crate::machine::{Cycle, MachineConfig};
use crate::pattern::{BlockSchedule, Pattern, PatternOutcome};
use crate::state::{CanonState, StateDictionary, StateStamp};
use crate::table::Placement;
use kn_ddg::{Ddg, InstanceId, NodeId};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A live placement: scheduled, but some successor has not yet consumed it.
#[derive(Clone, Copy, Debug)]
struct Live {
    proc: u32,
    start: Cycle,
    unconsumed: u32,
}

/// The original map-based greedy scheduler core.
pub(crate) struct GreedyRef<'g> {
    g: &'g Ddg,
    m: &'g MachineConfig,
    queue: VecDeque<InstanceId>,
    /// Instances with some, but not all, predecessors scheduled.
    remaining: HashMap<InstanceId, u32>,
    /// Placed instances that can still be read by a future `T` computation.
    live: BTreeMap<InstanceId, Live>,
    proc_free: Vec<Cycle>,
    /// Every placement, in scheduling order.
    pub(crate) placements: Vec<Placement>,
    /// Optional bound on iteration indices (None = unbounded unwinding).
    max_iters: Option<u32>,
    /// Whether any node has in-degree 0 (such roots read the raw processor
    /// frontier, which forbids the idle-frontier clamp in `canon_state`).
    has_roots: bool,
}

impl<'g> GreedyRef<'g> {
    pub(crate) fn new(g: &'g Ddg, m: &'g MachineConfig, max_iters: Option<u32>) -> Self {
        let mut s = Self {
            g,
            m,
            queue: VecDeque::new(),
            remaining: HashMap::new(),
            live: BTreeMap::new(),
            proc_free: vec![0; m.processors],
            placements: Vec::new(),
            max_iters,
            has_roots: g.node_ids().any(|v| g.in_degree(v) == 0),
        };
        for v in g.node_ids() {
            if g.intra_in_degree(v) == 0 && s.in_range(0) {
                s.queue.push_back(InstanceId { node: v, iter: 0 });
            }
        }
        s
    }

    fn in_range(&self, iter: u32) -> bool {
        self.max_iters.map(|n| iter < n).unwrap_or(true)
    }

    /// Schedule the next ready instance. `None` when the queue is empty
    /// (only possible with a finite `max_iters`).
    pub(crate) fn step(&mut self) -> Option<Placement> {
        let inst = self.queue.pop_front()?;
        let lat = self.g.latency(inst.node) as Cycle;

        // Operand availability, gathered once per predecessor edge.
        let mut preds: Vec<(u32, Cycle, u32)> = Vec::new();
        for (_, e) in self.g.in_edges(inst.node) {
            if e.distance > inst.iter {
                continue;
            }
            let pred = InstanceId {
                node: e.src,
                iter: inst.iter - e.distance,
            };
            let li = self
                .live
                .get(&pred)
                .expect("ready instance has all preds live");
            let fin = li.start + self.g.latency(pred.node) as Cycle;
            preds.push((li.proc, fin, self.m.edge_cost(e)));
        }

        // T(v, Pj) for every processor; first minimum wins (paper Fig. 4).
        let mut best_t = Cycle::MAX;
        let mut best_p = 0usize;
        for (j, &free) in self.proc_free.iter().enumerate() {
            let mut t = free;
            for &(pp, fin, c) in &preds {
                let r = if pp == j as u32 {
                    self.m.local_ready(fin)
                } else {
                    self.m.remote_ready(fin, c)
                };
                if r > t {
                    t = r;
                }
            }
            if t < best_t {
                best_t = t;
                best_p = j;
            }
        }

        self.proc_free[best_p] = best_t + lat;
        let placement = Placement {
            inst,
            proc: best_p,
            start: best_t,
        };
        self.placements.push(placement);

        let outdeg = self.g.out_degree(inst.node) as u32;
        if outdeg > 0 {
            self.live.insert(
                inst,
                Live {
                    proc: best_p as u32,
                    start: best_t,
                    unconsumed: outdeg,
                },
            );
        }

        // Consume operands: a predecessor with no remaining consumers can
        // never be referenced again and leaves the live set.
        for (_, e) in self.g.in_edges(inst.node) {
            if e.distance > inst.iter {
                continue;
            }
            let pred = InstanceId {
                node: e.src,
                iter: inst.iter - e.distance,
            };
            let li = self.live.get_mut(&pred).expect("pred is live");
            li.unconsumed -= 1;
            if li.unconsumed == 0 {
                self.live.remove(&pred);
            }
        }

        // Release successors whose predecessor counts reach zero.
        for (_, e) in self.g.out_edges(inst.node) {
            let succ = InstanceId {
                node: e.dst,
                iter: inst.iter + e.distance,
            };
            if !self.in_range(succ.iter) {
                // Out-of-range consumer: retire the producer's obligation.
                if let Some(li) = self.live.get_mut(&inst) {
                    li.unconsumed -= 1;
                    if li.unconsumed == 0 {
                        self.live.remove(&inst);
                    }
                }
                continue;
            }
            let entry = self.remaining.entry(succ).or_insert_with(|| {
                self.g
                    .in_edges(succ.node)
                    .filter(|(_, e)| e.distance <= succ.iter)
                    .count() as u32
            });
            *entry -= 1;
            if *entry == 0 {
                self.remaining.remove(&succ);
                self.queue.push_back(succ);
            }
        }

        // Source nodes (no predecessors at all) self-advance: their next
        // iteration becomes ready as soon as this one is issued.
        if self.g.in_degree(inst.node) == 0 {
            let next = InstanceId {
                node: inst.node,
                iter: inst.iter + 1,
            };
            if self.in_range(next.iter) {
                self.queue.push_back(next);
            }
        }

        Some(placement)
    }

    /// A lower bound on the start time of every *future* placement.
    pub(crate) fn future_start_floor(&self) -> Cycle {
        let frontier = self.proc_free.iter().copied().min().unwrap_or(0);
        if self.has_roots {
            return frontier;
        }
        let live_floor = self
            .live
            .values()
            .map(|l| l.start + 1)
            .min()
            .unwrap_or(Cycle::MAX);
        frontier.max(live_floor)
    }

    /// Snapshot the scheduler state relative to the just-placed anchor.
    fn canon_state(&self, anchor: Placement) -> CanonState {
        let ai = anchor.inst.iter as i64;
        let at = anchor.start as i64;
        let mut remaining: Vec<(u32, i64, u32)> = self
            .remaining
            .iter()
            .map(|(inst, &c)| (inst.node.0, inst.iter as i64 - ai, c))
            .collect();
        remaining.sort_unstable();
        let mut live: Vec<(u32, i64, u32, i64, u32)> = self
            .live
            .iter()
            .map(|(inst, l)| {
                (
                    inst.node.0,
                    inst.iter as i64 - ai,
                    l.proc,
                    l.start as i64 - at,
                    l.unconsumed,
                )
            })
            .collect();
        live.sort_unstable();
        // Idle-frontier clamp; see `crate::cyclic::Greedy::canon_state`.
        let floor = if self.has_roots {
            i64::MIN
        } else {
            self.live
                .values()
                .map(|l| l.start as i64 + 1 - at)
                .min()
                .unwrap_or(i64::MIN)
        };
        CanonState {
            anchor_node: anchor.inst.node.0,
            anchor_proc: anchor.proc as u32,
            free: self
                .proc_free
                .iter()
                .map(|&f| (f as i64 - at).max(floor))
                .collect(),
            queue: self
                .queue
                .iter()
                .map(|q| (q.node.0, q.iter as i64 - ai))
                .collect(),
            remaining,
            live,
        }
    }
}

/// The original `cyclic_schedule`: full-state dictionary, map-based core.
/// Same contract as [`crate::cyclic::cyclic_schedule`].
pub fn cyclic_schedule_ref(
    g: &Ddg,
    m: &MachineConfig,
    opts: &CyclicOptions,
) -> Result<PatternOutcome, CyclicError> {
    if !g.distances_normalized() {
        return Err(CyclicError::NotNormalized);
    }
    let cap_placements = opts.unroll_cap as usize * g.node_count();
    let mut greedy = GreedyRef::new(g, m, None);
    let mut dict = StateDictionary::new();
    let mut windows = crate::window::WindowDetector::new(g, m);
    let mut anchor_node: Option<NodeId> = None;

    while greedy.placements.len() < cap_placements {
        let Some(p) = greedy.step() else { break };
        let anchor = *anchor_node.get_or_insert(p.inst.node);
        if p.inst.node != anchor {
            continue;
        }
        let stamp = StateStamp {
            iter: p.inst.iter,
            time: p.start,
            index: greedy.placements.len() - 1,
        };
        let matched = match opts.detector {
            DetectorKind::SchedulerState => dict
                .check(greedy.canon_state(p), stamp)
                .map(|prev| (prev, stamp)),
            DetectorKind::ConfigurationWindow => {
                let floor = greedy.future_start_floor();
                windows.on_anchor(&greedy.placements, floor, stamp)
            }
        };
        if let Some((prev, cur)) = matched {
            let kernel = greedy.placements[prev.index + 1..=cur.index].to_vec();
            let prologue = greedy.placements[..=prev.index].to_vec();
            let pattern = Pattern {
                prologue,
                kernel,
                iters_per_period: cur.iter - prev.iter,
                cycles_per_period: cur.time - prev.time,
            };
            if verify_by_replay_ref(&mut greedy, &pattern, cur.index, opts.verify_periods) {
                return Ok(PatternOutcome::Found(pattern));
            }
            match opts.detector {
                DetectorKind::ConfigurationWindow => continue,
                DetectorKind::SchedulerState => {
                    return Err(CyclicError::VerificationFailed {
                        at_placement: cur.index,
                    })
                }
            }
        }
    }

    Ok(PatternOutcome::CapFallback(block_fallback_ref(
        g,
        m,
        opts.unroll_cap,
    )))
}

fn verify_by_replay_ref(
    greedy: &mut GreedyRef<'_>,
    pattern: &Pattern,
    kernel_end: usize,
    periods: u32,
) -> bool {
    let klen = pattern.kernel.len();
    if klen == 0 {
        return false;
    }
    for n in 0..klen * periods as usize {
        let r = (n / klen) as u64 + 1;
        let j = n % klen;
        let base = pattern.kernel[j];
        let expect = Placement {
            inst: InstanceId {
                node: base.inst.node,
                iter: base.inst.iter + (r as u32) * pattern.iters_per_period,
            },
            proc: base.proc,
            start: base.start + r * pattern.cycles_per_period,
        };
        let idx = kernel_end + 1 + n;
        let got = if idx < greedy.placements.len() {
            greedy.placements[idx]
        } else {
            match greedy.step() {
                Some(p) => p,
                None => return false,
            }
        };
        if got != expect {
            return false;
        }
    }
    true
}

fn block_fallback_ref(g: &Ddg, m: &MachineConfig, iters: u32) -> BlockSchedule {
    let block = greedy_finite_ref(g, m, iters);
    let makespan = block
        .iter()
        .map(|p| p.start + g.latency(p.inst.node) as Cycle)
        .max()
        .unwrap_or(0);
    BlockSchedule {
        block,
        block_iters: iters.max(1),
        period: makespan + m.comm_upper_bound as Cycle,
    }
}

/// Finite-unwinding greedy, map-based core. See
/// [`crate::cyclic::greedy_finite`].
pub fn greedy_finite_ref(g: &Ddg, m: &MachineConfig, iters: u32) -> Vec<Placement> {
    let mut greedy = GreedyRef::new(g, m, Some(iters));
    while greedy.step().is_some() {}
    greedy.placements
}

/// Raw unbounded greedy placements, map-based core. See
/// [`crate::cyclic::greedy_unbounded`].
pub fn greedy_unbounded_ref(g: &Ddg, m: &MachineConfig, max_placements: usize) -> Vec<Placement> {
    let mut greedy = GreedyRef::new(g, m, None);
    while greedy.placements.len() < max_placements {
        if greedy.step().is_none() {
            break;
        }
    }
    greedy.placements
}
