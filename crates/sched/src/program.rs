//! Programs: the executable form of a schedule.
//!
//! A [`Program`] fixes, per processor, the *order* in which node instances
//! run — exactly what a compiler would emit for an asynchronous MIMD
//! machine (the per-processor subloops of the paper's Figure 7(e) and
//! Figure 10, with sends/receives implied by cross-processor edges). Actual
//! start times are then a *consequence*: each processor runs its next
//! instance as soon as the previous one finished and all operands have
//! arrived.
//!
//! [`static_times`] computes those start times under the machine's fixed
//! cost estimates; the `kn-sim` crate re-executes the same program under
//! fluctuating costs (the paper's §4 `mm` experiments).

use crate::machine::{Cycle, MachineConfig};
use kn_ddg::{Ddg, InstanceId};
use std::collections::HashMap;

/// Per-processor instance sequences for `iters` iterations of a loop.
#[derive(Clone, Debug)]
pub struct Program {
    /// `seqs[p]` is the ordered list of instances processor `p` executes.
    pub seqs: Vec<Vec<InstanceId>>,
    /// Number of loop iterations covered (instances have `iter < iters`).
    pub iters: u32,
}

impl Program {
    /// Number of processors (including idle ones).
    pub fn processors(&self) -> usize {
        self.seqs.len()
    }

    /// Total number of instances across all processors.
    pub fn len(&self) -> usize {
        self.seqs.iter().map(Vec::len).sum()
    }

    /// True if no instance is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Processor assignment lookup table.
    pub fn assignment(&self) -> HashMap<InstanceId, usize> {
        let mut m = HashMap::with_capacity(self.len());
        for (p, seq) in self.seqs.iter().enumerate() {
            for &inst in seq {
                m.insert(inst, p);
            }
        }
        m
    }

    /// Number of processors that execute at least one instance.
    pub fn used_processors(&self) -> usize {
        self.seqs.iter().filter(|s| !s.is_empty()).count()
    }

    /// Check that the program covers each instance of `g`'s nodes for
    /// iterations `0..iters` exactly once. Returns the set sizes on failure.
    pub fn check_complete(&self, g: &Ddg) -> Result<(), ProgramError> {
        let expect = g.node_count() * self.iters as usize;
        let assign = self.assignment();
        if assign.len() != self.len() {
            return Err(ProgramError::DuplicateInstance);
        }
        if assign.len() != expect {
            return Err(ProgramError::IncompleteCover {
                have: assign.len(),
                want: expect,
            });
        }
        for inst in assign.keys() {
            if inst.node.index() >= g.node_count() || inst.iter >= self.iters {
                return Err(ProgramError::ForeignInstance(*inst));
            }
        }
        Ok(())
    }
}

/// Errors from program construction / timing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// The same instance appears twice.
    DuplicateInstance,
    /// Not every instance of the iteration range is covered.
    IncompleteCover { have: usize, want: usize },
    /// An instance references a node/iteration outside the program's range.
    ForeignInstance(InstanceId),
    /// The per-processor orders deadlock: a dependence points "backwards"
    /// (processor A waits for an instance that sits *behind* another
    /// instance of A in its own sequence, transitively).
    Deadlock { timed: usize, total: usize },
    /// A caller-installed certification hook rejected the timed program.
    Certify(String),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::DuplicateInstance => write!(f, "instance scheduled twice"),
            ProgramError::IncompleteCover { have, want } => {
                write!(f, "program covers {have} instances, expected {want}")
            }
            ProgramError::ForeignInstance(i) => write!(f, "foreign instance {i}"),
            ProgramError::Deadlock { timed, total } => {
                write!(
                    f,
                    "program deadlocks after timing {timed}/{total} instances"
                )
            }
            ProgramError::Certify(msg) => {
                write!(f, "schedule certification failed: {msg}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// The result of timing a program: start cycles per instance plus makespan.
#[derive(Clone, Debug)]
pub struct TimedProgram {
    /// Start cycle and processor of every instance.
    pub start: HashMap<InstanceId, (usize, Cycle)>,
    /// Completion time of the whole program.
    pub makespan: Cycle,
}

impl TimedProgram {
    /// Start cycle of an instance, if present.
    pub fn start_of(&self, inst: InstanceId) -> Option<Cycle> {
        self.start.get(&inst).map(|&(_, t)| t)
    }

    /// Processor of an instance, if present.
    pub fn proc_of(&self, inst: InstanceId) -> Option<usize> {
        self.start.get(&inst).map(|&(p, _)| p)
    }
}

/// Compute start times for a program under the machine's *estimated* costs:
/// every processor executes its sequence in order, starting each instance at
/// `max(previous finish on this processor, operand-ready times)`.
///
/// Operands come from dependence edges `(u → v, d)`: instance `(v, i)` waits
/// for `(u, i - d)` whenever `i ≥ d` **and** that instance is part of the
/// program. Dependences on instances outside the program (e.g. Flow-in
/// producers when timing a Cyclic-only program) are treated as ready at
/// cycle 0, which matches the paper's practice of measuring the Cyclic core
/// in isolation (§3 footnote 16).
pub fn static_times(
    prog: &Program,
    g: &Ddg,
    m: &MachineConfig,
) -> Result<TimedProgram, ProgramError> {
    let assign = prog.assignment();
    if assign.len() != prog.len() {
        return Err(ProgramError::DuplicateInstance);
    }
    let total = prog.len();
    let mut start: HashMap<InstanceId, (usize, Cycle)> = HashMap::with_capacity(total);
    let mut head = vec![0usize; prog.processors()];
    let mut clock = vec![0 as Cycle; prog.processors()];
    let mut timed = 0usize;
    let mut makespan = 0;

    // Round-robin sweep: time any processor whose head instance has all
    // operands timed. Terminates in at most `total` productive rounds.
    loop {
        let mut progress = false;
        for p in 0..prog.processors() {
            // A processor may become ready again immediately; drain greedily.
            while head[p] < prog.seqs[p].len() {
                let inst = prog.seqs[p][head[p]];
                let mut ready: Cycle = clock[p];
                let mut ok = true;
                for (_, e) in g.in_edges(inst.node) {
                    if e.distance > inst.iter {
                        continue;
                    }
                    let pred = InstanceId {
                        node: e.src,
                        iter: inst.iter - e.distance,
                    };
                    if let Some(pp) = assign.get(&pred) {
                        match start.get(&pred) {
                            Some(&(sp, st)) => {
                                let fin = m.finish(st, g.latency(pred.node));
                                let r = if sp == p {
                                    m.local_ready(fin)
                                } else {
                                    m.remote_ready(fin, m.edge_cost(e))
                                };
                                ready = ready.max(r);
                                debug_assert_eq!(sp, *pp);
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    // pred not in program: ready at 0.
                }
                if !ok {
                    break;
                }
                let fin = m.finish(ready, g.latency(inst.node));
                start.insert(inst, (p, ready));
                clock[p] = fin;
                makespan = makespan.max(fin);
                head[p] += 1;
                timed += 1;
                progress = true;
            }
        }
        if timed == total {
            return Ok(TimedProgram { start, makespan });
        }
        if !progress {
            return Err(ProgramError::Deadlock { timed, total });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::{DdgBuilder, NodeId};

    fn inst(node: u32, iter: u32) -> InstanceId {
        InstanceId {
            node: NodeId(node),
            iter,
        }
    }

    /// x -> y intra, one iteration, both on P0.
    #[test]
    fn sequential_chain_times() {
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 2);
        let y = b.node_lat("y", 3);
        b.dep(x, y);
        let g = b.build().unwrap();
        let m = MachineConfig::new(1, 2);
        let prog = Program {
            seqs: vec![vec![inst(0, 0), inst(1, 0)]],
            iters: 1,
        };
        prog.check_complete(&g).unwrap();
        let t = static_times(&prog, &g, &m).unwrap();
        assert_eq!(t.start_of(inst(0, 0)), Some(0));
        assert_eq!(t.start_of(inst(1, 0)), Some(2));
        assert_eq!(t.makespan, 5);
        let _ = (x, y);
    }

    #[test]
    fn cross_processor_adds_comm_delay() {
        let mut b = DdgBuilder::new();
        let _x = b.node("x");
        let _y = b.node("y");
        b.dep(NodeId(0), NodeId(1));
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 3);
        let prog = Program {
            seqs: vec![vec![inst(0, 0)], vec![inst(1, 0)]],
            iters: 1,
        };
        let t = static_times(&prog, &g, &m).unwrap();
        // x finishes at 1; remote ready = 1 + 3 - 1 = 3.
        assert_eq!(t.start_of(inst(1, 0)), Some(3));
    }

    #[test]
    fn carried_dependence_across_iterations() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.carried(x, x);
        let g = b.build().unwrap();
        let m = MachineConfig::new(1, 1);
        let prog = Program {
            seqs: vec![vec![inst(0, 0), inst(0, 1), inst(0, 2)]],
            iters: 3,
        };
        let t = static_times(&prog, &g, &m).unwrap();
        assert_eq!(t.start_of(inst(0, 2)), Some(2));
        assert_eq!(t.makespan, 3);
    }

    #[test]
    fn deadlock_detected() {
        // y before x on the same processor, but x -> y forces x first…
        // on one processor that's fine (x ready at 0 — no wait, y needs x
        // which is *behind* it). Deadlock.
        let mut b = DdgBuilder::new();
        let _x = b.node("x");
        let _y = b.node("y");
        b.dep(NodeId(0), NodeId(1));
        let g = b.build().unwrap();
        let m = MachineConfig::new(1, 1);
        let prog = Program {
            seqs: vec![vec![inst(1, 0), inst(0, 0)]],
            iters: 1,
        };
        let err = static_times(&prog, &g, &m).unwrap_err();
        assert_eq!(err, ProgramError::Deadlock { timed: 0, total: 2 });
    }

    #[test]
    fn missing_pred_treated_as_ready() {
        // Program contains only y; its pred x is absent -> ready at 0.
        let mut b = DdgBuilder::new();
        let _x = b.node("x");
        let _y = b.node("y");
        b.dep(NodeId(0), NodeId(1));
        let g = b.build().unwrap();
        let m = MachineConfig::new(1, 1);
        let prog = Program {
            seqs: vec![vec![inst(1, 0)]],
            iters: 1,
        };
        let t = static_times(&prog, &g, &m).unwrap();
        assert_eq!(t.start_of(inst(1, 0)), Some(0));
    }

    #[test]
    fn completeness_check() {
        let mut b = DdgBuilder::new();
        let _x = b.node("x");
        let _y = b.node("y");
        let g = b.build().unwrap();
        let ok = Program {
            seqs: vec![vec![inst(0, 0)], vec![inst(1, 0)]],
            iters: 1,
        };
        ok.check_complete(&g).unwrap();
        let dup = Program {
            seqs: vec![vec![inst(0, 0)], vec![inst(0, 0)]],
            iters: 1,
        };
        assert_eq!(
            dup.check_complete(&g).unwrap_err(),
            ProgramError::DuplicateInstance
        );
        let incomplete = Program {
            seqs: vec![vec![inst(0, 0)]],
            iters: 1,
        };
        assert!(matches!(
            incomplete.check_complete(&g).unwrap_err(),
            ProgramError::IncompleteCover { .. }
        ));
        let foreign = Program {
            seqs: vec![vec![inst(0, 0)], vec![inst(5, 0)]],
            iters: 1,
        };
        assert!(matches!(
            foreign.check_complete(&g).unwrap_err(),
            ProgramError::ForeignInstance(_)
        ));
    }

    #[test]
    fn used_processors_counts_nonempty() {
        let prog = Program {
            seqs: vec![vec![inst(0, 0)], vec![], vec![inst(1, 0)]],
            iters: 1,
        };
        assert_eq!(prog.processors(), 3);
        assert_eq!(prog.used_processors(), 2);
    }
}
