//! Schedule tables: explicit `(instance, processor, start-cycle)` triples,
//! the form in which the paper draws its figures (a grid of cycles ×
//! processors), plus the validity checker every schedule in this repository
//! must pass.

use crate::machine::{Cycle, MachineConfig};
use crate::program::{Program, TimedProgram};
use kn_ddg::{Ddg, InstanceId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One scheduled instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    pub inst: InstanceId,
    pub proc: usize,
    pub start: Cycle,
}

/// Why a schedule is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// Two instances overlap on one processor.
    Overlap {
        proc: usize,
        a: InstanceId,
        b: InstanceId,
    },
    /// A dependence is violated: `dst` starts before its operand from `src`
    /// can be available under the machine's timing model.
    DependenceViolated {
        src: InstanceId,
        dst: InstanceId,
        ready: Cycle,
        actual: Cycle,
    },
    /// An instance appears twice.
    Duplicate(InstanceId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Overlap { proc, a, b } => {
                write!(f, "instances {a} and {b} overlap on PE{proc}")
            }
            ScheduleError::DependenceViolated {
                src,
                dst,
                ready,
                actual,
            } => write!(
                f,
                "{dst} starts at {actual} but operand from {src} is ready at {ready}"
            ),
            ScheduleError::Duplicate(i) => write!(f, "instance {i} placed twice"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A set of placements with index structures for queries and validation.
#[derive(Clone, Debug, Default)]
pub struct ScheduleTable {
    placements: Vec<Placement>,
    by_inst: HashMap<InstanceId, usize>,
}

impl ScheduleTable {
    /// Build from a list of placements (in any order).
    pub fn new(placements: Vec<Placement>) -> Self {
        let mut by_inst = HashMap::with_capacity(placements.len());
        for (i, p) in placements.iter().enumerate() {
            by_inst.insert(p.inst, i);
        }
        Self {
            placements,
            by_inst,
        }
    }

    /// Build from a timed program.
    pub fn from_timed(t: &TimedProgram) -> Self {
        let placements = t
            .start
            .iter()
            .map(|(&inst, &(proc, start))| Placement { inst, proc, start })
            .collect();
        Self::new(placements)
    }

    /// All placements (unspecified order).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Number of placements.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Start cycle of an instance.
    pub fn start_of(&self, inst: InstanceId) -> Option<Cycle> {
        self.by_inst.get(&inst).map(|&i| self.placements[i].start)
    }

    /// Processor of an instance.
    pub fn proc_of(&self, inst: InstanceId) -> Option<usize> {
        self.by_inst.get(&inst).map(|&i| self.placements[i].proc)
    }

    /// Completion time (`max(start + latency)`).
    pub fn makespan(&self, g: &Ddg) -> Cycle {
        self.placements
            .iter()
            .map(|p| p.start + g.latency(p.inst.node) as Cycle)
            .max()
            .unwrap_or(0)
    }

    /// Highest processor index used, plus one.
    pub fn processors_used(&self) -> usize {
        self.placements
            .iter()
            .map(|p| p.proc + 1)
            .max()
            .unwrap_or(0)
    }

    /// Convert into a [`Program`]: per-processor sequences ordered by start
    /// cycle (stable on equal starts by instance for determinism).
    pub fn to_program(&self, iters: u32) -> Program {
        let nprocs = self.processors_used();
        let mut seqs = vec![Vec::new(); nprocs];
        let mut sorted = self.placements.clone();
        sorted.sort_by_key(|p| (p.proc, p.start, p.inst.iter, p.inst.node.0));
        for p in sorted {
            seqs[p.proc].push(p.inst);
        }
        Program { seqs, iters }
    }

    /// Validate the schedule against the machine model: instances must not
    /// overlap on a processor, no instance may be duplicated, and every
    /// dependence between two *placed* instances must respect local/remote
    /// operand-ready times. Dependences whose producer is not in the table
    /// are ignored (they belong to a different scheduling phase).
    pub fn validate(&self, g: &Ddg, m: &MachineConfig) -> Result<(), ScheduleError> {
        if self.by_inst.len() != self.placements.len() {
            // find the duplicate for a useful message
            let mut seen = HashMap::new();
            for p in &self.placements {
                if seen.insert(p.inst, ()).is_some() {
                    return Err(ScheduleError::Duplicate(p.inst));
                }
            }
        }
        // Overlap check per processor.
        let mut per_proc: HashMap<usize, Vec<&Placement>> = HashMap::new();
        for p in &self.placements {
            per_proc.entry(p.proc).or_default().push(p);
        }
        for (proc, mut ps) in per_proc {
            ps.sort_by_key(|p| p.start);
            for w in ps.windows(2) {
                let (a, b) = (w[0], w[1]);
                if a.start + g.latency(a.inst.node) as Cycle > b.start {
                    return Err(ScheduleError::Overlap {
                        proc,
                        a: a.inst,
                        b: b.inst,
                    });
                }
            }
        }
        // Dependence check.
        for p in &self.placements {
            for (_, e) in g.in_edges(p.inst.node) {
                if e.distance > p.inst.iter {
                    continue;
                }
                let pred = InstanceId {
                    node: e.src,
                    iter: p.inst.iter - e.distance,
                };
                let Some(&pi) = self.by_inst.get(&pred) else {
                    continue;
                };
                let pp = &self.placements[pi];
                let fin = m.finish(pp.start, g.latency(pred.node));
                let ready = if pp.proc == p.proc {
                    m.local_ready(fin)
                } else {
                    m.remote_ready(fin, m.edge_cost(e))
                };
                if p.start < ready {
                    return Err(ScheduleError::DependenceViolated {
                        src: pred,
                        dst: p.inst,
                        ready,
                        actual: p.start,
                    });
                }
            }
        }
        Ok(())
    }

    /// Render the schedule as the paper draws it: one row per cycle, one
    /// column per processor, node names subscripted with their iteration
    /// (`A1`, `D3`, …); multi-cycle nodes show `|` on continuation rows.
    pub fn render_grid(&self, g: &Ddg) -> String {
        if self.is_empty() {
            return String::from("(empty schedule)\n");
        }
        let nprocs = self.processors_used();
        let makespan = self.makespan(g);
        let mut grid: Vec<Vec<String>> = vec![vec![String::new(); nprocs]; makespan as usize];
        for p in &self.placements {
            let label = format!("{}{}", g.name(p.inst.node), p.inst.iter);
            let lat = g.latency(p.inst.node) as Cycle;
            grid[p.start as usize][p.proc] = label;
            for c in 1..lat {
                grid[(p.start + c) as usize][p.proc] = "|".to_string();
            }
        }
        let width = self
            .placements
            .iter()
            .map(|p| g.name(p.inst.node).len() + 4)
            .max()
            .unwrap_or(6)
            .max(6);
        let mut out = String::new();
        let _ = write!(out, "{:>6} ", "step");
        for p in 0..nprocs {
            let _ = write!(out, "{:>width$}", format!("PE{p}"), width = width);
        }
        let _ = writeln!(out);
        for (cycle, row) in grid.iter().enumerate() {
            let _ = write!(out, "{cycle:>6} ");
            for cell in row {
                let _ = write!(out, "{:>width$}", cell, width = width);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::{DdgBuilder, NodeId};

    fn inst(node: u32, iter: u32) -> InstanceId {
        InstanceId {
            node: NodeId(node),
            iter,
        }
    }

    fn chain() -> Ddg {
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 2);
        let y = b.node("y");
        b.dep(x, y);
        b.build().unwrap()
    }

    #[test]
    fn valid_schedule_passes() {
        let g = chain();
        let m = MachineConfig::new(2, 2);
        let t = ScheduleTable::new(vec![
            Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            },
            Placement {
                inst: inst(1, 0),
                proc: 1,
                start: 3,
            }, // 2 + 2 - 1
        ]);
        t.validate(&g, &m).unwrap();
        assert_eq!(t.makespan(&g), 4);
        assert_eq!(t.processors_used(), 2);
    }

    #[test]
    fn detects_dependence_violation() {
        let g = chain();
        let m = MachineConfig::new(2, 2);
        let t = ScheduleTable::new(vec![
            Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            },
            Placement {
                inst: inst(1, 0),
                proc: 1,
                start: 2,
            }, // needs 3
        ]);
        assert!(matches!(
            t.validate(&g, &m).unwrap_err(),
            ScheduleError::DependenceViolated {
                ready: 3,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn detects_overlap() {
        let g = chain();
        let m = MachineConfig::new(1, 1);
        let t = ScheduleTable::new(vec![
            Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            }, // occupies [0,2)
            Placement {
                inst: inst(1, 0),
                proc: 0,
                start: 1,
            },
        ]);
        assert!(matches!(
            t.validate(&g, &m).unwrap_err(),
            ScheduleError::Overlap { .. }
        ));
    }

    #[test]
    fn detects_duplicate() {
        let g = chain();
        let m = MachineConfig::new(2, 1);
        let t = ScheduleTable::new(vec![
            Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            },
            Placement {
                inst: inst(0, 0),
                proc: 1,
                start: 5,
            },
        ]);
        assert!(matches!(
            t.validate(&g, &m).unwrap_err(),
            ScheduleError::Duplicate(_)
        ));
    }

    #[test]
    fn local_dependence_at_finish_is_legal() {
        let g = chain();
        let m = MachineConfig::new(1, 5);
        let t = ScheduleTable::new(vec![
            Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            },
            Placement {
                inst: inst(1, 0),
                proc: 0,
                start: 2,
            },
        ]);
        t.validate(&g, &m).unwrap();
    }

    #[test]
    fn to_program_orders_by_start() {
        let t = ScheduleTable::new(vec![
            Placement {
                inst: inst(1, 0),
                proc: 0,
                start: 5,
            },
            Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            },
        ]);
        let prog = t.to_program(1);
        assert_eq!(prog.seqs[0], vec![inst(0, 0), inst(1, 0)]);
    }

    #[test]
    fn grid_render_shows_names_and_continuation() {
        let g = chain();
        let t = ScheduleTable::new(vec![
            Placement {
                inst: inst(0, 0),
                proc: 0,
                start: 0,
            },
            Placement {
                inst: inst(1, 0),
                proc: 0,
                start: 2,
            },
        ]);
        let grid = t.render_grid(&g);
        assert!(grid.contains("PE0"));
        assert!(grid.contains("x0"));
        assert!(grid.contains('|'), "latency-2 node continues: {grid}");
        assert!(grid.contains("y0"));
    }

    #[test]
    fn empty_table() {
        let t = ScheduleTable::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.render_grid(&chain()), "(empty schedule)\n");
    }
}
