//! Schedule statistics: utilization and communication volume of a
//! steady-state pattern — the quantities the paper's §3 discussion reasons
//! about informally ("relatively idle processor", "balance communication
//! with respect to parallelism"), made measurable.

use crate::machine::Cycle;
use crate::pattern::Pattern;
use kn_ddg::Ddg;
use std::collections::HashMap;

/// Per-processor load within one kernel period.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcLoad {
    pub proc: usize,
    /// Busy cycles per period.
    pub busy: Cycle,
    /// Fraction of the period spent executing.
    pub utilization: f64,
}

/// Steady-state statistics of a pattern.
#[derive(Clone, Debug)]
pub struct PatternStats {
    /// Cycles per iteration.
    pub ii: f64,
    /// Kernel period in cycles.
    pub period: Cycle,
    /// Iterations retired per period.
    pub iters_per_period: u32,
    /// Load per processor the kernel touches.
    pub loads: Vec<ProcLoad>,
    /// Dependence values crossing processors, per period.
    pub remote_values_per_period: u64,
    /// Dependence values staying on-processor, per period.
    pub local_values_per_period: u64,
}

impl PatternStats {
    /// Fraction of dependence values that must travel between processors —
    /// the communication/parallelism trade-off the scheduler balances.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.remote_values_per_period + self.local_values_per_period;
        if total == 0 {
            return 0.0;
        }
        self.remote_values_per_period as f64 / total as f64
    }

    /// Mean utilization over the processors used.
    pub fn mean_utilization(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        self.loads.iter().map(|l| l.utilization).sum::<f64>() / self.loads.len() as f64
    }
}

/// Compute steady-state statistics for a pattern over its graph.
pub fn pattern_stats(pattern: &Pattern, g: &Ddg) -> PatternStats {
    let d = pattern.iters_per_period.max(1);
    let period = pattern.cycles_per_period.max(1);
    // Steady-state processor of (node, iter mod d).
    let mut steady: HashMap<(u32, u32), usize> = HashMap::new();
    for p in &pattern.kernel {
        steady.insert((p.inst.node.0, p.inst.iter % d), p.proc);
    }
    // Loads.
    let mut busy: HashMap<usize, Cycle> = HashMap::new();
    for p in &pattern.kernel {
        *busy.entry(p.proc).or_insert(0) += g.latency(p.inst.node) as Cycle;
    }
    let mut loads: Vec<ProcLoad> = busy
        .into_iter()
        .map(|(proc, busy)| ProcLoad {
            proc,
            busy,
            utilization: busy as f64 / period as f64,
        })
        .collect();
    loads.sort_by_key(|l| l.proc);
    // Communication volume: each kernel instance's out-edges, classified by
    // whether the steady consumer sits on another processor.
    let mut remote = 0u64;
    let mut local = 0u64;
    for p in &pattern.kernel {
        for (_, e) in g.out_edges(p.inst.node) {
            let succ_mod = (p.inst.iter + e.distance) % d;
            if let Some(&sp) = steady.get(&(e.dst.0, succ_mod)) {
                if sp == p.proc {
                    local += 1;
                } else {
                    remote += 1;
                }
            }
        }
    }
    PatternStats {
        ii: pattern.steady_ii(),
        period,
        iters_per_period: d,
        loads,
        remote_values_per_period: remote,
        local_values_per_period: local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclic::{cyclic_schedule, CyclicOptions};
    use crate::machine::MachineConfig;
    use kn_ddg::DdgBuilder;

    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    #[test]
    fn figure7_stats() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let stats = pattern_stats(out.pattern().unwrap(), &g);
        assert_eq!(stats.period, 5);
        assert_eq!(stats.iters_per_period, 2);
        assert_eq!(stats.loads.len(), 2);
        // 10 unit-latency instances over 2 procs × 5 cycles: fully loaded.
        assert!((stats.mean_utilization() - 1.0).abs() < 1e-9);
        // Some values must cross processors (the pattern alternates the
        // recurrences between PEs), but not all.
        assert!(stats.remote_values_per_period > 0);
        assert!(stats.local_values_per_period > 0);
        let f = stats.remote_fraction();
        assert!(f > 0.0 && f < 1.0, "fraction {f}");
    }

    #[test]
    fn single_processor_pattern_has_no_remote_values() {
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 2);
        b.carried(x, x);
        let g = b.build().unwrap();
        let m = MachineConfig::new(4, 3);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let stats = pattern_stats(out.pattern().unwrap(), &g);
        assert_eq!(stats.remote_values_per_period, 0);
        assert_eq!(stats.remote_fraction(), 0.0);
        assert_eq!(stats.loads.len(), 1);
        assert!((stats.loads[0].utilization - 1.0).abs() < 1e-9);
    }
}
