//! `Cyclic-sched` (paper Figure 4): greedy list scheduling of the
//! infinitely unwound loop with communication-aware processor selection.
//!
//! Every ready instance `(v, i)` is assigned to the processor `P_j` whose
//! `T(v, P_j)` — the earliest cycle `v` could start on `P_j`, accounting for
//! the processor's frontier and each operand's local/remote availability —
//! is the **first minimum** over `j`. The task queue is FIFO and successors
//! are enqueued in edge-declaration order, giving the "consistent ordering"
//! the paper requires for a pattern to emerge (§2.2, footnote 7).
//!
//! Pattern detection is pluggable:
//!
//! * [`DetectorKind::SchedulerState`] (default) — canonical scheduler-state
//!   recurrence (see [`crate::state`]); constructive and exact.
//! * [`DetectorKind::ConfigurationWindow`] — the paper's sliding
//!   `p × (k+1)` configuration window (see [`crate::window`]), run over the
//!   growing schedule.
//!
//! Both detected patterns are verified by replay (`Theorem 1` is checked,
//! not assumed): the scheduler keeps running for `verify_periods` more
//! kernel periods and every placement must match the pattern's prediction.
//!
//! ## Hot-path data layout
//!
//! The scheduler core stores *no* ordered or hashed per-instance maps on
//! its hot path (the retained map-based formulation lives in
//! [`crate::reference`]). After `normalize_distances` every dependence
//! distance is 0 or 1, so when `(v, i)` is scheduled its operands are
//! instances of iterations `i` and `i-1` only — `(node, iter & mask)`
//! indexes a dense per-node ring buffer (the internal `NodeRings`) holding the live
//! and partially-satisfied instance tables. The per-step operand scratch
//! buffer is hoisted onto the scheduler and reused, and the state detector
//! hashes the scheduler state into a 64-bit fingerprint instead of
//! materializing a sorted snapshot per anchor (see
//! [`crate::state::FingerprintDictionary`]). Placements are byte-identical
//! to the reference scheduler — the enumeration order is load-bearing for
//! pattern emergence — which the golden/property tests assert.

use crate::machine::{Cycle, MachineConfig};
use crate::pattern::{BlockSchedule, Pattern, PatternOutcome};
use crate::state::{fp_mix, CanonState, FingerprintDictionary, StateStamp, FP_SEED};
use crate::table::Placement;
use kn_ddg::{Ddg, InstanceId, NodeId};
use std::collections::VecDeque;

/// Pattern-detection strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DetectorKind {
    /// Canonical scheduler-state recurrence (constructive, default).
    #[default]
    SchedulerState,
    /// The paper's sliding configuration window of width `p`, height `k+1`.
    ConfigurationWindow,
}

/// Options for [`cyclic_schedule`].
#[derive(Clone, Debug)]
pub struct CyclicOptions {
    /// Maximum iterations to unwind before giving up on a pattern and
    /// falling back to a block schedule.
    pub unroll_cap: u32,
    /// Detection strategy.
    pub detector: DetectorKind,
    /// Extra kernel periods to verify by replay (0 disables verification;
    /// the fingerprinted state detector still replays one period so that a
    /// 64-bit fingerprint collision can never mint a wrong pattern).
    pub verify_periods: u32,
}

impl Default for CyclicOptions {
    fn default() -> Self {
        Self {
            unroll_cap: 256,
            detector: DetectorKind::default(),
            verify_periods: 2,
        }
    }
}

/// Errors from [`cyclic_schedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CyclicError {
    /// Dependence distances must be normalized to `{0, 1}` first
    /// (see `kn_ddg::normalize_distances`).
    NotNormalized,
    /// A detected pattern failed replay verification — a bug, never an
    /// expected outcome; surfaced loudly rather than silently mis-scheduled.
    VerificationFailed { at_placement: usize },
}

impl std::fmt::Display for CyclicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CyclicError::NotNormalized => {
                write!(f, "dependence distances must be 0 or 1 (unwind first)")
            }
            CyclicError::VerificationFailed { at_placement } => {
                write!(f, "pattern replay diverged at placement {at_placement}")
            }
        }
    }
}

impl std::error::Error for CyclicError {}

/// A live placement: scheduled, but some successor has not yet consumed it.
#[derive(Clone, Copy, Debug, Default)]
struct Live {
    proc: u32,
    start: Cycle,
    unconsumed: u32,
}

/// Slot-`iter` sentinel for "empty". Iteration indices stay far below this
/// (`unroll_cap` bounds them), so no valid instance ever collides with it.
const EMPTY: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Slot<T> {
    iter: u32,
    value: T,
}

/// Dense per-node ring-buffer table keyed by `(node, iter & mask)`.
///
/// Normalized distances mean a scheduled instance only references
/// iterations `i` and `i-1`, so a two-slot ring per node is the steady
/// state. The FIFO queue is not strictly iteration-synchronous, though: a
/// self-advancing node can run several iterations ahead of a consumer that
/// waits on a longer chain, so an insert may find its slot occupied by a
/// *different, still-needed* iteration. The ring then doubles (all nodes at
/// once, keeping indexing branch-free) and the insert retries — growth is
/// rare, observable only as speed, never as behavior.
struct NodeRings<T> {
    /// log2 of the per-node ring capacity.
    bits: u32,
    nodes: usize,
    /// `slots[(node << bits) | (iter & mask)]`; `iter == EMPTY` means free.
    slots: Vec<Slot<T>>,
    len: usize,
}

impl<T: Copy + Default> NodeRings<T> {
    fn new(nodes: usize) -> Self {
        let bits = 1; // capacity 2: iterations i and i-1
        Self {
            bits,
            nodes,
            slots: vec![
                Slot {
                    iter: EMPTY,
                    value: T::default()
                };
                nodes << bits
            ],
            len: 0,
        }
    }

    #[inline]
    fn idx(&self, node: u32, iter: u32) -> usize {
        ((node as usize) << self.bits) | (iter as usize & ((1usize << self.bits) - 1))
    }

    #[inline]
    fn get(&self, node: u32, iter: u32) -> Option<&T> {
        let s = &self.slots[self.idx(node, iter)];
        (s.iter == iter).then_some(&s.value)
    }

    #[inline]
    fn get_mut(&mut self, node: u32, iter: u32) -> Option<&mut T> {
        let i = self.idx(node, iter);
        let s = &mut self.slots[i];
        (s.iter == iter).then_some(&mut s.value)
    }

    fn insert(&mut self, node: u32, iter: u32, value: T) {
        loop {
            let i = self.idx(node, iter);
            let s = &mut self.slots[i];
            if s.iter == EMPTY {
                *s = Slot { iter, value };
                self.len += 1;
                return;
            }
            if s.iter == iter {
                s.value = value;
                return;
            }
            self.grow();
        }
    }

    fn remove(&mut self, node: u32, iter: u32) {
        let i = self.idx(node, iter);
        let s = &mut self.slots[i];
        if s.iter == iter {
            s.iter = EMPTY;
            self.len -= 1;
        }
    }

    /// Double every node's ring and re-home the occupied slots.
    #[cold]
    fn grow(&mut self) {
        let new_bits = self.bits + 1;
        let mut new_slots: Vec<Slot<T>> = vec![
            Slot {
                iter: EMPTY,
                value: T::default()
            };
            self.nodes << new_bits
        ];
        let mask = (1usize << new_bits) - 1;
        for (i, s) in self.slots.iter().enumerate() {
            if s.iter != EMPTY {
                let node = i >> self.bits;
                new_slots[(node << new_bits) | (s.iter as usize & mask)] = *s;
            }
        }
        self.bits = new_bits;
        self.slots = new_slots;
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    /// Visit occupied slots node-major (deterministic, but **not** a
    /// canonical order — the position of iteration `i` inside a ring
    /// depends on `i & mask`). Callers needing canonical output must sort
    /// or combine order-independently.
    fn for_each(&self, mut f: impl FnMut(u32, u32, &T)) {
        for (i, s) in self.slots.iter().enumerate() {
            if s.iter != EMPTY {
                f((i >> self.bits) as u32, s.iter, &s.value);
            }
        }
    }
}

/// The greedy scheduler core. Public within the crate so that the window
/// detector and the DOACROSS comparison harness can drive it directly.
pub(crate) struct Greedy<'g> {
    g: &'g Ddg,
    m: &'g MachineConfig,
    queue: VecDeque<InstanceId>,
    /// Instances with some, but not all, predecessors scheduled.
    remaining: NodeRings<u32>,
    /// Placed instances that can still be read by a future `T` computation.
    live: NodeRings<Live>,
    proc_free: Vec<Cycle>,
    /// Every placement, in scheduling order.
    pub(crate) placements: Vec<Placement>,
    /// Optional bound on iteration indices (None = unbounded unwinding).
    max_iters: Option<u32>,
    /// Whether any node has in-degree 0 (such roots read the raw processor
    /// frontier, which forbids the idle-frontier clamp in `canon_state`).
    has_roots: bool,
    /// Reusable per-step operand scratch: `(proc, finish, cost)`.
    pred_buf: Vec<(u32, Cycle, u32)>,
}

impl<'g> Greedy<'g> {
    pub(crate) fn new(g: &'g Ddg, m: &'g MachineConfig, max_iters: Option<u32>) -> Self {
        let mut s = Self {
            g,
            m,
            queue: VecDeque::new(),
            remaining: NodeRings::new(g.node_count()),
            live: NodeRings::new(g.node_count()),
            proc_free: vec![0; m.processors],
            placements: Vec::new(),
            max_iters,
            has_roots: g.node_ids().any(|v| g.in_degree(v) == 0),
            pred_buf: Vec::new(),
        };
        // Seeds: instance (v, 0) is ready iff v has no intra-iteration
        // predecessors (carried edges point at iteration -1, which does not
        // exist). Enqueued in node-id order for determinism.
        for v in g.node_ids() {
            if g.intra_in_degree(v) == 0 && s.in_range(0) {
                s.queue.push_back(InstanceId { node: v, iter: 0 });
            }
        }
        s
    }

    fn in_range(&self, iter: u32) -> bool {
        self.max_iters.map(|n| iter < n).unwrap_or(true)
    }

    /// Schedule the next ready instance. `None` when the queue is empty
    /// (only possible with a finite `max_iters`).
    pub(crate) fn step(&mut self) -> Option<Placement> {
        let inst = self.queue.pop_front()?;
        let lat = self.g.latency(inst.node) as Cycle;

        // Operand availability, gathered once per predecessor edge into the
        // hoisted scratch buffer.
        let mut preds = std::mem::take(&mut self.pred_buf);
        preds.clear();
        for (_, e) in self.g.in_edges(inst.node) {
            if e.distance > inst.iter {
                continue;
            }
            let pi = inst.iter - e.distance;
            let li = self
                .live
                .get(e.src.0, pi)
                .expect("ready instance has all preds live");
            let fin = li.start + self.g.latency(e.src) as Cycle;
            preds.push((li.proc, fin, self.m.edge_cost(e)));
        }

        // T(v, Pj) for every processor; first minimum wins (paper Fig. 4).
        let mut best_t = Cycle::MAX;
        let mut best_p = 0usize;
        for (j, &free) in self.proc_free.iter().enumerate() {
            let mut t = free;
            for &(pp, fin, c) in &preds {
                let r = if pp == j as u32 {
                    self.m.local_ready(fin)
                } else {
                    self.m.remote_ready(fin, c)
                };
                if r > t {
                    t = r;
                }
            }
            if t < best_t {
                best_t = t;
                best_p = j;
            }
        }
        self.pred_buf = preds;

        self.proc_free[best_p] = best_t + lat;
        let placement = Placement {
            inst,
            proc: best_p,
            start: best_t,
        };
        self.placements.push(placement);

        let outdeg = self.g.out_degree(inst.node) as u32;
        if outdeg > 0 {
            self.live.insert(
                inst.node.0,
                inst.iter,
                Live {
                    proc: best_p as u32,
                    start: best_t,
                    unconsumed: outdeg,
                },
            );
        }

        // Consume operands: a predecessor with no remaining consumers can
        // never be referenced again and leaves the live set.
        for (_, e) in self.g.in_edges(inst.node) {
            if e.distance > inst.iter {
                continue;
            }
            let pi = inst.iter - e.distance;
            let li = self.live.get_mut(e.src.0, pi).expect("pred is live");
            li.unconsumed -= 1;
            if li.unconsumed == 0 {
                self.live.remove(e.src.0, pi);
            }
        }

        // Release successors whose predecessor counts reach zero.
        for (_, e) in self.g.out_edges(inst.node) {
            let succ = InstanceId {
                node: e.dst,
                iter: inst.iter + e.distance,
            };
            if !self.in_range(succ.iter) {
                // Out-of-range consumer: retire the producer's obligation.
                if let Some(li) = self.live.get_mut(inst.node.0, inst.iter) {
                    li.unconsumed -= 1;
                    if li.unconsumed == 0 {
                        self.live.remove(inst.node.0, inst.iter);
                    }
                }
                continue;
            }
            let left = match self.remaining.get_mut(succ.node.0, succ.iter) {
                Some(c) => {
                    *c -= 1;
                    let left = *c;
                    if left == 0 {
                        self.remaining.remove(succ.node.0, succ.iter);
                    }
                    left
                }
                None => {
                    let init = self
                        .g
                        .in_edges(succ.node)
                        .filter(|(_, e)| e.distance <= succ.iter)
                        .count() as u32
                        - 1;
                    if init > 0 {
                        self.remaining.insert(succ.node.0, succ.iter, init);
                    }
                    init
                }
            };
            if left == 0 {
                self.queue.push_back(succ);
            }
        }

        // Source nodes (no predecessors at all) self-advance: their next
        // iteration becomes ready as soon as this one is issued. This keeps
        // the unwinding uniform for graphs that are not purely Cyclic.
        if self.g.in_degree(inst.node) == 0 {
            let next = InstanceId {
                node: inst.node,
                iter: inst.iter + 1,
            };
            if self.in_range(next.iter) {
                self.queue.push_back(next);
            }
        }

        Some(placement)
    }

    /// Smallest `start + 1` over live placements — the earliest cycle at
    /// which any future instance of a root-free graph can start (every such
    /// instance reads at least one live operand). `None` when nothing is
    /// live. Shared by [`Self::future_start_floor`], [`Self::canon_state`],
    /// and [`Self::state_fingerprint`].
    fn live_floor(&self) -> Option<Cycle> {
        let mut floor: Option<Cycle> = None;
        self.live.for_each(|_, _, l| {
            let f = l.start + 1;
            floor = Some(floor.map_or(f, |x| x.min(f)));
        });
        floor
    }

    /// A lower bound on the start time of every *future* placement.
    ///
    /// Used by the window detector to decide when a window's content is
    /// final. `min(proc_free)` alone never advances when some processors
    /// stay idle forever; for root-free graphs every future instance reads
    /// at least one live operand, so it cannot start before
    /// `min(live starts) + 1` (and by induction neither can anything after
    /// it).
    pub(crate) fn future_start_floor(&self) -> Cycle {
        let frontier = self.proc_free.iter().copied().min().unwrap_or(0);
        if self.has_roots {
            return frontier;
        }
        frontier.max(self.live_floor().unwrap_or(Cycle::MAX))
    }

    /// The idle-frontier clamp value for relative frontiers: a processor
    /// whose frontier lies below every possible future operand-ready time
    /// is indistinguishable from one exactly at that floor (every future
    /// `T` is a max with a ready time ≥ min(live starts) + 1). Without the
    /// clamp, permanently idle processors make relative frontiers drift and
    /// states never recur. Root nodes (in-degree 0) read the raw frontier,
    /// so the clamp is only sound when there are none.
    fn frontier_clamp(&self, anchor_start: i64) -> i64 {
        if self.has_roots {
            i64::MIN
        } else {
            self.live_floor()
                .map_or(i64::MIN, |f| f as i64 - anchor_start)
        }
    }

    /// Snapshot the scheduler state relative to the just-placed anchor.
    ///
    /// Only materialized when the fingerprint dictionary reports a hit (or
    /// by tests); the per-anchor fast path is [`Self::state_fingerprint`].
    fn canon_state(&self, anchor: Placement) -> CanonState {
        let ai = anchor.inst.iter as i64;
        let at = anchor.start as i64;
        let mut remaining: Vec<(u32, i64, u32)> = Vec::with_capacity(self.remaining.len());
        self.remaining.for_each(|node, iter, &c| {
            remaining.push((node, iter as i64 - ai, c));
        });
        remaining.sort_unstable();
        let mut live: Vec<(u32, i64, u32, i64, u32)> = Vec::with_capacity(self.live.len());
        self.live.for_each(|node, iter, l| {
            live.push((
                node,
                iter as i64 - ai,
                l.proc,
                l.start as i64 - at,
                l.unconsumed,
            ));
        });
        live.sort_unstable();
        let floor = self.frontier_clamp(at);
        CanonState {
            anchor_node: anchor.inst.node.0,
            anchor_proc: anchor.proc as u32,
            free: self
                .proc_free
                .iter()
                .map(|&f| (f as i64 - at).max(floor))
                .collect(),
            queue: self
                .queue
                .iter()
                .map(|q| (q.node.0, q.iter as i64 - ai))
                .collect(),
            remaining,
            live,
        }
    }

    /// 64-bit fingerprint of [`Self::canon_state`], computed without
    /// allocating or sorting: ordered components (anchor, frontiers, ready
    /// queue) are hashed sequentially; the `live` and `remaining` tables —
    /// sets whose arena iteration order is not canonical — are combined by
    /// summing strong per-element hashes, which is order-independent.
    /// Equal canonical states therefore always produce equal fingerprints;
    /// the (≈2⁻⁶⁴) converse failure is caught by replay verification.
    fn state_fingerprint(&self, anchor: Placement) -> u64 {
        let ai = anchor.inst.iter as i64;
        let at = anchor.start as i64;
        let floor = self.frontier_clamp(at);

        let mut h = fp_mix(FP_SEED, anchor.inst.node.0 as u64);
        h = fp_mix(h, anchor.proc as u64);
        for &f in &self.proc_free {
            h = fp_mix(h, (f as i64 - at).max(floor) as u64);
        }
        h = fp_mix(h, self.queue.len() as u64);
        for q in &self.queue {
            h = fp_mix(h, ((q.node.0 as u64) << 33) ^ (q.iter as i64 - ai) as u64);
        }

        let mut rem = 0u64;
        self.remaining.for_each(|node, iter, &c| {
            let mut e = fp_mix(FP_SEED ^ 0xA5A5_A5A5, node as u64);
            e = fp_mix(e, (iter as i64 - ai) as u64);
            e = fp_mix(e, c as u64);
            rem = rem.wrapping_add(e);
        });
        h = fp_mix(h, rem);

        let mut liv = 0u64;
        self.live.for_each(|node, iter, l| {
            let mut e = fp_mix(FP_SEED ^ 0x5A5A_5A5A, node as u64);
            e = fp_mix(e, (iter as i64 - ai) as u64);
            e = fp_mix(e, l.proc as u64);
            e = fp_mix(e, (l.start as i64 - at) as u64);
            e = fp_mix(e, l.unconsumed as u64);
            liv = liv.wrapping_add(e);
        });
        fp_mix(h, liv)
    }
}

/// Run `Cyclic-sched` on a (distance-normalized) dependence graph.
///
/// Returns the detected [`Pattern`] — or, if no pattern emerged within
/// `opts.unroll_cap` unwound iterations, a [`BlockSchedule`] fallback that
/// tiles a finite greedy schedule.
///
/// ```
/// use kn_ddg::DdgBuilder;
/// use kn_sched::{cyclic_schedule, CyclicOptions, MachineConfig};
///
/// // x[i] = f(x[i-1], y[i]);  y[i] = g(y[i-1])  — two coupled recurrences.
/// let mut b = DdgBuilder::new();
/// let x = b.node("x");
/// let y = b.node("y");
/// b.carried(x, x);
/// b.carried(y, y);
/// b.dep(y, x);
/// let g = b.build().unwrap();
///
/// let m = MachineConfig::new(2, 1); // 2 PEs, comm bound k = 1
/// let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
/// let p = out.pattern().expect("a pattern emerges (Theorem 1)");
/// assert_eq!(p.steady_ii(), 1.0); // one iteration per cycle across 2 PEs
/// ```
pub fn cyclic_schedule(
    g: &Ddg,
    m: &MachineConfig,
    opts: &CyclicOptions,
) -> Result<PatternOutcome, CyclicError> {
    if !g.distances_normalized() {
        return Err(CyclicError::NotNormalized);
    }
    let cap_placements = opts.unroll_cap as usize * g.node_count();
    let mut greedy = Greedy::new(g, m, None);
    let mut dict = FingerprintDictionary::new();
    let mut windows = crate::window::WindowDetector::new(g, m);
    let mut anchor_node: Option<NodeId> = None;

    while greedy.placements.len() < cap_placements {
        let Some(p) = greedy.step() else { break };
        let anchor = *anchor_node.get_or_insert(p.inst.node);
        if p.inst.node != anchor {
            continue;
        }
        let stamp = StateStamp {
            iter: p.inst.iter,
            time: p.start,
            index: greedy.placements.len() - 1,
        };
        // `confirmed` is set when the match was established by full-state
        // equality (not just a fingerprint hit), in which case a replay
        // divergence is a genuine bug rather than a possible collision.
        // `candidate_state` holds the materialized state of an unconfirmed
        // hit, captured before replay advances the scheduler past it.
        let mut candidate_state: Option<CanonState> = None;
        let matched: Option<(StateStamp, StateStamp, bool)> = match opts.detector {
            DetectorKind::SchedulerState => {
                match dict.check(greedy.state_fingerprint(p), stamp) {
                    Some(prev) => {
                        // Materialize the full state only now, on a hit.
                        let full = greedy.canon_state(p);
                        let m = match dict.equal_recorded(&full, stamp) {
                            Some(prev_exact) => (prev_exact, stamp, true),
                            None => (prev, stamp, false),
                        };
                        candidate_state = Some(full);
                        Some(m)
                    }
                    None => None,
                }
            }
            DetectorKind::ConfigurationWindow => {
                let floor = greedy.future_start_floor();
                windows
                    .on_anchor(&greedy.placements, floor, stamp)
                    .map(|(a, b)| (a, b, false))
            }
        };
        if let Some((prev, cur, confirmed)) = matched {
            let kernel = greedy.placements[prev.index + 1..=cur.index].to_vec();
            let prologue = greedy.placements[..=prev.index].to_vec();
            let pattern = Pattern {
                prologue,
                kernel,
                iters_per_period: cur.iter - prev.iter,
                cycles_per_period: cur.time - prev.time,
            };
            // The fingerprint detector always replays at least one period:
            // state equality was only established probabilistically.
            let periods = match opts.detector {
                DetectorKind::SchedulerState if !confirmed => opts.verify_periods.max(1),
                _ => opts.verify_periods,
            };
            if verify_by_replay(&mut greedy, &pattern, cur.index, periods) {
                return Ok(PatternOutcome::Found(pattern));
            }
            match opts.detector {
                // A configuration window may under-capture state; a failed
                // replay just means "keep sliding" (the window was too
                // coarse), exactly as the paper keeps sliding until the
                // following sequences agree.
                DetectorKind::ConfigurationWindow => continue,
                // The scheduler-state detector captures everything the
                // greedy step reads, so two *equal* states with diverging
                // futures are impossible — that replay failure is a bug.
                // A fingerprint-only match that fails replay is a 64-bit
                // collision: record the materialized state so its true
                // recurrence is found by equality, and keep scheduling.
                DetectorKind::SchedulerState => {
                    if confirmed {
                        return Err(CyclicError::VerificationFailed {
                            at_placement: cur.index,
                        });
                    }
                    if let Some(full) = candidate_state.take() {
                        dict.record_collision(full, stamp);
                    }
                    continue;
                }
            }
        }
    }

    // Cap reached (or the queue drained, which only finite graphs do):
    // block-schedule `unroll_cap` iterations and tile.
    Ok(PatternOutcome::CapFallback(block_fallback(
        g,
        m,
        opts.unroll_cap,
    )))
}

/// Check Theorem 1 instead of assuming it: every placement after the
/// pattern's first period (index `kernel_end`) must match the pattern's
/// prediction, for `periods` further kernel periods. Placements the greedy
/// run has already made are checked in place; the rest are generated by
/// stepping the scheduler forward.
fn verify_by_replay(
    greedy: &mut Greedy<'_>,
    pattern: &Pattern,
    kernel_end: usize,
    periods: u32,
) -> bool {
    let klen = pattern.kernel.len();
    if klen == 0 {
        return false;
    }
    for n in 0..klen * periods as usize {
        let r = (n / klen) as u64 + 1;
        let j = n % klen;
        let base = pattern.kernel[j];
        let expect = Placement {
            inst: InstanceId {
                node: base.inst.node,
                iter: base.inst.iter + (r as u32) * pattern.iters_per_period,
            },
            proc: base.proc,
            start: base.start + r * pattern.cycles_per_period,
        };
        let idx = kernel_end + 1 + n;
        let got = if idx < greedy.placements.len() {
            greedy.placements[idx]
        } else {
            match greedy.step() {
                Some(p) => p,
                None => return false,
            }
        };
        if got != expect {
            return false;
        }
    }
    true
}

fn block_fallback(g: &Ddg, m: &MachineConfig, iters: u32) -> BlockSchedule {
    let block = greedy_finite(g, m, iters);
    let makespan = block
        .iter()
        .map(|p| p.start + g.latency(p.inst.node) as Cycle)
        .max()
        .unwrap_or(0);
    BlockSchedule {
        block,
        block_iters: iters.max(1),
        period: makespan + m.comm_upper_bound as Cycle,
    }
}

/// Greedy schedule of a *finite* unwinding (`iters` iterations), same
/// processor-selection rule. Used by the block fallback and by tests.
///
/// Note: this is **not** the same as the unbounded schedule restricted to
/// `iters` iterations — the unbounded scheduler may interleave instances
/// of later iterations before earlier ones on a processor, so restriction
/// leaves holes the finite run packs. Patterns instantiate the *unbounded*
/// schedule; compare against [`greedy_unbounded`].
pub fn greedy_finite(g: &Ddg, m: &MachineConfig, iters: u32) -> Vec<Placement> {
    let mut greedy = Greedy::new(g, m, Some(iters));
    while greedy.step().is_some() {}
    greedy.placements
}

/// Raw unbounded greedy placements in scheduling order, capped at
/// `max_placements` — the ground truth that detected patterns must (and
/// are verified to) reproduce.
pub fn greedy_unbounded(g: &Ddg, m: &MachineConfig, max_placements: usize) -> Vec<Placement> {
    let mut greedy = Greedy::new(g, m, None);
    while greedy.placements.len() < max_placements {
        if greedy.step().is_none() {
            break;
        }
    }
    greedy.placements
}

/// The order in which `Cyclic-sched` visits instances — the paper's
/// "topological sorting subject to data dependences" (Figures 3(b), 7(c)),
/// independent of any machine parameters. Stops after `limit` instances.
pub fn enumeration_order(g: &Ddg, limit: usize) -> Vec<InstanceId> {
    // A 1-processor machine makes processor selection trivial without
    // affecting queue order (queue evolution is machine-independent).
    let m = MachineConfig::new(1, 1);
    let mut greedy = Greedy::new(g, &m, None);
    let mut order = Vec::with_capacity(limit);
    while order.len() < limit {
        match greedy.step() {
            Some(p) => order.push(p.inst),
            None => break,
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ScheduleTable;
    use kn_ddg::DdgBuilder;

    /// Paper Figure 7 loop (all latencies 1).
    pub(crate) fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    fn inst(g: &Ddg, name: &str, iter: u32) -> InstanceId {
        InstanceId {
            node: g.find(name).unwrap(),
            iter,
        }
    }

    #[test]
    fn enumeration_order_matches_paper_shape() {
        // Paper Fig. 7(c): A1 D1 B1 E1 C1 then alternating per iteration.
        let g = figure7();
        let order = enumeration_order(&g, 10);
        let names: Vec<String> = order
            .iter()
            .map(|i| format!("{}{}", g.name(i.node), i.iter))
            .collect();
        assert_eq!(&names[..5], &["A0", "D0", "B0", "E0", "C0"]);
        // Every node appears exactly once per iteration.
        assert_eq!(&names[5..10], &["A1", "D1", "B1", "E1", "C1"]);
    }

    #[test]
    fn figure7_first_iteration_placements() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let placements = greedy_finite(&g, &m, 2);
        let table = ScheduleTable::new(placements);
        table.validate(&g, &m).unwrap();
        // Hand-checked against the paper's Figure 7(d) (0-indexed):
        assert_eq!(table.start_of(inst(&g, "A", 0)), Some(0));
        assert_eq!(table.proc_of(inst(&g, "A", 0)), Some(0));
        assert_eq!(table.start_of(inst(&g, "D", 0)), Some(0));
        assert_eq!(table.proc_of(inst(&g, "D", 0)), Some(1));
        assert_eq!(table.start_of(inst(&g, "B", 0)), Some(1));
        assert_eq!(table.start_of(inst(&g, "C", 0)), Some(2));
        // Iteration 1 swaps processors: A1 lands on PE1 at cycle 2.
        assert_eq!(table.start_of(inst(&g, "A", 1)), Some(2));
        assert_eq!(table.proc_of(inst(&g, "A", 1)), Some(1));
        assert_eq!(table.start_of(inst(&g, "D", 1)), Some(3));
        assert_eq!(table.proc_of(inst(&g, "D", 1)), Some(0));
    }

    #[test]
    fn figure7_pattern_emerges() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let p = out.pattern().expect("Theorem 1: a pattern must emerge");
        // Strict first-minimum greedy achieves the recurrence bound:
        // 5 cycles / 2 iterations = 2.5 cycles per iteration
        // (better than the paper's hand schedule of 3.0; see EXPERIMENTS.md).
        assert_eq!(p.iters_per_period, 2);
        assert_eq!(p.cycles_per_period, 5);
        assert_eq!(p.steady_ii(), 2.5);
        assert_eq!(p.kernel.len(), 2 * g.node_count());
    }

    #[test]
    fn figure7_pattern_instantiation_is_valid_and_matches_finite_greedy() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let iters = 20;
        let placements = out.instantiate(iters);
        assert_eq!(placements.len(), g.node_count() * iters as usize);
        let table = ScheduleTable::new(placements.clone());
        table.validate(&g, &m).unwrap();
        // The instantiation equals the infinite greedy schedule restricted
        // to the first `iters` iterations; compare against a fresh raw run.
        let mut greedy = Greedy::new(&g, &m, None);
        let mut reference: Vec<Placement> = Vec::new();
        while reference.len() < placements.len() {
            let p = greedy.step().unwrap();
            if p.inst.iter < iters {
                reference.push(p);
            }
            // Stop once the raw run has clearly moved past iteration range.
            if greedy.placements.len() > 40 * g.node_count() {
                break;
            }
        }
        let mut got = placements;
        let mut want = reference;
        got.sort_by_key(|p| (p.inst.node.0, p.inst.iter));
        want.sort_by_key(|p| (p.inst.node.0, p.inst.iter));
        assert_eq!(got, want);
    }

    #[test]
    fn self_loop_chain_pattern() {
        // x (lat 2) with a carried self-dependence: one new x every 2 cycles
        // on a single processor — communication never helps.
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 2);
        b.carried(x, x);
        let g = b.build().unwrap();
        let m = MachineConfig::new(4, 3);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let p = out.pattern().unwrap();
        assert_eq!(p.steady_ii(), 2.0);
        assert_eq!(p.kernel_processors(), 1);
    }

    #[test]
    fn doall_like_source_spreads_over_processors() {
        // Independent source node: every iteration is ready immediately;
        // greedy round-robins over all processors.
        let mut b = DdgBuilder::new();
        b.node_lat("x", 3);
        let g = b.build().unwrap();
        let m = MachineConfig::new(4, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let p = out.pattern().unwrap();
        // 4 processors, latency 3: steady state 3/4 cycle per iteration.
        assert!(
            (p.steady_ii() - 0.75).abs() < 1e-9,
            "ii = {}",
            p.steady_ii()
        );
    }

    #[test]
    fn pattern_respects_recurrence_bound() {
        let g = figure7();
        let m = MachineConfig::new(8, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let bound = kn_ddg::scc::recurrence_bound(&g);
        assert!(out.steady_ii() + 1e-9 >= bound);
    }

    #[test]
    fn single_processor_degenerates_to_sequential_rate() {
        let g = figure7();
        let m = MachineConfig::new(1, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        // One processor: 5 unit-latency nodes per iteration.
        assert_eq!(out.steady_ii(), 5.0);
    }

    #[test]
    fn zero_comm_reaches_perfect_pipelining_rate() {
        // With k = 0 the problem degenerates to Perfect Pipelining; the
        // greedy schedule must reach the recurrence bound of 2.5.
        let g = figure7();
        let m = MachineConfig::new(8, 0);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        assert!((out.steady_ii() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn large_comm_cost_still_finds_pattern() {
        // Theorem 1 holds for any fixed k: a pattern still emerges. Note
        // that the greedy rule is myopic — with k = 7 it spreads work and
        // then pays the transfers, so the rate can be *worse* than the
        // 1-processor rate of 5.0. Correctness (a valid periodic schedule)
        // is what the theorem promises, and what we assert.
        let g = figure7();
        let m = MachineConfig::new(2, 7);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let p = out.pattern().expect("pattern under heavy communication");
        assert!(p.steady_ii() >= 2.5, "cannot beat the recurrence bound");
        let placements = out.instantiate(12);
        ScheduleTable::new(placements).validate(&g, &m).unwrap();
    }

    #[test]
    fn rejects_unnormalized_distances() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.dep_dist(x, x, 2);
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 1);
        assert_eq!(
            cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap_err(),
            CyclicError::NotNormalized
        );
    }

    #[test]
    fn finite_greedy_covers_all_instances() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let placements = greedy_finite(&g, &m, 7);
        assert_eq!(placements.len(), 7 * g.node_count());
        ScheduleTable::new(placements).validate(&g, &m).unwrap();
    }

    #[test]
    fn cap_fallback_is_valid() {
        // Force the fallback with a cap of 1 iteration (pattern needs ≥ 2
        // anchor occurrences, which a 5-placement budget cannot produce).
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let opts = CyclicOptions {
            unroll_cap: 1,
            ..CyclicOptions::default()
        };
        let out = cyclic_schedule(&g, &m, &opts).unwrap();
        assert!(matches!(out, PatternOutcome::CapFallback(_)));
        let placements = out.instantiate(5);
        assert_eq!(placements.len(), 5 * g.node_count());
        ScheduleTable::new(placements).validate(&g, &m).unwrap();
    }

    #[test]
    fn window_detector_agrees_with_state_detector_on_rate() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let a = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let b = cyclic_schedule(
            &g,
            &m,
            &CyclicOptions {
                detector: DetectorKind::ConfigurationWindow,
                ..CyclicOptions::default()
            },
        )
        .unwrap();
        assert!((a.steady_ii() - b.steady_ii()).abs() < 1e-9);
        assert!(b.pattern().is_some());
    }

    #[test]
    fn node_rings_basic_ops() {
        let mut r: NodeRings<u32> = NodeRings::new(3);
        assert_eq!(r.len(), 0);
        r.insert(0, 0, 10);
        r.insert(0, 1, 11);
        r.insert(2, 5, 25);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(0, 0), Some(&10));
        assert_eq!(r.get(0, 1), Some(&11));
        assert_eq!(r.get(2, 5), Some(&25));
        assert_eq!(r.get(2, 4), None, "same slot, different iter tag");
        *r.get_mut(0, 1).unwrap() = 99;
        assert_eq!(r.get(0, 1), Some(&99));
        r.remove(0, 0);
        assert_eq!(r.get(0, 0), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn node_rings_grow_on_collision_preserves_entries() {
        let mut r: NodeRings<u32> = NodeRings::new(2);
        // Iterations 0 and 2 of node 1 collide at ring capacity 2.
        r.insert(1, 0, 100);
        r.insert(1, 1, 101);
        r.insert(1, 2, 102); // forces growth to capacity 4
        r.insert(1, 3, 103);
        assert_eq!(r.len(), 4);
        for i in 0..4u32 {
            assert_eq!(r.get(1, i), Some(&(100 + i)), "iter {i}");
        }
        // Node 0 untouched by node 1's collisions.
        r.insert(0, 7, 7);
        assert_eq!(r.get(0, 7), Some(&7));
        let mut seen = Vec::new();
        r.for_each(|n, i, &v| seen.push((n, i, v)));
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![
                (0, 7, 7),
                (1, 0, 100),
                (1, 1, 101),
                (1, 2, 102),
                (1, 3, 103)
            ]
        );
    }

    #[test]
    fn fingerprint_matches_canon_state_equality() {
        // Two anchors with equal canonical states must produce equal
        // fingerprints (the detector's soundness direction).
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let mut greedy = Greedy::new(&g, &m, None);
        let mut states: Vec<(CanonState, u64)> = Vec::new();
        for _ in 0..60 {
            let p = greedy.step().unwrap();
            if p.inst.node == NodeId(0) {
                states.push((greedy.canon_state(p), greedy.state_fingerprint(p)));
            }
        }
        assert!(states.len() > 4);
        let mut equal_pairs = 0;
        for i in 0..states.len() {
            for j in i + 1..states.len() {
                if states[i].0 == states[j].0 {
                    equal_pairs += 1;
                    assert_eq!(states[i].1, states[j].1, "equal states, equal fingerprints");
                }
                if states[i].1 != states[j].1 {
                    assert_ne!(states[i].0, states[j].0);
                }
            }
        }
        assert!(equal_pairs > 0, "figure7 recurs within 12 iterations");
    }
}
