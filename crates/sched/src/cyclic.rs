//! `Cyclic-sched` (paper Figure 4): greedy list scheduling of the
//! infinitely unwound loop with communication-aware processor selection.
//!
//! Every ready instance `(v, i)` is assigned to the processor `P_j` whose
//! `T(v, P_j)` — the earliest cycle `v` could start on `P_j`, accounting for
//! the processor's frontier and each operand's local/remote availability —
//! is the **first minimum** over `j`. The task queue is FIFO and successors
//! are enqueued in edge-declaration order, giving the "consistent ordering"
//! the paper requires for a pattern to emerge (§2.2, footnote 7).
//!
//! Pattern detection is pluggable:
//!
//! * [`DetectorKind::SchedulerState`] (default) — canonical scheduler-state
//!   recurrence (see [`crate::state`]); constructive and exact.
//! * [`DetectorKind::ConfigurationWindow`] — the paper's sliding
//!   `p × (k+1)` configuration window (see [`crate::window`]), run over the
//!   growing schedule.
//!
//! Both detected patterns are verified by replay (`Theorem 1` is checked,
//! not assumed): the scheduler keeps running for `verify_periods` more
//! kernel periods and every placement must match the pattern's prediction.

use crate::machine::{Cycle, MachineConfig};
use crate::pattern::{BlockSchedule, Pattern, PatternOutcome};
use crate::state::{CanonState, StateDictionary, StateStamp};
use crate::table::Placement;
use kn_ddg::{Ddg, InstanceId, NodeId};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Pattern-detection strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DetectorKind {
    /// Canonical scheduler-state recurrence (constructive, default).
    #[default]
    SchedulerState,
    /// The paper's sliding configuration window of width `p`, height `k+1`.
    ConfigurationWindow,
}

/// Options for [`cyclic_schedule`].
#[derive(Clone, Debug)]
pub struct CyclicOptions {
    /// Maximum iterations to unwind before giving up on a pattern and
    /// falling back to a block schedule.
    pub unroll_cap: u32,
    /// Detection strategy.
    pub detector: DetectorKind,
    /// Extra kernel periods to verify by replay (0 disables verification).
    pub verify_periods: u32,
}

impl Default for CyclicOptions {
    fn default() -> Self {
        Self { unroll_cap: 256, detector: DetectorKind::default(), verify_periods: 2 }
    }
}

/// Errors from [`cyclic_schedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CyclicError {
    /// Dependence distances must be normalized to `{0, 1}` first
    /// (see `kn_ddg::normalize_distances`).
    NotNormalized,
    /// A detected pattern failed replay verification — a bug, never an
    /// expected outcome; surfaced loudly rather than silently mis-scheduled.
    VerificationFailed { at_placement: usize },
}

impl std::fmt::Display for CyclicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CyclicError::NotNormalized => {
                write!(f, "dependence distances must be 0 or 1 (unwind first)")
            }
            CyclicError::VerificationFailed { at_placement } => {
                write!(f, "pattern replay diverged at placement {at_placement}")
            }
        }
    }
}

impl std::error::Error for CyclicError {}

/// A live placement: scheduled, but some successor has not yet consumed it.
#[derive(Clone, Copy, Debug)]
struct Live {
    proc: u32,
    start: Cycle,
    unconsumed: u32,
}

/// The greedy scheduler core. Public within the crate so that the window
/// detector and the DOACROSS comparison harness can drive it directly.
pub(crate) struct Greedy<'g> {
    g: &'g Ddg,
    m: &'g MachineConfig,
    queue: VecDeque<InstanceId>,
    /// Instances with some, but not all, predecessors scheduled.
    remaining: HashMap<InstanceId, u32>,
    /// Placed instances that can still be read by a future `T` computation.
    live: BTreeMap<InstanceId, Live>,
    proc_free: Vec<Cycle>,
    /// Every placement, in scheduling order.
    pub(crate) placements: Vec<Placement>,
    /// Optional bound on iteration indices (None = unbounded unwinding).
    max_iters: Option<u32>,
    /// Whether any node has in-degree 0 (such roots read the raw processor
    /// frontier, which forbids the idle-frontier clamp in `canon_state`).
    has_roots: bool,
}

impl<'g> Greedy<'g> {
    pub(crate) fn new(g: &'g Ddg, m: &'g MachineConfig, max_iters: Option<u32>) -> Self {
        let mut s = Self {
            g,
            m,
            queue: VecDeque::new(),
            remaining: HashMap::new(),
            live: BTreeMap::new(),
            proc_free: vec![0; m.processors],
            placements: Vec::new(),
            max_iters,
            has_roots: g.node_ids().any(|v| g.in_degree(v) == 0),
        };
        // Seeds: instance (v, 0) is ready iff v has no intra-iteration
        // predecessors (carried edges point at iteration -1, which does not
        // exist). Enqueued in node-id order for determinism.
        for v in g.node_ids() {
            if g.intra_in_degree(v) == 0 && s.in_range(0) {
                s.queue.push_back(InstanceId { node: v, iter: 0 });
            }
        }
        s
    }

    fn in_range(&self, iter: u32) -> bool {
        self.max_iters.map(|n| iter < n).unwrap_or(true)
    }

    /// Schedule the next ready instance. `None` when the queue is empty
    /// (only possible with a finite `max_iters`).
    pub(crate) fn step(&mut self) -> Option<Placement> {
        let inst = self.queue.pop_front()?;
        let lat = self.g.latency(inst.node) as Cycle;

        // Operand availability, gathered once per predecessor edge.
        let mut preds: Vec<(u32, Cycle, u32)> = Vec::new();
        for (_, e) in self.g.in_edges(inst.node) {
            if e.distance > inst.iter {
                continue;
            }
            let pred = InstanceId { node: e.src, iter: inst.iter - e.distance };
            let li = self.live.get(&pred).expect("ready instance has all preds live");
            let fin = li.start + self.g.latency(pred.node) as Cycle;
            preds.push((li.proc, fin, self.m.edge_cost(e)));
        }

        // T(v, Pj) for every processor; first minimum wins (paper Fig. 4).
        let mut best_t = Cycle::MAX;
        let mut best_p = 0usize;
        for (j, &free) in self.proc_free.iter().enumerate() {
            let mut t = free;
            for &(pp, fin, c) in &preds {
                let r = if pp == j as u32 {
                    self.m.local_ready(fin)
                } else {
                    self.m.remote_ready(fin, c)
                };
                if r > t {
                    t = r;
                }
            }
            if t < best_t {
                best_t = t;
                best_p = j;
            }
        }

        self.proc_free[best_p] = best_t + lat;
        let placement = Placement { inst, proc: best_p, start: best_t };
        self.placements.push(placement);

        let outdeg = self.g.out_degree(inst.node) as u32;
        if outdeg > 0 {
            self.live
                .insert(inst, Live { proc: best_p as u32, start: best_t, unconsumed: outdeg });
        }

        // Consume operands: a predecessor with no remaining consumers can
        // never be referenced again and leaves the live set.
        for (_, e) in self.g.in_edges(inst.node) {
            if e.distance > inst.iter {
                continue;
            }
            let pred = InstanceId { node: e.src, iter: inst.iter - e.distance };
            let li = self.live.get_mut(&pred).expect("pred is live");
            li.unconsumed -= 1;
            if li.unconsumed == 0 {
                self.live.remove(&pred);
            }
        }

        // Release successors whose predecessor counts reach zero.
        for (_, e) in self.g.out_edges(inst.node) {
            let succ = InstanceId { node: e.dst, iter: inst.iter + e.distance };
            if !self.in_range(succ.iter) {
                // Out-of-range consumer: retire the producer's obligation.
                if let Some(li) = self.live.get_mut(&inst) {
                    li.unconsumed -= 1;
                    if li.unconsumed == 0 {
                        self.live.remove(&inst);
                    }
                }
                continue;
            }
            let entry = self
                .remaining
                .entry(succ)
                .or_insert_with(|| self.g
                    .in_edges(succ.node)
                    .filter(|(_, e)| e.distance <= succ.iter)
                    .count() as u32);
            *entry -= 1;
            if *entry == 0 {
                self.remaining.remove(&succ);
                self.queue.push_back(succ);
            }
        }

        // Source nodes (no predecessors at all) self-advance: their next
        // iteration becomes ready as soon as this one is issued. This keeps
        // the unwinding uniform for graphs that are not purely Cyclic.
        if self.g.in_degree(inst.node) == 0 {
            let next = InstanceId { node: inst.node, iter: inst.iter + 1 };
            if self.in_range(next.iter) {
                self.queue.push_back(next);
            }
        }

        Some(placement)
    }

    /// A lower bound on the start time of every *future* placement.
    ///
    /// Used by the window detector to decide when a window's content is
    /// final. `min(proc_free)` alone never advances when some processors
    /// stay idle forever; for root-free graphs every future instance reads
    /// at least one live operand, so it cannot start before
    /// `min(live starts) + 1` (and by induction neither can anything after
    /// it).
    pub(crate) fn future_start_floor(&self) -> Cycle {
        let frontier = self.proc_free.iter().copied().min().unwrap_or(0);
        if self.has_roots {
            return frontier;
        }
        let live_floor = self
            .live
            .values()
            .map(|l| l.start + 1)
            .min()
            .unwrap_or(Cycle::MAX);
        frontier.max(live_floor)
    }

    /// Snapshot the scheduler state relative to the just-placed anchor.
    fn canon_state(&self, anchor: Placement) -> CanonState {
        let ai = anchor.inst.iter as i64;
        let at = anchor.start as i64;
        let mut remaining: Vec<(u32, i64, u32)> = self
            .remaining
            .iter()
            .map(|(inst, &c)| (inst.node.0, inst.iter as i64 - ai, c))
            .collect();
        remaining.sort_unstable();
        let mut live: Vec<(u32, i64, u32, i64, u32)> = self
            .live
            .iter()
            .map(|(inst, l)| {
                (inst.node.0, inst.iter as i64 - ai, l.proc, l.start as i64 - at, l.unconsumed)
            })
            .collect();
        live.sort_unstable();
        // Idle-frontier clamp: a processor whose frontier lies below every
        // possible future operand-ready time is indistinguishable from one
        // exactly at that floor (every future `T` is a max with a ready
        // time ≥ min(live starts) + 1). Without the clamp, permanently idle
        // processors make relative frontiers drift and states never recur.
        // Root nodes (in-degree 0) read the raw frontier, so the clamp is
        // only sound when there are none.
        let floor = if self.has_roots {
            i64::MIN
        } else {
            self.live
                .values()
                .map(|l| l.start as i64 + 1 - at)
                .min()
                .unwrap_or(i64::MIN)
        };
        CanonState {
            anchor_node: anchor.inst.node.0,
            anchor_proc: anchor.proc as u32,
            free: self
                .proc_free
                .iter()
                .map(|&f| (f as i64 - at).max(floor))
                .collect(),
            queue: self
                .queue
                .iter()
                .map(|q| (q.node.0, q.iter as i64 - ai))
                .collect(),
            remaining,
            live,
        }
    }
}

/// Run `Cyclic-sched` on a (distance-normalized) dependence graph.
///
/// Returns the detected [`Pattern`] — or, if no pattern emerged within
/// `opts.unroll_cap` unwound iterations, a [`BlockSchedule`] fallback that
/// tiles a finite greedy schedule.
///
/// ```
/// use kn_ddg::DdgBuilder;
/// use kn_sched::{cyclic_schedule, CyclicOptions, MachineConfig};
///
/// // x[i] = f(x[i-1], y[i]);  y[i] = g(y[i-1])  — two coupled recurrences.
/// let mut b = DdgBuilder::new();
/// let x = b.node("x");
/// let y = b.node("y");
/// b.carried(x, x);
/// b.carried(y, y);
/// b.dep(y, x);
/// let g = b.build().unwrap();
///
/// let m = MachineConfig::new(2, 1); // 2 PEs, comm bound k = 1
/// let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
/// let p = out.pattern().expect("a pattern emerges (Theorem 1)");
/// assert_eq!(p.steady_ii(), 1.0); // one iteration per cycle across 2 PEs
/// ```
pub fn cyclic_schedule(
    g: &Ddg,
    m: &MachineConfig,
    opts: &CyclicOptions,
) -> Result<PatternOutcome, CyclicError> {
    if !g.distances_normalized() {
        return Err(CyclicError::NotNormalized);
    }
    let cap_placements = opts.unroll_cap as usize * g.node_count();
    let mut greedy = Greedy::new(g, m, None);
    let mut dict = StateDictionary::new();
    let mut windows = crate::window::WindowDetector::new(g, m);
    let mut anchor_node: Option<NodeId> = None;

    while greedy.placements.len() < cap_placements {
        let Some(p) = greedy.step() else { break };
        let anchor = *anchor_node.get_or_insert(p.inst.node);
        if p.inst.node != anchor {
            continue;
        }
        let stamp = StateStamp {
            iter: p.inst.iter,
            time: p.start,
            index: greedy.placements.len() - 1,
        };
        let matched = match opts.detector {
            DetectorKind::SchedulerState => {
                dict.check(greedy.canon_state(p), stamp).map(|prev| (prev, stamp))
            }
            DetectorKind::ConfigurationWindow => {
                let floor = greedy.future_start_floor();
                windows.on_anchor(&greedy.placements, floor, stamp)
            }
        };
        if let Some((prev, cur)) = matched {
            let kernel = greedy.placements[prev.index + 1..=cur.index].to_vec();
            let prologue = greedy.placements[..=prev.index].to_vec();
            let pattern = Pattern {
                prologue,
                kernel,
                iters_per_period: cur.iter - prev.iter,
                cycles_per_period: cur.time - prev.time,
            };
            if verify_by_replay(&mut greedy, &pattern, cur.index, opts.verify_periods) {
                return Ok(PatternOutcome::Found(pattern));
            }
            match opts.detector {
                // A configuration window may under-capture state; a failed
                // replay just means "keep sliding" (the window was too
                // coarse), exactly as the paper keeps sliding until the
                // following sequences agree.
                DetectorKind::ConfigurationWindow => continue,
                // The scheduler-state detector captures everything the
                // greedy step reads; a replay failure is a bug.
                DetectorKind::SchedulerState => {
                    return Err(CyclicError::VerificationFailed {
                        at_placement: cur.index,
                    })
                }
            }
        }
    }

    // Cap reached (or the queue drained, which only finite graphs do):
    // block-schedule `unroll_cap` iterations and tile.
    Ok(PatternOutcome::CapFallback(block_fallback(g, m, opts.unroll_cap)))
}

/// Check Theorem 1 instead of assuming it: every placement after the
/// pattern's first period (index `kernel_end`) must match the pattern's
/// prediction, for `periods` further kernel periods. Placements the greedy
/// run has already made are checked in place; the rest are generated by
/// stepping the scheduler forward.
fn verify_by_replay(
    greedy: &mut Greedy<'_>,
    pattern: &Pattern,
    kernel_end: usize,
    periods: u32,
) -> bool {
    let klen = pattern.kernel.len();
    if klen == 0 {
        return false;
    }
    for n in 0..klen * periods as usize {
        let r = (n / klen) as u64 + 1;
        let j = n % klen;
        let base = pattern.kernel[j];
        let expect = Placement {
            inst: InstanceId {
                node: base.inst.node,
                iter: base.inst.iter + (r as u32) * pattern.iters_per_period,
            },
            proc: base.proc,
            start: base.start + r * pattern.cycles_per_period,
        };
        let idx = kernel_end + 1 + n;
        let got = if idx < greedy.placements.len() {
            greedy.placements[idx]
        } else {
            match greedy.step() {
                Some(p) => p,
                None => return false,
            }
        };
        if got != expect {
            return false;
        }
    }
    true
}

fn block_fallback(g: &Ddg, m: &MachineConfig, iters: u32) -> BlockSchedule {
    let block = greedy_finite(g, m, iters);
    let makespan = block
        .iter()
        .map(|p| p.start + g.latency(p.inst.node) as Cycle)
        .max()
        .unwrap_or(0);
    BlockSchedule {
        block,
        block_iters: iters.max(1),
        period: makespan + m.comm_upper_bound as Cycle,
    }
}

/// Greedy schedule of a *finite* unwinding (`iters` iterations), same
/// processor-selection rule. Used by the block fallback and by tests.
///
/// Note: this is **not** the same as the unbounded schedule restricted to
/// `iters` iterations — the unbounded scheduler may interleave instances
/// of later iterations before earlier ones on a processor, so restriction
/// leaves holes the finite run packs. Patterns instantiate the *unbounded*
/// schedule; compare against [`greedy_unbounded`].
pub fn greedy_finite(g: &Ddg, m: &MachineConfig, iters: u32) -> Vec<Placement> {
    let mut greedy = Greedy::new(g, m, Some(iters));
    while greedy.step().is_some() {}
    greedy.placements
}

/// Raw unbounded greedy placements in scheduling order, capped at
/// `max_placements` — the ground truth that detected patterns must (and
/// are verified to) reproduce.
pub fn greedy_unbounded(g: &Ddg, m: &MachineConfig, max_placements: usize) -> Vec<Placement> {
    let mut greedy = Greedy::new(g, m, None);
    while greedy.placements.len() < max_placements {
        if greedy.step().is_none() {
            break;
        }
    }
    greedy.placements
}

/// The order in which `Cyclic-sched` visits instances — the paper's
/// "topological sorting subject to data dependences" (Figures 3(b), 7(c)),
/// independent of any machine parameters. Stops after `limit` instances.
pub fn enumeration_order(g: &Ddg, limit: usize) -> Vec<InstanceId> {
    // A 1-processor machine makes processor selection trivial without
    // affecting queue order (queue evolution is machine-independent).
    let m = MachineConfig::new(1, 1);
    let mut greedy = Greedy::new(g, &m, None);
    let mut order = Vec::with_capacity(limit);
    while order.len() < limit {
        match greedy.step() {
            Some(p) => order.push(p.inst),
            None => break,
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ScheduleTable;
    use kn_ddg::DdgBuilder;

    /// Paper Figure 7 loop (all latencies 1).
    pub(crate) fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    fn inst(g: &Ddg, name: &str, iter: u32) -> InstanceId {
        InstanceId { node: g.find(name).unwrap(), iter }
    }

    #[test]
    fn enumeration_order_matches_paper_shape() {
        // Paper Fig. 7(c): A1 D1 B1 E1 C1 then alternating per iteration.
        let g = figure7();
        let order = enumeration_order(&g, 10);
        let names: Vec<String> = order
            .iter()
            .map(|i| format!("{}{}", g.name(i.node), i.iter))
            .collect();
        assert_eq!(&names[..5], &["A0", "D0", "B0", "E0", "C0"]);
        // Every node appears exactly once per iteration.
        assert_eq!(&names[5..10], &["A1", "D1", "B1", "E1", "C1"]);
    }

    #[test]
    fn figure7_first_iteration_placements() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let placements = greedy_finite(&g, &m, 2);
        let table = ScheduleTable::new(placements);
        table.validate(&g, &m).unwrap();
        // Hand-checked against the paper's Figure 7(d) (0-indexed):
        assert_eq!(table.start_of(inst(&g, "A", 0)), Some(0));
        assert_eq!(table.proc_of(inst(&g, "A", 0)), Some(0));
        assert_eq!(table.start_of(inst(&g, "D", 0)), Some(0));
        assert_eq!(table.proc_of(inst(&g, "D", 0)), Some(1));
        assert_eq!(table.start_of(inst(&g, "B", 0)), Some(1));
        assert_eq!(table.start_of(inst(&g, "C", 0)), Some(2));
        // Iteration 1 swaps processors: A1 lands on PE1 at cycle 2.
        assert_eq!(table.start_of(inst(&g, "A", 1)), Some(2));
        assert_eq!(table.proc_of(inst(&g, "A", 1)), Some(1));
        assert_eq!(table.start_of(inst(&g, "D", 1)), Some(3));
        assert_eq!(table.proc_of(inst(&g, "D", 1)), Some(0));
    }

    #[test]
    fn figure7_pattern_emerges() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let p = out.pattern().expect("Theorem 1: a pattern must emerge");
        // Strict first-minimum greedy achieves the recurrence bound:
        // 5 cycles / 2 iterations = 2.5 cycles per iteration
        // (better than the paper's hand schedule of 3.0; see EXPERIMENTS.md).
        assert_eq!(p.iters_per_period, 2);
        assert_eq!(p.cycles_per_period, 5);
        assert_eq!(p.steady_ii(), 2.5);
        assert_eq!(p.kernel.len(), 2 * g.node_count());
    }

    #[test]
    fn figure7_pattern_instantiation_is_valid_and_matches_finite_greedy() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let iters = 20;
        let placements = out.instantiate(iters);
        assert_eq!(placements.len(), g.node_count() * iters as usize);
        let table = ScheduleTable::new(placements.clone());
        table.validate(&g, &m).unwrap();
        // The instantiation equals the infinite greedy schedule restricted
        // to the first `iters` iterations; compare against a fresh raw run.
        let mut greedy = Greedy::new(&g, &m, None);
        let mut reference: Vec<Placement> = Vec::new();
        while reference.len() < placements.len() {
            let p = greedy.step().unwrap();
            if p.inst.iter < iters {
                reference.push(p);
            }
            // Stop once the raw run has clearly moved past iteration range.
            if greedy.placements.len() > 40 * g.node_count() {
                break;
            }
        }
        let mut got = placements;
        let mut want = reference;
        got.sort_by_key(|p| (p.inst.node.0, p.inst.iter));
        want.sort_by_key(|p| (p.inst.node.0, p.inst.iter));
        assert_eq!(got, want);
    }

    #[test]
    fn self_loop_chain_pattern() {
        // x (lat 2) with a carried self-dependence: one new x every 2 cycles
        // on a single processor — communication never helps.
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 2);
        b.carried(x, x);
        let g = b.build().unwrap();
        let m = MachineConfig::new(4, 3);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let p = out.pattern().unwrap();
        assert_eq!(p.steady_ii(), 2.0);
        assert_eq!(p.kernel_processors(), 1);
    }

    #[test]
    fn doall_like_source_spreads_over_processors() {
        // Independent source node: every iteration is ready immediately;
        // greedy round-robins over all processors.
        let mut b = DdgBuilder::new();
        b.node_lat("x", 3);
        let g = b.build().unwrap();
        let m = MachineConfig::new(4, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let p = out.pattern().unwrap();
        // 4 processors, latency 3: steady state 3/4 cycle per iteration.
        assert!((p.steady_ii() - 0.75).abs() < 1e-9, "ii = {}", p.steady_ii());
    }

    #[test]
    fn pattern_respects_recurrence_bound() {
        let g = figure7();
        let m = MachineConfig::new(8, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let bound = kn_ddg::scc::recurrence_bound(&g);
        assert!(out.steady_ii() + 1e-9 >= bound);
    }

    #[test]
    fn single_processor_degenerates_to_sequential_rate() {
        let g = figure7();
        let m = MachineConfig::new(1, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        // One processor: 5 unit-latency nodes per iteration.
        assert_eq!(out.steady_ii(), 5.0);
    }

    #[test]
    fn zero_comm_reaches_perfect_pipelining_rate() {
        // With k = 0 the problem degenerates to Perfect Pipelining; the
        // greedy schedule must reach the recurrence bound of 2.5.
        let g = figure7();
        let m = MachineConfig::new(8, 0);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        assert!((out.steady_ii() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn large_comm_cost_still_finds_pattern() {
        // Theorem 1 holds for any fixed k: a pattern still emerges. Note
        // that the greedy rule is myopic — with k = 7 it spreads work and
        // then pays the transfers, so the rate can be *worse* than the
        // 1-processor rate of 5.0. Correctness (a valid periodic schedule)
        // is what the theorem promises, and what we assert.
        let g = figure7();
        let m = MachineConfig::new(2, 7);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let p = out.pattern().expect("pattern under heavy communication");
        assert!(p.steady_ii() >= 2.5, "cannot beat the recurrence bound");
        let placements = out.instantiate(12);
        ScheduleTable::new(placements).validate(&g, &m).unwrap();
    }

    #[test]
    fn rejects_unnormalized_distances() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.dep_dist(x, x, 2);
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 1);
        assert_eq!(
            cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap_err(),
            CyclicError::NotNormalized
        );
    }

    #[test]
    fn finite_greedy_covers_all_instances() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let placements = greedy_finite(&g, &m, 7);
        assert_eq!(placements.len(), 7 * g.node_count());
        ScheduleTable::new(placements).validate(&g, &m).unwrap();
    }

    #[test]
    fn cap_fallback_is_valid() {
        // Force the fallback with a cap of 1 iteration (pattern needs ≥ 2
        // anchor occurrences, which a 5-placement budget cannot produce).
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let opts = CyclicOptions { unroll_cap: 1, ..CyclicOptions::default() };
        let out = cyclic_schedule(&g, &m, &opts).unwrap();
        assert!(matches!(out, PatternOutcome::CapFallback(_)));
        let placements = out.instantiate(5);
        assert_eq!(placements.len(), 5 * g.node_count());
        ScheduleTable::new(placements).validate(&g, &m).unwrap();
    }

    #[test]
    fn window_detector_agrees_with_state_detector_on_rate() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let a = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let b = cyclic_schedule(
            &g,
            &m,
            &CyclicOptions {
                detector: DetectorKind::ConfigurationWindow,
                ..CyclicOptions::default()
            },
        )
        .unwrap();
        assert!((a.steady_ii() - b.steady_ii()).abs() < 1e-9);
        assert!(b.pattern().is_some());
    }
}
