//! `Flow-in-sched` / `Flow-out-sched` (paper Figure 5) and the §3
//! idle-processor merge heuristic.
//!
//! Non-Cyclic nodes have "little impact on the total execution time"
//! (paper §2.1): Flow-in nodes are constrained only by the latest time they
//! can run, Flow-out nodes only by the earliest. The paper therefore
//! schedules them by plain iteration interleaving over `p = ⌈L/H⌉` *extra*
//! processors, where `L` is the subset's size (here: total latency, so
//! non-unit latencies are handled) and `H` is the height of the Cyclic
//! pattern — just enough processors that the non-Cyclic work keeps up with
//! the Cyclic core's steady-state rate.
//!
//! Section 3 adds a refinement: when a Cyclic processor has enough idle
//! time inside the kernel, fold the non-Cyclic nodes into it instead of
//! paying for extra processors ("combine the non-Cyclic nodes into the
//! idle processor"). [`idle_per_period`] exposes the idle budget that
//! heuristic needs; the decision itself is made in [`crate::full`] by
//! measuring both variants.

use crate::machine::Cycle;
use crate::pattern::Pattern;
use kn_ddg::{intra_topo_order, Ddg, InstanceId, NodeId};

/// Number of extra processors `Flow-in-sched` prepares: `⌈L/H⌉`, where `L`
/// is the subset's total latency per iteration and `H` the pattern height.
pub fn flow_processors(subset_latency: u64, pattern_height: Cycle, iters_per_period: u32) -> usize {
    if subset_latency == 0 {
        return 0;
    }
    // The pattern completes `iters_per_period` iterations every `H` cycles,
    // so one processor keeps up with the core iff
    // subset_latency * iters_per_period <= H.
    let need = subset_latency * iters_per_period as u64;
    let h = pattern_height.max(1);
    need.div_ceil(h).max(1) as usize
}

/// Per-iteration latency of a node subset (the `L` of Figure 5, generalized
/// to non-unit latencies).
pub fn subset_latency(g: &Ddg, subset: &[NodeId]) -> u64 {
    subset.iter().map(|&v| g.latency(v) as u64).sum()
}

/// Figure 5 step 2: assign iteration `i`'s subset nodes to processor
/// `i mod procs`, each iteration's nodes in intra-iteration topological
/// order. Returns one sequence per (extra) processor.
pub fn flow_sequences(
    g: &Ddg,
    subset: &[NodeId],
    procs: usize,
    iters: u32,
) -> Vec<Vec<InstanceId>> {
    if procs == 0 || subset.is_empty() {
        return vec![Vec::new(); procs];
    }
    let topo = intra_topo_order(g).expect("validated graph");
    let in_subset: Vec<bool> = {
        let mut v = vec![false; g.node_count()];
        for &n in subset {
            v[n.index()] = true;
        }
        v
    };
    let ordered: Vec<NodeId> = topo.into_iter().filter(|n| in_subset[n.index()]).collect();
    let mut seqs = vec![Vec::new(); procs];
    for i in 0..iters {
        let p = (i as usize) % procs;
        for &n in &ordered {
            seqs[p].push(InstanceId { node: n, iter: i });
        }
    }
    seqs
}

/// Idle cycles per kernel period for each processor the pattern touches:
/// `(proc, busy, idle)`. The §3 heuristic looks for a "relatively idle
/// processor with idle time slots wide enough to accommodate the
/// non-Cyclic nodes".
pub fn idle_per_period(pattern: &Pattern, g: &Ddg) -> Vec<(usize, Cycle, Cycle)> {
    let period = pattern.cycles_per_period;
    let mut procs: Vec<usize> = pattern.kernel.iter().map(|p| p.proc).collect();
    procs.sort_unstable();
    procs.dedup();
    procs
        .into_iter()
        .map(|proc| {
            let busy: Cycle = pattern
                .kernel
                .iter()
                .filter(|p| p.proc == proc)
                .map(|p| g.latency(p.inst.node) as Cycle)
                .sum();
            (proc, busy, period.saturating_sub(busy))
        })
        .collect()
}

/// The §3 candidate: the kernel processor with the most idle time, provided
/// that idle time covers the subset's latency for a full period. `None`
/// when no processor has enough slack.
pub fn merge_candidate(pattern: &Pattern, g: &Ddg, subset_lat: u64) -> Option<usize> {
    let need = subset_lat * pattern.iters_per_period as u64;
    idle_per_period(pattern, g)
        .into_iter()
        .filter(|&(_, _, idle)| idle >= need)
        .max_by_key(|&(_, _, idle)| idle)
        .map(|(proc, _, _)| proc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Placement;
    use kn_ddg::{DdgBuilder, NodeId};

    fn inst(node: u32, iter: u32) -> InstanceId {
        InstanceId {
            node: NodeId(node),
            iter,
        }
    }

    #[test]
    fn processor_count_follows_figure5_formula() {
        // Figure 5: p = ⌈L/H⌉. (For the paper's §3 Cytron86 example the
        // text reports p = 3 with L = 11, H = 6, i.e. ⌈11/6⌉ rounded up
        // once more than the printed formula gives; our reconstruction
        // reaches the paper's 5-subloop total because its Flow-in latency
        // is 13: ⌈13/6⌉ = 3. We implement the formula as printed.)
        assert_eq!(flow_processors(11, 6, 1), 2);
        assert_eq!(flow_processors(13, 6, 1), 3);
        assert_eq!(flow_processors(11, 4, 1), 3);
        assert_eq!(flow_processors(0, 6, 1), 0);
        assert_eq!(flow_processors(5, 6, 1), 1);
    }

    #[test]
    fn processor_count_scales_with_iters_per_period() {
        // Two iterations per period: the core retires work twice as fast,
        // so the flow processors must too.
        assert_eq!(flow_processors(5, 6, 2), 2);
        assert_eq!(flow_processors(6, 6, 2), 2);
        assert_eq!(flow_processors(3, 6, 2), 1);
    }

    #[test]
    fn sequences_round_robin_by_iteration() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let _z = b.node("z"); // not in subset
        b.dep(x, y);
        let g = b.build().unwrap();
        let seqs = flow_sequences(&g, &[x, y], 2, 4);
        assert_eq!(seqs.len(), 2);
        assert_eq!(
            seqs[0],
            vec![inst(0, 0), inst(1, 0), inst(0, 2), inst(1, 2)]
        );
        assert_eq!(
            seqs[1],
            vec![inst(0, 1), inst(1, 1), inst(0, 3), inst(1, 3)]
        );
    }

    #[test]
    fn sequences_respect_intra_topo_order() {
        let mut b = DdgBuilder::new();
        let y = b.node("y");
        let x = b.node("x");
        b.dep(x, y); // x must precede y despite higher id
        let g = b.build().unwrap();
        let seqs = flow_sequences(&g, &[y, x], 1, 1);
        assert_eq!(seqs[0], vec![inst(1, 0), inst(0, 0)]);
    }

    #[test]
    fn empty_subset_yields_empty_sequences() {
        let mut b = DdgBuilder::new();
        b.node("x");
        let g = b.build().unwrap();
        assert!(flow_sequences(&g, &[], 0, 5).is_empty());
        assert_eq!(subset_latency(&g, &[]), 0);
    }

    fn two_proc_pattern() -> Pattern {
        // Kernel: node 0 on P0, node 1 on P1; period 4 cycles / 1 iter.
        Pattern {
            prologue: vec![],
            kernel: vec![
                Placement {
                    inst: inst(0, 1),
                    proc: 0,
                    start: 4,
                },
                Placement {
                    inst: inst(1, 1),
                    proc: 1,
                    start: 5,
                },
            ],
            iters_per_period: 1,
            cycles_per_period: 4,
        }
    }

    #[test]
    fn idle_budget_computed_per_processor() {
        let mut b = DdgBuilder::new();
        let x = b.node_lat("x", 1);
        let y = b.node_lat("y", 3);
        b.carried(x, x);
        b.carried(y, y);
        let g = b.build().unwrap();
        let pat = two_proc_pattern();
        let idle = idle_per_period(&pat, &g);
        assert_eq!(idle, vec![(0, 1, 3), (1, 3, 1)]);
        let _ = (x, y);
    }

    #[test]
    fn merge_candidate_picks_most_idle_with_room() {
        let mut b = DdgBuilder::new();
        b.node_lat("x", 1);
        b.node_lat("y", 3);
        let g = b.build().unwrap();
        let pat = two_proc_pattern();
        // Subset latency 2 per iteration: fits P0's idle 3, not P1's 1.
        assert_eq!(merge_candidate(&pat, &g, 2), Some(0));
        // Latency 5 fits nowhere.
        assert_eq!(merge_candidate(&pat, &g, 5), None);
    }
}
