//! Machine model: processor count, communication cost, and the timing
//! conventions pinned down by the paper's worked examples.
//!
//! The paper assumes an asynchronous MIMD machine with fully-overlapped
//! communication whose per-edge cost is bounded above by `k` (§2.3). The
//! scheduler *estimates* every remote edge at its cost bound; at run time the
//! simulator charges the actual (possibly fluctuating) cost.

use kn_ddg::{Edge, Latency};

/// A point in time, in machine cycles.
pub type Cycle = u64;

/// When may a consumer on another processor start, relative to the
/// producer's finish time and the message cost `c`?
///
/// The paper's Figure 7(d) fixes this: with `k = 2`, `A1` starting at cycle
/// 0 (latency 1) on PE0 feeds `A2` starting at cycle **2** on PE1, i.e. the
/// consumer starts at `finish + c - 1` — the message's arrival cycle is
/// usable ("consume at arrival"). The stricter `finish + c` variant is kept
/// for ablation studies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ArrivalConvention {
    /// Consumer may start in the cycle the message lands: `finish + c - 1`.
    /// Matches every legible placement in the paper's figures.
    #[default]
    ConsumeAtArrival,
    /// Consumer may start the cycle after the message lands: `finish + c`.
    AfterArrival,
}

/// Static description of the target machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processors `p`. The paper assumes "a sufficient number";
    /// callers pick a concrete pool.
    pub processors: usize,
    /// Upper bound `k` on any communication cost, in cycles. `k = 0` models
    /// the zero-communication machine of Perfect Pipelining (paper §1).
    pub comm_upper_bound: u32,
    /// Arrival-time convention (see [`ArrivalConvention`]).
    pub arrival: ArrivalConvention,
}

impl MachineConfig {
    /// Convenience constructor with the paper's default convention.
    pub fn new(processors: usize, comm_upper_bound: u32) -> Self {
        assert!(processors >= 1, "need at least one processor");
        Self {
            processors,
            comm_upper_bound,
            arrival: ArrivalConvention::default(),
        }
    }

    /// The *estimated* cost of a dependence edge: the per-edge override if
    /// present (clamped to the bound `k`, which the paper defines as an
    /// upper bound), else `k` itself.
    pub fn edge_cost(&self, e: &Edge) -> u32 {
        match e.cost {
            Some(c) => c.min(self.comm_upper_bound),
            None => self.comm_upper_bound,
        }
    }

    /// Earliest start cycle for a consumer on a *different* processor, given
    /// the producer's finish cycle and the message cost.
    #[inline]
    pub fn remote_ready(&self, finish: Cycle, cost: u32) -> Cycle {
        match self.arrival {
            ArrivalConvention::ConsumeAtArrival => finish + cost.saturating_sub(1) as Cycle,
            ArrivalConvention::AfterArrival => finish + cost as Cycle,
        }
    }

    /// Earliest start cycle for a consumer on the *same* processor.
    #[inline]
    pub fn local_ready(&self, finish: Cycle) -> Cycle {
        finish
    }

    /// Finish cycle of a node started at `start` with latency `lat`.
    #[inline]
    pub fn finish(&self, start: Cycle, lat: Latency) -> Cycle {
        start + lat as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ddg::NodeId;

    fn edge(cost: Option<u32>) -> Edge {
        Edge {
            src: NodeId(0),
            dst: NodeId(1),
            distance: 0,
            cost,
        }
    }

    #[test]
    fn figure7_arrival_convention() {
        // A1 on PE0 at 0, lat 1, k=2 -> A2 on PE1 may start at cycle 2.
        let m = MachineConfig::new(2, 2);
        let finish = m.finish(0, 1);
        assert_eq!(m.remote_ready(finish, 2), 2);
    }

    #[test]
    fn after_arrival_is_one_later() {
        let m = MachineConfig {
            processors: 2,
            comm_upper_bound: 2,
            arrival: ArrivalConvention::AfterArrival,
        };
        assert_eq!(m.remote_ready(1, 2), 3);
    }

    #[test]
    fn zero_comm_is_free_under_both_conventions() {
        for arrival in [
            ArrivalConvention::ConsumeAtArrival,
            ArrivalConvention::AfterArrival,
        ] {
            let m = MachineConfig {
                processors: 4,
                comm_upper_bound: 0,
                arrival,
            };
            assert_eq!(m.remote_ready(7, 0), 7);
        }
    }

    #[test]
    fn edge_cost_override_clamped_to_k() {
        let m = MachineConfig::new(2, 3);
        assert_eq!(m.edge_cost(&edge(None)), 3);
        assert_eq!(m.edge_cost(&edge(Some(2))), 2);
        assert_eq!(
            m.edge_cost(&edge(Some(9))),
            3,
            "k is an upper bound (paper 2.3)"
        );
    }

    #[test]
    fn local_ready_is_finish() {
        let m = MachineConfig::new(1, 5);
        assert_eq!(m.local_ready(m.finish(4, 3)), 7);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        MachineConfig::new(0, 1);
    }
}
