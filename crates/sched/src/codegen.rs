//! Transformed-loop pretty printer: renders a scheduled loop the way the
//! paper presents its results — per-processor subloops between `PARBEGIN`
//! and `PAREND`, with explicit `(SEND …)` / `(RECEIVE …)` synchronization
//! for every cross-processor dependence (Figures 7(e) and 10).
//!
//! The printer consumes the Cyclic pattern: each processor gets its
//! prologue statements (concrete iteration numbers) followed by a
//! steady-state `FOR` loop stepping by the pattern's iterations-per-period,
//! whose body lists that processor's kernel work with iteration offsets.
//! Statement text is carried from the DDG when present (`A[I] = A[I-1] *
//! E[I-1]`), with index expressions shifted per instance; otherwise the
//! node name is used.

use crate::pattern::Pattern;
use kn_ddg::{Ddg, InstanceId, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Rewrite every index expression `I`, `I+c`, `I-c` inside bracket groups
/// by adding `delta` and folding the constant: `shift_indices("A[I-1]", 2)`
/// is `"A[I+1]"`.
pub fn shift_indices(stmt: &str, delta: i64) -> String {
    rewrite_indices(stmt, |off| {
        let o = off + delta;
        match o {
            0 => "I".to_string(),
            d if d > 0 => format!("I+{d}"),
            d => format!("I-{}", -d),
        }
    })
}

/// Replace every index expression with its concrete value at iteration
/// `iter`: `concrete_indices("A[I-1]", 4)` is `"A[3]"`.
pub fn concrete_indices(stmt: &str, iter: i64) -> String {
    rewrite_indices(stmt, |off| (iter + off).to_string())
}

fn rewrite_indices(stmt: &str, f: impl Fn(i64) -> String) -> String {
    let bytes = stmt.as_bytes();
    let mut out = String::with_capacity(stmt.len());
    let mut i = 0;
    let mut depth = 0i32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '[' {
            depth += 1;
            out.push(c);
            i += 1;
            continue;
        }
        if c == ']' {
            depth -= 1;
            out.push(c);
            i += 1;
            continue;
        }
        // An index token: 'I' not embedded in an identifier, inside brackets.
        let prev_alnum = i > 0 && (bytes[i - 1] as char).is_ascii_alphanumeric();
        let next = bytes.get(i + 1).map(|&b| b as char);
        let next_alnum = next.map(|n| n.is_ascii_alphanumeric()).unwrap_or(false);
        if depth > 0 && c == 'I' && !prev_alnum && !next_alnum {
            // Optional +c / -c suffix.
            let mut j = i + 1;
            let mut off = 0i64;
            if let Some(sign @ ('+' | '-')) = bytes.get(j).map(|&b| b as char) {
                let mut k = j + 1;
                let mut digits = String::new();
                while k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                    digits.push(bytes[k] as char);
                    k += 1;
                }
                if !digits.is_empty() {
                    off = digits.parse::<i64>().unwrap();
                    if sign == '-' {
                        off = -off;
                    }
                    j = k;
                }
            }
            out.push_str(&f(off));
            i = j;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Statement text for a node: its recorded source text, or `name[I] = …`
/// placeholder built from the name.
fn stmt_text(g: &Ddg, v: NodeId) -> String {
    g.node(v)
        .stmt
        .clone()
        .unwrap_or_else(|| format!("{}[I] = op_{}(...)", g.name(v), g.name(v)))
}

/// Render the Cyclic pattern as a `PARBEGIN … PAREND` program.
///
/// Iterations are 0-based (the paper's examples are 1-based); `n_name` is
/// the symbolic trip count printed in loop headers.
pub fn render_parallel_loop(g: &Ddg, pattern: &Pattern, n_name: &str) -> String {
    let d = pattern.iters_per_period.max(1);
    // Steady-state processor of (node, iter): kernel instance with the same
    // node and congruent iteration.
    let mut steady: HashMap<(u32, u32), usize> = HashMap::new();
    let mut kernel_procs: Vec<usize> = Vec::new();
    for p in &pattern.kernel {
        steady.insert((p.inst.node.0, p.inst.iter % d), p.proc);
        kernel_procs.push(p.proc);
    }
    kernel_procs.sort_unstable();
    kernel_procs.dedup();
    let mut prologue_proc: HashMap<InstanceId, usize> = HashMap::new();
    for p in &pattern.prologue {
        prologue_proc.insert(p.inst, p.proc);
    }
    let proc_of = |inst: InstanceId| -> usize {
        prologue_proc
            .get(&inst)
            .copied()
            .or_else(|| steady.get(&(inst.node.0, inst.iter % d)).copied())
            .unwrap_or(usize::MAX)
    };

    let kernel_min_iter = pattern
        .kernel
        .iter()
        .map(|p| p.inst.iter)
        .min()
        .unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "PARBEGIN  /* pattern: {} iteration(s) every {} cycle(s) */",
        pattern.iters_per_period, pattern.cycles_per_period
    );
    for &proc in &kernel_procs {
        let _ = writeln!(out, "PE{proc}:");
        // Prologue statements for this processor, in time order.
        let mut pro: Vec<_> = pattern.prologue.iter().filter(|p| p.proc == proc).collect();
        pro.sort_by_key(|p| p.start);
        for p in &pro {
            emit_comm_in(
                &mut out,
                g,
                p.inst,
                proc,
                &proc_of,
                Some(p.inst.iter as i64),
            );
            let _ = writeln!(
                out,
                "    {}",
                concrete_indices(&stmt_text(g, p.inst.node), p.inst.iter as i64)
            );
            emit_comm_out(
                &mut out,
                g,
                p.inst,
                proc,
                &proc_of,
                Some(p.inst.iter as i64),
            );
        }
        // Steady-state loop.
        let mut ker: Vec<_> = pattern.kernel.iter().filter(|p| p.proc == proc).collect();
        ker.sort_by_key(|p| p.start);
        if !ker.is_empty() {
            // The loop variable starts at the kernel's first iteration: the
            // prologue covers everything scheduled before the pattern's
            // first occurrence, and occurrence r executes the body with
            // I = kernel_min_iter + r * iters_per_period.
            let _ = writeln!(
                out,
                "    FOR I = {} TO {} STEP {}",
                kernel_min_iter, n_name, pattern.iters_per_period
            );
            for p in &ker {
                let delta = p.inst.iter as i64 - kernel_min_iter as i64;
                emit_comm_in_steady(&mut out, g, p.inst, proc, &steady, d, delta);
                let _ = writeln!(
                    out,
                    "        {}",
                    shift_indices(&stmt_text(g, p.inst.node), delta)
                );
                emit_comm_out_steady(&mut out, g, p.inst, proc, &steady, d, delta);
            }
            let _ = writeln!(out, "    ENDFOR");
        }
    }
    let _ = writeln!(out, "PAREND");
    out
}

fn emit_comm_in(
    out: &mut String,
    g: &Ddg,
    inst: InstanceId,
    proc: usize,
    proc_of: &impl Fn(InstanceId) -> usize,
    _concrete: Option<i64>,
) {
    for (_, e) in g.in_edges(inst.node) {
        if e.distance > inst.iter {
            continue;
        }
        let pred = InstanceId {
            node: e.src,
            iter: inst.iter - e.distance,
        };
        let pp = proc_of(pred);
        if pp != proc && pp != usize::MAX {
            let _ = writeln!(
                out,
                "    (RECEIVE {}[{}] FROM PE{})",
                g.name(pred.node),
                pred.iter,
                pp
            );
        }
    }
}

fn emit_comm_out(
    out: &mut String,
    g: &Ddg,
    inst: InstanceId,
    proc: usize,
    proc_of: &impl Fn(InstanceId) -> usize,
    _concrete: Option<i64>,
) {
    let mut sent: Vec<usize> = Vec::new();
    for (_, e) in g.out_edges(inst.node) {
        let succ = InstanceId {
            node: e.dst,
            iter: inst.iter + e.distance,
        };
        let sp = proc_of(succ);
        if sp != proc && sp != usize::MAX && !sent.contains(&sp) {
            sent.push(sp);
            let _ = writeln!(
                out,
                "    (SEND {}[{}] TO PE{})",
                g.name(inst.node),
                inst.iter,
                sp
            );
        }
    }
}

fn emit_comm_in_steady(
    out: &mut String,
    g: &Ddg,
    inst: InstanceId,
    proc: usize,
    steady: &HashMap<(u32, u32), usize>,
    d: u32,
    delta: i64,
) {
    for (_, e) in g.in_edges(inst.node) {
        let pred_iter_mod = (inst.iter + d - (e.distance % d)) % d;
        if let Some(&pp) = steady.get(&(e.src.0, pred_iter_mod)) {
            if pp != proc {
                let off = delta - e.distance as i64;
                let idx = match off {
                    0 => "I".to_string(),
                    o if o > 0 => format!("I+{o}"),
                    o => format!("I-{}", -o),
                };
                let _ = writeln!(
                    out,
                    "        (RECEIVE {}[{}] FROM PE{})",
                    g.name(e.src),
                    idx,
                    pp
                );
            }
        }
    }
}

fn emit_comm_out_steady(
    out: &mut String,
    g: &Ddg,
    inst: InstanceId,
    proc: usize,
    steady: &HashMap<(u32, u32), usize>,
    d: u32,
    delta: i64,
) {
    let mut sent: Vec<usize> = Vec::new();
    for (_, e) in g.out_edges(inst.node) {
        let succ_iter_mod = (inst.iter + e.distance) % d;
        if let Some(&sp) = steady.get(&(e.dst.0, succ_iter_mod)) {
            if sp != proc && !sent.contains(&sp) {
                sent.push(sp);
                let idx = match delta {
                    0 => "I".to_string(),
                    o if o > 0 => format!("I+{o}"),
                    o => format!("I-{}", -o),
                };
                let _ = writeln!(
                    out,
                    "        (SEND {}[{}] TO PE{})",
                    g.name(inst.node),
                    idx,
                    sp
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclic::{cyclic_schedule, CyclicOptions};
    use crate::machine::MachineConfig;
    use kn_ddg::DdgBuilder;

    #[test]
    fn shift_indices_folds_offsets() {
        assert_eq!(
            shift_indices("A[I] = A[I-1] * E[I-1]", 1),
            "A[I+1] = A[I] * E[I]"
        );
        assert_eq!(shift_indices("A[I-1]", 0), "A[I-1]");
        assert_eq!(shift_indices("A[I+2]", -3), "A[I-1]");
        assert_eq!(
            shift_indices("X[I4]", 1),
            "X[I4]",
            "identifier I4 untouched"
        );
    }

    #[test]
    fn concrete_indices_evaluates() {
        assert_eq!(concrete_indices("A[I] = A[I-1]", 3), "A[3] = A[2]");
        assert_eq!(concrete_indices("B[I+1]", 0), "B[1]");
    }

    #[test]
    fn indices_outside_brackets_untouched() {
        assert_eq!(shift_indices("IF I THEN A[I]", 2), "IF I THEN A[I+2]");
    }

    fn figure7() -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.node("A");
        let bb = b.node("B");
        let c = b.node("C");
        let d = b.node("D");
        let e = b.node("E");
        b.stmt(a, "A[I] = A[I-1] * E[I-1]");
        b.stmt(bb, "B[I] = A[I]");
        b.stmt(c, "C[I] = B[I]");
        b.stmt(d, "D[I] = D[I-1] * C[I-1]");
        b.stmt(e, "E[I] = D[I]");
        b.carried(a, a);
        b.carried(e, a);
        b.dep(a, bb);
        b.dep(bb, c);
        b.carried(d, d);
        b.carried(c, d);
        b.dep(d, e);
        b.build().unwrap()
    }

    #[test]
    fn figure7_codegen_has_parallel_structure() {
        let g = figure7();
        let m = MachineConfig::new(2, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let pattern = out.pattern().unwrap();
        let code = render_parallel_loop(&g, pattern, "N");
        assert!(code.contains("PARBEGIN"));
        assert!(code.contains("PAREND"));
        assert!(code.contains("PE0:"));
        assert!(code.contains("PE1:"));
        assert!(
            code.contains("FOR I = 1 TO N STEP 2"),
            "loop starts at the kernel's first iteration: {code}"
        );
        assert!(
            code.contains("(SEND"),
            "cross-processor edges need sends: {code}"
        );
        assert!(code.contains("(RECEIVE"));
        assert!(code.contains("A[I] = A[I-1] * E[I-1]") || code.contains("A[I+1] = A[I] * E[I]"));
    }

    #[test]
    fn single_processor_pattern_has_no_comm() {
        let mut b = DdgBuilder::new();
        let x = b.node("x");
        b.stmt(x, "x[I] = x[I-1] + 1");
        b.carried(x, x);
        let g = b.build().unwrap();
        let m = MachineConfig::new(2, 3);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let code = render_parallel_loop(&g, out.pattern().unwrap(), "N");
        assert!(!code.contains("SEND"));
        assert!(!code.contains("RECEIVE"));
        assert!(code.contains("x[I] = x[I-1] + 1"));
    }
}
