//! Canonical scheduler state, the engine behind the default pattern
//! detector.
//!
//! The greedy `Cyclic-sched` of the paper is a deterministic function of a
//! bounded amount of state: the ready queue, the per-processor frontier
//! times, the partially-satisfied dependence counters, and the placements
//! that still have unconsumed consumers ("live" placements — everything a
//! future `T(v, Pj)` computation can reference). If this state recurs,
//! shifted by `d` iterations and `t` cycles, the whole future of the
//! schedule recurs with the same shifts — which is exactly the paper's
//! pattern (Lemmas 5–7), detected constructively instead of by sliding
//! configuration windows. (The paper's window detector is also implemented,
//! in [`crate::window`].)
//!
//! All coordinates in a [`CanonState`] are *relative* to an anchor
//! placement (the just-scheduled instance of a designated anchor node):
//! iterations as `iter - anchor.iter`, times as `time - anchor.start`.
//! Equality of two `CanonState`s therefore means equality up to the
//! iteration/time shift between their anchors.
//!
//! Two dictionaries are provided:
//!
//! * [`StateDictionary`] — keyed by the full materialized [`CanonState`].
//!   Exact, but every anchor pays allocation + sorting to build its key.
//!   Retained for the reference scheduler ([`crate::reference`]) and as
//!   the oracle in equivalence tests.
//! * [`FingerprintDictionary`] — keyed by a 64-bit order-independent
//!   fingerprint of the state (computed incrementally by the scheduler
//!   without materializing anything). The full state is materialized only
//!   on a fingerprint hit; a hit whose pattern then fails replay
//!   verification is a collision, recorded so the true recurrence is later
//!   established by exact equality. Theorem 1 stays *checked*: no pattern
//!   is ever returned on the strength of a fingerprint alone.

use crate::machine::Cycle;

/// Seed constant for state fingerprints.
pub(crate) const FP_SEED: u64 = 0x4B69_6D4E_6963_6F6C; // "KimNicol"

/// One splitmix64-strength mixing step combining `h` and `x`. Used by the
/// scheduler to fold state components into a fingerprint.
#[inline]
pub(crate) fn fp_mix(h: u64, x: u64) -> u64 {
    let mut z = h ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fully relative snapshot of the greedy scheduler.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonState {
    /// Node id of the anchor (same for all compared states).
    pub anchor_node: u32,
    /// Processor the anchor was placed on.
    pub anchor_proc: u32,
    /// Per-processor `free_time - anchor_start`.
    pub free: Vec<i64>,
    /// Ready-queue contents in order: `(node, iter - anchor_iter)`.
    pub queue: Vec<(u32, i64)>,
    /// Partially-satisfied instances: `(node, iter - anchor_iter,
    /// remaining predecessor count)`, sorted.
    pub remaining: Vec<(u32, i64, u32)>,
    /// Live placements (having unconsumed successors):
    /// `(node, iter - anchor_iter, proc, start - anchor_start,
    /// unconsumed count)`, sorted.
    pub live: Vec<(u32, i64, u32, i64, u32)>,
}

/// Where/when a state snapshot was taken.
#[derive(Clone, Copy, Debug)]
pub struct StateStamp {
    /// Anchor instance's iteration.
    pub iter: u32,
    /// Anchor instance's start cycle.
    pub time: Cycle,
    /// Index of the anchor's placement in the scheduling-order list.
    pub index: usize,
}

/// Dictionary of previously seen states. A hit returns the earlier stamp,
/// giving the pattern's iteration and time shifts.
#[derive(Default, Debug)]
pub struct StateDictionary {
    seen: std::collections::HashMap<CanonState, StateStamp>,
}

impl StateDictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `state` (if new) or return the stamp of its first occurrence.
    /// States whose shifts would be non-positive are rejected (a pattern
    /// must advance both iteration and time).
    pub fn check(&mut self, state: CanonState, stamp: StateStamp) -> Option<StateStamp> {
        match self.seen.get(&state) {
            Some(prev) if stamp.iter > prev.iter && stamp.time > prev.time => Some(*prev),
            Some(_) => None,
            None => {
                self.seen.insert(state, stamp);
                None
            }
        }
    }

    /// Number of distinct states recorded (diagnostics).
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no state was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Dictionary of previously seen state *fingerprints* — the allocation-free
/// fast path of the default detector.
///
/// `check` mirrors [`StateDictionary::check`] but keys on the 64-bit
/// fingerprint. Because two distinct states can (with probability ≈ 2⁻⁶⁴)
/// share a fingerprint, the caller must confirm every hit — by replay
/// verification, or by exact equality against a state recorded with
/// [`FingerprintDictionary::record_collision`] after an earlier hit failed
/// replay.
#[derive(Default, Debug)]
pub struct FingerprintDictionary {
    seen: std::collections::HashMap<u64, StateStamp>,
    /// Materialized states of hits that failed replay (fingerprint
    /// collisions). Practically always empty; scanned linearly.
    collisions: Vec<(CanonState, StateStamp)>,
}

impl FingerprintDictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `fp` (if new) or return the stamp of its first occurrence.
    /// States whose shifts would be non-positive are rejected (a pattern
    /// must advance both iteration and time).
    pub fn check(&mut self, fp: u64, stamp: StateStamp) -> Option<StateStamp> {
        match self.seen.get(&fp) {
            Some(prev) if stamp.iter > prev.iter && stamp.time > prev.time => Some(*prev),
            Some(_) => None,
            None => {
                self.seen.insert(fp, stamp);
                None
            }
        }
    }

    /// Stamp of a previously materialized state exactly equal to `state`
    /// with a valid (positive) shift to `stamp`, if any.
    pub fn equal_recorded(&self, state: &CanonState, stamp: StateStamp) -> Option<StateStamp> {
        self.collisions
            .iter()
            .find(|(s, prev)| stamp.iter > prev.iter && stamp.time > prev.time && s == state)
            .map(|&(_, prev)| prev)
    }

    /// Record the materialized state of a hit that failed replay, so its
    /// genuine recurrence can later be confirmed by equality.
    pub fn record_collision(&mut self, state: CanonState, stamp: StateStamp) {
        self.collisions.push((state, stamp));
    }

    /// Number of distinct fingerprints recorded (diagnostics).
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no fingerprint was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Number of replay-refuted hits recorded (diagnostics; expected 0).
    pub fn collisions_recorded(&self) -> usize {
        self.collisions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(queue: Vec<(u32, i64)>, free: Vec<i64>) -> CanonState {
        CanonState {
            anchor_node: 0,
            anchor_proc: 0,
            free,
            queue,
            remaining: vec![],
            live: vec![],
        }
    }

    #[test]
    fn first_occurrence_records() {
        let mut d = StateDictionary::new();
        assert!(d
            .check(
                state(vec![(1, 0)], vec![0]),
                StateStamp {
                    iter: 0,
                    time: 0,
                    index: 0
                }
            )
            .is_none());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn repeat_returns_first_stamp() {
        let mut d = StateDictionary::new();
        let s = state(vec![(1, 0)], vec![0, -2]);
        d.check(
            s.clone(),
            StateStamp {
                iter: 1,
                time: 3,
                index: 7,
            },
        );
        let hit = d
            .check(
                s,
                StateStamp {
                    iter: 3,
                    time: 9,
                    index: 19,
                },
            )
            .expect("same state recurs");
        assert_eq!(hit.iter, 1);
        assert_eq!(hit.time, 3);
        assert_eq!(hit.index, 7);
    }

    #[test]
    fn zero_shift_rejected() {
        let mut d = StateDictionary::new();
        let s = state(vec![], vec![0]);
        d.check(
            s.clone(),
            StateStamp {
                iter: 2,
                time: 5,
                index: 1,
            },
        );
        // Same iteration: not a valid period.
        assert!(d
            .check(
                s,
                StateStamp {
                    iter: 2,
                    time: 8,
                    index: 2
                }
            )
            .is_none());
    }

    #[test]
    fn different_states_do_not_collide() {
        let mut d = StateDictionary::new();
        d.check(
            state(vec![(1, 0)], vec![0]),
            StateStamp {
                iter: 0,
                time: 0,
                index: 0,
            },
        );
        assert!(d
            .check(
                state(vec![(2, 0)], vec![0]),
                StateStamp {
                    iter: 1,
                    time: 1,
                    index: 1
                }
            )
            .is_none());
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn fingerprint_dictionary_mirrors_state_dictionary() {
        let mut d = FingerprintDictionary::new();
        assert!(d.is_empty());
        assert!(d
            .check(
                42,
                StateStamp {
                    iter: 1,
                    time: 3,
                    index: 7
                }
            )
            .is_none());
        assert_eq!(d.len(), 1);
        let hit = d
            .check(
                42,
                StateStamp {
                    iter: 3,
                    time: 9,
                    index: 19,
                },
            )
            .expect("same fingerprint recurs");
        assert_eq!((hit.iter, hit.time, hit.index), (1, 3, 7));
        // Zero iteration shift: rejected.
        assert!(d
            .check(
                42,
                StateStamp {
                    iter: 1,
                    time: 12,
                    index: 30
                }
            )
            .is_none());
        // Distinct fingerprints do not collide.
        assert!(d
            .check(
                43,
                StateStamp {
                    iter: 4,
                    time: 11,
                    index: 21
                }
            )
            .is_none());
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn collision_record_enables_exact_confirmation() {
        let mut d = FingerprintDictionary::new();
        let s = state(vec![(1, 0)], vec![0, -2]);
        assert!(d
            .equal_recorded(
                &s,
                StateStamp {
                    iter: 9,
                    time: 9,
                    index: 9
                }
            )
            .is_none());
        d.record_collision(
            s.clone(),
            StateStamp {
                iter: 2,
                time: 5,
                index: 11,
            },
        );
        assert_eq!(d.collisions_recorded(), 1);
        let prev = d
            .equal_recorded(
                &s,
                StateStamp {
                    iter: 4,
                    time: 11,
                    index: 23,
                },
            )
            .expect("equal state with positive shift");
        assert_eq!(prev.index, 11);
        // Non-positive shift against the recorded stamp: no confirmation.
        assert!(d
            .equal_recorded(
                &s,
                StateStamp {
                    iter: 2,
                    time: 9,
                    index: 13
                }
            )
            .is_none());
        // A different state never confirms.
        let other = state(vec![(2, 0)], vec![0, -2]);
        assert!(d
            .equal_recorded(
                &other,
                StateStamp {
                    iter: 4,
                    time: 11,
                    index: 23
                }
            )
            .is_none());
    }

    #[test]
    fn fp_mix_separates_nearby_inputs() {
        // Sanity on the mixing step: single-bit input changes move many
        // output bits (no formal guarantee needed — replay verification
        // backstops the detector — but cheap to pin).
        let h = fp_mix(FP_SEED, 1);
        for x in 2u64..64 {
            assert_ne!(fp_mix(FP_SEED, x), h);
        }
        assert_ne!(fp_mix(h, 0), fp_mix(h, 1));
    }

    #[test]
    fn relative_encoding_matches_shifted_situations() {
        // Two situations identical up to (iter+2, time+6) produce the same
        // CanonState by construction — this is the caller's contract; here
        // we just confirm Eq/Hash behave structurally.
        let a = state(vec![(1, 1), (2, 1)], vec![0, 3]);
        let b = state(vec![(1, 1), (2, 1)], vec![0, 3]);
        assert_eq!(a, b);
        let mut d = StateDictionary::new();
        d.check(
            a,
            StateStamp {
                iter: 1,
                time: 10,
                index: 4,
            },
        );
        assert!(d
            .check(
                b,
                StateStamp {
                    iter: 3,
                    time: 16,
                    index: 12
                }
            )
            .is_some());
    }
}
