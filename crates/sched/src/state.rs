//! Canonical scheduler state, the engine behind the default pattern
//! detector.
//!
//! The greedy `Cyclic-sched` of the paper is a deterministic function of a
//! bounded amount of state: the ready queue, the per-processor frontier
//! times, the partially-satisfied dependence counters, and the placements
//! that still have unconsumed consumers ("live" placements — everything a
//! future `T(v, Pj)` computation can reference). If this state recurs,
//! shifted by `d` iterations and `t` cycles, the whole future of the
//! schedule recurs with the same shifts — which is exactly the paper's
//! pattern (Lemmas 5–7), detected constructively instead of by sliding
//! configuration windows. (The paper's window detector is also implemented,
//! in [`crate::window`].)
//!
//! All coordinates in a [`CanonState`] are *relative* to an anchor
//! placement (the just-scheduled instance of a designated anchor node):
//! iterations as `iter - anchor.iter`, times as `time - anchor.start`.
//! Equality of two `CanonState`s therefore means equality up to the
//! iteration/time shift between their anchors.

use crate::machine::Cycle;

/// A fully relative snapshot of the greedy scheduler.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonState {
    /// Node id of the anchor (same for all compared states).
    pub anchor_node: u32,
    /// Processor the anchor was placed on.
    pub anchor_proc: u32,
    /// Per-processor `free_time - anchor_start`.
    pub free: Vec<i64>,
    /// Ready-queue contents in order: `(node, iter - anchor_iter)`.
    pub queue: Vec<(u32, i64)>,
    /// Partially-satisfied instances: `(node, iter - anchor_iter,
    /// remaining predecessor count)`, sorted.
    pub remaining: Vec<(u32, i64, u32)>,
    /// Live placements (having unconsumed successors):
    /// `(node, iter - anchor_iter, proc, start - anchor_start,
    /// unconsumed count)`, sorted.
    pub live: Vec<(u32, i64, u32, i64, u32)>,
}

/// Where/when a state snapshot was taken.
#[derive(Clone, Copy, Debug)]
pub struct StateStamp {
    /// Anchor instance's iteration.
    pub iter: u32,
    /// Anchor instance's start cycle.
    pub time: Cycle,
    /// Index of the anchor's placement in the scheduling-order list.
    pub index: usize,
}

/// Dictionary of previously seen states. A hit returns the earlier stamp,
/// giving the pattern's iteration and time shifts.
#[derive(Default, Debug)]
pub struct StateDictionary {
    seen: std::collections::HashMap<CanonState, StateStamp>,
}

impl StateDictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `state` (if new) or return the stamp of its first occurrence.
    /// States whose shifts would be non-positive are rejected (a pattern
    /// must advance both iteration and time).
    pub fn check(&mut self, state: CanonState, stamp: StateStamp) -> Option<StateStamp> {
        match self.seen.get(&state) {
            Some(prev) if stamp.iter > prev.iter && stamp.time > prev.time => Some(*prev),
            Some(_) => None,
            None => {
                self.seen.insert(state, stamp);
                None
            }
        }
    }

    /// Number of distinct states recorded (diagnostics).
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no state was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(queue: Vec<(u32, i64)>, free: Vec<i64>) -> CanonState {
        CanonState {
            anchor_node: 0,
            anchor_proc: 0,
            free,
            queue,
            remaining: vec![],
            live: vec![],
        }
    }

    #[test]
    fn first_occurrence_records() {
        let mut d = StateDictionary::new();
        assert!(d
            .check(state(vec![(1, 0)], vec![0]), StateStamp { iter: 0, time: 0, index: 0 })
            .is_none());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn repeat_returns_first_stamp() {
        let mut d = StateDictionary::new();
        let s = state(vec![(1, 0)], vec![0, -2]);
        d.check(s.clone(), StateStamp { iter: 1, time: 3, index: 7 });
        let hit = d
            .check(s, StateStamp { iter: 3, time: 9, index: 19 })
            .expect("same state recurs");
        assert_eq!(hit.iter, 1);
        assert_eq!(hit.time, 3);
        assert_eq!(hit.index, 7);
    }

    #[test]
    fn zero_shift_rejected() {
        let mut d = StateDictionary::new();
        let s = state(vec![], vec![0]);
        d.check(s.clone(), StateStamp { iter: 2, time: 5, index: 1 });
        // Same iteration: not a valid period.
        assert!(d.check(s, StateStamp { iter: 2, time: 8, index: 2 }).is_none());
    }

    #[test]
    fn different_states_do_not_collide() {
        let mut d = StateDictionary::new();
        d.check(state(vec![(1, 0)], vec![0]), StateStamp { iter: 0, time: 0, index: 0 });
        assert!(d
            .check(state(vec![(2, 0)], vec![0]), StateStamp { iter: 1, time: 1, index: 1 })
            .is_none());
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn relative_encoding_matches_shifted_situations() {
        // Two situations identical up to (iter+2, time+6) produce the same
        // CanonState by construction — this is the caller's contract; here
        // we just confirm Eq/Hash behave structurally.
        let a = state(vec![(1, 1), (2, 1)], vec![0, 3]);
        let b = state(vec![(1, 1), (2, 1)], vec![0, 3]);
        assert_eq!(a, b);
        let mut d = StateDictionary::new();
        d.check(a, StateStamp { iter: 1, time: 10, index: 4 });
        assert!(d.check(b, StateStamp { iter: 3, time: 16, index: 12 }).is_some());
    }
}
