#![forbid(unsafe_code)]
//! # kn-sched — pattern-based loop scheduling for MIMD machines
//!
//! The primary contribution of Kim & Nicolau (ICPP 1990), implemented in
//! full:
//!
//! * [`machine`] — the asynchronous-MIMD timing model (processors,
//!   communication bound `k`, arrival conventions);
//! * [`cyclic`] — `Cyclic-sched` (paper Fig. 4): greedy, communication-aware
//!   list scheduling of the infinitely unwound Cyclic subgraph, with online
//!   pattern detection;
//! * [`state`] / [`window`] — the two pattern detectors (canonical
//!   scheduler state; the paper's sliding configuration window);
//! * [`pattern`] — patterns (prologue + repeating kernel), block fallback,
//!   instantiation to finite schedules;
//! * [`flow`] — `Flow-in-sched` / `Flow-out-sched` (paper Fig. 5) and the
//!   §3 idle-processor merge heuristic;
//! * [`full`] — the complete pipeline (paper Fig. 6): classify, schedule
//!   the Cyclic core, attach the non-Cyclic subsets;
//! * [`program`] / [`table`] — executable per-processor programs, static
//!   timing, schedule tables, and validity checking;
//! * [`codegen`] — the transformed-loop pretty printer (the PARBEGIN/PAREND
//!   forms of the paper's Figures 7(e) and 10);
//! * [`mod@reference`] — the retained map-based scheduler, kept as the
//!   executable specification and benchmark baseline for the arena core.
//!
//! # Performance notes
//!
//! The scheduler hot path is allocation-free in steady state and uses only
//! dense, index-addressed storage. The load-bearing invariant is:
//!
//! **Ring-buffer invariant.** [`cyclic_schedule`] requires distances
//! normalized to `{0, 1}` (`kn_ddg::normalize_distances`; enforced up
//! front). When instance `(v, i)` is scheduled, every operand it reads is
//! an instance of iteration `i` or `i − 1`, and every successor obligation
//! it creates is at iteration `i` or `i + 1`. The live-placement and
//! partially-satisfied tables are therefore addressed by
//! `(node, iter & mask)` in per-node ring buffers of capacity 2. The FIFO
//! queue is not strictly iteration-synchronous — a self-advancing node can
//! run several iterations ahead of a consumer stuck behind a longer chain
//! — so a ring slot can still be occupied by an older, still-needed
//! iteration when a new one arrives; slots are tagged with their exact
//! iteration and the rings double on such a collision. Growth changes
//! speed, never placements.
//!
//! Other hot-path measures, each verified placement-for-placement
//! identical to [`mod@reference`] (the enumeration order is load-bearing for
//! pattern emergence, paper §2.2 footnote 7):
//!
//! * the per-step operand scratch buffer is hoisted onto the scheduler and
//!   reused across steps;
//! * the default detector hashes the canonical scheduler state into a
//!   64-bit fingerprint per anchor (sequential mixing for ordered
//!   components, commutative summation for the set-valued tables) instead
//!   of allocating + sorting a [`state::CanonState`]; full states are
//!   materialized only on fingerprint hits, and every hit is confirmed by
//!   replay before a pattern is returned ([`state::FingerprintDictionary`]);
//! * the simulators in `kn-sim` index per-instance tables by
//!   `node * iters + iter` instead of hashing `InstanceId`s;
//! * `kn-core`'s experiment drivers fan independent (workload, machine)
//!   cells out across threads and reduce in deterministic seed order.
//!
//! `kn-bench` (the `kn-bench` binary) records the arena-vs-reference ratio
//! per workload in `BENCH_sched.json` so regressions are visible PR over
//! PR.

pub mod codegen;
pub mod cyclic;
pub mod flow;
pub mod full;
pub mod machine;
pub mod pattern;
pub mod program;
pub mod reference;
pub mod state;
pub mod stats;
pub mod table;
pub mod window;

pub use cyclic::{
    cyclic_schedule, enumeration_order, greedy_finite, greedy_unbounded, CyclicError,
    CyclicOptions, DetectorKind,
};
pub use full::{
    schedule_loop, CertifyHook, FlowDecision, FullOptions, LoopSchedule, SchedLoopError,
};
pub use machine::{ArrivalConvention, Cycle, MachineConfig};
pub use pattern::{BlockSchedule, Pattern, PatternOutcome};
pub use program::{static_times, Program, ProgramError, TimedProgram};
pub use stats::{pattern_stats, PatternStats, ProcLoad};
pub use table::{Placement, ScheduleError, ScheduleTable};
