//! # kn-sched — pattern-based loop scheduling for MIMD machines
//!
//! The primary contribution of Kim & Nicolau (ICPP 1990), implemented in
//! full:
//!
//! * [`machine`] — the asynchronous-MIMD timing model (processors,
//!   communication bound `k`, arrival conventions);
//! * [`cyclic`] — `Cyclic-sched` (paper Fig. 4): greedy, communication-aware
//!   list scheduling of the infinitely unwound Cyclic subgraph, with online
//!   pattern detection;
//! * [`state`] / [`window`] — the two pattern detectors (canonical
//!   scheduler state; the paper's sliding configuration window);
//! * [`pattern`] — patterns (prologue + repeating kernel), block fallback,
//!   instantiation to finite schedules;
//! * [`flow`] — `Flow-in-sched` / `Flow-out-sched` (paper Fig. 5) and the
//!   §3 idle-processor merge heuristic;
//! * [`full`] — the complete pipeline (paper Fig. 6): classify, schedule
//!   the Cyclic core, attach the non-Cyclic subsets;
//! * [`program`] / [`table`] — executable per-processor programs, static
//!   timing, schedule tables, and validity checking;
//! * [`codegen`] — the transformed-loop pretty printer (the PARBEGIN/PAREND
//!   forms of the paper's Figures 7(e) and 10).

pub mod codegen;
pub mod cyclic;
pub mod flow;
pub mod full;
pub mod machine;
pub mod pattern;
pub mod program;
pub mod state;
pub mod stats;
pub mod table;
pub mod window;

pub use cyclic::{
    cyclic_schedule, enumeration_order, greedy_finite, greedy_unbounded, CyclicError,
    CyclicOptions, DetectorKind,
};
pub use full::{schedule_loop, FlowDecision, FullOptions, LoopSchedule, SchedLoopError};
pub use machine::{ArrivalConvention, Cycle, MachineConfig};
pub use pattern::{BlockSchedule, Pattern, PatternOutcome};
pub use program::{static_times, Program, ProgramError, TimedProgram};
pub use stats::{pattern_stats, PatternStats, ProcLoad};
pub use table::{Placement, ScheduleError, ScheduleTable};
