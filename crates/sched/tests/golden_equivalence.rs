//! Scheduler-equivalence gate for the arena core.
//!
//! The optimized greedy in `kn_sched::cyclic` must emit **byte-identical**
//! `Placement` sequences to the retained map-based reference in
//! `kn_sched::reference` — the enumeration order is load-bearing for
//! pattern emergence (paper §2.2, footnote 7), so "equivalent modulo
//! reordering" is not good enough. Three layers:
//!
//! 1. a hardcoded golden snapshot of Figure 7 (catches a simultaneous bug
//!    in both implementations);
//! 2. exact arena-vs-reference comparison across the paper workload
//!    corpus, both detectors;
//! 3. a property test over random loops and machine shapes.

use kn_sched::reference::{cyclic_schedule_ref, greedy_finite_ref, greedy_unbounded_ref};
use kn_sched::{
    cyclic_schedule, greedy_finite, greedy_unbounded, CyclicOptions, DetectorKind, MachineConfig,
    Pattern, PatternOutcome, Placement,
};
use kn_workloads::{random_cyclic_loop, random_loop, RandomLoopConfig, Workload};
use proptest::prelude::*;

/// The paper workloads whose Cyclic cores the scheduler handles.
fn corpus() -> Vec<Workload> {
    vec![
        kn_workloads::figure3(),
        kn_workloads::figure7(),
        kn_workloads::cytron86(),
        kn_workloads::livermore18(),
        kn_workloads::livermore5(),
        kn_workloads::elliptic(),
        kn_workloads::rate_gap(),
    ]
}

/// Cyclic core of a workload graph (what `cyclic_schedule` operates on in
/// the full pipeline).
fn cyclic_core(w: &Workload) -> Option<kn_ddg::Ddg> {
    let c = kn_ddg::classify(&w.graph);
    if c.cyclic.is_empty() {
        return None;
    }
    Some(w.graph.induced_subgraph(&c.cyclic).0)
}

fn assert_same_pattern(a: &Pattern, b: &Pattern, ctx: &str) {
    assert_eq!(a.prologue, b.prologue, "{ctx}: prologue");
    assert_eq!(a.kernel, b.kernel, "{ctx}: kernel");
    assert_eq!(
        a.iters_per_period, b.iters_per_period,
        "{ctx}: iters/period"
    );
    assert_eq!(
        a.cycles_per_period, b.cycles_per_period,
        "{ctx}: cycles/period"
    );
}

fn assert_same_outcome(a: &PatternOutcome, b: &PatternOutcome, ctx: &str) {
    match (a, b) {
        (PatternOutcome::Found(pa), PatternOutcome::Found(pb)) => assert_same_pattern(pa, pb, ctx),
        (PatternOutcome::CapFallback(fa), PatternOutcome::CapFallback(fb)) => {
            assert_eq!(fa.block, fb.block, "{ctx}: fallback block");
            assert_eq!(fa.block_iters, fb.block_iters, "{ctx}: fallback iters");
            assert_eq!(fa.period, fb.period, "{ctx}: fallback period");
        }
        _ => panic!("{ctx}: outcome kinds diverge"),
    }
}

#[test]
fn golden_figure7_unbounded_prefix() {
    // Hand-pinned first 20 placements of Figure 7 on (p=2, k=2), matching
    // the paper's Figure 7(d) schedule shape (iteration pairs alternate
    // processors; steady state 5 cycles / 2 iterations).
    let golden: [(&str, u32, usize, u64); 20] = [
        ("A", 0, 0, 0),
        ("D", 0, 1, 0),
        ("B", 0, 0, 1),
        ("E", 0, 1, 1),
        ("C", 0, 0, 2),
        ("A", 1, 1, 2),
        ("D", 1, 0, 3),
        ("B", 1, 1, 3),
        ("E", 1, 0, 4),
        ("C", 1, 1, 4),
        ("A", 2, 0, 5),
        ("D", 2, 1, 5),
        ("B", 2, 0, 6),
        ("E", 2, 1, 6),
        ("C", 2, 0, 7),
        ("A", 3, 1, 7),
        ("D", 3, 0, 8),
        ("B", 3, 1, 8),
        ("E", 3, 0, 9),
        ("C", 3, 1, 9),
    ];
    let g = kn_workloads::figure7().graph;
    let m = MachineConfig::new(2, 2);
    for placements in [
        greedy_unbounded(&g, &m, 20),
        greedy_unbounded_ref(&g, &m, 20),
    ] {
        assert_eq!(placements.len(), 20);
        for (p, &(name, iter, proc, start)) in placements.iter().zip(&golden) {
            assert_eq!(g.name(p.inst.node), name);
            assert_eq!(
                (p.inst.iter, p.proc, p.start),
                (iter, proc, start),
                "{name}{iter}"
            );
        }
    }
}

#[test]
fn golden_figure7_pattern_shape() {
    let g = kn_workloads::figure7().graph;
    let m = MachineConfig::new(2, 2);
    let p = cyclic_schedule(&g, &m, &CyclicOptions::default())
        .unwrap()
        .pattern()
        .cloned()
        .expect("pattern");
    assert_eq!(p.prologue.len(), 6);
    assert_eq!(p.kernel.len(), 10);
    assert_eq!(p.iters_per_period, 2);
    assert_eq!(p.cycles_per_period, 5);
}

#[test]
fn corpus_placements_identical_to_reference() {
    for w in corpus() {
        let Some(g) = cyclic_core(&w) else { continue };
        let m = MachineConfig::new(w.procs, w.k);
        // Raw streams, byte for byte.
        let n = 64 * g.node_count();
        assert_eq!(
            greedy_unbounded(&g, &m, n),
            greedy_unbounded_ref(&g, &m, n),
            "{}: unbounded stream",
            w.name
        );
        assert_eq!(
            greedy_finite(&g, &m, 17),
            greedy_finite_ref(&g, &m, 17),
            "{}: finite stream",
            w.name
        );
        // Detected outcomes, both detectors.
        for detector in [
            DetectorKind::SchedulerState,
            DetectorKind::ConfigurationWindow,
        ] {
            let opts = CyclicOptions {
                detector,
                ..CyclicOptions::default()
            };
            let a = cyclic_schedule(&g, &m, &opts).unwrap();
            let b = cyclic_schedule_ref(&g, &m, &opts).unwrap();
            assert_same_outcome(&a, &b, &format!("{} ({detector:?})", w.name));
        }
    }
}

#[test]
fn corpus_machine_shape_sweep_identical() {
    // Sweep processor counts and comm bounds on the two workloads with the
    // richest cores; every cell must match the reference exactly.
    for w in [kn_workloads::figure7(), kn_workloads::cytron86()] {
        let g = cyclic_core(&w).unwrap();
        for procs in [1usize, 2, 3, 8] {
            for k in [0u32, 1, 3, 7] {
                let m = MachineConfig::new(procs, k);
                let ctx = format!("{} p={procs} k={k}", w.name);
                let n = 48 * g.node_count();
                assert_eq!(
                    greedy_unbounded(&g, &m, n),
                    greedy_unbounded_ref(&g, &m, n),
                    "{ctx}: stream"
                );
                let a = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
                let b = cyclic_schedule_ref(&g, &m, &CyclicOptions::default()).unwrap();
                assert_same_outcome(&a, &b, &ctx);
            }
        }
    }
}

fn cfg(nodes: usize) -> RandomLoopConfig {
    RandomLoopConfig {
        nodes,
        lcds: nodes / 2,
        sds: nodes / 2,
        min_latency: 1,
        max_latency: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Byte-identical unbounded streams on random Cyclic loops.
    #[test]
    fn random_streams_identical(
        seed in 0u64..4000, nodes in 4usize..14, k in 0u32..5, procs in 1usize..7
    ) {
        let g = random_cyclic_loop(seed, &cfg(nodes));
        let m = MachineConfig::new(procs, k);
        let n = 40 * g.node_count();
        let a = greedy_unbounded(&g, &m, n);
        let b = greedy_unbounded_ref(&g, &m, n);
        prop_assert_eq!(a, b);
    }

    /// Byte-identical finite streams on arbitrary random loops (roots,
    /// flow-in/flow-out structure included — exercises the self-advance
    /// and out-of-range retirement paths).
    #[test]
    fn random_finite_streams_identical(
        seed in 0u64..4000, nodes in 4usize..14, k in 0u32..5, procs in 1usize..7
    ) {
        let g = random_loop(seed, &cfg(nodes));
        let m = MachineConfig::new(procs, k);
        let a = greedy_finite(&g, &m, 11);
        let b = greedy_finite_ref(&g, &m, 11);
        prop_assert_eq!(a, b);
    }

    /// Identical detected patterns (or identical fallbacks) on random
    /// Cyclic loops: the fingerprint detector commits at the same anchor
    /// as the full-state dictionary.
    #[test]
    fn random_outcomes_identical(
        seed in 0u64..4000, nodes in 4usize..12, k in 0u32..4, procs in 1usize..6
    ) {
        let g = random_cyclic_loop(seed, &cfg(nodes));
        let m = MachineConfig::new(procs, k);
        let a = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let b = cyclic_schedule_ref(&g, &m, &CyclicOptions::default()).unwrap();
        match (&a, &b) {
            (PatternOutcome::Found(pa), PatternOutcome::Found(pb)) => {
                prop_assert_eq!(&pa.prologue, &pb.prologue);
                prop_assert_eq!(&pa.kernel, &pb.kernel);
                prop_assert_eq!(pa.iters_per_period, pb.iters_per_period);
                prop_assert_eq!(pa.cycles_per_period, pb.cycles_per_period);
            }
            (PatternOutcome::CapFallback(fa), PatternOutcome::CapFallback(fb)) => {
                prop_assert_eq!(&fa.block, &fb.block);
                prop_assert_eq!(fa.period, fb.period);
            }
            _ => prop_assert!(false, "outcome kinds diverge (seed {})", seed),
        }
    }

    /// Instantiated schedules agree end to end (the form every downstream
    /// consumer — simulator, runtime, codegen — actually reads).
    #[test]
    fn random_instantiations_identical(
        seed in 0u64..4000, nodes in 4usize..12, procs in 1usize..6
    ) {
        let g = random_cyclic_loop(seed, &cfg(nodes));
        let m = MachineConfig::new(procs, 2);
        let a = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let b = cyclic_schedule_ref(&g, &m, &CyclicOptions::default()).unwrap();
        let ia: Vec<Placement> = a.instantiate(15);
        let ib: Vec<Placement> = b.instantiate(15);
        prop_assert_eq!(ia, ib);
    }
}
