//! Scheduler-focused property tests: the greedy invariants that Theorem 1
//! rests on, across both detectors, both arrival conventions, and the
//! paper's random-loop distribution.

use kn_sched::{
    cyclic_schedule, greedy_finite, greedy_unbounded, static_times, ArrivalConvention,
    CyclicOptions, DetectorKind, MachineConfig, PatternOutcome, ScheduleTable,
};
use kn_workloads::{random_cyclic_loop, RandomLoopConfig};
use proptest::prelude::*;

fn cfg(nodes: usize) -> RandomLoopConfig {
    RandomLoopConfig {
        nodes,
        lcds: nodes / 2,
        sds: nodes / 2,
        min_latency: 1,
        max_latency: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The greedy schedule is valid under both arrival conventions.
    #[test]
    fn greedy_valid_under_both_conventions(
        seed in 0u64..4000, nodes in 4usize..12, k in 0u32..4, procs in 1usize..6
    ) {
        let g = random_cyclic_loop(seed, &cfg(nodes));
        for arrival in [ArrivalConvention::ConsumeAtArrival, ArrivalConvention::AfterArrival] {
            let m = MachineConfig { processors: procs, comm_upper_bound: k, arrival };
            let placements = greedy_finite(&g, &m, 12);
            prop_assert_eq!(placements.len(), 12 * g.node_count());
            ScheduleTable::new(placements).validate(&g, &m).unwrap();
        }
    }

    /// Both detectors, when they find a pattern, find the same steady rate
    /// (they observe the same greedy schedule).
    #[test]
    fn detectors_agree_when_both_commit(
        seed in 0u64..4000, nodes in 4usize..12, k in 0u32..4, procs in 1usize..6
    ) {
        let g = random_cyclic_loop(seed, &cfg(nodes));
        let m = MachineConfig::new(procs, k);
        let a = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        let b = cyclic_schedule(
            &g,
            &m,
            &CyclicOptions {
                detector: DetectorKind::ConfigurationWindow,
                ..CyclicOptions::default()
            },
        )
        .unwrap();
        if let (PatternOutcome::Found(pa), PatternOutcome::Found(pb)) = (&a, &b) {
            prop_assert!(
                (pa.steady_ii() - pb.steady_ii()).abs() < 1e-9,
                "state {} vs window {}", pa.steady_ii(), pb.steady_ii()
            );
        }
    }

    /// The prefix property: the finite greedy run for N iterations and the
    /// unbounded run place the *first* instances identically until the
    /// first out-of-range instance appears in the unbounded stream.
    #[test]
    fn finite_and_unbounded_share_a_prefix(
        seed in 0u64..4000, nodes in 4usize..10, procs in 1usize..6
    ) {
        let g = random_cyclic_loop(seed, &cfg(nodes));
        let m = MachineConfig::new(procs, 2);
        let iters = 12u32;
        let fin = greedy_finite(&g, &m, iters);
        let unb = greedy_unbounded(&g, &m, fin.len());
        for (a, b) in fin.iter().zip(unb.iter()) {
            if b.inst.iter >= iters {
                break;
            }
            prop_assert_eq!(a, b);
        }
    }

    /// Static timing of a pattern-derived program reproduces the pattern's
    /// own placement times (no hidden slack anywhere in the pipeline).
    #[test]
    fn program_times_equal_pattern_times(
        seed in 0u64..4000, nodes in 4usize..10, procs in 1usize..6
    ) {
        let g = random_cyclic_loop(seed, &cfg(nodes));
        let m = MachineConfig::new(procs, 2);
        let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
        if out.pattern().is_none() {
            return Ok(()); // block fallback: times are re-derived, not equal
        }
        let iters = 16;
        let placements = out.instantiate(iters);
        let table = ScheduleTable::new(placements.clone());
        let prog = table.to_program(iters);
        let timed = static_times(&prog, &g, &m).unwrap();
        for p in &placements {
            // Dataflow execution can only match or improve on the static
            // placement (greedy start times are achievable, and the timing
            // honors the same order).
            let t = timed.start_of(p.inst).unwrap();
            prop_assert!(t <= p.start, "{:?}: {} > {}", p.inst, t, p.start);
        }
    }

    /// More processors never make the steady rate (meaningfully) worse.
    ///
    /// Exact monotonicity can be violated by a subtle interaction with the
    /// Theorem-1 gap: with few processors, resource contention *couples*
    /// the rates of mismatched SCCs and a pattern exists; with more
    /// processors the fast SCC decouples and runs ahead, no pattern exists,
    /// and the block fallback pays a small amortization overhead
    /// (≤ (warmup + k)/unroll_cap per iteration). We allow that slack.
    #[test]
    fn processors_monotone_up_to_fallback_slack(seed in 0u64..4000, nodes in 4usize..10) {
        let g = random_cyclic_loop(seed, &cfg(nodes));
        let mut last = f64::INFINITY;
        for procs in [1usize, 2, 4, 8] {
            let m = MachineConfig::new(procs, 2);
            let out = cyclic_schedule(&g, &m, &CyclicOptions::default()).unwrap();
            let ii = out.steady_ii();
            let slack = match out {
                PatternOutcome::Found(_) => 1e-9,
                PatternOutcome::CapFallback(_) => 0.25,
            };
            prop_assert!(ii <= last + slack, "p={procs}: {ii} > {last}");
            last = ii.min(last);
        }
    }

    /// Larger communication bounds never improve the schedule.
    #[test]
    fn comm_cost_monotone_in_k(seed in 0u64..4000, nodes in 4usize..10) {
        let g = random_cyclic_loop(seed, &cfg(nodes));
        // Measured as executed makespan at the *scheduling* k (both the
        // plan and the execution degrade together).
        let mut last = 0u64;
        for k in [0u32, 1, 2, 4] {
            let m = MachineConfig::new(4, k);
            let placements = greedy_finite(&g, &m, 12);
            let makespan = placements
                .iter()
                .map(|p| p.start + g.latency(p.inst.node) as u64)
                .max()
                .unwrap();
            prop_assert!(makespan + 1 >= last, "k={k}: {makespan} << {last}");
            last = makespan;
        }
    }
}
