//! The transform pipeline: reduce, then fission, then self-certify.
//!
//! [`transform_loop`] is the one entry point the CLI and the scheduling
//! service call. It runs the enabled passes in a fixed order (reduction
//! rewriting first, so fission partitions the *rewritten* body), lowers
//! every resulting piece back to a DDG, and — whenever anything actually
//! changed — runs the differential-equivalence harness before returning.
//! A transform that cannot prove itself equivalent is a hard error, never
//! a silently-wrong result.

use crate::diff::{check_equivalence, EquivMismatch, EquivOptions};
use crate::fission::fission_pieces;
use crate::reduce::recognize_reductions;
use kn_ddg::scc::recurrence_bound;
use kn_ddg::Ddg;
use kn_ir::{if_convert, lower_flat, AnalysisOptions, BinOp, GuardedAssign, LoopBody, LowerError};

/// Which passes to run. Everything defaults to **off**: callers opt in per
/// request, and a request with no options enabled is byte-identical to one
/// that never heard of this crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransformOptions {
    /// Split the loop into independently schedulable pieces.
    pub fission: bool,
    /// Rewrite associative accumulations into privatize-and-reduce form.
    pub reduce: bool,
}

impl TransformOptions {
    /// Every pass enabled.
    pub fn all() -> Self {
        Self {
            fission: true,
            reduce: true,
        }
    }

    /// True when at least one pass is enabled.
    pub fn any(&self) -> bool {
        self.fission || self.reduce
    }
}

/// Outcome of one pass, carrying the stable skip code when it did not fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassStatus {
    /// The pass was not requested.
    Off,
    /// The pass fired and rewrote the body.
    Applied,
    /// The pass was requested but declined; the code (`XSnn`/`XRnn`) says
    /// why and is stable API.
    Skipped(&'static str),
}

impl PassStatus {
    pub fn render(&self) -> String {
        match self {
            PassStatus::Off => "off".to_string(),
            PassStatus::Applied => "applied".to_string(),
            PassStatus::Skipped(code) => format!("skipped({code})"),
        }
    }

    pub fn applied(&self) -> bool {
        matches!(self, PassStatus::Applied)
    }
}

/// One fission piece: a complete loop over the full iteration space, run
/// after every earlier piece finishes (the sequencing manifest is the
/// order of [`Transformed::pieces`]).
#[derive(Clone, Debug)]
pub struct Piece {
    /// `{loop}.p{k}` when fission fired, the loop name itself otherwise.
    pub name: String,
    /// Indices into the transformed flat body, original statement order.
    pub indices: Vec<usize>,
    /// The piece's statements.
    pub body: Vec<GuardedAssign>,
    /// The piece lowered to its own dependence graph (dense node ids).
    pub graph: Ddg,
    /// Recurrence-constrained MII of the piece (`0` = doall).
    pub mii: f64,
}

impl Piece {
    /// DDG node names, in node order (one per statement).
    pub fn stmt_labels(&self) -> Vec<String> {
        self.graph
            .node_ids()
            .map(|id| self.graph.node(id).name.clone())
            .collect()
    }
}

/// A post-loop fold reconstructing a privatized reduction scalar:
/// `scalar = fold(op, initial scalar value, elements[0..N])`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Epilogue {
    /// The accumulator scalar being reconstructed.
    pub scalar: String,
    /// The associative-commutative fold operator.
    pub op: BinOp,
    /// The introduced element array holding per-iteration contributions.
    pub elements: String,
}

impl Epilogue {
    /// Stable lower-case operator name for reports (`add`/`mul`/`min`/`max`).
    pub fn op_name(&self) -> &'static str {
        match self.op {
            BinOp::Add => "add",
            BinOp::Mul => "mul",
            BinOp::Min => "min",
            BinOp::Max => "max",
            // Non-associative operators never reach an epilogue.
            _ => "?",
        }
    }
}

/// The transformed program: pieces in execution order plus the reduction
/// epilogues, and the bookkeeping the differential harness needs to
/// project both runs down to the observable store.
#[derive(Clone, Debug)]
pub struct Transformed {
    pub pieces: Vec<Piece>,
    pub epilogues: Vec<Epilogue>,
    /// Arrays introduced by the rewrite (`*__red`): private storage, not
    /// observable.
    pub introduced_arrays: Vec<String>,
    /// Predicate scalars eliminated by canonicalization: absent from the
    /// transformed program, so dropped from the original's store too.
    pub removed_scalars: Vec<String>,
}

/// Everything `kn transform` reports about one loop.
#[derive(Clone, Debug)]
pub struct TransformReport {
    pub name: String,
    pub reduce: PassStatus,
    pub fission: PassStatus,
    /// Recurrence MII of the original body.
    pub mii_before: f64,
    /// Max recurrence MII over the transformed pieces.
    pub mii_after: f64,
    /// `ok(seeds=S,iters=N)` when the differential harness certified the
    /// change, `unchanged` when no pass fired.
    pub equivalence: String,
}

/// Result of [`transform_loop`]: the rewritten program and its report.
#[derive(Clone, Debug)]
pub struct TransformOutput {
    pub report: TransformReport,
    pub transformed: Transformed,
}

impl TransformOutput {
    /// True when at least one pass rewrote the body.
    pub fn changed(&self) -> bool {
        self.report.reduce.applied() || self.report.fission.applied()
    }

    /// `mii_before / mii_after`, both clamped to ≥ 1 so doall results
    /// (`mii = 0`) produce finite, comparable ratios.
    pub fn improvement(&self) -> f64 {
        self.report.mii_before.max(1.0) / self.report.mii_after.max(1.0)
    }

    /// The report as a single JSON object with a stable field order, for
    /// the golden corpus and the bench harness.
    pub fn to_json(&self) -> String {
        let r = &self.report;
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"name\":{},\"reduce\":{},\"fission\":{},\"reductions\":[",
            json_str(&r.name),
            json_str(&r.reduce.render()),
            json_str(&r.fission.render()),
        ));
        for (i, ep) in self.transformed.epilogues.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"scalar\":{},\"op\":{},\"elements\":{}}}",
                json_str(&ep.scalar),
                json_str(ep.op_name()),
                json_str(&ep.elements),
            ));
        }
        s.push_str("],\"pieces\":[");
        for (i, p) in self.transformed.pieces.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let stmts = p
                .stmt_labels()
                .iter()
                .map(|l| json_str(l))
                .collect::<Vec<_>>()
                .join(",");
            s.push_str(&format!(
                "{{\"name\":{},\"stmts\":[{}],\"mii\":{:.3}}}",
                json_str(&p.name),
                stmts,
                p.mii,
            ));
        }
        s.push_str(&format!(
            "],\"mii_before\":{:.3},\"mii_after\":{:.3},\"equivalence\":{}}}",
            r.mii_before,
            r.mii_after,
            json_str(&r.equivalence),
        ));
        s
    }

    /// Multi-line human rendering for the CLI.
    pub fn render_human(&self) -> String {
        let r = &self.report;
        let mut out = String::new();
        out.push_str(&format!("loop: {}\n", r.name));
        out.push_str(&format!("  reduce:  {}\n", r.reduce.render()));
        for ep in &self.transformed.epilogues {
            out.push_str(&format!(
                "    {} = fold_{}({})\n",
                ep.scalar,
                ep.op_name(),
                ep.elements
            ));
        }
        out.push_str(&format!("  fission: {}\n", r.fission.render()));
        for p in &self.transformed.pieces {
            out.push_str(&format!(
                "    {}: [{}] mii {:.3}\n",
                p.name,
                p.stmt_labels().join(", "),
                p.mii
            ));
        }
        out.push_str(&format!(
            "  mii: {:.3} -> {:.3} ({:.2}x)\n",
            r.mii_before,
            r.mii_after,
            self.improvement()
        ));
        out.push_str(&format!("  equivalence: {}\n", r.equivalence));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Why a transform failed hard (as opposed to declining with a skip code).
#[derive(Debug)]
pub enum TransformError {
    /// The body (or a piece) would not lower to a valid DDG.
    Lower(LowerError),
    /// The differential harness found a seed on which the transformed
    /// program's observable store differs from the original's. This means
    /// a pass is buggy; the transform must not be used.
    Equivalence(Box<EquivMismatch>),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::Lower(e) => write!(f, "lowering failed: {e}"),
            TransformError::Equivalence(m) => write!(f, "equivalence violated: {m}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<LowerError> for TransformError {
    fn from(e: LowerError) -> Self {
        TransformError::Lower(e)
    }
}

/// Transform a structured loop body (if-converting it first).
pub fn transform_loop(
    name: &str,
    body: &LoopBody,
    opts: &TransformOptions,
) -> Result<TransformOutput, TransformError> {
    transform_flat(name, &if_convert(body), opts)
}

/// Transform an already-flattened body. Runs reduce, then fission, lowers
/// every piece, and certifies any applied change with the differential
/// harness at its default strength.
pub fn transform_flat(
    name: &str,
    flat: &[GuardedAssign],
    opts: &TransformOptions,
) -> Result<TransformOutput, TransformError> {
    let analysis = AnalysisOptions::default();
    let before = lower_flat(flat, &analysis)?;
    let mii_before = recurrence_bound(&before);

    let mut current: Vec<GuardedAssign> = flat.to_vec();
    let mut epilogues = Vec::new();
    let mut removed_scalars = Vec::new();
    let reduce_status = if opts.reduce {
        match recognize_reductions(&current) {
            Ok(o) => {
                current = o.body;
                epilogues = o.epilogues;
                removed_scalars = o.removed_scalars;
                PassStatus::Applied
            }
            Err(skip) => PassStatus::Skipped(skip.code()),
        }
    } else {
        PassStatus::Off
    };

    let (fission_status, piece_indices) = if opts.fission {
        match fission_pieces(&current) {
            Ok(p) => (PassStatus::Applied, p),
            Err(skip) => (
                PassStatus::Skipped(skip.code()),
                vec![(0..current.len()).collect()],
            ),
        }
    } else {
        (PassStatus::Off, vec![(0..current.len()).collect()])
    };

    let single = piece_indices.len() == 1;
    let mut pieces = Vec::with_capacity(piece_indices.len());
    for (k, indices) in piece_indices.into_iter().enumerate() {
        let body: Vec<GuardedAssign> = indices.iter().map(|&i| current[i].clone()).collect();
        let graph = lower_flat(&body, &analysis)?;
        let mii = recurrence_bound(&graph);
        pieces.push(Piece {
            name: if single {
                name.to_string()
            } else {
                format!("{name}.p{k}")
            },
            indices,
            body,
            graph,
            mii,
        });
    }
    let mii_after = pieces.iter().map(|p| p.mii).fold(0.0f64, f64::max);

    let introduced_arrays = epilogues
        .iter()
        .map(|e: &Epilogue| e.elements.clone())
        .collect();
    let transformed = Transformed {
        pieces,
        epilogues,
        introduced_arrays,
        removed_scalars,
    };

    let changed = reduce_status.applied() || fission_status.applied();
    let equivalence = if changed {
        let eq = EquivOptions::default();
        check_equivalence(flat, &transformed, &eq).map_err(TransformError::Equivalence)?;
        format!("ok(seeds={},iters={})", eq.seeds, eq.iters)
    } else {
        "unchanged".to_string()
    };

    Ok(TransformOutput {
        report: TransformReport {
            name: name.to_string(),
            reduce: reduce_status,
            fission: fission_status,
            mii_before,
            mii_after,
            equivalence,
        },
        transformed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ir::{arr, arr_at, assign, assign_scalar, binop, c, scalar, BinOp};

    #[test]
    fn reduction_drops_mii_to_zero() {
        // acc = acc + A[I]: serial MII 1.0, privatized MII 0 (doall).
        let body = LoopBody::new(vec![assign_scalar(
            "acc",
            "acc",
            binop(BinOp::Add, scalar("acc"), arr("A")),
        )]);
        let out = transform_loop("sum", &body, &TransformOptions::all()).unwrap();
        assert!(out.report.reduce.applied());
        assert!(
            (out.report.mii_before - 1.0).abs() < 1e-6,
            "{}",
            out.report.mii_before
        );
        assert_eq!(out.report.mii_after, 0.0);
        assert!(out.improvement() >= 1.0);
        assert!(out.report.equivalence.starts_with("ok(seeds="));
    }

    #[test]
    fn fission_splits_and_keeps_worst_piece_mii() {
        // Heavy recurrence (lat 3) + an independent doall: fission isolates
        // the doall but mii_after stays the recurrence's 3.0.
        let mut rec = assign("x", "X", 0, binop(BinOp::Mul, arr_at("X", -1), c(3)));
        if let kn_ir::Stmt::Assign(a) = &mut rec {
            a.latency = 3;
        }
        let body = LoopBody::new(vec![
            rec,
            assign("y", "Y", 0, binop(BinOp::Add, arr("B"), c(1))),
        ]);
        let out = transform_loop(
            "mix",
            &body,
            &TransformOptions {
                fission: true,
                reduce: false,
            },
        )
        .unwrap();
        assert!(out.report.fission.applied());
        assert_eq!(out.transformed.pieces.len(), 2);
        assert_eq!(out.transformed.pieces[0].name, "mix.p0");
        assert!(
            (out.report.mii_before - 3.0).abs() < 1e-6,
            "{}",
            out.report.mii_before
        );
        assert!(
            (out.report.mii_after - 3.0).abs() < 1e-6,
            "{}",
            out.report.mii_after
        );
    }

    #[test]
    fn no_pass_requested_reports_off_and_unchanged() {
        let body = LoopBody::new(vec![assign("a", "A", 0, c(1))]);
        let out = transform_loop("idle", &body, &TransformOptions::default()).unwrap();
        assert_eq!(out.report.reduce, PassStatus::Off);
        assert_eq!(out.report.fission, PassStatus::Off);
        assert_eq!(out.report.equivalence, "unchanged");
        assert!(!out.changed());
        assert_eq!(out.transformed.pieces.len(), 1);
        assert_eq!(out.transformed.pieces[0].name, "idle");
    }

    #[test]
    fn skip_codes_surface_in_json() {
        // Single statement: fission XS01; doall: reduce XR03.
        let body = LoopBody::new(vec![assign("a", "A", 0, arr("B"))]);
        let out = transform_loop("tiny", &body, &TransformOptions::all()).unwrap();
        let json = out.to_json();
        assert!(json.contains("\"fission\":\"skipped(XS01)\""), "{json}");
        assert!(json.contains("\"reduce\":\"skipped(XR03)\""), "{json}");
        assert!(json.contains("\"equivalence\":\"unchanged\""), "{json}");
    }

    #[test]
    fn json_has_stable_field_order() {
        let body = LoopBody::new(vec![assign_scalar(
            "acc",
            "acc",
            binop(BinOp::Add, scalar("acc"), arr("A")),
        )]);
        let out = transform_loop("sum", &body, &TransformOptions::all()).unwrap();
        let json = out.to_json();
        let order = [
            "\"name\":",
            "\"reduce\":",
            "\"fission\":",
            "\"reductions\":",
            "\"pieces\":",
            "\"mii_before\":",
            "\"mii_after\":",
            "\"equivalence\":",
        ];
        let mut last = 0;
        for key in order {
            let pos = json.find(key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(pos >= last, "field {key} out of order in {json}");
            last = pos;
        }
        assert!(json.contains("\"op\":\"add\""));
        assert!(json.contains("\"elements\":\"acc__red\""));
    }

    #[test]
    fn reduce_then_fission_compose() {
        // A reduction plus an unrelated recurrence: after privatization the
        // body splits into the (now doall) element write and the recurrence.
        let body = LoopBody::new(vec![
            assign_scalar("acc", "acc", binop(BinOp::Add, scalar("acc"), arr("A"))),
            assign("x", "X", 0, binop(BinOp::Add, arr_at("X", -1), c(1))),
        ]);
        let out = transform_loop("combo", &body, &TransformOptions::all()).unwrap();
        assert!(out.report.reduce.applied());
        assert!(out.report.fission.applied());
        assert_eq!(out.transformed.pieces.len(), 2);
        assert!(out.report.equivalence.starts_with("ok("));
    }

    #[test]
    fn pieces_cover_transformed_body() {
        let body = LoopBody::new(vec![
            assign("a", "A", 0, binop(BinOp::Add, arr_at("A", -1), c(1))),
            assign("b", "B", 0, arr("C")),
        ]);
        let out = transform_loop(
            "cover",
            &body,
            &TransformOptions {
                fission: true,
                reduce: false,
            },
        )
        .unwrap();
        let mut all: Vec<usize> = out
            .transformed
            .pieces
            .iter()
            .flat_map(|p| p.indices.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1]);
    }
}
