//! Reduction recognition and privatize-and-reduce rewriting.
//!
//! A serial accumulation `s = s ⊕ f(I)` carries a distance-1 flow
//! dependence on itself, which pins the loop's recurrence MII at the
//! statement's latency no matter how many processors are available. When
//! `⊕` is associative and commutative the chain can be *reassociated*:
//! each iteration writes its contribution into a private element
//! `s__red[I] = f(I)` (a doall statement with no self-dependence), and a
//! post-loop epilogue folds the elements back into the scalar. Under this
//! crate's exact `u64` wrapping semantics, Add/Mul/Min/Max reassociation is
//! bit-identical to serial execution — the differential harness proves it
//! on every rewrite rather than assuming it.
//!
//! Before recognition proper, [`canonicalize_compare_updates`] rewrites the
//! guarded-compare idiom `p = e > s; (p) s = e` — how a max reduction looks
//! after if-conversion — into `s = max(s, e)`, so one recognizer handles
//! both spellings.

use crate::pipeline::Epilogue;
use kn_ir::stmt::Target;
use kn_ir::{binop, scalar, Assign, BinOp, Expr, GuardedAssign};
use std::collections::HashSet;

/// Why reduction recognition did not fire. Codes are stable API (asserted
/// by the golden corpus). When several candidates fail for different
/// reasons the most actionable code wins: `XR02` (a scan — fixable by a
/// scan transform) over `XR01` (non-associative — fixable by policy) over
/// `XR04` (guarded — fixable by predication support) over `XR03` (nothing
/// resembling a reduction at all).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceSkip {
    /// `XR01`: an accumulation chain exists but its operator (`-`, `/`) is
    /// not associative; reassociation would change the result.
    NonAssociative,
    /// `XR02`: the accumulator is read by another statement in the body —
    /// the loop needs every prefix value (a scan), not just the total.
    Scan,
    /// `XR03`: no statement has the shape `s = s ⊕ e`.
    NoChain,
    /// `XR04`: the accumulation is guarded; a predicated rewrite would need
    /// an identity-element substitution this pass does not do.
    Guarded,
}

impl ReduceSkip {
    pub fn code(self) -> &'static str {
        match self {
            ReduceSkip::NonAssociative => "XR01",
            ReduceSkip::Scan => "XR02",
            ReduceSkip::NoChain => "XR03",
            ReduceSkip::Guarded => "XR04",
        }
    }
}

/// Result of a successful recognition pass.
#[derive(Clone, Debug)]
pub struct ReduceOutcome {
    /// The body with every recognized accumulation rewritten to its
    /// privatized element-array form.
    pub body: Vec<GuardedAssign>,
    /// One epilogue per rewritten accumulation (fold order = statement
    /// order, though the fold is order-insensitive by construction).
    pub epilogues: Vec<Epilogue>,
    /// Predicate scalars eliminated by guarded-compare canonicalization —
    /// they no longer exist in the transformed program and must be dropped
    /// from the observable store before differential comparison.
    pub removed_scalars: Vec<String>,
}

/// Rewrite `p = e > s; (p) s = e` (and the three sibling orientations)
/// into `s = max(s, e)` / `s = min(s, e)`.
///
/// Legality requires the pair to be adjacent, `p` to be consumed by that
/// single positive guard and nowhere else, and the compared expression `e`
/// to be syntactically identical on both statements and free of `p` and
/// `s` (the select must be a pure two-input choice). The combined
/// statement keeps the update's label and the pair's maximum latency.
pub fn canonicalize_compare_updates(flat: &[GuardedAssign]) -> (Vec<GuardedAssign>, Vec<String>) {
    let mut out: Vec<GuardedAssign> = Vec::with_capacity(flat.len());
    let mut removed: Vec<String> = Vec::new();
    let mut i = 0;
    while i < flat.len() {
        if i + 1 < flat.len() {
            if let Some((merged, pred)) = try_merge_compare_update(&flat[i], &flat[i + 1], flat) {
                removed.push(pred);
                out.push(merged);
                i += 2;
                continue;
            }
        }
        out.push(flat[i].clone());
        i += 1;
    }
    (out, removed)
}

/// Match the two-statement guarded-compare idiom. Returns the fused
/// min/max statement and the eliminated predicate name.
fn try_merge_compare_update(
    cmp: &GuardedAssign,
    upd: &GuardedAssign,
    flat: &[GuardedAssign],
) -> Option<(GuardedAssign, String)> {
    // cmp: unguarded `p = l OP r` with OP ∈ {<, >}.
    if !cmp.unconditional() {
        return None;
    }
    let p = match &cmp.assign.target {
        Target::Scalar(p) => p.clone(),
        _ => return None,
    };
    let (op, l, r) = match &cmp.assign.rhs {
        Expr::Binary(op @ (BinOp::Lt | BinOp::Gt), l, r) => (*op, l.as_ref(), r.as_ref()),
        _ => return None,
    };
    // upd: `(p) s = e` — exactly one guard, positive, on p.
    if upd.guards.len() != 1 || upd.guards[0].predicate != p || !upd.guards[0].polarity {
        return None;
    }
    let s = match &upd.assign.target {
        Target::Scalar(s) => s.clone(),
        _ => return None,
    };
    let e = &upd.assign.rhs;
    // Orientation: which side of the compare is the running value `s`?
    //   p = e > s  → new value wins when larger   → max
    //   p = s > e  → new value wins when smaller  → min
    //   p = s < e  → max;   p = e < s → min.
    let fused_op = if *l == *e && *r == Expr::Scalar(s.clone()) {
        match op {
            BinOp::Gt => BinOp::Max,
            _ => BinOp::Min,
        }
    } else if *l == Expr::Scalar(s.clone()) && *r == *e {
        match op {
            BinOp::Gt => BinOp::Min,
            _ => BinOp::Max,
        }
    } else {
        return None;
    };
    // e must be a pure two-input select: no reads of s or p inside it.
    if p == s || expr_reads_scalar(e, &s) || expr_reads_scalar(e, &p) {
        return None;
    }
    // p must be dead outside this pair: no other guard uses it, no rhs
    // reads it, no other statement writes it.
    for ga in flat {
        if std::ptr::eq(ga, cmp) || std::ptr::eq(ga, upd) {
            continue;
        }
        if ga.guards.iter().any(|g| g.predicate == p)
            || ga.assign.rhs.scalar_reads().contains(&p.as_str())
            || ga.assign.target == Target::Scalar(p.clone())
        {
            return None;
        }
    }
    let merged = GuardedAssign {
        guards: Vec::new(),
        assign: Assign {
            target: Target::Scalar(s.clone()),
            rhs: binop(fused_op, scalar(&s), e.clone()),
            latency: cmp.assign.latency.max(upd.assign.latency),
            label: upd.assign.label.clone(),
        },
    };
    Some((merged, p))
}

fn expr_reads_scalar(e: &Expr, name: &str) -> bool {
    e.scalar_reads().contains(&name)
}

/// Recognize and rewrite every reduction in `flat` (canonicalizing the
/// guarded-compare idiom first). `Err` carries the dominant skip reason
/// when nothing was rewritten.
pub fn recognize_reductions(flat: &[GuardedAssign]) -> Result<ReduceOutcome, ReduceSkip> {
    let (body, removed_scalars) = canonicalize_compare_updates(flat);
    let array_names = all_array_names(&body);
    let mut out = body.clone();
    let mut epilogues = Vec::new();
    let mut skip: Option<ReduceSkip> = None;
    let note = |s: ReduceSkip, slot: &mut Option<ReduceSkip>| {
        // XR02 > XR01 > XR04 > XR03 (see enum docs).
        let rank = |s: ReduceSkip| match s {
            ReduceSkip::Scan => 3,
            ReduceSkip::NonAssociative => 2,
            ReduceSkip::Guarded => 1,
            ReduceSkip::NoChain => 0,
        };
        if slot.is_none_or(|cur| rank(s) > rank(cur)) {
            *slot = Some(s);
        }
    };
    for i in 0..body.len() {
        let ga = &body[i];
        let s = match &ga.assign.target {
            Target::Scalar(s) => s.clone(),
            _ => continue,
        };
        // Shape: s = s ⊕ e with s on exactly one side and e free of s.
        let (op, e) = match &ga.assign.rhs {
            Expr::Binary(op, l, r) => {
                let ls = **l == Expr::Scalar(s.clone());
                let rs = **r == Expr::Scalar(s.clone());
                match (ls, rs) {
                    (true, false) if !expr_reads_scalar(r, &s) => (*op, r.as_ref().clone()),
                    (false, true) if !expr_reads_scalar(l, &s) => (*op, l.as_ref().clone()),
                    _ => continue,
                }
            }
            _ => continue,
        };
        if !matches!(
            op,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::Sub | BinOp::Div
        ) {
            continue; // comparisons are not accumulations
        }
        if !ga.unconditional() {
            note(ReduceSkip::Guarded, &mut skip);
            continue;
        }
        if !op.is_associative_commutative() {
            note(ReduceSkip::NonAssociative, &mut skip);
            continue;
        }
        // s must be private to this statement: no other statement reads or
        // writes it (otherwise the loop consumes prefix values — a scan).
        let used_elsewhere = body.iter().enumerate().any(|(k, other)| {
            k != i
                && (other.assign.rhs.scalar_reads().contains(&s.as_str())
                    || other.guards.iter().any(|g| g.predicate == s)
                    || other.assign.target == Target::Scalar(s.clone()))
        });
        if used_elsewhere {
            note(ReduceSkip::Scan, &mut skip);
            continue;
        }
        // Rewrite: the accumulation becomes a private element write, the
        // fold moves to the epilogue.
        let elements = fresh_array_name(&s, &array_names);
        out[i] = GuardedAssign {
            guards: Vec::new(),
            assign: Assign {
                target: Target::Array {
                    array: elements.clone(),
                    offset: 0,
                },
                rhs: e,
                latency: ga.assign.latency,
                label: ga.assign.label.clone(),
            },
        };
        epilogues.push(Epilogue {
            scalar: s,
            op,
            elements,
        });
    }
    if epilogues.is_empty() {
        return Err(skip.unwrap_or(ReduceSkip::NoChain));
    }
    Ok(ReduceOutcome {
        body: out,
        epilogues,
        removed_scalars,
    })
}

fn all_array_names(body: &[GuardedAssign]) -> HashSet<String> {
    let mut names = HashSet::new();
    for ga in body {
        if let Target::Array { array, .. } = &ga.assign.target {
            names.insert(array.clone());
        }
        for (a, _) in ga.assign.rhs.array_reads() {
            names.insert(a.to_string());
        }
    }
    names
}

/// `{scalar}__red`, suffixed with underscores until it collides with no
/// array already present in the body.
fn fresh_array_name(scalar: &str, taken: &HashSet<String>) -> String {
    let mut name = format!("{scalar}__red");
    while taken.contains(&name) {
        name.push('_');
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ir::{arr, assign, assign_scalar, c, if_convert, if_stmt, LoopBody};

    fn flat(body: &LoopBody) -> Vec<GuardedAssign> {
        if_convert(body)
    }

    #[test]
    fn sum_reduction_rewrites_to_element_array() {
        let body = LoopBody::new(vec![assign_scalar(
            "acc",
            "acc",
            binop(BinOp::Add, scalar("acc"), arr("A")),
        )]);
        let o = recognize_reductions(&flat(&body)).unwrap();
        assert_eq!(o.epilogues.len(), 1);
        assert_eq!(o.epilogues[0].scalar, "acc");
        assert_eq!(o.epilogues[0].op, BinOp::Add);
        assert_eq!(o.epilogues[0].elements, "acc__red");
        assert_eq!(
            o.body[0].assign.target,
            Target::Array {
                array: "acc__red".into(),
                offset: 0
            }
        );
        assert_eq!(o.body[0].assign.rhs, arr("A"));
    }

    #[test]
    fn accumulator_on_right_side_is_recognized() {
        // acc = A[I] * acc — commutative, s on the right.
        let body = LoopBody::new(vec![assign_scalar(
            "acc",
            "acc",
            binop(BinOp::Mul, arr("A"), scalar("acc")),
        )]);
        let o = recognize_reductions(&flat(&body)).unwrap();
        assert_eq!(o.epilogues[0].op, BinOp::Mul);
        assert_eq!(o.body[0].assign.rhs, arr("A"));
    }

    #[test]
    fn subtraction_chain_is_non_associative() {
        let body = LoopBody::new(vec![assign_scalar(
            "acc",
            "acc",
            binop(BinOp::Sub, scalar("acc"), arr("A")),
        )]);
        assert_eq!(
            recognize_reductions(&flat(&body)).unwrap_err(),
            ReduceSkip::NonAssociative
        );
    }

    #[test]
    fn scan_is_rejected_when_prefix_is_consumed() {
        // The SNIPPETS `val *= f; a[i] = val` shape: every prefix product
        // is observable, so reassociation is illegal.
        let body = LoopBody::new(vec![
            assign_scalar("val", "val", binop(BinOp::Mul, scalar("val"), arr("F"))),
            assign("a", "A", 0, scalar("val")),
        ]);
        assert_eq!(
            recognize_reductions(&flat(&body)).unwrap_err(),
            ReduceSkip::Scan
        );
    }

    #[test]
    fn guarded_accumulation_is_rejected() {
        let body = LoopBody::new(vec![if_stmt(
            binop(BinOp::Gt, arr("A"), c(0)),
            vec![assign_scalar(
                "acc",
                "acc",
                binop(BinOp::Add, scalar("acc"), arr("A")),
            )],
            vec![],
        )]);
        assert_eq!(
            recognize_reductions(&flat(&body)).unwrap_err(),
            ReduceSkip::Guarded
        );
    }

    #[test]
    fn plain_doall_has_no_chain() {
        let body = LoopBody::new(vec![assign("a", "A", 0, binop(BinOp::Add, arr("B"), c(1)))]);
        assert_eq!(
            recognize_reductions(&flat(&body)).unwrap_err(),
            ReduceSkip::NoChain
        );
    }

    #[test]
    fn guarded_compare_canonicalizes_to_max() {
        // The maxdelta idiom: IF e > m THEN m = e.
        let body = LoopBody::new(vec![if_stmt(
            binop(BinOp::Gt, arr("D"), scalar("m")),
            vec![assign_scalar("m", "m", arr("D"))],
            vec![],
        )]);
        let f = flat(&body);
        assert_eq!(f.len(), 2, "compare + guarded update");
        let (canon, removed) = canonicalize_compare_updates(&f);
        assert_eq!(canon.len(), 1);
        assert_eq!(removed, vec!["p0".to_string()]);
        assert_eq!(
            canon[0].assign.rhs,
            binop(BinOp::Max, scalar("m"), arr("D"))
        );
        // End-to-end: the canonical form is a recognizable max reduction.
        let o = recognize_reductions(&f).unwrap();
        assert_eq!(o.epilogues[0].op, BinOp::Max);
        assert_eq!(o.removed_scalars, vec!["p0".to_string()]);
    }

    #[test]
    fn compare_orientations_map_to_min_and_max() {
        // p = m > e; (p) m = e  → keep the smaller → min.
        let body = LoopBody::new(vec![if_stmt(
            binop(BinOp::Gt, scalar("m"), arr("D")),
            vec![assign_scalar("m", "m", arr("D"))],
            vec![],
        )]);
        let (canon, _) = canonicalize_compare_updates(&flat(&body));
        assert_eq!(
            canon[0].assign.rhs,
            binop(BinOp::Min, scalar("m"), arr("D"))
        );
        // p = m < e; (p) m = e → keep the larger → max.
        let body = LoopBody::new(vec![if_stmt(
            binop(BinOp::Lt, scalar("m"), arr("D")),
            vec![assign_scalar("m", "m", arr("D"))],
            vec![],
        )]);
        let (canon, _) = canonicalize_compare_updates(&flat(&body));
        assert_eq!(
            canon[0].assign.rhs,
            binop(BinOp::Max, scalar("m"), arr("D"))
        );
    }

    #[test]
    fn compare_predicate_with_other_users_is_left_alone() {
        // p0 also guards an unrelated statement: the pair must not fuse.
        let body = LoopBody::new(vec![if_stmt(
            binop(BinOp::Gt, arr("D"), scalar("m")),
            vec![assign_scalar("m", "m", arr("D")), assign("w", "W", 0, c(1))],
            vec![],
        )]);
        let f = flat(&body);
        let (canon, removed) = canonicalize_compare_updates(&f);
        assert_eq!(canon.len(), f.len());
        assert!(removed.is_empty());
    }

    #[test]
    fn fresh_name_avoids_collision() {
        // An array literally named acc__red already exists in the body.
        let body = LoopBody::new(vec![
            assign("x", "X", 0, arr("acc__red")),
            assign_scalar("acc", "acc", binop(BinOp::Add, scalar("acc"), arr("A"))),
        ]);
        let o = recognize_reductions(&flat(&body)).unwrap();
        assert_eq!(o.epilogues[0].elements, "acc__red_");
    }

    #[test]
    fn multiple_reductions_in_one_body() {
        let body = LoopBody::new(vec![
            assign_scalar("s", "s", binop(BinOp::Add, scalar("s"), arr("A"))),
            assign_scalar("m", "m", binop(BinOp::Max, scalar("m"), arr("B"))),
        ]);
        let o = recognize_reductions(&flat(&body)).unwrap();
        assert_eq!(o.epilogues.len(), 2);
        assert_eq!(o.epilogues[0].scalar, "s");
        assert_eq!(o.epilogues[1].scalar, "m");
    }
}
