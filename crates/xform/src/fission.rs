//! Loop fission (distribution) by dependence-graph condensation.
//!
//! A loop can be split into a sequence of smaller loops — one per
//! strongly-connected component of its statement dependence graph — run
//! back-to-back in the condensation's topological order (Aubert et al.,
//! arXiv:2206.08760; the classic Kennedy loop-distribution legality
//! condition). Every dependence `src → dst` means "src's access precedes
//! dst's access in serial execution"; running src's entire piece before
//! dst's piece preserves that order for flow, anti, and output dependences
//! alike, so the split is legal for all three kinds.
//!
//! Two conservatisms on top of the textbook algorithm:
//!
//! * **scalar fusion** — statements linked by *any* scalar dependence stay
//!   in one piece. Splitting them would need scalar expansion (a scalar
//!   written in piece A and read in piece B holds only its final value by
//!   the time B runs); we refuse instead of silently rewriting.
//! * **deterministic order** — pieces are emitted in topological order of
//!   the condensation, ties broken by smallest original statement index,
//!   and statements inside a piece keep their original relative order.

use kn_ir::stmt::Target;
use kn_ir::{analyze_dependences, AnalysisOptions, Dependence, DependenceKind, GuardedAssign};
use std::collections::HashSet;

/// Why fission did not fire. The codes are stable API (asserted by the
/// golden corpus).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FissionSkip {
    /// `XS01`: fewer than two statements — nothing to split.
    TooSmall,
    /// `XS02`: the flow-dependence structure alone keeps every statement
    /// in one piece (a single recurrence threads the body).
    SingleRecurrence,
    /// `XS03`: a cross-piece storage (anti/output) dependence cycle is the
    /// only reason the body cannot split — array renaming would unlock it,
    /// but this pass does not rename.
    StorageDependence,
}

impl FissionSkip {
    pub fn code(self) -> &'static str {
        match self {
            FissionSkip::TooSmall => "XS01",
            FissionSkip::SingleRecurrence => "XS02",
            FissionSkip::StorageDependence => "XS03",
        }
    }
}

/// Partition `flat` into maximal independently schedulable pieces.
///
/// Returns the pieces as lists of statement indices, in the execution
/// order of the sequencing manifest; within a piece, indices are in
/// original statement order. `Err` carries the skip reason when the body
/// cannot be split.
pub fn fission_pieces(flat: &[GuardedAssign]) -> Result<Vec<Vec<usize>>, FissionSkip> {
    if flat.len() < 2 {
        return Err(FissionSkip::TooSmall);
    }
    let deps = analyze_dependences(flat, &AnalysisOptions::default());
    let scalars = scalar_names(flat);
    let pieces = partition(flat.len(), &deps, &scalars, true);
    if pieces.len() >= 2 {
        return Ok(pieces);
    }
    // One piece: decide whether storage dependences are to blame.
    if partition(flat.len(), &deps, &scalars, false).len() >= 2 {
        Err(FissionSkip::StorageDependence)
    } else {
        Err(FissionSkip::SingleRecurrence)
    }
}

/// Every name used as a scalar anywhere in the body (targets, reads,
/// guard predicates) — the set that triggers scalar fusion.
fn scalar_names(flat: &[GuardedAssign]) -> HashSet<String> {
    let mut out = HashSet::new();
    for ga in flat {
        if let Target::Scalar(s) = &ga.assign.target {
            out.insert(s.clone());
        }
        for s in ga.assign.rhs.scalar_reads() {
            out.insert(s.to_string());
        }
        for g in &ga.guards {
            out.insert(g.predicate.clone());
        }
    }
    out
}

/// Group statements: scalar-fuse, then collapse dependence cycles, then
/// order the condensation topologically. With `with_array_storage` false,
/// array anti/output dependences are ignored (the hypothetical used to
/// classify `XS03`).
fn partition(
    n: usize,
    deps: &[Dependence],
    scalars: &HashSet<String>,
    with_array_storage: bool,
) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    let considered: Vec<&Dependence> = deps
        .iter()
        .filter(|d| {
            scalars.contains(&d.var) || with_array_storage || d.kind == DependenceKind::Flow
        })
        .collect();
    for d in &considered {
        if scalars.contains(&d.var) {
            uf.union(d.src, d.dst);
        }
    }
    // Collapse dependence cycles among the scalar-fused groups until a
    // fixpoint: merging one cycle can create another.
    loop {
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for d in &considered {
            let (a, b) = (uf.find(d.src), uf.find(d.dst));
            if a != b {
                edges.push((a, b));
            }
        }
        let merged = merge_cycles(&mut uf, n, &edges);
        if !merged {
            break;
        }
    }
    // Final components and the acyclic cross-component edges.
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut comp_of = vec![usize::MAX; n];
    for i in 0..n {
        let r = uf.find(i);
        if comp_of[r] == usize::MAX {
            comp_of[r] = members.len();
            members.push(Vec::new());
        }
        comp_of[i] = comp_of[r];
        members[comp_of[i]].push(i);
    }
    let k = members.len();
    let mut succ: Vec<HashSet<usize>> = vec![HashSet::new(); k];
    let mut indeg = vec![0usize; k];
    for d in &considered {
        let (a, b) = (comp_of[d.src], comp_of[d.dst]);
        if a != b && succ[a].insert(b) {
            indeg[b] += 1;
        }
    }
    // Kahn, smallest leading statement index first.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> = (0..k)
        .filter(|&c| indeg[c] == 0)
        .map(|c| std::cmp::Reverse((members[c][0], c)))
        .collect();
    let mut order = Vec::with_capacity(k);
    while let Some(std::cmp::Reverse((_, c))) = ready.pop() {
        order.push(c);
        let mut next: Vec<usize> = succ[c].iter().copied().collect();
        next.sort_unstable();
        for s in next {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(std::cmp::Reverse((members[s][0], s)));
            }
        }
    }
    debug_assert_eq!(order.len(), k, "condensation is acyclic by construction");
    order.into_iter().map(|c| members[c].clone()).collect()
}

/// Merge every strongly connected component of the group graph into one
/// union-find class. Returns true if anything merged.
fn merge_cycles(uf: &mut UnionFind, n: usize, edges: &[(usize, usize)]) -> bool {
    // Dense-index the group roots.
    let mut roots: Vec<usize> = (0..n).map(|i| uf.find(i)).collect();
    roots.sort_unstable();
    roots.dedup();
    let idx = |r: usize| roots.binary_search(&r).unwrap();
    let k = roots.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
    for &(a, b) in edges {
        adj[idx(a)].push(idx(b));
    }
    // Iterative Tarjan.
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; k];
    let mut low = vec![0usize; k];
    let mut on_stack = vec![false; k];
    let mut stack: Vec<usize> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    let mut next = 0usize;
    let mut merged = false;
    for start in 0..k {
        if index[start] != UNVISITED {
            continue;
        }
        call.push((start, 0));
        index[start] = next;
        low[start] = next;
        next += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos < adj[v].len() {
                let w = adj[v][*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        merged = true;
                        for win in comp.windows(2) {
                            uf.union(roots[win[0]], roots[win[1]]);
                        }
                    }
                }
            }
        }
    }
    merged
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins, so piece identity is deterministic.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kn_ir::{arr, arr_at, assign, assign_scalar, binop, c, if_convert, BinOp, LoopBody};

    fn flat(body: &LoopBody) -> Vec<GuardedAssign> {
        if_convert(body)
    }

    #[test]
    fn independent_chains_split() {
        // Two unrelated recurrences: X and Y.
        let body = LoopBody::new(vec![
            assign("x", "X", 0, binop(BinOp::Add, arr_at("X", -1), c(1))),
            assign("y", "Y", 0, binop(BinOp::Mul, arr_at("Y", -1), c(3))),
        ]);
        let pieces = fission_pieces(&flat(&body)).unwrap();
        assert_eq!(pieces, vec![vec![0], vec![1]]);
    }

    #[test]
    fn forward_flow_splits_producer_before_consumer() {
        // A[I] = …; B[I] = A[I-1] — carried flow A→B, no cycle: two
        // pieces, producer first.
        let body = LoopBody::new(vec![
            assign("a", "A", 0, binop(BinOp::Add, arr("C"), c(1))),
            assign("b", "B", 0, arr_at("A", -1)),
        ]);
        let pieces = fission_pieces(&flat(&body)).unwrap();
        assert_eq!(pieces, vec![vec![0], vec![1]]);
    }

    #[test]
    fn recurrence_cycle_stays_one_piece() {
        // figure7: one five-statement body threaded by two interleaved
        // recurrences — everything is one SCC, XS02.
        let body = kn_workloads::figure7_body();
        assert_eq!(
            fission_pieces(&flat(&body)).unwrap_err(),
            FissionSkip::SingleRecurrence
        );
    }

    #[test]
    fn single_statement_is_too_small() {
        let body = LoopBody::new(vec![assign("a", "A", 0, c(1))]);
        assert_eq!(
            fission_pieces(&flat(&body)).unwrap_err(),
            FissionSkip::TooSmall
        );
    }

    #[test]
    fn anti_dependence_cycle_reports_storage_code() {
        // S0: X[I] = Z[I-1]   (flow Z: S2→S0 carried)
        // S1: Y[I] = X[I] + Z[I+1]   (flow X: S0→S1; anti Z: S1→S2)
        // S2: Z[I] = C[I]
        // Cycle S0→S1→S2→S0 exists only through the anti edge: XS03.
        let body = LoopBody::new(vec![
            assign("s0", "X", 0, arr_at("Z", -1)),
            assign("s1", "Y", 0, binop(BinOp::Add, arr("X"), arr_at("Z", 1))),
            assign("s2", "Z", 0, arr("C")),
        ]);
        assert_eq!(
            fission_pieces(&flat(&body)).unwrap_err(),
            FissionSkip::StorageDependence
        );
    }

    #[test]
    fn scalar_fusion_keeps_scalar_users_together() {
        // t feeds both consumers; splitting them would need expansion.
        let body = LoopBody::new(vec![
            assign_scalar("t", "t", binop(BinOp::Add, arr("A"), c(1))),
            assign("b", "B", 0, binop(BinOp::Mul, kn_ir::scalar("t"), c(2))),
            assign("c", "C", 0, binop(BinOp::Add, kn_ir::scalar("t"), c(3))),
            // An unrelated fourth statement CAN split off.
            assign("d", "D", 0, binop(BinOp::Add, arr_at("D", -1), c(1))),
        ]);
        let pieces = fission_pieces(&flat(&body)).unwrap();
        assert_eq!(pieces, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn pieces_cover_all_statements_exactly_once() {
        let body = LoopBody::new(vec![
            assign("a", "A", 0, binop(BinOp::Add, arr_at("A", -1), c(1))),
            assign("b", "B", 0, arr("A")),
            assign("q", "Q", 0, binop(BinOp::Mul, arr_at("Q", -1), c(5))),
            assign("r", "R", 0, arr_at("Q", -2)),
        ]);
        let f = flat(&body);
        let pieces = fission_pieces(&f).unwrap();
        let mut seen: Vec<usize> = pieces.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..f.len()).collect::<Vec<_>>());
        assert!(pieces.len() >= 2);
    }

    #[test]
    fn manifest_order_respects_cross_piece_flow() {
        // Consumer written first in the body, producer later (carried):
        // the manifest must still put the producer's piece first.
        let body = LoopBody::new(vec![
            assign("use", "U", 0, arr_at("P", -1)),
            assign("prod", "P", 0, binop(BinOp::Add, arr("C"), c(2))),
        ]);
        let f = flat(&body);
        // P is written by stmt 1 and read (carried) by stmt 0: flow 1→0.
        let pieces = fission_pieces(&f).unwrap();
        assert_eq!(pieces, vec![vec![1], vec![0]]);
    }
}
