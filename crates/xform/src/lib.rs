#![forbid(unsafe_code)]
//! # kn-xform — loop transformations certified by differential execution
//!
//! The scheduler downstream of this crate (kn-sched) takes the loop it is
//! given and finds the best static schedule the dependences allow. This
//! crate changes what it is given:
//!
//! * [`fission`] — split a loop into maximal independently schedulable
//!   sub-loops along the condensation of its dependence graph;
//! * [`reduce`] — recognize serial accumulation chains over associative
//!   operators and rewrite them into privatize-and-reduce form, deleting
//!   the distance-1 recurrence that pins the MII;
//! * [`pipeline`] — the ordered pass pipeline with per-loop reporting
//!   ([`TransformReport`]) and stable `skipped(XSnn/XRnn)` codes;
//! * [`diff`] — the differential-equivalence harness: every applied
//!   transform is executed against the original on seeded inputs and must
//!   produce a bit-identical observable store before it is returned.
//!
//! Nothing here is trusted by construction: [`transform_loop`] refuses to
//! hand back a rewrite it could not prove. See the [`transforms`] module
//! for the full pass catalogue and legality rules.

pub mod diff;
pub mod fission;
pub mod pipeline;
pub mod reduce;

pub use diff::{check_equivalence, observable, run_transformed, EquivMismatch, EquivOptions};
pub use fission::{fission_pieces, FissionSkip};
pub use pipeline::{
    transform_flat, transform_loop, Epilogue, PassStatus, Piece, TransformError, TransformOptions,
    TransformOutput, TransformReport, Transformed,
};
pub use reduce::{canonicalize_compare_updates, recognize_reductions, ReduceOutcome, ReduceSkip};

/// The transform catalogue: passes, legality conditions, reassociation
/// policy, and how to add a pass.
#[doc = include_str!("../../../docs/transforms.md")]
pub mod transforms {}
