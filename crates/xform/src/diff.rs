//! Differential-equivalence harness.
//!
//! A transform is *proved*, not trusted: run the original loop and the
//! transformed program (pieces back-to-back against shared memory, then
//! the reduction epilogues) on the same seeded inputs, project both final
//! stores down to what the surrounding program can observe, and demand
//! bit-identical results. The projection drops only storage the transform
//! itself introduced (`*__red` element arrays) or eliminated
//! (canonicalized-away predicate scalars) — every original array cell and
//! scalar must survive untouched.
//!
//! Equality is exact (`u64`): the recognized operators (wrapping add/mul,
//! min, max) are genuinely associative and commutative on `u64`, so
//! reassociation introduces no drift. A floating-point instantiation of
//! this IR would need a tolerance policy instead — see
//! `docs/transforms.md`.

use crate::pipeline::Transformed;
use kn_ir::{
    apply_op, interpret, interpret_into, seeded_external_value, seeded_scalar_init, GuardedAssign,
    Store,
};
use std::collections::BTreeSet;

/// Harness strength. Defaults (8 seeds × 48 iterations) are what
/// [`crate::pipeline::transform_flat`] certifies every transform with;
/// property tests crank `seeds` higher.
#[derive(Clone, Copy, Debug)]
pub struct EquivOptions {
    /// Iterations to run each program for.
    pub iters: u32,
    /// Number of distinct seeded input memories (seeds `0..seeds`; seed 0
    /// is the unmixed runtime memory).
    pub seeds: u64,
}

impl Default for EquivOptions {
    fn default() -> Self {
        Self {
            iters: 48,
            seeds: 8,
        }
    }
}

/// A concrete counterexample: the first observable location on which the
/// two programs disagree under some seed.
#[derive(Clone, Debug)]
pub struct EquivMismatch {
    pub seed: u64,
    /// `"A[3]"` or `"scalar acc"`.
    pub location: String,
    pub original: u64,
    pub transformed: u64,
}

impl std::fmt::Display for EquivMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {}: {} is {} in the original but {} after transform",
            self.seed, self.location, self.original, self.transformed
        )
    }
}

/// Execute the transformed program: each piece as a complete sequential
/// loop over the full iteration space, in manifest order, against shared
/// memory; then each epilogue folds its element array back into the
/// accumulator scalar (seeded initial value first, elements in index
/// order).
pub fn run_transformed(t: &Transformed, iters: u32, seed: u64) -> Store {
    let mut store = Store::default();
    for piece in &t.pieces {
        interpret_into(&mut store, &piece.body, iters, seed);
    }
    for ep in &t.epilogues {
        let mut acc = seeded_scalar_init(seed, &ep.scalar);
        for i in 0..iters as i64 {
            let v = store
                .arrays
                .get(&(ep.elements.clone(), i))
                .copied()
                .expect("rewritten reduction writes every element unconditionally");
            acc = apply_op(ep.op, acc, v);
        }
        store.scalars.insert(ep.scalar.clone(), acc);
    }
    store
}

/// Project a final store down to the observable part: drop arrays the
/// transform introduced and scalars it eliminated.
pub fn observable(store: &Store, t: &Transformed) -> Store {
    let introduced: BTreeSet<&str> = t.introduced_arrays.iter().map(String::as_str).collect();
    let removed: BTreeSet<&str> = t.removed_scalars.iter().map(String::as_str).collect();
    Store {
        arrays: store
            .arrays
            .iter()
            .filter(|((a, _), _)| !introduced.contains(a.as_str()))
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        scalars: store
            .scalars
            .iter()
            .filter(|(s, _)| !removed.contains(s.as_str()))
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
    }
}

/// Run original vs transformed on every seed and demand identical
/// observable memory. Returns the first counterexample found.
///
/// Comparison is *semantic*, not write-set-based: a location one program
/// wrote and the other did not reads back as its seeded initial value in
/// the non-writer, and only an actual value difference is a mismatch.
/// (Canonicalization legitimately turns the conditional `(p) m = e` into
/// an unconditional `m = max(m, e)` — same memory state, different
/// write-set.)
pub fn check_equivalence(
    original: &[GuardedAssign],
    t: &Transformed,
    opts: &EquivOptions,
) -> Result<(), Box<EquivMismatch>> {
    for seed in 0..opts.seeds {
        let a = observable(&interpret(original, opts.iters, seed), t);
        let b = observable(&run_transformed(t, opts.iters, seed), t);
        if let Some(m) = first_diff(seed, &a, &b) {
            return Err(Box::new(m));
        }
    }
    Ok(())
}

fn first_diff(seed: u64, a: &Store, b: &Store) -> Option<EquivMismatch> {
    let array_keys: BTreeSet<_> = a.arrays.keys().chain(b.arrays.keys()).cloned().collect();
    for k in array_keys {
        let fallback = || seeded_external_value(seed, &k.0, k.1);
        let va = a.arrays.get(&k).copied().unwrap_or_else(fallback);
        let vb = b.arrays.get(&k).copied().unwrap_or_else(fallback);
        if va != vb {
            return Some(EquivMismatch {
                seed,
                location: format!("{}[{}]", k.0, k.1),
                original: va,
                transformed: vb,
            });
        }
    }
    let scalar_keys: BTreeSet<_> = a.scalars.keys().chain(b.scalars.keys()).cloned().collect();
    for k in scalar_keys {
        let va = a
            .scalars
            .get(&k)
            .copied()
            .unwrap_or_else(|| seeded_scalar_init(seed, &k));
        let vb = b
            .scalars
            .get(&k)
            .copied()
            .unwrap_or_else(|| seeded_scalar_init(seed, &k));
        if va != vb {
            return Some(EquivMismatch {
                seed,
                location: format!("scalar {k}"),
                original: va,
                transformed: vb,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{transform_loop, TransformOptions};
    use kn_ir::{
        arr, arr_at, assign, assign_scalar, binop, c, if_convert, if_stmt, scalar, BinOp, LoopBody,
    };

    #[test]
    fn fissioned_loop_matches_serial_on_many_seeds() {
        let body = LoopBody::new(vec![
            assign("a", "A", 0, binop(BinOp::Add, arr("C"), c(1))),
            assign("b", "B", 0, arr_at("A", -1)),
            assign("q", "Q", 0, binop(BinOp::Mul, arr_at("Q", -1), c(5))),
        ]);
        let out = transform_loop(
            "f",
            &body,
            &TransformOptions {
                fission: true,
                reduce: false,
            },
        )
        .unwrap();
        assert!(out.report.fission.applied());
        // transform_loop already certified 8 seeds; push to 64 here.
        let flat = if_convert(&body);
        check_equivalence(
            &flat,
            &out.transformed,
            &EquivOptions {
                iters: 48,
                seeds: 64,
            },
        )
        .unwrap();
    }

    #[test]
    fn reduction_fold_matches_serial_accumulation_exactly() {
        let body = LoopBody::new(vec![assign_scalar(
            "acc",
            "acc",
            binop(BinOp::Mul, scalar("acc"), arr("A")),
        )]);
        let out = transform_loop("r", &body, &TransformOptions::all()).unwrap();
        let flat = if_convert(&body);
        check_equivalence(
            &flat,
            &out.transformed,
            &EquivOptions {
                iters: 48,
                seeds: 64,
            },
        )
        .unwrap();
    }

    #[test]
    fn canonicalized_max_matches_the_guarded_original() {
        // The guarded-compare idiom: the transformed program has no p0
        // scalar at all, yet every other observable must agree.
        let body = LoopBody::new(vec![if_stmt(
            binop(BinOp::Gt, arr("D"), scalar("m")),
            vec![assign_scalar("m", "m", arr("D"))],
            vec![],
        )]);
        let out = transform_loop("mx", &body, &TransformOptions::all()).unwrap();
        assert_eq!(out.transformed.removed_scalars, vec!["p0".to_string()]);
        let flat = if_convert(&body);
        check_equivalence(
            &flat,
            &out.transformed,
            &EquivOptions {
                iters: 48,
                seeds: 64,
            },
        )
        .unwrap();
    }

    #[test]
    fn projection_hides_introduced_and_removed_storage() {
        let body = LoopBody::new(vec![assign_scalar(
            "acc",
            "acc",
            binop(BinOp::Add, scalar("acc"), arr("A")),
        )]);
        let out = transform_loop("p", &body, &TransformOptions::all()).unwrap();
        let raw = run_transformed(&out.transformed, 8, 0);
        assert!(
            raw.arrays.keys().any(|(a, _)| a == "acc__red"),
            "private elements exist in the raw store"
        );
        let obs = observable(&raw, &out.transformed);
        assert!(
            obs.arrays.keys().all(|(a, _)| a != "acc__red"),
            "but not in the observable store"
        );
        assert!(obs.scalars.contains_key("acc"));
    }

    #[test]
    fn a_broken_transform_is_caught() {
        // Sabotage: claim the reduction is an add when the loop multiplies.
        let body = LoopBody::new(vec![assign_scalar(
            "acc",
            "acc",
            binop(BinOp::Mul, scalar("acc"), arr("A")),
        )]);
        let out = transform_loop("sab", &body, &TransformOptions::all()).unwrap();
        let mut broken = out.transformed.clone();
        broken.epilogues[0].op = BinOp::Add;
        let flat = if_convert(&body);
        let err = check_equivalence(&flat, &broken, &EquivOptions::default()).unwrap_err();
        assert_eq!(err.location, "scalar acc");
    }

    #[test]
    fn mismatch_renders_location_and_seed() {
        let m = EquivMismatch {
            seed: 3,
            location: "A[5]".into(),
            original: 1,
            transformed: 2,
        };
        let s = m.to_string();
        assert!(s.contains("seed 3") && s.contains("A[5]"), "{s}");
    }
}
