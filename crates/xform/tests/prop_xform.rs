//! Property suites for the transform pipeline (ISSUE 10 satellite 1).
//!
//! Bodies come from `kn_workloads::random_transformable_body` — a seeded
//! mix of doalls, distance-1 self-recurrences, carried consumers, and
//! associative scalar reduction chains. Neither suite assumes a pass
//! fires: the properties must hold on applied *and* skipped outcomes,
//! and `transform_flat` itself certifies every applied transform
//! differentially (an `Err` here means the pass produced a program that
//! disagrees with the original on some seeded input).

use kn_ir::{analyze_dependences, if_convert, AnalysisOptions};
use kn_workloads::{random_transformable_body, RandomXformConfig};
use kn_xform::{check_equivalence, transform_flat, EquivOptions, TransformOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fission cover + legality: the pieces partition the statement
    /// indices exactly, and every dependence (flow, anti, output — array
    /// or scalar) either stays inside one piece or points from an earlier
    /// manifest piece to a later one. A violated cross-piece flow would
    /// read a value the producer piece has not written yet.
    #[test]
    fn fission_partitions_and_never_violates_a_dependence(
        seed in 0u64..1_000_000,
        stmts in 2usize..=6,
        reductions in 0usize..=2,
    ) {
        let cfg = RandomXformConfig { stmts, reductions };
        let body = random_transformable_body(seed, &cfg);
        let flat = if_convert(&body);
        let out = transform_flat(
            "prop",
            &flat,
            &TransformOptions { fission: true, reduce: false },
        )
        .expect("certified transform");

        // Exact partition of 0..n, regardless of applied/skipped.
        let mut covered: Vec<usize> = out
            .transformed
            .pieces
            .iter()
            .flat_map(|p| p.indices.iter().copied())
            .collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..flat.len()).collect::<Vec<_>>());

        // Manifest order respects every dependence direction.
        let mut piece_of = vec![usize::MAX; flat.len()];
        for (pos, piece) in out.transformed.pieces.iter().enumerate() {
            for &i in &piece.indices {
                piece_of[i] = pos;
            }
        }
        for d in analyze_dependences(&flat, &AnalysisOptions::default()) {
            prop_assert!(
                piece_of[d.src] <= piece_of[d.dst],
                "{:?} {} stmt {} (piece {}) -> stmt {} (piece {}) runs backwards",
                d.kind, d.var, d.src, piece_of[d.src], d.dst, piece_of[d.dst]
            );
        }
    }

    /// Reduction differential: the generator's reduction chains are
    /// always recognizable (associative op, private accumulator), and the
    /// rewritten program matches the original on 64 seeded memories —
    /// well past the 8 seeds `transform_flat` certifies with.
    #[test]
    fn recognized_reductions_match_serial_execution_on_64_seeds(
        seed in 0u64..1_000_000,
        stmts in 0usize..=4,
        reductions in 1usize..=3,
    ) {
        let cfg = RandomXformConfig { stmts, reductions };
        let body = random_transformable_body(seed, &cfg);
        let flat = if_convert(&body);
        let out = transform_flat("prop", &flat, &TransformOptions::all())
            .expect("certified transform");
        prop_assert!(out.report.reduce.applied(), "report: {:?}", out.report.reduce);
        prop_assert_eq!(out.transformed.epilogues.len(), reductions);
        check_equivalence(
            &flat,
            &out.transformed,
            &EquivOptions { iters: 48, seeds: 64 },
        )
        .map_err(|m| TestCaseError::fail(m.to_string()))?;
    }
}
