//! Integration tests for the batch scheduling service's contract
//! (`kn_core::service` module docs): responses are keyed by request id
//! and independent of worker count, submission order, and completion
//! order; failures — including panics inside the pipeline — come back as
//! error responses without wedging `drain` or poisoning the pool.

use kn_core::doacross::Reorder;
use kn_core::experiments::table1::Table1Config;
use kn_core::service::{
    execute, LoopRequest, LoopSource, RequestId, ScheduleRequest, ScheduleResponse, Service,
    ServiceError,
};
use kn_core::sim::{EventEngine, LinkModel, SimOptions, TrafficModel};
use kn_core::workloads::Workload;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn figure7_text() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../corpus/figure7.ddg"
    ))
    .expect("corpus file present")
}

/// A batch covering every request variant, both engines, contended and
/// free links, and every source kind.
fn mixed_batch() -> Vec<ScheduleRequest> {
    let contended = |engine| SimOptions {
        link: LinkModel::SingleMessage,
        engine,
    };
    vec![
        ScheduleRequest::loop_on_corpus("figure7"),
        ScheduleRequest::loop_on_corpus("cytron86"),
        ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::Corpus("elliptic".into()),
            sim: contended(EventEngine::Heap),
            traffic: TrafficModel { mm: 3, seed: 5 },
            iters: 50,
            ..LoopRequest::default()
        }),
        ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::Corpus("elliptic".into()),
            sim: contended(EventEngine::Calendar),
            traffic: TrafficModel { mm: 3, seed: 5 },
            iters: 50,
            ..LoopRequest::default()
        }),
        ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::DdgText(figure7_text()),
            procs: Some(2),
            k: Some(2),
            scheduler: kn_core::service::SchedulerChoice::DoacrossBest,
            ..LoopRequest::default()
        }),
        ScheduleRequest::Table1Row {
            config: Arc::new(Table1Config {
                seeds: Vec::new(),
                iters: 40,
                doacross_reorder: Reorder::Natural,
                ..Table1Config::default()
            }),
            seed: 3,
        },
        ScheduleRequest::ContentionCell {
            seed: 2,
            k: 3,
            procs: 8,
            iters: 30,
            engine: EventEngine::Calendar,
        },
        ScheduleRequest::Figure {
            workload: kn_core::workloads::figure7(),
            iters: 30,
            sim: SimOptions::contended(),
        },
    ]
}

fn debug_of(r: &Result<ScheduleResponse, ServiceError>) -> String {
    format!("{r:?}")
}

/// Deterministic Fisher–Yates with a splitmix64 stream.
fn shuffle(xs: &mut [usize], mut state: u64) {
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..xs.len()).rev() {
        xs.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// The headline guarantee: the same batch through 1, 2, and 8 workers —
/// submitted in a different order each time — answers every request
/// identically to the sequential reference executor, keyed by id.
#[test]
fn responses_identical_across_worker_counts_and_submission_orders() {
    let reqs = mixed_batch();
    let baseline: Vec<String> = reqs.iter().map(|r| debug_of(&execute(r))).collect();
    // The two engine twins must themselves agree (same cell, different
    // event queue) — a sanity check on the baseline itself.
    assert_eq!(baseline[2], baseline[3], "engine choice must be invisible");
    for (workers, shuffle_seed) in [(1usize, 11u64), (2, 22), (8, 33)] {
        let svc = Service::new(workers);
        let mut order: Vec<usize> = (0..reqs.len()).collect();
        shuffle(&mut order, shuffle_seed);
        let submitted: Vec<(usize, RequestId)> = order
            .iter()
            .map(|&i| (i, svc.submit(reqs[i].clone())))
            .collect();
        let ids: Vec<RequestId> = submitted.iter().map(|&(_, id)| id).collect();
        let responses: HashMap<RequestId, _> = svc.collect(&ids).into_iter().collect();
        for &(i, id) in &submitted {
            assert_eq!(
                debug_of(&responses[&id]),
                baseline[i],
                "request {i} diverged on a {workers}-worker pool"
            );
        }
    }
}

/// The ISSUE's bugfix scenario: a malformed DDG request returns an error
/// response (or, since the `kn-verify` admission gate, an immediate
/// rejection) for that id — `drain` is not wedged and later requests on
/// the same pool succeed.
#[test]
fn malformed_ddg_request_is_an_error_response_not_a_wedge() {
    use kn_core::service::{RejectReason, SubmitOptions, SubmitOutcome};
    let svc = Service::new(2);
    // References a node that is never declared: the admission lint gate
    // rejects it with its stable code before it costs a queue slot.
    let out = svc.try_submit(
        ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::DdgText("node A\nedge A -> B\n".into()),
            ..LoopRequest::default()
        }),
        SubmitOptions::default(),
    );
    assert!(
        matches!(
            &out,
            SubmitOutcome::Rejected(RejectReason::InvalidDdg { code, .. }) if code == "KN003"
        ),
        "{out:?}"
    );
    let ids = svc.submit_batch(vec![
        // Unreadable file: not a lint matter — the worker answers with
        // the established BadRequest message.
        ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::DdgFile("corpus/does_not_exist.ddg".into()),
            ..LoopRequest::default()
        }),
        ScheduleRequest::loop_on_corpus("figure7"),
    ]);
    let got = svc.collect(&ids);
    assert!(
        matches!(&got[0].1, Err(ServiceError::BadRequest(m)) if m.contains("cannot read")),
        "{:?}",
        got[0].1
    );
    assert!(got[1].1.is_ok(), "{:?}", got[1].1);
    // The pool is still healthy after serving errors.
    let id = svc.submit(ScheduleRequest::loop_on_corpus("elliptic"));
    assert!(svc.collect(&[id])[0].1.is_ok());
    assert!(svc.drain().is_empty(), "nothing left outstanding");
    let stats = svc.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.errors, 1);
}

/// A request that panics *inside the pipeline* (not a parse error) is
/// caught at the worker boundary: its id gets `ServiceError::Panicked`,
/// the worker survives, and subsequent requests are unaffected.
#[test]
fn panicking_request_yields_error_response_and_pool_survives() {
    // figure_report_with `expect`s schedulability; an unnormalized graph
    // (dist=3 self-loop) makes it panic deterministically.
    let mut b = kn_core::ddg::DdgBuilder::new();
    let x = b.node("x");
    b.dep_dist(x, x, 3);
    let bad = Workload {
        name: "unnormalized",
        graph: b.build().unwrap(),
        k: 1,
        procs: 2,
        description: "dist=3 self-loop: schedule_loop refuses, report panics",
    };
    let svc = Service::new(2);
    let panicking = svc.submit(ScheduleRequest::Figure {
        workload: bad,
        iters: 10,
        sim: SimOptions::default(),
    });
    let healthy = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
    let got = svc.collect(&[panicking, healthy]);
    assert!(
        matches!(&got[0].1, Err(ServiceError::Panicked(_))),
        "{:?}",
        got[0].1
    );
    assert!(got[1].1.is_ok(), "{:?}", got[1].1);
    // Same pool, after the panic: still serving, drain still returns.
    let ids = svc.submit_batch(vec![
        ScheduleRequest::loop_on_corpus("cytron86"),
        ScheduleRequest::loop_on_corpus("livermore18"),
    ]);
    let after = svc.collect(&ids);
    assert!(after.iter().all(|(_, r)| r.is_ok()));
    assert!(svc.drain().is_empty());
    assert_eq!(svc.stats().errors, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Determinism over random small programs: an in-memory random Cyclic
    /// loop scheduled and simulated through the (persistent, shared)
    /// global service answers exactly like the sequential executor, under
    /// every combination of engine, link, scheduler, and traffic drawn.
    #[test]
    fn random_programs_answer_like_the_sequential_executor(
        seed in 0u64..2000,
        nodes in 4usize..10,
        procs in 2usize..8,
        k in 0u32..4,
        mm in 1u32..5,
        pick in 0usize..4,
    ) {
        let cfg = kn_core::workloads::RandomLoopConfig {
            nodes,
            lcds: nodes / 2,
            sds: nodes,
            min_latency: 1,
            max_latency: 3,
        };
        let graph = kn_core::workloads::random_cyclic_loop(seed, &cfg);
        let (sim, scheduler) = match pick {
            0 => (SimOptions::default(), kn_core::service::SchedulerChoice::Cyclic),
            1 => (SimOptions::contended(), kn_core::service::SchedulerChoice::Cyclic),
            2 => (
                SimOptions { link: LinkModel::SingleMessage, engine: EventEngine::Heap },
                kn_core::service::SchedulerChoice::Cyclic,
            ),
            _ => (SimOptions::default(), kn_core::service::SchedulerChoice::DoacrossNatural),
        };
        let req = ScheduleRequest::Loop(LoopRequest {
            source: LoopSource::Graph { name: format!("random{seed}"), graph },
            procs: Some(procs),
            k: Some(k),
            iters: 30,
            sim,
            traffic: TrafficModel { mm, seed },
            scheduler,
            transform: kn_core::service::TransformMode::Off,
        });
        let want = debug_of(&execute(&req));
        let svc = kn_core::service::global();
        let id = svc.submit(req);
        let got = debug_of(&svc.collect(&[id])[0].1);
        prop_assert_eq!(got, want);
    }
}
