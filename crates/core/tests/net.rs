//! Integration tests for the std-TCP front-end (`kn_core::service::net`):
//! newline-delimited `service::wire` requests over a socket, served by a
//! shared [`Service`]. The front-end must survive hostile clients —
//! malformed floods, mid-request disconnects, over-cap connection storms
//! — and still drain gracefully with queued work.

use kn_core::service::net::{NetConfig, NetServer};
use kn_core::service::{wire, DrainPolicy, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn serve(workers: usize, cfg: NetConfig) -> (NetServer, Arc<Service>) {
    let svc = Arc::new(Service::with_config(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    }));
    let server = NetServer::bind(Arc::clone(&svc), "127.0.0.1:0", cfg).expect("bind ephemeral");
    (server, svc)
}

fn connect(server: &NetServer) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

/// Send `input` on one connection, half-close the write side, and read
/// every response line until the server closes the stream.
fn round_trip(server: &NetServer, input: &str) -> Vec<String> {
    let mut s = connect(server);
    s.write_all(input.as_bytes()).expect("write requests");
    s.shutdown(Shutdown::Write).expect("half-close");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read responses");
    text.lines().map(str::to_string).collect()
}

/// Responses over the socket are byte-identical to what the batch path
/// (`kn serve --requests`) emits for the same lines: same JSON, same
/// per-connection sequence numbering, comments and blanks skipped.
#[test]
fn socket_responses_match_the_batch_wire_format() {
    let (server, _svc) = serve(2, NetConfig::default());
    let input = "# comment\n\
                 corpus=figure7\n\
                 \n\
                 corpus=cytron86 scheduler=doacross\n";
    let got = round_trip(&server, input);

    let mut want = Vec::new();
    for (seq, line) in ["corpus=figure7", "corpus=cytron86 scheduler=doacross"]
        .iter()
        .enumerate()
    {
        let parsed = wire::parse_request_line(line).unwrap().unwrap();
        let result = kn_core::service::execute(&parsed.req);
        want.push(wire::response_json_with(seq as u64, &result, 1));
    }
    assert_eq!(got, want);
    let report = server.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 2);
}

/// A flood of malformed lines yields one error response per line — in
/// order, without wedging the connection or the ones that follow.
#[test]
fn malformed_line_flood_answers_errors_in_order() {
    let (server, _svc) = serve(1, NetConfig::default());
    let mut input = String::new();
    for i in 0..50 {
        input.push_str(&format!("corpus=figure7 bogus_key_{i}=1\n"));
    }
    input.push_str("corpus=figure7\n");
    let got = round_trip(&server, input.as_str());
    assert_eq!(got.len(), 51);
    for (i, line) in got.iter().take(50).enumerate() {
        assert!(
            line.starts_with(&format!("{{\"id\": {i}, \"status\": \"error\"")),
            "line {i}: {line}"
        );
    }
    assert!(
        got[50].starts_with("{\"id\": 50, \"status\": \"ok\""),
        "a good request still works after the flood: {}",
        got[50]
    );
    server.shutdown(DrainPolicy::Finish);
}

/// A client that vanishes mid-request must not take the service down or
/// leak its ledger entries: a second client gets served, and a drain
/// after shutdown finds nothing stuck.
#[test]
fn client_disconnect_mid_request_leaves_the_service_healthy() {
    let (server, svc) = serve(2, NetConfig::default());
    {
        let mut s = connect(&server);
        s.write_all(b"corpus=figure7 iters=200\ncorpus=cytron86\n")
            .expect("write");
        // Drop without reading a single byte of response.
    }
    let got = round_trip(&server, "corpus=figure7\n");
    assert_eq!(got.len(), 1);
    assert!(got[0].contains("\"status\": \"ok\""), "{}", got[0]);
    let report = server.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 2);
    // The abandoned connection's responses were still collected by its
    // writer thread — nothing left behind in the ledger.
    assert!(svc.drain().is_empty(), "disconnect leaked ledger entries");
}

/// Connections past `max_connections` get a single error line and a
/// close; the connection occupying the slot keeps working.
#[test]
fn over_cap_connection_is_turned_away_with_an_error_line() {
    let (server, _svc) = serve(
        1,
        NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        },
    );
    let mut first = connect(&server);
    // Make sure the first connection's handler thread is up (and its
    // slot counted) before probing the cap: complete one round trip.
    first.write_all(b"corpus=figure7\n").unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"status\": \"ok\""), "{line}");

    let mut second = connect(&server);
    let mut refusal = String::new();
    second.read_to_string(&mut refusal).expect("read refusal");
    assert!(
        refusal.contains("connection limit reached"),
        "over-cap connection gets an explanation: {refusal:?}"
    );

    // The occupant is unaffected.
    first.write_all(b"corpus=cytron86\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"status\": \"ok\""), "{line}");
    server.shutdown(DrainPolicy::Finish);
}

/// Shutdown with work queued behind a connection: admitted requests are
/// finished and written back (DrainPolicy::Finish), the accept loop and
/// every connection thread joins, and the client sees a clean EOF.
#[test]
fn graceful_shutdown_finishes_admitted_work() {
    let (server, _svc) = serve(1, NetConfig::default());
    let mut s = connect(&server);
    for _ in 0..4 {
        s.write_all(b"corpus=figure7 iters=80\n").unwrap();
    }
    // Shut down while those are queued — Finish drains them.
    let report = server.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 1);
    assert_eq!(report.shed, 0);
    // Everything admitted before the stop flag was answered; the stream
    // then closed. (The race on how many of the 4 lines were read before
    // the stop is inherent — but every response present must be ok.)
    // Best-effort: the server may have fully closed the stream already,
    // and closing with unread client bytes pending manifests as a reset
    // rather than a clean EOF — both are fine, partial data still counts.
    let _ = s.shutdown(Shutdown::Write);
    let mut text = String::new();
    match s.read_to_string(&mut text) {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("unexpected read error: {e}"),
    }
    for line in text.lines() {
        assert!(line.contains("\"status\": \"ok\""), "{line}");
    }
}

/// An idle connection past the read timeout is closed — even one that
/// sent half a line and stopped — while the listener stays up.
#[test]
fn idle_connection_times_out_without_killing_the_listener() {
    let (server, _svc) = serve(
        1,
        NetConfig {
            read_timeout: Duration::from_millis(120),
            ..NetConfig::default()
        },
    );
    let mut s = connect(&server);
    // Half a line, no newline — then silence.
    s.write_all(b"corpus=fig").unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text)
        .expect("server closes the idle stream");
    assert_eq!(text, "", "no response for an unterminated line");
    // The listener is still alive for the next client.
    let got = round_trip(&server, "corpus=figure7\n");
    assert_eq!(got.len(), 1);
    assert!(got[0].contains("\"status\": \"ok\""), "{}", got[0]);
    server.shutdown(DrainPolicy::Finish);
}
