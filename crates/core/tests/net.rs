//! Integration tests for the std-TCP front-end (`kn_core::service::net`):
//! newline-delimited `service::wire` requests over a socket, served by a
//! shared [`Service`]. The front-end must survive hostile clients —
//! malformed floods, mid-request disconnects, over-cap connection storms
//! — and still drain gracefully with queued work.

use kn_core::service::faultinject::{Fault, FaultPlan};
use kn_core::service::net::{NetConfig, NetServer};
use kn_core::service::{wire, DrainPolicy, RequestId, Service, ServiceConfig, WatchdogConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn serve(workers: usize, cfg: NetConfig) -> (NetServer, Arc<Service>) {
    serve_with(
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
        cfg,
    )
}

fn serve_with(svc_cfg: ServiceConfig, cfg: NetConfig) -> (NetServer, Arc<Service>) {
    let svc = Arc::new(Service::with_config(svc_cfg));
    let server = NetServer::bind(Arc::clone(&svc), "127.0.0.1:0", cfg).expect("bind ephemeral");
    (server, svc)
}

fn connect(server: &NetServer) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

/// Send `input` on one connection, half-close the write side, and read
/// every response line until the server closes the stream.
fn round_trip(server: &NetServer, input: &str) -> Vec<String> {
    let mut s = connect(server);
    s.write_all(input.as_bytes()).expect("write requests");
    s.shutdown(Shutdown::Write).expect("half-close");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read responses");
    text.lines().map(str::to_string).collect()
}

/// Responses over the socket are byte-identical to what the batch path
/// (`kn serve --requests`) emits for the same lines: same JSON, same
/// per-connection sequence numbering, comments and blanks skipped.
#[test]
fn socket_responses_match_the_batch_wire_format() {
    let (server, _svc) = serve(2, NetConfig::default());
    let input = "# comment\n\
                 corpus=figure7\n\
                 \n\
                 corpus=cytron86 scheduler=doacross\n";
    let got = round_trip(&server, input);

    let mut want = Vec::new();
    for (seq, line) in ["corpus=figure7", "corpus=cytron86 scheduler=doacross"]
        .iter()
        .enumerate()
    {
        let parsed = wire::parse_request_line(line).unwrap().unwrap();
        let result = kn_core::service::execute(&parsed.req);
        want.push(wire::response_json_with(seq as u64, &result, 1));
    }
    assert_eq!(got, want);
    let report = server.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 2);
}

/// A flood of malformed lines yields one error response per line — in
/// order, without wedging the connection or the ones that follow.
#[test]
fn malformed_line_flood_answers_errors_in_order() {
    let (server, _svc) = serve(1, NetConfig::default());
    let mut input = String::new();
    for i in 0..50 {
        input.push_str(&format!("corpus=figure7 bogus_key_{i}=1\n"));
    }
    input.push_str("corpus=figure7\n");
    let got = round_trip(&server, input.as_str());
    assert_eq!(got.len(), 51);
    for (i, line) in got.iter().take(50).enumerate() {
        assert!(
            line.starts_with(&format!("{{\"id\": {i}, \"status\": \"error\"")),
            "line {i}: {line}"
        );
    }
    assert!(
        got[50].starts_with("{\"id\": 50, \"status\": \"ok\""),
        "a good request still works after the flood: {}",
        got[50]
    );
    server.shutdown(DrainPolicy::Finish);
}

/// A client that vanishes mid-request must not take the service down or
/// leak its ledger entries: a second client gets served, and a drain
/// after shutdown finds nothing stuck.
#[test]
fn client_disconnect_mid_request_leaves_the_service_healthy() {
    let (server, svc) = serve(2, NetConfig::default());
    {
        let mut s = connect(&server);
        s.write_all(b"corpus=figure7 iters=200\ncorpus=cytron86\n")
            .expect("write");
        // Drop without reading a single byte of response.
    }
    let got = round_trip(&server, "corpus=figure7\n");
    assert_eq!(got.len(), 1);
    assert!(got[0].contains("\"status\": \"ok\""), "{}", got[0]);
    let report = server.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 2);
    // The abandoned connection's responses were still collected by its
    // writer thread — nothing left behind in the ledger.
    assert!(svc.drain().is_empty(), "disconnect leaked ledger entries");
}

/// Connections past `max_connections` get a single error line and a
/// close; the connection occupying the slot keeps working.
#[test]
fn over_cap_connection_is_turned_away_with_an_error_line() {
    let (server, _svc) = serve(
        1,
        NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        },
    );
    let mut first = connect(&server);
    // Make sure the first connection's handler thread is up (and its
    // slot counted) before probing the cap: complete one round trip.
    first.write_all(b"corpus=figure7\n").unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"status\": \"ok\""), "{line}");

    let mut second = connect(&server);
    let mut refusal = String::new();
    second.read_to_string(&mut refusal).expect("read refusal");
    assert!(
        refusal.contains("connection limit reached"),
        "over-cap connection gets an explanation: {refusal:?}"
    );

    // The occupant is unaffected.
    first.write_all(b"corpus=cytron86\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"status\": \"ok\""), "{line}");
    server.shutdown(DrainPolicy::Finish);
}

/// Shutdown with work queued behind a connection: admitted requests are
/// finished and written back (DrainPolicy::Finish), the accept loop and
/// every connection thread joins, and the client sees a clean EOF.
#[test]
fn graceful_shutdown_finishes_admitted_work() {
    let (server, _svc) = serve(1, NetConfig::default());
    let mut s = connect(&server);
    for _ in 0..4 {
        s.write_all(b"corpus=figure7 iters=80\n").unwrap();
    }
    // Shut down while those are queued — Finish drains them.
    let report = server.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 1);
    assert_eq!(report.shed, 0);
    // Everything admitted before the stop flag was answered; the stream
    // then closed. (The race on how many of the 4 lines were read before
    // the stop is inherent — but every response present must be ok.)
    // Best-effort: the server may have fully closed the stream already,
    // and closing with unread client bytes pending manifests as a reset
    // rather than a clean EOF — both are fine, partial data still counts.
    let _ = s.shutdown(Shutdown::Write);
    let mut text = String::new();
    match s.read_to_string(&mut text) {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("unexpected read error: {e}"),
    }
    for line in text.lines() {
        assert!(line.contains("\"status\": \"ok\""), "{line}");
    }
}

/// An idle connection past the read timeout is closed — but a request
/// line that *straddled* the timeout (half a line, then silence) is
/// cleanly refused with an error response, never silently dropped. An
/// idle connection with nothing buffered still closes without output,
/// and the listener stays up either way.
#[test]
fn idle_connection_times_out_without_killing_the_listener() {
    let (server, _svc) = serve(
        1,
        NetConfig {
            read_timeout: Duration::from_millis(120),
            ..NetConfig::default()
        },
    );
    // Half a line, no newline — then silence: refused, not dropped.
    let mut s = connect(&server);
    s.write_all(b"corpus=fig").unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text)
        .expect("server closes the idle stream");
    assert!(
        text.contains("timed out with a partial request line"),
        "straddling line is refused, not dropped: {text:?}"
    );
    assert_eq!(text.lines().count(), 1);

    // Nothing buffered at all: a plain close, no response line.
    let mut quiet = connect(&server);
    let mut nothing = String::new();
    quiet.read_to_string(&mut nothing).expect("clean close");
    assert_eq!(nothing, "", "an empty idle connection gets no response");

    // The listener is still alive for the next client.
    let got = round_trip(&server, "corpus=figure7\n");
    assert_eq!(got.len(), 1);
    assert!(got[0].contains("\"status\": \"ok\""), "{}", got[0]);
    server.shutdown(DrainPolicy::Finish);
}

/// A complete request followed by a partial line that straddles the
/// timeout: the finished request is answered, the fragment is refused.
#[test]
fn partial_line_after_a_served_request_is_refused_not_dropped() {
    let (server, _svc) = serve(
        1,
        NetConfig {
            read_timeout: Duration::from_millis(120),
            ..NetConfig::default()
        },
    );
    let mut s = connect(&server);
    s.write_all(b"corpus=figure7\ncorpus=cyt").unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read responses");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text:?}");
    assert!(lines[0].contains("\"status\": \"ok\""), "{}", lines[0]);
    assert!(
        lines[1].contains("timed out with a partial request line"),
        "{}",
        lines[1]
    );
    server.shutdown(DrainPolicy::Finish);
}

/// A bare `health` line over the socket answers an in-line pool snapshot,
/// interleaved in sequence order with real responses.
#[test]
fn health_line_over_tcp_reports_the_pool() {
    let (server, _svc) = serve(2, NetConfig::default());
    let got = round_trip(&server, "corpus=figure7\nhealth\n");
    assert_eq!(got.len(), 2);
    assert!(got[0].contains("\"kind\": \"loop\""), "{}", got[0]);
    assert!(
        got[1].starts_with("{\"id\": 1, \"status\": \"ok\", \"kind\": \"health\""),
        "{}",
        got[1]
    );
    assert!(got[1].contains("\"accepting\": true"), "{}", got[1]);
    server.shutdown(DrainPolicy::Finish);
}

/// The response cache is invisible over a real socket: a duplicate-heavy
/// batch through a cache-on server answers byte-for-byte what a cache-off
/// server answers — same JSON, same ids, same attempt counts — while the
/// cache-on server's counters prove the duplicates never recomputed.
#[test]
fn cached_responses_are_byte_identical_over_tcp() {
    let input = "corpus=figure7\n\
                 corpus=cytron86\n\
                 corpus=figure7\n\
                 corpus=figure7 k=3\n\
                 corpus=figure7\n";
    let (fresh_server, fresh_svc) = serve(2, NetConfig::default());
    let want = round_trip(&fresh_server, input);
    assert_eq!(fresh_svc.stats().cache_hits, 0, "cache off by default");
    fresh_server.shutdown(DrainPolicy::Finish);

    let (cached_server, cached_svc) = serve_with(
        ServiceConfig {
            workers: 2,
            cache_capacity: 64,
            ..ServiceConfig::default()
        },
        NetConfig::default(),
    );
    let got = round_trip(&cached_server, input);
    assert_eq!(got, want, "cache must be invisible on the wire");
    let stats = cached_svc.stats();
    assert!(
        stats.cache_hits + stats.cache_coalesced >= 2,
        "two duplicates of figure7 must reuse the first answer: {stats:?}"
    );
    cached_server.shutdown(DrainPolicy::Finish);
}

/// A seeded `SlowReader` net fault (dribbled response writes) changes
/// timing only: the response bytes and their order are identical to a
/// fault-free server's.
#[test]
fn slow_reader_fault_keeps_responses_byte_identical() {
    let input = "corpus=figure7\ncorpus=cytron86\ncorpus=figure7 k=3\n";
    let (clean_server, _s1) = serve(1, NetConfig::default());
    let want = round_trip(&clean_server, input);
    clean_server.shutdown(DrainPolicy::Finish);

    let plan = FaultPlan::explicit([(0, Fault::SlowReader), (2, Fault::SlowReader)]);
    let (slow_server, _s2) = serve(
        1,
        NetConfig {
            fault_plan: Some(plan),
            ..NetConfig::default()
        },
    );
    let got = round_trip(&slow_server, input);
    assert_eq!(got, want, "SlowReader must not corrupt or reorder");
    slow_server.shutdown(DrainPolicy::Finish);
}

/// A seeded `Disconnect` net fault cuts the socket after one response;
/// the client sees a clean prefix, and nothing leaks in the ledger — the
/// writer thread still collects every admitted id.
#[test]
fn disconnect_fault_leaks_nothing() {
    let plan = FaultPlan::explicit([(0, Fault::Disconnect)]);
    let (server, svc) = serve(
        1,
        NetConfig {
            fault_plan: Some(plan),
            ..NetConfig::default()
        },
    );
    let got = round_trip(&server, "corpus=figure7\ncorpus=cytron86\ncorpus=figure7\n");
    assert_eq!(got.len(), 1, "cut after the first response: {got:?}");
    assert!(
        got[0].starts_with("{\"id\": 0, \"status\": \"ok\""),
        "{}",
        got[0]
    );
    let report = server.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 1);
    assert!(svc.drain().is_empty(), "disconnect leaked ledger entries");
}

/// End-to-end backpressure: with the queue past the high-water mark the
/// reader stops pulling lines off the socket, so a flood of requests
/// behind a wedged worker admits only a bounded prefix; releasing the
/// wedge drains the flood and every line is answered.
#[test]
fn reader_stops_admitting_past_the_high_water_mark() {
    const HIGH_WATER: usize = 2;
    const FLOOD: usize = 30;
    let (server, svc) = serve_with(
        ServiceConfig {
            workers: 1,
            high_water: HIGH_WATER,
            max_attempts: 1,
            fault_plan: Some(FaultPlan::explicit([(0, Fault::Stall)]).wedged().sticky()),
            watchdog: None,
            ..ServiceConfig::default()
        },
        NetConfig::default(),
    );
    let mut s = connect(&server);
    let mut input = String::new();
    for _ in 0..FLOOD {
        input.push_str("corpus=figure7\n");
    }
    s.write_all(input.as_bytes()).unwrap();
    s.shutdown(Shutdown::Write).unwrap();

    // The worker wedges on id 0; the reader admits until the queue holds
    // high_water entries and then stops reading the socket. Wait until
    // that state is provably reached (it is stable: nothing drains).
    while !(svc.health().inflight == 1 && svc.over_high_water()) {
        std::thread::sleep(Duration::from_millis(1));
    }
    // Several poll cycles later the admitted count is still bounded:
    // the wedged dispatch plus the queue, plus at most one line the
    // reader had already pulled before the check.
    std::thread::sleep(Duration::from_millis(200));
    let admitted = svc.stats().submitted;
    assert!(
        admitted <= (HIGH_WATER + 2) as u64,
        "reader kept admitting past high water: {admitted} of {FLOOD}"
    );

    // Release the wedge: the flood drains and every line is answered.
    svc.cancel(RequestId(0));
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read all responses");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), FLOOD, "every flooded line answered");
    assert!(lines[0].contains("\"status\": \"error\""), "{}", lines[0]);
    for line in &lines[1..] {
        assert!(line.contains("\"status\": \"ok\""), "{line}");
    }
    server.shutdown(DrainPolicy::Finish);
}

/// The tentpole scenario replayed through a real socket: a wedged worker
/// is declared stuck by the watchdog, replaced, and the confiscated
/// request completes via retry — the TCP client just sees three ok
/// responses (the rescued one marked with its second attempt).
#[test]
fn stuck_worker_recovery_is_invisible_over_tcp() {
    let (server, svc) = serve_with(
        ServiceConfig {
            workers: 2,
            fault_plan: Some(FaultPlan::explicit([(0, Fault::Stall)]).wedged()),
            watchdog: Some(WatchdogConfig {
                interval: Duration::from_millis(10),
                stuck_ticks: 3,
            }),
            ..ServiceConfig::default()
        },
        NetConfig::default(),
    );
    let got = round_trip(
        &server,
        "corpus=figure7\ncorpus=cytron86\ncorpus=figure7 k=3\n",
    );
    assert_eq!(got.len(), 3);
    for line in &got {
        assert!(line.contains("\"status\": \"ok\""), "{line}");
    }
    assert!(
        got[0].contains("\"attempts\": 2"),
        "the rescued request reports its retry: {}",
        got[0]
    );
    assert_eq!(svc.stats().replaced_workers, 1);
    let report = server.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 2);
}
