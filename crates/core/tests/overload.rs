//! The ISSUE's end-to-end overload acceptance gate, driven by the
//! deterministic open-loop generator (`kn_core::service::loadgen`): at 2×
//! saturation with a 10% High / 60% Normal / 30% Low mix on a bounded
//! queue, High must miss **zero** deadlines and never be shed, Low must
//! shed first (and at a rate no lower than Normal), and every accepted
//! id must still be answered exactly once. The generator is open-loop
//! and schedule-driven, so these are policy invariants — identical on a
//! laptop and a loaded CI runner — not latency measurements.

use kn_core::service::loadgen::{self, LoadPlan};
use kn_core::service::{Priority, Service, ServiceConfig};

fn overload_service(workers: usize) -> Service {
    Service::with_config(ServiceConfig {
        workers,
        queue_capacity: 8,
        high_water: 4,
        ..ServiceConfig::default()
    })
}

#[test]
fn at_2x_saturation_high_keeps_deadlines_and_low_sheds_first() {
    let svc = overload_service(2);
    let plan = LoadPlan::default();
    let report = loadgen::run(&svc, &plan);

    // The run really crossed the high-water mark (the brownout policy
    // was exercised, not skipped).
    assert!(report.over_high_water_seen, "{report:?}");

    let high = report.lane(Priority::High);
    let normal = report.lane(Priority::Normal);
    let low = report.lane(Priority::Low);

    // Per-lane accounting: nothing lost, nothing double-answered.
    for (name, lane) in [("high", high), ("normal", normal), ("low", low)] {
        assert_eq!(
            lane.submitted,
            lane.accepted + lane.shed + lane.would_block,
            "{name} admission accounting: {lane:?}"
        );
        assert_eq!(
            lane.accepted,
            lane.ok + lane.evicted + lane.expired + lane.errors,
            "{name} completion accounting: {lane:?}"
        );
        assert_eq!(lane.errors, 0, "{name}: no execution errors here");
    }

    // High: zero deadline misses, never brownout-shed, never blocked
    // (at hard capacity it evicts downward instead).
    assert!(high.submitted > 0);
    assert_eq!(high.expired, 0, "High missed a deadline: {high:?}");
    assert_eq!(high.shed, 0, "High was brownout-shed: {high:?}");
    assert_eq!(high.would_block, 0, "High was blocked: {high:?}");
    assert_eq!(high.evicted, 0, "nothing outranks High: {high:?}");
    assert_eq!(high.ok, high.accepted);

    // Low sheds first: it lost real traffic, at a rate no lower than
    // Normal's.
    assert!(low.total_shed() > 0, "2x saturation must shed Low: {low:?}");
    let rate = |shed: u64, submitted: u64| shed as f64 / submitted.max(1) as f64;
    assert!(
        rate(low.total_shed(), low.submitted) >= rate(normal.total_shed(), normal.submitted),
        "Low must shed at >= Normal's rate: low {low:?}, normal {normal:?}"
    );

    // No faults were injected: the watchdog replaced nobody.
    assert_eq!(report.replaced_workers, 0);
}

/// The same gate holds on a single worker — the policy is queue-level,
/// not a side effect of worker parallelism.
#[test]
fn overload_policy_is_worker_count_independent() {
    let svc = overload_service(1);
    let report = loadgen::run(
        &svc,
        &LoadPlan {
            total: 60,
            ..LoadPlan::default()
        },
    );
    let high = report.lane(Priority::High);
    let low = report.lane(Priority::Low);
    assert!(report.over_high_water_seen, "{report:?}");
    assert_eq!(
        high.expired + high.shed + high.would_block + high.evicted,
        0
    );
    assert!(low.total_shed() > 0, "{report:?}");
}
