//! Integration tests for the request lifecycle layer
//! (`kn_core::service` module docs): bounded admission, deadlines,
//! cancellation, retry/backoff, graceful drain — all driven through the
//! deterministic fault-injection harness (`service::faultinject`), so
//! every assertion is exact (no sleeps standing in for synchronization).

use kn_core::service::faultinject::{Fault, FaultPlan};
use kn_core::service::{
    execute, CancelOutcome, Deadline, DrainPolicy, LoopRequest, LoopSource, Priority, RequestId,
    ScheduleRequest, Service, ServiceConfig, ServiceError, SubmitOptions, SubmitOutcome,
    WatchdogConfig,
};
use kn_core::sim::TrafficModel;
use proptest::prelude::*;
use std::time::Duration;

/// A cheap, distinct request: the paper loop under a per-index traffic
/// seed, so every response is unique and the pipeline stays fast.
fn cheap_request(i: u64) -> ScheduleRequest {
    ScheduleRequest::Loop(LoopRequest {
        source: LoopSource::Corpus("figure7".into()),
        iters: 12,
        traffic: TrafficModel { mm: 3, seed: i },
        ..LoopRequest::default()
    })
}

fn debug_of(r: &Result<kn_core::service::ScheduleResponse, ServiceError>) -> String {
    format!("{r:?}")
}

/// Deterministic Fisher–Yates with a splitmix64 stream.
fn shuffle(xs: &mut [usize], mut state: u64) {
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..xs.len()).rev() {
        xs.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// The ISSUE's acceptance scenario: panics + stalls injected on ~10% of
/// requests, deadlines set, 4 workers. The run must complete with zero
/// lost request ids, every non-faulted response byte-identical to a
/// fault-free sequential run, every faulted id recovered by retry (the
/// plan is transient and the budget is 2), and a graceful shutdown that
/// joins all workers.
#[test]
fn faulted_batch_loses_nothing_and_recovers_on_four_workers() {
    const N: u64 = 40;
    let plan = FaultPlan::seeded(0xACCE, 10)
        .with_kinds(&[Fault::Panic, Fault::Stall])
        .with_stall(Duration::from_millis(1));
    let faulted: Vec<u64> = plan.faulted_ids(N).into_iter().map(|(i, _)| i).collect();
    assert!(
        !faulted.is_empty() && faulted.len() < N as usize / 2,
        "seed must fault some but not most ids: {faulted:?}"
    );

    let svc = Service::with_config(ServiceConfig {
        workers: 4,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    });
    let mut ids = Vec::new();
    for i in 0..N {
        let outcome = svc.submit_opts(
            cheap_request(i),
            SubmitOptions {
                deadline: Some(Deadline::after(Duration::from_secs(60))),
                ..SubmitOptions::default()
            },
        );
        let SubmitOutcome::Accepted(id) = outcome else {
            panic!("admission refused at {i}: {outcome:?}");
        };
        assert_eq!(id, RequestId(i), "ids are consecutive in input order");
        ids.push(id);
    }

    // Zero lost ids: every submitted id comes back exactly once.
    let completed = svc.collect_detailed(&ids, None);
    assert_eq!(completed.len(), N as usize);
    for (i, c) in completed.iter().enumerate() {
        assert_eq!(c.id, RequestId(i as u64), "collect is sorted by id");
    }

    // Every response byte-identical to the fault-free sequential run:
    // non-faulted ids on attempt 1, faulted ids via a clean retry.
    for c in &completed {
        let want = debug_of(&execute(&cheap_request(c.id.0)));
        assert_eq!(debug_of(&c.result), want, "id {} diverged", c.id.0);
        if faulted.contains(&c.id.0) {
            assert_eq!(c.attempts, 2, "faulted id {} retried once", c.id.0);
        } else {
            assert_eq!(c.attempts, 1, "clean id {} ran once", c.id.0);
        }
    }

    let stats = svc.stats();
    assert_eq!(stats.completed, N);
    assert_eq!(stats.errors, 0, "transient faults never surface");
    assert_eq!(stats.retries, faulted.len() as u64);
    assert_eq!(stats.expired, 0, "60s deadlines never fire here");

    // Graceful shutdown: joins all four workers, sheds nothing.
    let report = svc.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 4);
    assert_eq!(report.shed, 0);
}

/// Sticky faults exhaust the retry budget and surface the final error —
/// the other half of the retry contract: transient ≠ deterministic.
#[test]
fn sticky_faults_surface_errors_after_the_retry_budget() {
    let plan = FaultPlan::explicit([(0, Fault::Panic), (2, Fault::Stall), (3, Fault::Garbage)])
        .sticky()
        .with_stall(Duration::from_millis(1));
    let svc = Service::with_config(ServiceConfig {
        workers: 2,
        max_attempts: 3,
        backoff_base: Duration::from_micros(100),
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    });
    let ids = svc.submit_batch((0..4).map(cheap_request).collect());
    let completed = svc.collect_detailed(&ids, None);
    assert!(
        matches!(&completed[0].result, Err(ServiceError::Panicked(_))),
        "{:?}",
        completed[0].result
    );
    for i in [2usize, 3] {
        assert!(
            matches!(&completed[i].result, Err(ServiceError::Faulted(_))),
            "id {i}: {:?}",
            completed[i].result
        );
    }
    assert!(completed[1].result.is_ok());
    for i in [0usize, 2, 3] {
        assert_eq!(completed[i].attempts, 3, "budget exhausted on id {i}");
    }
    assert_eq!(completed[1].attempts, 1);
    assert_eq!(svc.stats().errors, 3);
    assert_eq!(svc.stats().retries, 6, "two retries per sticky fault");
}

/// Cancellation: queued work is removed immediately; finished work says
/// so; ids the service never admitted say so too.
#[test]
fn cancel_covers_queued_done_and_unknown() {
    // One worker wedged on a long stall keeps the rest of the queue
    // parked where cancel can reach it.
    let plan = FaultPlan::explicit([(0, Fault::Stall)]).with_stall(Duration::from_millis(300));
    let svc = Service::with_config(ServiceConfig {
        workers: 1,
        max_attempts: 1,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    });
    let stalled = svc.submit(cheap_request(0));
    let queued = svc.submit(cheap_request(1));
    let kept = svc.submit(cheap_request(2));

    assert_eq!(svc.cancel(queued), CancelOutcome::Dequeued);
    // Its Cancelled response is now sitting uncollected in the ledger:
    // a second cancel finds it already answered.
    assert_eq!(svc.cancel(queued), CancelOutcome::AlreadyDone);
    assert_eq!(svc.cancel(RequestId(99)), CancelOutcome::Unknown);

    let got = svc.collect(&[stalled, queued, kept]);
    assert!(
        matches!(&got[1].1, Err(ServiceError::Cancelled)),
        "{:?}",
        got[1].1
    );
    assert!(got[2].1.is_ok(), "{:?}", got[2].1);
    // The stalled request itself surfaced its injected fault.
    assert!(
        matches!(&got[0].1, Err(ServiceError::Faulted(_))),
        "{:?}",
        got[0].1
    );
    // Collected ids leave the ledger entirely: cancel now says Unknown.
    assert_eq!(svc.cancel(kept), CancelOutcome::Unknown);
    assert_eq!(svc.stats().cancelled, 1);
}

/// `collect_timeout` answers `Timeout` for still-running ids without
/// losing them: the real response is collectable afterwards.
#[test]
fn collect_timeout_does_not_lose_the_response() {
    let plan = FaultPlan::explicit([(0, Fault::Stall)]).with_stall(Duration::from_millis(200));
    let svc = Service::with_config(ServiceConfig {
        workers: 1,
        max_attempts: 1,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    });
    let id = svc.submit(cheap_request(0));
    let first = svc.collect_timeout(&[id], Duration::from_millis(5));
    assert!(
        matches!(&first[0].1, Err(ServiceError::Timeout)),
        "{:?}",
        first[0].1
    );
    // The id is still live; a patient collect gets the real outcome.
    let second = svc.collect(&[id]);
    assert!(
        matches!(&second[0].1, Err(ServiceError::Faulted(_))),
        "{:?}",
        second[0].1
    );
}

/// Bounded admission: a full queue answers `WouldBlock` (and counts it);
/// space freed by a worker lets the next `try_submit` through.
#[test]
fn bounded_admission_pushes_back_then_recovers() {
    let plan = FaultPlan::explicit([(0, Fault::Stall)]).with_stall(Duration::from_millis(300));
    let svc = Service::with_config(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        max_attempts: 1,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    });
    let opts = SubmitOptions::default;
    // Worker busy on the stalled request, capacity-1 queue holds one more.
    let SubmitOutcome::Accepted(stalled) = svc.try_submit(cheap_request(0), opts()) else {
        panic!("first admission must succeed");
    };
    // The worker may not have dequeued yet; admit the queue-filler
    // blockingly, then the queue is full for sure only after the worker
    // picked up the stalled job — so probe until WouldBlock or give up.
    let SubmitOutcome::Accepted(queued) = svc.submit_opts(cheap_request(1), opts()) else {
        panic!("second admission must succeed");
    };
    let mut saw_would_block = false;
    for _ in 0..50 {
        match svc.try_submit(cheap_request(2), opts()) {
            SubmitOutcome::WouldBlock => {
                saw_would_block = true;
                break;
            }
            SubmitOutcome::Accepted(extra) => {
                // Raced ahead of the worker: drain the slot and retry.
                svc.collect(&[extra]);
            }
            SubmitOutcome::Rejected(_) => panic!("not shut down"),
        }
    }
    assert!(saw_would_block, "a capacity-1 queue must push back");
    assert!(svc.stats().rejected >= 1);
    // Backpressure is not failure: both admitted requests complete.
    let got = svc.collect(&[stalled, queued]);
    assert!(got[1].1.is_ok(), "{:?}", got[1].1);
}

/// Shutdown with `Shed`: queued work answers `ShuttingDown` instead of
/// running; in-flight work still finishes; workers join.
#[test]
fn shed_shutdown_answers_queued_work_without_running_it() {
    let plan = FaultPlan::explicit([(0, Fault::Stall)]).with_stall(Duration::from_millis(100));
    let svc = Service::with_config(ServiceConfig {
        workers: 1,
        max_attempts: 1,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    });
    let inflight = svc.submit(cheap_request(0));
    let q1 = svc.submit(cheap_request(1));
    let q2 = svc.submit(cheap_request(2));
    let report = svc.shutdown(DrainPolicy::Shed);
    assert_eq!(report.workers_joined, 1);
    assert!(report.shed >= 1, "parked work was shed, not executed");
    // Every id still answers exactly once; whatever was queued when the
    // shutdown flag flipped says ShuttingDown, nothing hangs or vanishes.
    let got = svc.collect(&[inflight, q1, q2]);
    let shut = got
        .iter()
        .filter(|(_, r)| matches!(r, Err(ServiceError::ShuttingDown)))
        .count() as u64;
    assert_eq!(shut, report.shed, "shed count matches ShuttingDown answers");
    for (id, r) in &got {
        assert!(
            r.is_ok()
                || matches!(
                    r,
                    Err(ServiceError::ShuttingDown | ServiceError::Faulted(_))
                ),
            "{id:?}: {r:?}"
        );
    }
    // Admission is closed for good.
    assert!(matches!(
        svc.try_submit(cheap_request(9), SubmitOptions::default()),
        SubmitOutcome::Rejected(_)
    ));
}

/// A watchdog tuned for tests: the stuck budget is 3 samples at 10 ms, so
/// a wedge is detected in ~30 ms while a healthy cheap request (µs-scale)
/// can never be observed busy-and-unchanged three times.
fn fast_watchdog() -> Option<WatchdogConfig> {
    Some(WatchdogConfig {
        interval: Duration::from_millis(10),
        stuck_ticks: 3,
    })
}

/// The ISSUE's tentpole acceptance scenario: a worker wedges forever on
/// one request (a transient injected wedge — it never advances its
/// heartbeat), the watchdog declares it stuck within the logical budget,
/// replaces it, and the confiscated request completes via a clean retry.
/// Zero ids lost, every response byte-identical to the fault-free run,
/// `replaced_workers == 1`.
#[test]
fn watchdog_replaces_a_wedged_worker_and_the_request_survives() {
    const N: u64 = 6;
    let svc = Service::with_config(ServiceConfig {
        workers: 2,
        fault_plan: Some(FaultPlan::explicit([(0, Fault::Stall)]).wedged()),
        watchdog: fast_watchdog(),
        ..ServiceConfig::default()
    });
    let ids = svc.submit_batch((0..N).map(cheap_request).collect());
    let completed = svc.collect_detailed(&ids, None);
    assert_eq!(completed.len(), N as usize, "zero lost ids");
    for c in &completed {
        let want = debug_of(&execute(&cheap_request(c.id.0)));
        assert_eq!(debug_of(&c.result), want, "id {} diverged", c.id.0);
    }
    assert_eq!(
        completed[0].attempts, 2,
        "the wedged attempt was cut off and retried cleanly"
    );
    let stats = svc.stats();
    assert_eq!(stats.replaced_workers, 1, "exactly one worker condemned");
    assert_eq!(stats.retries, 1, "the confiscated request was requeued");
    assert_eq!(stats.errors, 0);
    // The pool healed: still two workers, one carrying a fresh index.
    let h = svc.health();
    assert_eq!(h.workers.len(), 2);
    assert!(
        h.workers.iter().any(|w| w.index >= 2),
        "replacement has a fresh index: {h:?}"
    );
    let report = svc.shutdown(DrainPolicy::Finish);
    assert_eq!(
        report.workers_joined, 2,
        "replacement joins; victim detached"
    );
}

/// A *sticky* wedge re-wedges every attempt: each replacement worker gets
/// stuck again until the retry budget is spent, then the request settles
/// `Faulted` — retryable error, never a hang, and the replacement count
/// equals the attempt budget.
#[test]
fn sticky_wedge_spends_the_retry_budget_on_replacements() {
    let svc = Service::with_config(ServiceConfig {
        workers: 1,
        max_attempts: 2,
        fault_plan: Some(FaultPlan::explicit([(0, Fault::Stall)]).wedged().sticky()),
        watchdog: fast_watchdog(),
        ..ServiceConfig::default()
    });
    let id = svc.submit(cheap_request(0));
    let ok = svc.submit(cheap_request(1));
    let completed = svc.collect_detailed(&[id, ok], None);
    let c = &completed[0];
    assert!(
        matches!(&c.result, Err(ServiceError::Faulted(m)) if m.contains("stuck")),
        "{:?}",
        c.result
    );
    assert_eq!(c.attempts, 2, "budget spent");
    assert!(completed[1].result.is_ok(), "the pool stayed alive");
    let stats = svc.stats();
    assert_eq!(
        stats.replaced_workers, 2,
        "one replacement per wedged attempt"
    );
    assert_eq!(stats.errors, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Starvation guard (ISSUE acceptance): under any priority mix on a
    /// bounded queue, every *accepted* request is eventually answered
    /// once load subsides — aging promotes starved Normal/Low work past
    /// a stream of higher-priority arrivals, so nothing waits forever.
    /// Eviction is an answer (`Overloaded`), not starvation.
    #[test]
    fn every_accepted_request_completes_under_priority_churn(
        seed in 0u64..500,
        workers in 1usize..4,
        age_promote in 2u64..16,
    ) {
        const N: u64 = 24;
        let svc = Service::with_config(ServiceConfig {
            workers,
            queue_capacity: 4,
            high_water: 2,
            age_promote,
            watchdog: None,
            ..ServiceConfig::default()
        });
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut accepted = Vec::new();
        for i in 0..N {
            let priority = match next() % 3 {
                0 => Priority::High,
                1 => Priority::Normal,
                _ => Priority::Low,
            };
            let outcome = svc.try_submit(
                cheap_request(i),
                SubmitOptions { priority, ..SubmitOptions::default() },
            );
            if let SubmitOutcome::Accepted(id) = outcome {
                accepted.push(id);
            }
        }
        prop_assert!(!accepted.is_empty());
        // A starved id would surface here as Timeout — the generous
        // bound exists only to fail instead of hanging the suite.
        let completed =
            svc.collect_detailed(&accepted, Some(Duration::from_secs(30)));
        prop_assert_eq!(completed.len(), accepted.len());
        for c in &completed {
            prop_assert!(
                matches!(&c.result, Ok(_) | Err(ServiceError::Overloaded)),
                "id {} must be answered, got {:?}", c.id.0, c.result
            );
        }
    }

    /// The fault-harness property (ISSUE satellite): for any seeded
    /// plan, worker count, and submission shuffle — (a) every response
    /// is byte-identical to the fault-free sequential run (transient
    /// faults are fully absorbed by one retry), (b) every faulted id
    /// reports the retry that saved it, (c) no id is lost or answered
    /// twice.
    #[test]
    fn seeded_fault_plans_lose_nothing(
        seed in 0u64..1000,
        rate in 5u32..40,
        workers in 1usize..5,
        shuffle_seed in 0u64..1000,
    ) {
        const N: usize = 12;
        let plan = FaultPlan::seeded(seed, rate).with_stall(Duration::from_micros(200));
        let faulted: std::collections::HashSet<u64> =
            plan.faulted_ids(N as u64).into_iter().map(|(i, _)| i).collect();
        let svc = Service::with_config(ServiceConfig {
            workers,
            backoff_base: Duration::from_micros(100),
            fault_plan: Some(plan),
            ..ServiceConfig::default()
        });
        // Shuffle which request rides on which id; the id keys the fault.
        let mut order: Vec<usize> = (0..N).collect();
        shuffle(&mut order, shuffle_seed);
        let reqs: Vec<ScheduleRequest> =
            order.iter().map(|&i| cheap_request(i as u64)).collect();
        let ids = svc.submit_batch(reqs.clone());
        prop_assert_eq!(ids.len(), N);

        let completed = svc.collect_detailed(&ids, None);
        prop_assert_eq!(completed.len(), N, "no id lost or duplicated");
        for (slot, c) in completed.iter().enumerate() {
            prop_assert_eq!(c.id.0, slot as u64);
            let want = debug_of(&execute(&reqs[slot]));
            prop_assert_eq!(debug_of(&c.result), want, "id {} diverged", slot);
            let expect_attempts = if faulted.contains(&c.id.0) { 2 } else { 1 };
            prop_assert_eq!(c.attempts, expect_attempts, "id {}", slot);
        }
        let report = svc.shutdown(DrainPolicy::Finish);
        prop_assert_eq!(report.workers_joined, workers);
    }
}
