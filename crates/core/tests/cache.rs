//! Integration tests for the fingerprinted response cache + in-flight
//! dedup (`kn_core::service` module docs, "Response cache + in-flight
//! dedup"): N identical concurrent requests compute exactly once and
//! every id gets its own copy; cancelling a coalesced waiter disturbs
//! nobody else; a failed leader hands its key to the next viable waiter
//! instead of poisoning it; eviction order is deterministic under a
//! seeded fill; and — the property that makes caching safe at all —
//! cached and fresh responses are **byte-identical** on the wire.

use kn_core::service::faultinject::{Fault, FaultPlan};
use kn_core::service::{
    execute, wire, CancelOutcome, Deadline, LoopRequest, ScheduleRequest, ScheduleResponse,
    Service, ServiceConfig, ServiceError, SubmitOptions, SubmitOutcome,
};
use kn_core::sim::TrafficModel;
use std::time::Duration;

/// A cheap cacheable request, distinct per `seed`.
fn req(seed: u64) -> ScheduleRequest {
    ScheduleRequest::Loop(LoopRequest {
        traffic: TrafficModel { mm: 3, seed },
        iters: 12,
        ..LoopRequest::default()
    })
}

fn cached_config(workers: usize, cache_capacity: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        cache_capacity,
        ..ServiceConfig::default()
    }
}

fn submit(svc: &Service, r: ScheduleRequest) -> kn_core::service::RequestId {
    match svc.try_submit(r, SubmitOptions::default()) {
        SubmitOutcome::Accepted(id) => id,
        other => panic!("admissible request refused: {other:?}"),
    }
}

/// Occupy the single worker for a while: id 0 draws a sleeping stall on
/// its first attempt, so everything submitted behind it lands while the
/// leader of interest is still queued — which is what makes the
/// coalescing in these tests deterministic rather than racy.
fn blocker_plan(extra: &[(u64, Fault)]) -> FaultPlan {
    let mut faults = vec![(0u64, Fault::Stall)];
    faults.extend_from_slice(extra);
    FaultPlan::explicit(faults).with_stall(Duration::from_millis(80))
}

#[test]
fn n_identical_concurrent_requests_compute_exactly_once() {
    let svc = Service::with_config(ServiceConfig {
        fault_plan: Some(blocker_plan(&[])),
        ..cached_config(1, 64)
    });
    let blocker = submit(&svc, req(999));
    let ids: Vec<_> = (0..16).map(|_| submit(&svc, req(7))).collect();
    let done = svc.collect_detailed(&ids, None);
    let fresh = execute(&req(7)).expect("figure7 schedules");
    for c in &done {
        let ScheduleResponse::Loop(out) = c.result.as_ref().expect("all sixteen answer ok") else {
            panic!("loop request answers a loop response");
        };
        let ScheduleResponse::Loop(want) = &fresh else {
            panic!("loop response");
        };
        assert_eq!(out, want, "every copy equals a fresh computation");
    }
    // Exactly one execution across the whole coalition.
    assert_eq!(done.iter().map(|c| c.attempts).sum::<u32>(), 1);
    let stats = svc.stats();
    // Two misses: the blocker itself and the coalition's leader.
    assert_eq!(stats.cache_misses, 2, "{stats:?}");
    assert_eq!(stats.cache_hits + stats.cache_coalesced, 15, "{stats:?}");
    let _ = svc.collect(&[blocker]);
}

#[test]
fn cancelling_a_waiter_leaves_the_leader_and_other_waiters_alone() {
    let svc = Service::with_config(ServiceConfig {
        fault_plan: Some(blocker_plan(&[])),
        ..cached_config(1, 64)
    });
    let blocker = submit(&svc, req(999));
    let leader = submit(&svc, req(7));
    let w1 = submit(&svc, req(7));
    let w2 = submit(&svc, req(7));
    assert_eq!(svc.cancel(w1), CancelOutcome::Dequeued);
    let done = svc.collect_detailed(&[leader, w1, w2], None);
    assert!(done[0].result.is_ok(), "leader unaffected: {done:?}");
    assert!(
        matches!(done[1].result, Err(ServiceError::Cancelled)),
        "{done:?}"
    );
    assert!(done[2].result.is_ok(), "other waiter unaffected: {done:?}");
    let _ = svc.collect(&[blocker]);
}

#[test]
fn cancelled_leader_hands_the_key_to_the_next_waiter() {
    let svc = Service::with_config(ServiceConfig {
        fault_plan: Some(blocker_plan(&[])),
        ..cached_config(1, 64)
    });
    let blocker = submit(&svc, req(999));
    let leader = submit(&svc, req(7));
    let w1 = submit(&svc, req(7));
    let w2 = submit(&svc, req(7));
    assert_eq!(svc.cancel(leader), CancelOutcome::Dequeued);
    let done = svc.collect_detailed(&[leader, w1, w2], None);
    assert!(
        matches!(done[0].result, Err(ServiceError::Cancelled)),
        "{done:?}"
    );
    assert!(done[1].result.is_ok(), "first waiter promoted: {done:?}");
    assert!(
        done[2].result.is_ok(),
        "second waiter rides along: {done:?}"
    );
    // The promoted waiter computed; the other got its copy for free.
    assert_eq!(done.iter().map(|c| c.attempts).sum::<u32>(), 1);
    let _ = svc.collect(&[blocker]);
}

#[test]
fn sticky_fault_leader_hands_off_instead_of_poisoning_the_key() {
    // id 1 (the leader) panics on every attempt; the promoted waiter
    // (a different id) is clean and recomputes successfully.
    let svc = Service::with_config(ServiceConfig {
        fault_plan: Some(blocker_plan(&[(1, Fault::Panic)]).sticky()),
        ..cached_config(1, 64)
    });
    let blocker = submit(&svc, req(999));
    let leader = submit(&svc, req(7));
    let w1 = submit(&svc, req(7));
    let w2 = submit(&svc, req(7));
    let done = svc.collect_detailed(&[leader, w1, w2], None);
    assert!(
        matches!(done[0].result, Err(ServiceError::Panicked(_))),
        "sticky leader spends its budget: {done:?}"
    );
    assert!(done[1].result.is_ok(), "promoted waiter answers: {done:?}");
    assert!(
        done[2].result.is_ok(),
        "second waiter rides along: {done:?}"
    );
    assert_eq!(
        wire::response_json_with(1, &done[1].result, 0),
        wire::response_json_with(1, &done[2].result, 0),
        "both waiters hold the same answer"
    );
    let _ = svc.collect(&[blocker]);
}

#[test]
fn expired_waiter_is_answered_and_skipped_at_handoff() {
    let svc = Service::with_config(ServiceConfig {
        fault_plan: Some(blocker_plan(&[(1, Fault::Panic)]).sticky()),
        ..cached_config(1, 64)
    });
    let blocker = submit(&svc, req(999));
    let leader = submit(&svc, req(7));
    // w1's deadline lapses while the blocker stalls (80ms), long before
    // the sticky leader fails and the handoff happens.
    let w1 = match svc.try_submit(
        req(7),
        SubmitOptions {
            deadline: Some(Deadline::after(Duration::from_millis(10))),
            ..SubmitOptions::default()
        },
    ) {
        SubmitOutcome::Accepted(id) => id,
        other => panic!("refused: {other:?}"),
    };
    let w2 = submit(&svc, req(7));
    let done = svc.collect_detailed(&[leader, w1, w2], None);
    assert!(matches!(done[0].result, Err(ServiceError::Panicked(_))));
    assert!(
        matches!(done[1].result, Err(ServiceError::Expired)),
        "expired waiter answers expired, not a stale promotion: {done:?}"
    );
    assert!(done[2].result.is_ok(), "viable waiter promoted: {done:?}");
    let _ = svc.collect(&[blocker]);
}

#[test]
fn seeded_fill_evicts_deterministically() {
    // Capacity 4 = a single shard = globally-LRU eviction: filling five
    // distinct requests evicts exactly the first, every run.
    let svc = Service::with_config(cached_config(1, 4));
    for seed in 0..5 {
        let id = submit(&svc, req(seed));
        let _ = svc.collect(&[id]);
    }
    assert_eq!(svc.stats().cache_evictions, 1);
    assert_eq!(svc.health().cache_entries, 4);
    // Seed 0 was the victim: the survivors hit, seed 0 misses and — by
    // recomputing and re-inserting — evicts exactly one more entry.
    let before = svc.stats();
    for seed in [1, 2, 3, 4, 0] {
        let id = submit(&svc, req(seed));
        let _ = svc.collect(&[id]);
    }
    let after = svc.stats();
    assert_eq!(after.cache_misses - before.cache_misses, 1, "{after:?}");
    assert_eq!(after.cache_hits - before.cache_hits, 4, "{after:?}");
    assert_eq!(after.cache_evictions - before.cache_evictions, 1);
}

#[test]
fn cached_and_fresh_responses_are_byte_identical_in_process() {
    // The same duplicate-heavy batch through a cache-on and a cache-off
    // service must render byte-identical wire lines — the property that
    // makes the cache invisible to every golden.
    let batch: Vec<ScheduleRequest> = [7u64, 3, 7, 7, 3, 11, 7].into_iter().map(req).collect();
    let render = |cache_capacity: usize| -> (Vec<String>, u64) {
        let svc = Service::with_config(cached_config(2, cache_capacity));
        let ids: Vec<_> = batch.iter().map(|r| submit(&svc, r.clone())).collect();
        let lines = svc
            .collect_detailed(&ids, None)
            .into_iter()
            .enumerate()
            .map(|(i, c)| wire::response_json_with(i as u64, &c.result, c.attempts))
            .collect();
        let stats = svc.stats();
        (lines, stats.cache_hits + stats.cache_coalesced)
    };
    let (cached, reused) = render(64);
    let (fresh, fresh_reused) = render(0);
    assert_eq!(cached, fresh, "byte-identical with and without the cache");
    assert!(
        reused >= 4,
        "four duplicates must hit or coalesce: {reused}"
    );
    assert_eq!(fresh_reused, 0, "cache off = no cache traffic");
}
