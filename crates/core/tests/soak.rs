//! Soak test (ISSUE satellite): hundreds of requests in several batches
//! through one long-lived service on 4 workers, with seeded panics,
//! stalls and garbage faults, interleaved cancellations and
//! already-expired deadlines. The pinned invariants:
//!
//! * request ids are consecutive and monotone across batches;
//! * no ledger entry leaks — after every id is collected, a drain finds
//!   nothing and a graceful shutdown joins all workers;
//! * every undisturbed response (not cancelled, no zero deadline) is
//!   byte-identical to the fault-free sequential reference, with the
//!   attempt count matching the fault plan exactly.

use kn_core::service::faultinject::FaultPlan;
use kn_core::service::{
    execute, Deadline, DrainPolicy, LoopRequest, LoopSource, RequestId, ScheduleRequest, Service,
    ServiceConfig, ServiceError, SubmitOptions, SubmitOutcome,
};
use kn_core::sim::TrafficModel;
use std::collections::HashSet;
use std::time::Duration;

const BATCHES: u64 = 4;
const PER_BATCH: u64 = 130;
const TOTAL: u64 = BATCHES * PER_BATCH; // 520

fn cheap_request(i: u64) -> ScheduleRequest {
    ScheduleRequest::Loop(LoopRequest {
        source: LoopSource::Corpus("figure7".into()),
        iters: 12,
        traffic: TrafficModel { mm: 3, seed: i },
        ..LoopRequest::default()
    })
}

/// Ids submitted with an already-expired deadline: shed at dequeue.
fn has_zero_deadline(id: u64) -> bool {
    id % 11 == 3
}

/// Ids cancelled right after their batch is submitted.
fn is_cancelled(id: u64) -> bool {
    id % 13 == 5 && !has_zero_deadline(id)
}

#[test]
fn soak_four_workers_500_requests_under_mixed_faults() {
    let plan = FaultPlan::seeded(0x50A4, 15).with_stall(Duration::from_micros(200));
    let faulted: HashSet<u64> = plan
        .faulted_ids(TOTAL)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    assert!(
        faulted.len() > 20,
        "the soak must actually exercise faults: {}",
        faulted.len()
    );
    let svc = Service::with_config(ServiceConfig {
        workers: 4,
        backoff_base: Duration::from_micros(100),
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    });

    let mut next_id = 0u64;
    for _batch in 0..BATCHES {
        let mut ids = Vec::new();
        for _ in 0..PER_BATCH {
            let id = next_id;
            let opts = SubmitOptions {
                deadline: has_zero_deadline(id).then(|| Deadline::after(Duration::ZERO)),
                ..SubmitOptions::default()
            };
            let outcome = svc.submit_opts(cheap_request(id), opts);
            let SubmitOutcome::Accepted(got) = outcome else {
                panic!("admission refused at {id}: {outcome:?}");
            };
            // Monotone, consecutive ids across batch boundaries.
            assert_eq!(got, RequestId(id), "ids are monotone across batches");
            ids.push(got);
            next_id += 1;
        }
        for &id in &ids {
            if is_cancelled(id.0) {
                // Outcome intentionally raced: Dequeued, AlreadyDone or
                // a flag on a running attempt are all legal.
                let _ = svc.cancel(id);
            }
        }
        let completed = svc.collect_detailed(&ids, None);
        assert_eq!(completed.len(), ids.len(), "no id lost or answered twice");
        for c in &completed {
            let id = c.id.0;
            if has_zero_deadline(id) {
                assert!(
                    matches!(&c.result, Err(ServiceError::Expired)),
                    "id {id}: {:?}",
                    c.result
                );
                continue;
            }
            if is_cancelled(id) {
                // Raced by design: either the cancel landed or the
                // request finished first — but it must be one of those.
                let reference = debug_of(&execute(&cheap_request(id)));
                let got = debug_of(&c.result);
                assert!(
                    matches!(&c.result, Err(ServiceError::Cancelled)) || got == reference,
                    "id {id}: {got}"
                );
                continue;
            }
            let reference = debug_of(&execute(&cheap_request(id)));
            assert_eq!(
                debug_of(&c.result),
                reference,
                "id {id} diverged from the fault-free reference"
            );
            let want_attempts = if faulted.contains(&id) { 2 } else { 1 };
            assert_eq!(c.attempts, want_attempts, "id {id}");
        }
    }

    let stats = svc.stats();
    assert_eq!(stats.submitted, TOTAL);
    assert_eq!(stats.completed, TOTAL, "every id reached a final outcome");
    assert_eq!(
        stats.replaced_workers, 0,
        "sub-millisecond stalls never trip the 10 s default watchdog"
    );

    // Nothing left behind: every entry was collected, a drain is empty,
    // and shutdown joins all four workers with nothing to shed.
    assert!(svc.drain().is_empty(), "leaked ledger entries");
    let report = svc.shutdown(DrainPolicy::Finish);
    assert_eq!(report.workers_joined, 4);
    assert_eq!(report.shed, 0);
}

fn debug_of(r: &Result<kn_core::service::ScheduleResponse, ServiceError>) -> String {
    format!("{r:?}")
}
