//! Deterministic open-loop overload generator for the service.
//!
//! The overload acceptance gate ("at 2× saturation, High misses zero
//! deadlines and Low sheds first") must hold on a laptop, a loaded CI
//! runner, and under `--release` alike — so this harness is **open-loop
//! and schedule-driven**, never wall-clock driven:
//!
//! * The arrival sequence (count, priorities) is a pure function of the
//!   plan's seed — [`schedule`] — so every run replays the same traffic.
//! * "2× saturation" is expressed structurally, not temporally: each
//!   *slot* submits [`LoadPlan::arrivals_per_slot`] requests and then
//!   waits for **one** additional completion
//!   ([`Service::wait_for_completed`]). With `arrivals_per_slot = 2`
//!   the backlog therefore grows by ~1 request per slot *by
//!   construction*, regardless of how fast the machine drains work —
//!   the queue provably crosses any finite high-water mark, and the
//!   brownout/eviction policy is exercised identically everywhere.
//! * Assertions are scheduling-policy invariants (who got shed, who
//!   kept deadlines), not latency numbers.
//!
//! The bench harness (`overload_entries` in `BENCH_sched.json`) and the
//! `tests/overload.rs` CI gate both drive this module.
//!
//! [`Service::wait_for_completed`]: super::Service::wait_for_completed

use super::{
    Deadline, Priority, RejectReason, RequestId, Service, ServiceError, SubmitOptions,
    SubmitOutcome,
};
use crate::service::{LoopRequest, LoopSource, ScheduleRequest};
use crate::sim::TrafficModel;
use std::time::Duration;

/// Parameters of one open-loop overload run. `Default` is the CI gate's
/// shape: 10% High / 60% Normal / 30% Low at 2× saturation.
#[derive(Clone, Copy, Debug)]
pub struct LoadPlan {
    /// Seeds the priority mix (splitmix64 over the arrival index).
    pub seed: u64,
    /// Total arrivals to generate.
    pub total: u64,
    /// Percent of arrivals that are [`Priority::High`].
    pub high_pct: u32,
    /// Percent of arrivals that are [`Priority::Normal`]; the remainder
    /// is [`Priority::Low`].
    pub normal_pct: u32,
    /// Arrivals submitted per pacing slot; each slot waits for exactly
    /// one additional completion, so `2` = the backlog grows ~1 per slot
    /// (2× saturation), `1` ≈ steady state.
    pub arrivals_per_slot: u32,
    /// Deadline attached to High arrivals (generous: priority ordering —
    /// not luck — is what must keep them inside it).
    pub high_deadline: Duration,
    /// `None` = every arrival is a distinct request (the overload gate's
    /// shape). `Some(n)` = arrivals draw their traffic seed from a
    /// Zipf(s=1) distribution over `n` distinct values — the
    /// duplicate-heavy production mix the response cache is built for
    /// (see [`traffic_seed`]).
    pub zipf_distinct: Option<u64>,
}

impl Default for LoadPlan {
    fn default() -> Self {
        Self {
            seed: 0x10AD,
            total: 120,
            high_pct: 10,
            normal_pct: 60,
            arrivals_per_slot: 2,
            high_deadline: Duration::from_secs(60),
            zipf_distinct: None,
        }
    }
}

/// One generated arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Position in the arrival sequence (also the traffic seed of the
    /// generated request, so responses are distinct).
    pub index: u64,
    pub priority: Priority,
}

/// splitmix64, matching the service's fault-injection mixing.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ (i.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic arrival sequence of a plan: same seed, same traffic,
/// on every machine.
pub fn schedule(plan: &LoadPlan) -> Vec<Arrival> {
    (0..plan.total)
        .map(|index| {
            let roll = (mix(plan.seed, index) % 100) as u32;
            let priority = if roll < plan.high_pct {
                Priority::High
            } else if roll < plan.high_pct + plan.normal_pct {
                Priority::Normal
            } else {
                Priority::Low
            };
            Arrival { index, priority }
        })
        .collect()
}

/// A cheap request for arrival `index`: the paper loop under a per-index
/// traffic seed (distinct seeds make distinct responses).
pub fn request_for(index: u64) -> ScheduleRequest {
    ScheduleRequest::Loop(LoopRequest {
        source: LoopSource::Corpus("figure7".into()),
        iters: 12,
        traffic: TrafficModel { mm: 3, seed: index },
        ..LoopRequest::default()
    })
}

/// The traffic seed arrival `index` submits under `plan`: the index
/// itself (all-unique) unless [`LoadPlan::zipf_distinct`] is set, in
/// which case a seeded Zipf(s=1) draw over `n` seeds — rank `r` is
/// picked with weight `1/r`, so a handful of hot requests dominate, the
/// shape a response cache exploits. Pure integer fixed-point arithmetic:
/// the draw is a deterministic function of (plan seed, index) on every
/// machine.
pub fn traffic_seed(plan: &LoadPlan, index: u64) -> u64 {
    let Some(n) = plan.zipf_distinct else {
        return index;
    };
    let n = n.max(1);
    const SCALE: u64 = 1 << 16;
    let total: u64 = (1..=n).map(|r| SCALE / r).sum();
    let mut draw = mix(plan.seed ^ 0x51BF_0000, index) % total;
    for r in 1..=n {
        let w = SCALE / r;
        if draw < w {
            return r - 1;
        }
        draw -= w;
    }
    n - 1
}

/// Per-lane outcome counters of one run. Admission-time outcomes
/// (`shed`, `would_block`) plus the final classification of every
/// accepted id — the sum of `ok + evicted + expired + errors` equals
/// `accepted` once a run is complete.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneReport {
    /// Arrivals the schedule generated for this lane.
    pub submitted: u64,
    /// Arrivals admitted (got an id).
    pub accepted: u64,
    /// Arrivals brownout-refused at admission ([`RejectReason::Overloaded`]).
    pub shed: u64,
    /// Arrivals refused on a hard-full queue (nothing evictable).
    pub would_block: u64,
    /// Accepted, then evicted from the queue by a higher-priority
    /// arrival ([`ServiceError::Overloaded`]).
    pub evicted: u64,
    /// Accepted and answered successfully.
    pub ok: u64,
    /// Accepted but missed the deadline ([`ServiceError::Expired`]).
    pub expired: u64,
    /// Accepted and failed any other way.
    pub errors: u64,
}

impl LaneReport {
    /// Everything this lane lost to the overload policy (admission
    /// refusals plus queue evictions).
    pub fn total_shed(&self) -> u64 {
        self.shed + self.would_block + self.evicted
    }
}

/// Outcome of [`run`]: per-lane counters plus pool-level observations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OverloadReport {
    /// Indexed by [`Priority::lane`] (`[high, normal, low]`).
    pub lanes: [LaneReport; 3],
    /// `stats.replaced_workers` after the run.
    pub replaced_workers: u64,
    /// Did the queue ever observably cross the high-water mark?
    pub over_high_water_seen: bool,
}

impl OverloadReport {
    /// The lane counters for `p`.
    pub fn lane(&self, p: Priority) -> &LaneReport {
        &self.lanes[p.lane()]
    }
}

/// Drive `svc` with the plan's arrival schedule, paced open-loop (see
/// the module docs), then collect and classify every accepted id. The
/// service must be configured by the caller (workers, capacity,
/// high-water); the generator only submits and accounts.
pub fn run(svc: &Service, plan: &LoadPlan) -> OverloadReport {
    let arrivals = schedule(plan);
    let mut report = OverloadReport::default();
    let mut accepted: Vec<(RequestId, Priority)> = Vec::new();
    let base = svc.completed_count();
    let mut target = base;
    let slot = plan.arrivals_per_slot.max(1) as usize;
    for chunk in arrivals.chunks(slot) {
        for a in chunk {
            let lane = &mut report.lanes[a.priority.lane()];
            lane.submitted += 1;
            let opts = SubmitOptions {
                priority: a.priority,
                deadline: (a.priority == Priority::High)
                    .then(|| Deadline::after(plan.high_deadline)),
                ..SubmitOptions::default()
            };
            match svc.try_submit(request_for(traffic_seed(plan, a.index)), opts) {
                SubmitOutcome::Accepted(id) => {
                    lane.accepted += 1;
                    accepted.push((id, a.priority));
                }
                SubmitOutcome::Rejected(RejectReason::Overloaded) => lane.shed += 1,
                SubmitOutcome::WouldBlock => lane.would_block += 1,
                SubmitOutcome::Rejected(other) => {
                    panic!("loadgen requests are always admissible: {other:?}")
                }
            }
        }
        if svc.over_high_water() {
            report.over_high_water_seen = true;
        }
        // Open-loop pacing: one completion per slot, but never wait for
        // more completions than accepted ids can produce (a fully shed
        // slot must not deadlock the generator). Eviction completions
        // count too — they only make the wait shorter, never unsafe.
        target = (target + 1).min(base + accepted.len() as u64);
        svc.wait_for_completed(target);
    }
    for c in svc.collect_detailed(
        &accepted.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
        None,
    ) {
        let priority = accepted
            .iter()
            .find(|&&(id, _)| id == c.id)
            .expect("collected only accepted ids")
            .1;
        let lane = &mut report.lanes[priority.lane()];
        match &c.result {
            Ok(_) => lane.ok += 1,
            Err(ServiceError::Overloaded) => lane.evicted += 1,
            Err(ServiceError::Expired) => lane.expired += 1,
            Err(_) => lane.errors += 1,
        }
    }
    report.replaced_workers = svc.stats().replaced_workers;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_mix_bounded() {
        let plan = LoadPlan {
            total: 1000,
            ..LoadPlan::default()
        };
        let a = schedule(&plan);
        assert_eq!(a, schedule(&plan), "same plan, same arrivals");
        let count = |p: Priority| a.iter().filter(|x| x.priority == p).count();
        let (h, n, l) = (
            count(Priority::High),
            count(Priority::Normal),
            count(Priority::Low),
        );
        assert_eq!(h + n + l, 1000);
        // Generous bands around 10/60/30 guard the hash quality.
        assert!((50..200).contains(&h), "high {h}");
        assert!((500..700).contains(&n), "normal {n}");
        assert!((200..400).contains(&l), "low {l}");
        // A different seed deals a different sequence.
        let b = schedule(&LoadPlan {
            seed: plan.seed + 1,
            total: 1000,
            ..LoadPlan::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_seeds_are_deterministic_skewed_and_bounded() {
        let plan = LoadPlan {
            total: 1000,
            zipf_distinct: Some(8),
            ..LoadPlan::default()
        };
        let seeds: Vec<u64> = (0..plan.total).map(|i| traffic_seed(&plan, i)).collect();
        let again: Vec<u64> = (0..plan.total).map(|i| traffic_seed(&plan, i)).collect();
        assert_eq!(seeds, again, "same plan, same draws");
        assert!(seeds.iter().all(|&s| s < 8), "draws stay in range");
        let count = |s: u64| seeds.iter().filter(|&&x| x == s).count();
        // Zipf(1) over 8 ranks: rank 1 carries ~37% of the mass, the
        // tail rank ~4.6%. Generous bands guard the distribution shape.
        assert!((250..450).contains(&count(0)), "hot seed {}", count(0));
        assert!(count(7) < 120, "tail seed {}", count(7));
        assert!(count(0) > 3 * count(7), "head dominates tail");
        // Unset = the historical all-unique behavior.
        let unique = LoadPlan::default();
        assert_eq!(traffic_seed(&unique, 41), 41);
    }

    #[test]
    fn steady_state_run_completes_everything() {
        // arrivals_per_slot=1 never grows backlog past 1: no shedding
        // even with a tiny high-water mark relative to 2x load.
        let svc = Service::with_config(crate::service::ServiceConfig {
            workers: 2,
            ..crate::service::ServiceConfig::default()
        });
        let plan = LoadPlan {
            total: 12,
            arrivals_per_slot: 1,
            ..LoadPlan::default()
        };
        let report = run(&svc, &plan);
        let all: u64 = report.lanes.iter().map(|l| l.ok).sum();
        assert_eq!(all, 12, "{report:?}");
        assert_eq!(
            report.lanes.iter().map(LaneReport::total_shed).sum::<u64>(),
            0
        );
    }
}
