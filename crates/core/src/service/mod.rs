//! # Batch scheduling service — a fault-tolerant request lifecycle over
//! # the Cyclic-sched pipeline
//!
//! The experiment drivers fan independent (workload, machine) cells out
//! across threads and then exit; this module lifts that fan-out into a
//! **service**: a persistent worker pool that outlives any single driver
//! call, fed through a typed request/response pair and hardened with the
//! admission/deadline/cancellation/retry machinery real traffic needs
//! (ROADMAP north star: "serves heavy traffic from millions of users").
//!
//! ## Request lifecycle state machine
//!
//! Every admitted request moves through this machine; each submitted id
//! produces **exactly one** final response:
//!
//! ```text
//!              submit / try_submit
//!   (rejected) <---- ADMISSION ----> queued
//!                                      |  cancel()          -> cancelled
//!                                      |  deadline passed   -> expired
//!                                      |  shutdown(Shed)    -> shed
//!                                      v
//!                                   running --- panic/fault ---+
//!                                      |  cancel(), deadline   | retry with
//!                                      |  (phase boundaries)   | capped backoff,
//!                                      v                       | up to the
//!                  done(ok) / done(error) <---(budget spent)---+ attempt budget
//! ```
//!
//! * **Bounded admission** — the queue holds at most
//!   [`ServiceConfig::queue_capacity`] requests. [`Service::try_submit`]
//!   never blocks: it answers [`SubmitOutcome::WouldBlock`] on a full
//!   queue and [`SubmitOutcome::Rejected`] once shutdown has begun.
//!   [`Service::submit_opts`] blocks for space (backpressure);
//!   [`Service::submit`] is the PR 3-compatible wrapper that panics only
//!   if the service was already shut down.
//! * **Deadlines** — a per-request [`Deadline`] is enforced at dequeue
//!   (expired work is shed before wasting a worker), between retry
//!   attempts, and cooperatively at pipeline phase boundaries
//!   (parse → schedule → simulate). An expired request answers
//!   [`ServiceError::Expired`].
//! * **Cancellation** — [`Service::cancel`] removes queued work
//!   immediately ([`CancelOutcome::Dequeued`]) and flags in-flight work
//!   ([`CancelOutcome::InFlight`]) for cooperative abandonment at the
//!   next phase boundary or retry boundary; either way the id answers
//!   [`ServiceError::Cancelled`].
//! * **Retry with capped exponential backoff** — transient failures
//!   (a pipeline panic, an injected fault, a response that fails
//!   validation) are retried up to [`ServiceConfig::max_attempts`] with
//!   deterministic backoff `min(base * 2^(attempt-1), cap)`. Responses
//!   carry the attempt count ([`Completed::attempts`]). Deterministic
//!   failures ([`ServiceError::BadRequest`], [`ServiceError::Sched`]) are
//!   never retried.
//! * **Graceful drain on shutdown** — [`Service::shutdown`] stops
//!   admission, then either finishes the queued work
//!   ([`DrainPolicy::Finish`]) or sheds it with
//!   [`ServiceError::ShuttingDown`] ([`DrainPolicy::Shed`]); in-flight
//!   requests complete either way, and every worker thread is joined
//!   before `shutdown` returns. Dropping the service is
//!   `shutdown(DrainPolicy::Finish)`.
//!
//! ## Collecting responses
//!
//! [`Service::collect`] blocks until every requested id has a response;
//! an id the service has **never admitted** (or whose response was
//! already collected) answers [`ServiceError::UnknownRequest`]
//! immediately instead of blocking forever. [`Service::collect_timeout`]
//! bounds the wait: ids still pending when the timeout fires answer
//! [`ServiceError::Timeout`] and remain collectable later.
//! [`Service::drain`] waits for quiescence and removes everything.
//!
//! ## Determinism guarantee
//!
//! Responses are pure functions of their request: every stage (parsing,
//! scheduling, simulation) is deterministic, workers share no mutable
//! state, and results are keyed by request id. Therefore the multiset of
//! `(id, response)` pairs is independent of the worker count, the
//! submission order of *other* requests, and OS scheduling — a batch
//! submitted to a 1-worker service, an 8-worker service, or shuffled and
//! resubmitted yields identical responses per id (pinned by
//! `crates/core/tests/service.rs`). Retries preserve this: a retried
//! attempt re-executes the same pure function, so a transient-fault
//! recovery is byte-identical to an undisturbed run. The seeded
//! fault-injection harness ([`faultinject`]) keys faults on the request
//! id, never on timing, which is what makes every failure path above
//! testable in CI without sleeps.
//!
//! ## Fault isolation
//!
//! A request that panics inside the pipeline is caught at the worker
//! boundary: the worker survives, its scratch caches are rebuilt, and —
//! once the retry budget is spent — the id answers
//! [`ServiceError::Panicked`]. A poisoned request can never wedge the
//! pool or lose an id.
//!
//! ## Example
//!
//! ```
//! use kn_core::service::{LoopSource, ScheduleRequest, ScheduleResponse, Service};
//!
//! let svc = Service::new(2);
//! let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
//! let responses = svc.collect(&[id]);
//! let Ok(ScheduleResponse::Loop(out)) = &responses[0].1 else {
//!     panic!("figure7 schedules");
//! };
//! assert_eq!(out.ii, Some(2.5));
//! ```
//!
//! The process-wide [`global`] service (sized to the machine) is what the
//! parallel experiment drivers submit to; per-call services are for tests
//! and embedders that want their own pool. Do **not** submit-and-collect
//! from *inside* a request executing on the same service — a worker
//! blocking on its own pool's results can deadlock a fully loaded pool.
//! The TCP front-end over this service lives in [`net`]; the wire format
//! it speaks is [`wire`].

pub mod faultinject;
pub mod net;
mod request;
pub mod wire;

pub use request::{
    execute, validate_response, ExecCtx, LoopOutcome, LoopRequest, LoopSource, RequestTiming,
    ScheduleRequest, ScheduleResponse, SchedulerChoice, ServiceError, WorkerScratch,
};

use faultinject::{Fault, FaultPlan};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Stable handle for one submitted request. Ids are assigned in
/// submission order and never reused, so out-of-order completion remains
/// deterministically attributable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Absolute point in time by which a request must *start making
/// progress*; enforced at dequeue, between retry attempts, and at
/// pipeline phase boundaries. A request past its deadline answers
/// [`ServiceError::Expired`] without wasting further worker time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline(pub Instant);

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline(Instant::now() + d)
    }

    /// A deadline that has already passed — queued work carrying it is
    /// deterministically shed at dequeue (tests and load-shedding use
    /// this; `deadline_ms=0` on the wire produces it).
    pub fn expired() -> Self {
        Deadline(Instant::now())
    }

    /// Has the deadline passed at `now`? A deadline equal to "now" counts
    /// as expired, which is what makes [`Deadline::expired`] (and
    /// `deadline_ms=0`) deterministic: any later monotone reading is
    /// `>=` the instant it was created at.
    pub fn is_expired_at(&self, now: Instant) -> bool {
        now >= self.0
    }

    /// Has the deadline passed right now?
    pub fn is_expired(&self) -> bool {
        self.is_expired_at(Instant::now())
    }
}

/// Per-submission options: everything about a request's lifecycle that is
/// not part of the scheduling work itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Shed the request once this passes (see [`Deadline`]).
    pub deadline: Option<Deadline>,
    /// Override the service-wide [`ServiceConfig::max_attempts`] for this
    /// request.
    pub max_attempts: Option<u32>,
}

/// Why admission refused a request outright (no id, no response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission is closed: shutdown has begun. Permanent.
    ShuttingDown,
    /// The request carries an inline/file DDG that failed the `kn-verify`
    /// lint pass: `code` is the stable `KN0xx` code of the first error
    /// finding (see `docs/diagnostics.md`). Deterministic — resubmitting
    /// the same graph can never succeed.
    InvalidDdg { code: String, message: String },
}

/// Admission verdict for [`Service::try_submit`] / [`Service::submit_opts`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted; the id will produce exactly one response.
    Accepted(RequestId),
    /// Refused outright (shutdown, or a DDG that failed lint); see
    /// [`RejectReason`]. Permanent for this request.
    Rejected(RejectReason),
    /// The queue is at capacity right now ([`Service::try_submit`] only);
    /// backing off and retrying, or using the blocking
    /// [`Service::submit_opts`], may succeed.
    WouldBlock,
}

impl SubmitOutcome {
    /// The id, if admitted.
    pub fn id(&self) -> Option<RequestId> {
        match self {
            SubmitOutcome::Accepted(id) => Some(*id),
            _ => None,
        }
    }
}

/// What [`Service::cancel`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// Removed from the queue before any worker saw it; the id answers
    /// [`ServiceError::Cancelled`].
    Dequeued,
    /// A worker is executing it; it has been flagged and will abandon
    /// cooperatively at the next phase or retry boundary.
    InFlight,
    /// Already completed — the response (whatever it is) stands.
    AlreadyDone,
    /// Not an id this service is currently tracking.
    Unknown,
}

/// How [`Service::shutdown`] treats work that is still queued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainPolicy {
    /// Finish every queued request before the workers exit (expired
    /// deadlines are still shed at dequeue as usual).
    Finish,
    /// Answer every queued request with [`ServiceError::ShuttingDown`]
    /// immediately; workers exit as soon as their in-flight request
    /// completes.
    Shed,
}

/// What [`Service::shutdown`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Requests still queued when admission closed that were answered
    /// with [`ServiceError::ShuttingDown`] ([`DrainPolicy::Shed`] only).
    pub shed: u64,
    /// Worker threads joined by this call.
    pub workers_joined: usize,
}

/// Service construction parameters. `Default` is the PR 3-compatible
/// shape: an effectively unbounded queue, one retry for transient
/// failures, millisecond-scale backoff, no fault injection.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (at least one).
    pub workers: usize,
    /// Maximum queued (not yet running) requests before admission pushes
    /// back.
    pub queue_capacity: usize,
    /// Total execution attempts per request (1 = no retry). Only
    /// transient failures (panic, injected fault, invalid response) are
    /// retried.
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Deterministic fault injection (tests, CI fault-smoke); `None` in
    /// production.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: usize::MAX,
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            fault_plan: None,
        }
    }
}

/// Deterministic capped exponential backoff before retry `attempt`
/// (attempt 2 = first retry waits `base`, attempt 3 waits `2*base`, …,
/// never more than `cap`).
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration) -> Duration {
    if attempt <= 1 || base.is_zero() {
        return Duration::ZERO;
    }
    let factor = 1u32 << (attempt - 2).min(16);
    (base * factor).min(cap)
}

/// Cumulative per-service execution statistics (monotone counters; read
/// a snapshot with [`Service::stats`], diff two snapshots for batch-level
/// numbers). `completed`/`errors` count **final outcomes** — a request
/// retried twice and then succeeding is one completion, zero errors, two
/// `retries`. Phase breakdowns cover [`ScheduleRequest::Loop`] requests;
/// experiment-cell requests report only their total under `exec_ns`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests completed (ok or error), counting final outcomes only.
    pub completed: u64,
    /// Requests whose final response is an error.
    pub errors: u64,
    /// Extra attempts spent on transient failures.
    pub retries: u64,
    /// Requests shed because their deadline passed.
    pub expired: u64,
    /// Requests cancelled by the caller.
    pub cancelled: u64,
    /// Requests shed by `shutdown(DrainPolicy::Shed)`.
    pub shed: u64,
    /// Admission attempts answered `WouldBlock` (full queue).
    pub rejected: u64,
    /// Total wall nanoseconds workers spent executing requests (all
    /// attempts).
    pub exec_ns: u64,
    /// Source-resolution (read + parse + cache lookup) nanoseconds.
    pub parse_ns: u64,
    /// Scheduling nanoseconds.
    pub schedule_ns: u64,
    /// Simulation nanoseconds.
    pub sim_ns: u64,
}

/// One finished request: the final response plus its lifecycle record.
#[derive(Clone, Debug)]
pub struct Completed {
    pub id: RequestId,
    pub result: Result<ScheduleResponse, ServiceError>,
    /// Execution attempts consumed (0 for requests shed before any
    /// attempt: expired, cancelled while queued, shut down).
    pub attempts: u32,
    /// Wall nanoseconds from admission to final response.
    pub latency_ns: u64,
}

/// Completed responses paired with their ids, sorted by id — what
/// [`Service::collect`] and [`Service::drain`] return.
pub type Responses = Vec<(RequestId, Result<ScheduleResponse, ServiceError>)>;

/// A queued unit of work.
struct Job {
    id: RequestId,
    req: ScheduleRequest,
    deadline: Option<Deadline>,
    max_attempts: u32,
    cancel: Arc<AtomicBool>,
    admitted_at: Instant,
}

/// Shared queue + completed-response ledger.
struct Ledger {
    queue: VecDeque<Job>,
    done: HashMap<RequestId, Completed>,
    /// Cancellation flags of requests currently executing on a worker.
    inflight: HashMap<RequestId, Arc<AtomicBool>>,
    /// Ids admitted and not yet collected (superset of `done`'s keys and
    /// of everything queued/in-flight). Membership here is what
    /// distinguishes "still coming" from "never submitted / already
    /// collected" in [`Service::collect`].
    known: HashSet<RequestId>,
    /// Admitted requests without a final response yet.
    outstanding: u64,
    accepting: bool,
    next_id: u64,
    stats: ServiceStats,
}

impl Ledger {
    /// Record a final response. Caller notifies the condvar.
    fn complete(&mut self, c: Completed) {
        self.stats.completed += 1;
        if let Err(e) = &c.result {
            self.stats.errors += 1;
            match e {
                ServiceError::Expired => self.stats.expired += 1,
                ServiceError::Cancelled => self.stats.cancelled += 1,
                ServiceError::ShuttingDown => self.stats.shed += 1,
                _ => {}
            }
        }
        self.outstanding -= 1;
        self.done.insert(c.id, c);
    }
}

/// The long-lived batch scheduling service: `workers` persistent threads
/// pulling [`ScheduleRequest`]s from a bounded shared queue. See the
/// module docs for the lifecycle contract; construction is cheap enough
/// for per-test pools but the intended production shape is one service
/// per process ([`global`]).
pub struct Service {
    ledger: Arc<(Mutex<Ledger>, Condvar)>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    config: ServiceConfig,
}

impl Service {
    /// Spawn a service with `workers` persistent worker threads and
    /// default lifecycle settings (see [`ServiceConfig`]).
    pub fn new(workers: usize) -> Self {
        Self::with_config(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        })
    }

    /// Spawn a service with explicit lifecycle settings.
    pub fn with_config(config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            max_attempts: config.max_attempts.max(1),
            ..config
        };
        let ledger = Arc::new((
            Mutex::new(Ledger {
                queue: VecDeque::new(),
                done: HashMap::new(),
                inflight: HashMap::new(),
                known: HashSet::new(),
                outstanding: 0,
                accepting: true,
                next_id: 0,
                stats: ServiceStats::default(),
            }),
            Condvar::new(),
        ));
        let handles = (0..config.workers)
            .map(|_| {
                let ledger = Arc::clone(&ledger);
                let cfg = config.clone();
                std::thread::spawn(move || worker_loop(&ledger, &cfg))
            })
            .collect();
        Self {
            ledger,
            workers: Mutex::new(handles),
            config,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// This service's lifecycle settings.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Non-blocking admission: [`SubmitOutcome::WouldBlock`] when the
    /// queue is at capacity, [`SubmitOutcome::Rejected`] once shutdown
    /// has begun or when the request's DDG fails the lint pass.
    pub fn try_submit(&self, req: ScheduleRequest, opts: SubmitOptions) -> SubmitOutcome {
        if let Some(reason) = admission_lint(&req) {
            return SubmitOutcome::Rejected(reason);
        }
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        if !ledger.accepting {
            return SubmitOutcome::Rejected(RejectReason::ShuttingDown);
        }
        if ledger.queue.len() >= self.config.queue_capacity {
            ledger.stats.rejected += 1;
            return SubmitOutcome::WouldBlock;
        }
        let out = SubmitOutcome::Accepted(admit(&mut ledger, req, opts, &self.config));
        cv.notify_all();
        out
    }

    /// Blocking admission: waits for queue space (backpressure), then
    /// admits. [`SubmitOutcome::Rejected`] once shutdown has begun —
    /// including while waiting — or when the request's DDG fails the
    /// lint pass (checked before blocking).
    pub fn submit_opts(&self, req: ScheduleRequest, opts: SubmitOptions) -> SubmitOutcome {
        if let Some(reason) = admission_lint(&req) {
            return SubmitOutcome::Rejected(reason);
        }
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        loop {
            if !ledger.accepting {
                return SubmitOutcome::Rejected(RejectReason::ShuttingDown);
            }
            if ledger.queue.len() < self.config.queue_capacity {
                let out = SubmitOutcome::Accepted(admit(&mut ledger, req, opts, &self.config));
                cv.notify_all();
                return out;
            }
            ledger = cv.wait(ledger).unwrap();
        }
    }

    /// Enqueue one request with default options; blocks for queue space.
    ///
    /// # Panics
    /// If the service has been shut down (submitting to a dead pool is a
    /// caller bug, matching the PR 3 contract).
    pub fn submit(&self, req: ScheduleRequest) -> RequestId {
        match self.submit_opts(req, SubmitOptions::default()) {
            SubmitOutcome::Accepted(id) => id,
            _ => panic!("service is shut down"),
        }
    }

    /// Enqueue a batch; ids are consecutive in input order.
    pub fn submit_batch(&self, reqs: Vec<ScheduleRequest>) -> Vec<RequestId> {
        reqs.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Cancel a request: queued work is removed immediately, in-flight
    /// work is flagged for cooperative abandonment at its next phase or
    /// retry boundary. See [`CancelOutcome`].
    pub fn cancel(&self, id: RequestId) -> CancelOutcome {
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        if let Some(pos) = ledger.queue.iter().position(|j| j.id == id) {
            let job = ledger.queue.remove(pos).expect("position just found");
            ledger.complete(Completed {
                id,
                result: Err(ServiceError::Cancelled),
                attempts: 0,
                latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
            });
            cv.notify_all();
            return CancelOutcome::Dequeued;
        }
        if let Some(flag) = ledger.inflight.get(&id) {
            flag.store(true, Ordering::Relaxed);
            return CancelOutcome::InFlight;
        }
        if ledger.done.contains_key(&id) {
            return CancelOutcome::AlreadyDone;
        }
        CancelOutcome::Unknown
    }

    /// Block until every id in `ids` has a response, then remove and
    /// return them **sorted by id** (so a batch submitted in input order
    /// comes back in input order regardless of completion order). An id
    /// this service never admitted — or whose response was already
    /// collected — answers [`ServiceError::UnknownRequest`] immediately
    /// instead of blocking forever. Ids from other callers of a shared
    /// service are untouched, which is what makes the [`global`] service
    /// safe to share between concurrently running drivers.
    pub fn collect(&self, ids: &[RequestId]) -> Responses {
        self.collect_detailed(ids, None)
            .into_iter()
            .map(|c| (c.id, c.result))
            .collect()
    }

    /// [`collect`](Service::collect) with a bound on the wait: ids still
    /// pending when `timeout` elapses answer [`ServiceError::Timeout`]
    /// and **remain collectable** — their real response is not lost.
    pub fn collect_timeout(&self, ids: &[RequestId], timeout: Duration) -> Responses {
        self.collect_detailed(ids, Some(timeout))
            .into_iter()
            .map(|c| (c.id, c.result))
            .collect()
    }

    /// The full lifecycle record ([`Completed`]: attempts + latency) for
    /// each id, sorted by id. `timeout` as in
    /// [`collect_timeout`](Service::collect_timeout); `None` waits
    /// indefinitely for admitted ids.
    pub fn collect_detailed(&self, ids: &[RequestId], timeout: Option<Duration>) -> Vec<Completed> {
        let mut ids: Vec<RequestId> = ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let started = Instant::now();
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        loop {
            // Waiting is over when every *known* id is done; unknown ids
            // (never admitted, or already collected) never block.
            let pending = ids
                .iter()
                .any(|id| ledger.known.contains(id) && !ledger.done.contains_key(id));
            if !pending {
                break;
            }
            match timeout {
                None => ledger = cv.wait(ledger).unwrap(),
                Some(t) => {
                    let Some(left) = t.checked_sub(started.elapsed()) else {
                        break;
                    };
                    let (l, res) = cv.wait_timeout(ledger, left).unwrap();
                    ledger = l;
                    if res.timed_out() {
                        break;
                    }
                }
            }
        }
        ids.into_iter()
            .map(|id| {
                if let Some(c) = ledger.done.remove(&id) {
                    ledger.known.remove(&id);
                    c
                } else {
                    let result = if ledger.known.contains(&id) {
                        Err(ServiceError::Timeout)
                    } else {
                        Err(ServiceError::UnknownRequest)
                    };
                    Completed {
                        id,
                        result,
                        attempts: 0,
                        latency_ns: 0,
                    }
                }
            })
            .collect()
    }

    /// Block until **no** request is outstanding, then remove and return
    /// every uncollected response sorted by id. Meant for single-owner
    /// services (e.g. `kn serve`); on a shared service this would also
    /// drain other callers' responses — they should use [`collect`].
    ///
    /// [`collect`]: Service::collect
    pub fn drain(&self) -> Responses {
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        while ledger.outstanding > 0 {
            ledger = cv.wait(ledger).unwrap();
        }
        let drained: Vec<RequestId> = ledger.done.keys().copied().collect();
        for id in &drained {
            ledger.known.remove(id);
        }
        let mut out: Vec<_> = ledger.done.drain().map(|(id, c)| (id, c.result)).collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Stop admission, settle queued work per `policy`, wait for in-flight
    /// requests to finish, and join every worker thread. Idempotent: a
    /// second call reports zero work and zero joined workers. Responses
    /// already completed (and those produced by the drain itself) remain
    /// collectable afterwards.
    pub fn shutdown(&self, policy: DrainPolicy) -> ShutdownReport {
        let (lock, cv) = &*self.ledger;
        let mut shed = 0u64;
        {
            let mut ledger = lock.lock().unwrap();
            ledger.accepting = false;
            if policy == DrainPolicy::Shed {
                while let Some(job) = ledger.queue.pop_front() {
                    shed += 1;
                    ledger.complete(Completed {
                        id: job.id,
                        result: Err(ServiceError::ShuttingDown),
                        attempts: 0,
                        latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
                    });
                }
            }
            cv.notify_all();
        }
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        let workers_joined = handles.len();
        for h in handles {
            let _ = h.join();
        }
        ShutdownReport {
            shed,
            workers_joined,
        }
    }

    /// Snapshot of the cumulative execution statistics.
    pub fn stats(&self) -> ServiceStats {
        self.ledger.0.lock().unwrap().stats.clone()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown(DrainPolicy::Finish);
    }
}

/// The admission gate: lint the request's DDG (if it carries one as text
/// or a file) before it costs a queue slot and a worker. Only *semantic*
/// lint errors reject here — unreadable files and syntax errors fall
/// through so the worker reports them with the established
/// [`ServiceError::BadRequest`] messages, and corpus / in-memory sources
/// are trusted (they were built through `DdgBuilder::build`, which
/// enforces the same invariants).
fn admission_lint(req: &ScheduleRequest) -> Option<RejectReason> {
    let ScheduleRequest::Loop(r) = req else {
        return None;
    };
    let text = match &r.source {
        LoopSource::DdgText(text) => std::borrow::Cow::Borrowed(text.as_str()),
        LoopSource::DdgFile(path) => match std::fs::read_to_string(path) {
            Ok(text) => std::borrow::Cow::Owned(text),
            Err(_) => return None,
        },
        LoopSource::Corpus(_) | LoopSource::Graph { .. } => return None,
    };
    let lint = kn_verify::lint_text(&text).ok()?;
    let diag = lint.report.first_error()?;
    Some(RejectReason::InvalidDdg {
        code: diag.code.as_str().to_string(),
        message: diag.message.clone(),
    })
}

/// Admit one request under an already-held ledger lock.
fn admit(
    ledger: &mut Ledger,
    req: ScheduleRequest,
    opts: SubmitOptions,
    config: &ServiceConfig,
) -> RequestId {
    let id = RequestId(ledger.next_id);
    ledger.next_id += 1;
    ledger.outstanding += 1;
    ledger.stats.submitted += 1;
    ledger.known.insert(id);
    ledger.queue.push_back(Job {
        id,
        req,
        deadline: opts.deadline,
        max_attempts: opts.max_attempts.unwrap_or(config.max_attempts).max(1),
        cancel: Arc::new(AtomicBool::new(false)),
        admitted_at: Instant::now(),
    });
    id
}

fn worker_loop(ledger: &(Mutex<Ledger>, Condvar), config: &ServiceConfig) {
    let (lock, cv) = ledger;
    let mut scratch = WorkerScratch::default();
    loop {
        let job = {
            let mut ledger = lock.lock().unwrap();
            loop {
                if let Some(job) = ledger.queue.pop_front() {
                    // Shed before spending a worker on it.
                    if job.cancel.load(Ordering::Relaxed) {
                        ledger.complete(Completed {
                            id: job.id,
                            result: Err(ServiceError::Cancelled),
                            attempts: 0,
                            latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
                        });
                        cv.notify_all();
                        continue;
                    }
                    if let Some(d) = job.deadline {
                        if d.is_expired() {
                            ledger.complete(Completed {
                                id: job.id,
                                result: Err(ServiceError::Expired),
                                attempts: 0,
                                latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
                            });
                            cv.notify_all();
                            continue;
                        }
                    }
                    ledger.inflight.insert(job.id, Arc::clone(&job.cancel));
                    break job;
                }
                if !ledger.accepting {
                    return; // shutdown: admission closed, queue empty
                }
                ledger = cv.wait(ledger).unwrap();
            }
        };

        let (result, attempts, timing, exec_ns, retries) = run_attempts(&mut scratch, &job, config);

        let mut ledger = lock.lock().unwrap();
        ledger.inflight.remove(&job.id);
        ledger.stats.retries += retries;
        ledger.stats.exec_ns += exec_ns;
        ledger.stats.parse_ns += timing.parse_ns;
        ledger.stats.schedule_ns += timing.schedule_ns;
        ledger.stats.sim_ns += timing.sim_ns;
        ledger.complete(Completed {
            id: job.id,
            result,
            attempts,
            latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
        });
        cv.notify_all();
    }
}

/// Execute one job's attempt loop: panic guard, fault injection, response
/// validation, cooperative cancel/deadline checks, capped backoff between
/// retries. Returns (final result, attempts used, accumulated timing,
/// total exec ns, retry count).
#[allow(clippy::type_complexity)]
fn run_attempts(
    scratch: &mut WorkerScratch,
    job: &Job,
    config: &ServiceConfig,
) -> (
    Result<ScheduleResponse, ServiceError>,
    u32,
    RequestTiming,
    u64,
    u64,
) {
    let mut timing = RequestTiming::default();
    let mut exec_ns = 0u64;
    let mut attempts = 0u32;
    let mut retries = 0u64;
    let result = loop {
        // Cooperative abandonment between attempts.
        if job.cancel.load(Ordering::Relaxed) {
            break Err(ServiceError::Cancelled);
        }
        if job.deadline.is_some_and(|d| d.is_expired()) {
            break Err(ServiceError::Expired);
        }
        attempts += 1;
        let ctx = ExecCtx {
            cancel: Some(Arc::clone(&job.cancel)),
            deadline: job.deadline.map(|d| d.0),
        };
        let t0 = Instant::now();
        let attempt_result = run_one_attempt(scratch, job, attempts, &ctx, config, &mut timing);
        exec_ns += t0.elapsed().as_nanos() as u64;
        match attempt_result {
            Ok(resp) => break Ok(resp),
            Err(e) if e.is_transient() && attempts < job.max_attempts => {
                retries += 1;
                let wait = backoff_delay(attempts + 1, config.backoff_base, config.backoff_cap);
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
            Err(e) => break Err(e),
        }
    };
    (result, attempts, timing, exec_ns, retries)
}

fn run_one_attempt(
    scratch: &mut WorkerScratch,
    job: &Job,
    attempt: u32,
    ctx: &ExecCtx,
    config: &ServiceConfig,
    timing: &mut RequestTiming,
) -> Result<ScheduleResponse, ServiceError> {
    let fault = config
        .fault_plan
        .as_ref()
        .and_then(|p| p.fault_for(job.id, attempt));
    if let Some(Fault::Stall) = fault {
        // A wedged execution, cut off by the lifecycle layer: the attempt
        // burns its stall budget and reports a transient fault (which the
        // retry loop then recovers from, deadline permitting).
        let stall = config
            .fault_plan
            .as_ref()
            .map(|p| p.stall_duration)
            .unwrap_or_default();
        if !stall.is_zero() {
            std::thread::sleep(stall);
        }
        return Err(ServiceError::Faulted(format!(
            "injected stall ({} attempt {attempt})",
            job.id
        )));
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(Fault::Panic) = fault {
            panic!("injected panic ({} attempt {attempt})", job.id);
        }
        let (mut result, t) = request::execute_with(scratch, &job.req, ctx);
        if let Some(Fault::Garbage) = fault {
            result = Ok(faultinject::garble(result));
        }
        (result, t)
    }));
    match outcome {
        Ok((result, t)) => {
            timing.parse_ns += t.parse_ns;
            timing.schedule_ns += t.schedule_ns;
            timing.sim_ns += t.sim_ns;
            // Detect-and-recover: a response that fails the cheap sanity
            // validator (e.g. injected garbage) is a transient fault.
            match result {
                Ok(resp) => match request::validate_response(&resp) {
                    Ok(()) => Ok(resp),
                    Err(why) => Err(ServiceError::Faulted(format!(
                        "response failed validation: {why}"
                    ))),
                },
                Err(e) => Err(e),
            }
        }
        Err(payload) => {
            // The panic may have left the scratch caches mid-update;
            // start this worker's caches over rather than trust them.
            *scratch = WorkerScratch::default();
            Err(ServiceError::Panicked(panic_message(payload)))
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "request panicked".to_string()
    }
}

/// The process-wide service, sized to the machine
/// (`std::thread::available_parallelism`), created on first use and alive
/// for the rest of the process. The parallel experiment drivers submit
/// their cells here, so repeated driver calls reuse the same warm worker
/// pool instead of re-spawning threads per batch.
pub fn global() -> &'static Service {
    static GLOBAL: OnceLock<Service> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Service::new(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_collect_round_trip() {
        let svc = Service::new(2);
        let a = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        let b = svc.submit(ScheduleRequest::loop_on_corpus("cytron86"));
        let got = svc.collect(&[b, a]); // collect order is id order
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, a);
        assert_eq!(got[1].0, b);
        assert!(got.iter().all(|(_, r)| r.is_ok()));
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.retries, 0);
        assert!(stats.exec_ns > 0);
    }

    #[test]
    fn drain_returns_everything_in_id_order() {
        let svc = Service::new(3);
        let ids = svc.submit_batch(vec![
            ScheduleRequest::loop_on_corpus("figure7"),
            ScheduleRequest::loop_on_corpus("nope"),
            ScheduleRequest::loop_on_corpus("elliptic"),
        ]);
        let got = svc.drain();
        assert_eq!(got.iter().map(|&(id, _)| id).collect::<Vec<_>>(), ids);
        assert!(got[0].1.is_ok());
        assert!(got[1].1.is_err(), "unknown corpus is an error response");
        assert!(got[2].1.is_ok());
    }

    #[test]
    fn global_service_is_shared_and_sized() {
        let svc = global();
        assert!(svc.workers() >= 1);
        let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        assert!(svc.collect(&[id])[0].1.is_ok());
    }

    #[test]
    fn collect_of_unknown_id_answers_immediately() {
        // The PR 3 bug: collecting a never-submitted id blocked forever.
        let svc = Service::new(1);
        let got = svc.collect(&[RequestId(999)]);
        assert!(
            matches!(&got[0].1, Err(ServiceError::UnknownRequest)),
            "{:?}",
            got[0].1
        );
        // An already-collected id is likewise unknown the second time.
        let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        assert!(svc.collect(&[id])[0].1.is_ok());
        let again = svc.collect(&[id]);
        assert!(
            matches!(&again[0].1, Err(ServiceError::UnknownRequest)),
            "{:?}",
            again[0].1
        );
    }

    #[test]
    fn expired_deadline_is_shed_at_dequeue() {
        let svc = Service::new(1);
        let out = svc.submit_opts(
            ScheduleRequest::loop_on_corpus("figure7"),
            SubmitOptions {
                deadline: Some(Deadline::expired()),
                ..SubmitOptions::default()
            },
        );
        let SubmitOutcome::Accepted(id) = out else {
            panic!("admission open: {out:?}");
        };
        let got = svc.collect_detailed(&[id], None);
        assert!(
            matches!(&got[0].result, Err(ServiceError::Expired)),
            "{:?}",
            got[0].result
        );
        assert_eq!(got[0].attempts, 0, "no worker time wasted");
        assert_eq!(svc.stats().expired, 1);
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_new_work() {
        let svc = Service::new(2);
        let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        let report = svc.shutdown(DrainPolicy::Finish);
        assert_eq!(report.workers_joined, 2);
        assert_eq!(report.shed, 0);
        // Admission is closed; the finished response is still there.
        assert_eq!(
            svc.try_submit(
                ScheduleRequest::loop_on_corpus("figure7"),
                SubmitOptions::default()
            ),
            SubmitOutcome::Rejected(RejectReason::ShuttingDown)
        );
        assert_eq!(
            svc.submit_opts(
                ScheduleRequest::loop_on_corpus("figure7"),
                SubmitOptions::default()
            ),
            SubmitOutcome::Rejected(RejectReason::ShuttingDown)
        );
        assert!(svc.collect(&[id])[0].1.is_ok());
        let again = svc.shutdown(DrainPolicy::Shed);
        assert_eq!(again.workers_joined, 0);
        assert_eq!(again.shed, 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let ms = Duration::from_millis;
        assert_eq!(backoff_delay(1, ms(2), ms(50)), Duration::ZERO);
        assert_eq!(backoff_delay(2, ms(2), ms(50)), ms(2));
        assert_eq!(backoff_delay(3, ms(2), ms(50)), ms(4));
        assert_eq!(backoff_delay(4, ms(2), ms(50)), ms(8));
        assert_eq!(backoff_delay(9, ms(2), ms(50)), ms(50), "capped");
        assert_eq!(backoff_delay(40, ms(2), ms(50)), ms(50), "shift saturates");
        assert_eq!(backoff_delay(3, Duration::ZERO, ms(50)), Duration::ZERO);
    }
}
