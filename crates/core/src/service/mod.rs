//! # Batch scheduling service — a fault-tolerant request lifecycle over
//! # the Cyclic-sched pipeline
//!
//! The experiment drivers fan independent (workload, machine) cells out
//! across threads and then exit; this module lifts that fan-out into a
//! **service**: a persistent worker pool that outlives any single driver
//! call, fed through a typed request/response pair and hardened with the
//! admission/deadline/cancellation/retry machinery real traffic needs
//! (ROADMAP north star: "serves heavy traffic from millions of users").
//!
//! ## Request lifecycle state machine
//!
//! Every admitted request moves through this machine; each submitted id
//! produces **exactly one** final response:
//!
//! ```text
//!              submit / try_submit
//!   (rejected) <---- ADMISSION ----> queued
//!                                      |  cancel()          -> cancelled
//!                                      |  deadline passed   -> expired
//!                                      |  shutdown(Shed)    -> shed
//!                                      v
//!                                   running --- panic/fault ---+
//!                                      |  cancel(), deadline   | retry with
//!                                      |  (phase boundaries)   | capped backoff,
//!                                      v                       | up to the
//!                  done(ok) / done(error) <---(budget spent)---+ attempt budget
//! ```
//!
//! * **Bounded admission** — the queue holds at most
//!   [`ServiceConfig::queue_capacity`] requests. [`Service::try_submit`]
//!   never blocks: it answers [`SubmitOutcome::WouldBlock`] on a full
//!   queue and [`SubmitOutcome::Rejected`] once shutdown has begun.
//!   [`Service::submit_opts`] blocks for space (backpressure);
//!   [`Service::submit`] is the PR 3-compatible wrapper that panics only
//!   if the service was already shut down.
//! * **Deadlines** — a per-request [`Deadline`] is enforced at dequeue
//!   (expired work is shed before wasting a worker), between retry
//!   attempts, and cooperatively at pipeline phase boundaries
//!   (parse → schedule → simulate). An expired request answers
//!   [`ServiceError::Expired`].
//! * **Cancellation** — [`Service::cancel`] removes queued work
//!   immediately ([`CancelOutcome::Dequeued`]) and flags in-flight work
//!   ([`CancelOutcome::InFlight`]) for cooperative abandonment at the
//!   next phase boundary or retry boundary; either way the id answers
//!   [`ServiceError::Cancelled`].
//! * **Retry with capped exponential backoff** — transient failures
//!   (a pipeline panic, an injected fault, a response that fails
//!   validation) are retried up to [`ServiceConfig::max_attempts`] with
//!   deterministic backoff `min(base * 2^(attempt-1), cap)`. Responses
//!   carry the attempt count ([`Completed::attempts`]). Deterministic
//!   failures ([`ServiceError::BadRequest`], [`ServiceError::Sched`]) are
//!   never retried.
//! * **Graceful drain on shutdown** — [`Service::shutdown`] stops
//!   admission, then either finishes the queued work
//!   ([`DrainPolicy::Finish`]) or sheds it with
//!   [`ServiceError::ShuttingDown`] ([`DrainPolicy::Shed`]); in-flight
//!   requests complete either way, and every worker thread is joined
//!   before `shutdown` returns. Dropping the service is
//!   `shutdown(DrainPolicy::Finish)`.
//!
//! ## Collecting responses
//!
//! [`Service::collect`] blocks until every requested id has a response;
//! an id the service has **never admitted** (or whose response was
//! already collected) answers [`ServiceError::UnknownRequest`]
//! immediately instead of blocking forever. [`Service::collect_timeout`]
//! bounds the wait: ids still pending when the timeout fires answer
//! [`ServiceError::Timeout`] and remain collectable later.
//! [`Service::drain`] waits for quiescence and removes everything.
//!
//! ## Determinism guarantee
//!
//! Responses are pure functions of their request: every stage (parsing,
//! scheduling, simulation) is deterministic, workers share no mutable
//! state, and results are keyed by request id. Therefore the multiset of
//! `(id, response)` pairs is independent of the worker count, the
//! submission order of *other* requests, and OS scheduling — a batch
//! submitted to a 1-worker service, an 8-worker service, or shuffled and
//! resubmitted yields identical responses per id (pinned by
//! `crates/core/tests/service.rs`). Retries preserve this: a retried
//! attempt re-executes the same pure function, so a transient-fault
//! recovery is byte-identical to an undisturbed run. The seeded
//! fault-injection harness ([`faultinject`]) keys faults on the request
//! id, never on timing, which is what makes every failure path above
//! testable in CI without sleeps.
//!
//! ## Fault isolation
//!
//! A request that panics inside the pipeline is caught at the worker
//! boundary: the worker survives, its scratch caches are rebuilt, and —
//! once the retry budget is spent — the id answers
//! [`ServiceError::Panicked`]. A poisoned request can never wedge the
//! pool or lose an id.
//!
//! ## Supervision: watchdog + worker replacement
//!
//! Panics are recoverable because they *return*; a worker that wedges
//! permanently (a runaway loop, an injected
//! [`StallMode::Wedge`](faultinject::StallMode)) would silently
//! shrink the pool forever. The **watchdog thread** (on by default, see
//! [`WatchdogConfig`]) samples every worker's heartbeat counter — stamped
//! at pipeline phase boundaries through [`ExecCtx::beat`] — once per
//! interval. A worker that stays busy on the *same* request for
//! [`WatchdogConfig::stuck_ticks`] consecutive intervals without its
//! heartbeat advancing is declared stuck: its in-flight request is
//! confiscated (requeued if retry budget remains — zero lost ids — else
//! answered [`ServiceError::Faulted`]), the worker is condemned and
//! detached, and a **replacement worker** is spawned so the pool never
//! shrinks. [`ServiceStats::replaced_workers`] counts interventions and
//! [`Service::health`] snapshots the whole pool ([`PoolHealth`]),
//! queryable over the wire with a `health` request line.
//!
//! ## Priority lanes + starvation guard
//!
//! Admission is no longer FIFO: each request carries a
//! [`Priority`] ([`SubmitOptions::priority`]) and the queue is three
//! lanes. Dequeue order is lane-major (`High` → `Normal` → `Low`) and
//! deadline-earliest-first within a lane (ties and deadline-less requests
//! fall back to id order). Starvation is bounded by **aging**: a request
//! that has waited [`ServiceConfig::age_promote`] dequeues (a logical
//! clock — dequeue events, not wall time) is promoted over every fresher
//! request regardless of lane, so any accepted request eventually runs
//! once load subsides (pinned by a proptest).
//!
//! ## Overload shedding (brownout)
//!
//! Past [`ServiceConfig::high_water`] queued requests the service is in
//! **brownout**: `Low` arrivals are refused outright
//! ([`RejectReason::Overloaded`]) and the TCP front-end ([`net`]) stops
//! reading sockets, letting the kernel push back on clients. At hard
//! [`ServiceConfig::queue_capacity`] a higher-priority arrival evicts the
//! least-urgent strictly-lower-priority queued request (latest deadline
//! first), which answers [`ServiceError::Overloaded`]. High-priority
//! traffic therefore keeps its deadlines while `Low` sheds first — the
//! invariant the open-loop [`loadgen`] harness and the bench
//! `overload_entries` gate pin in CI.
//!
//! ## Response cache + in-flight dedup
//!
//! At production scale most requests are the same loop on the same
//! machine config, and responses are pure functions of their requests —
//! so recomputing them is pure waste. With
//! [`ServiceConfig::cache_capacity`] > 0 the service keeps a bounded,
//! sharded response cache keyed by a canonical 64-bit fingerprint of
//! (resolved source, machine, sim options, traffic, scheduler), verified
//! against the full canonical string on every lookup so a colliding
//! digest can never serve the wrong response. Admission consults it
//! *before* a queue slot is spent: a hit answers immediately (attempt
//! count 0 — byte-identical to a fresh response on the wire), and a
//! request identical to one already queued or executing **coalesces**
//! onto that leader's waiter list instead of recomputing — each waiter
//! still gets its own id-stamped copy of the one result, and a
//! higher-priority waiter upgrades a queued leader's lane so the
//! coalition runs at the urgency of its most urgent member. A leader
//! that fails (fault, cancel, expiry) hands off to its first viable
//! waiter — promoted into the queue as the new leader with its own
//! budget — rather than poisoning the key. Lifecycle options (deadline,
//! priority, attempts) are not part of the key: they shape *whether* a
//! request completes, never *what* it computes; a request whose deadline
//! has already expired at admission bypasses the cache entirely so its
//! deterministic `expired` answer is preserved. Hits, misses, coalesced
//! waiters, and evictions are counted in [`ServiceStats`] and surfaced
//! by [`Service::health`] / the `health` wire line. The default is
//! **off** (capacity 0); `kn serve` turns it on (see `--cache-capacity`
//! / `--no-cache`).
//!
//! ## Example
//!
//! ```
//! use kn_core::service::{LoopSource, ScheduleRequest, ScheduleResponse, Service};
//!
//! let svc = Service::new(2);
//! let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
//! let responses = svc.collect(&[id]);
//! let Ok(ScheduleResponse::Loop(out)) = &responses[0].1 else {
//!     panic!("figure7 schedules");
//! };
//! assert_eq!(out.ii, Some(2.5));
//! ```
//!
//! The process-wide [`global`] service (sized to the machine) is what the
//! parallel experiment drivers submit to; per-call services are for tests
//! and embedders that want their own pool. Do **not** submit-and-collect
//! from *inside* a request executing on the same service — a worker
//! blocking on its own pool's results can deadlock a fully loaded pool.
//! The TCP front-end over this service lives in [`net`]; the wire format
//! it speaks is [`wire`].

mod cache;
pub mod faultinject;
pub mod loadgen;
pub mod net;
/// Operator runbook for the supervised pool (from `docs/operations.md`).
#[doc = include_str!("../../../../docs/operations.md")]
pub mod operations {}
mod request;
pub mod wire;

pub use request::{
    execute, validate_response, ExecCtx, LoopOutcome, LoopRequest, LoopSource, RequestTiming,
    ScheduleRequest, ScheduleResponse, SchedulerChoice, ServiceError, TransformMode,
    TransformSummary, WorkerScratch,
};

use cache::ResponseCache;
use faultinject::{Fault, FaultPlan, StallMode};
use request::CacheKey;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Stable handle for one submitted request. Ids are assigned in
/// submission order and never reused, so out-of-order completion remains
/// deterministically attributable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Absolute point in time by which a request must *start making
/// progress*; enforced at dequeue, between retry attempts, and at
/// pipeline phase boundaries. A request past its deadline answers
/// [`ServiceError::Expired`] without wasting further worker time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline(pub Instant);

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline(Instant::now() + d)
    }

    /// A deadline that has already passed — queued work carrying it is
    /// deterministically shed at dequeue (tests and load-shedding use
    /// this; `deadline_ms=0` on the wire produces it).
    pub fn expired() -> Self {
        Deadline(Instant::now())
    }

    /// Has the deadline passed at `now`? A deadline equal to "now" counts
    /// as expired, which is what makes [`Deadline::expired`] (and
    /// `deadline_ms=0`) deterministic: any later monotone reading is
    /// `>=` the instant it was created at.
    pub fn is_expired_at(&self, now: Instant) -> bool {
        now >= self.0
    }

    /// Has the deadline passed right now?
    pub fn is_expired(&self) -> bool {
        self.is_expired_at(Instant::now())
    }
}

/// Scheduling priority of a request. Declaration order is dequeue order:
/// `High` lanes drain before `Normal` before `Low` (subject to the aging
/// starvation guard, [`ServiceConfig::age_promote`]), and under brownout
/// `Low` is shed first (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive: drained first, never brownout-shed, evicts
    /// lower-priority queued work when the queue is hard-full.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Best-effort: first to be refused past the high-water mark and
    /// first to be evicted at hard capacity.
    Low,
}

impl Priority {
    /// Lane index (0 = `High`, 1 = `Normal`, 2 = `Low`).
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Wire name (`high` / `normal` / `low`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parse a wire name; `None` for anything unrecognized.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    /// All priorities in lane order — for per-lane reporting.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];
}

/// Per-submission options: everything about a request's lifecycle that is
/// not part of the scheduling work itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Shed the request once this passes (see [`Deadline`]).
    pub deadline: Option<Deadline>,
    /// Override the service-wide [`ServiceConfig::max_attempts`] for this
    /// request.
    pub max_attempts: Option<u32>,
    /// Queue lane (see [`Priority`]); `Normal` by default.
    pub priority: Priority,
}

/// Why admission refused a request outright (no id, no response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission is closed: shutdown has begun. Permanent.
    ShuttingDown,
    /// The request carries an inline/file DDG that failed the `kn-verify`
    /// lint pass: `code` is the stable `KN0xx` code of the first error
    /// finding (see `docs/diagnostics.md`). Deterministic — resubmitting
    /// the same graph can never succeed.
    InvalidDdg { code: String, message: String },
    /// Brownout: the queue is past [`ServiceConfig::high_water`] and this
    /// arrival is [`Priority::Low`]. Transient — resubmit once load
    /// subsides (unlike the other reasons, which are permanent for the
    /// request).
    Overloaded,
}

/// Admission verdict for [`Service::try_submit`] / [`Service::submit_opts`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted; the id will produce exactly one response.
    Accepted(RequestId),
    /// Refused outright (shutdown, or a DDG that failed lint); see
    /// [`RejectReason`]. Permanent for this request.
    Rejected(RejectReason),
    /// The queue is at capacity right now ([`Service::try_submit`] only);
    /// backing off and retrying, or using the blocking
    /// [`Service::submit_opts`], may succeed.
    WouldBlock,
}

impl SubmitOutcome {
    /// The id, if admitted.
    pub fn id(&self) -> Option<RequestId> {
        match self {
            SubmitOutcome::Accepted(id) => Some(*id),
            _ => None,
        }
    }
}

/// What [`Service::cancel`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// Removed from the queue before any worker saw it; the id answers
    /// [`ServiceError::Cancelled`].
    Dequeued,
    /// A worker is executing it; it has been flagged and will abandon
    /// cooperatively at the next phase or retry boundary.
    InFlight,
    /// Already completed — the response (whatever it is) stands.
    AlreadyDone,
    /// Not an id this service is currently tracking.
    Unknown,
}

/// How [`Service::shutdown`] treats work that is still queued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainPolicy {
    /// Finish every queued request before the workers exit (expired
    /// deadlines are still shed at dequeue as usual).
    Finish,
    /// Answer every queued request with [`ServiceError::ShuttingDown`]
    /// immediately; workers exit as soon as their in-flight request
    /// completes.
    Shed,
}

/// What [`Service::shutdown`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Requests still queued when admission closed that were answered
    /// with [`ServiceError::ShuttingDown`] ([`DrainPolicy::Shed`] only).
    pub shed: u64,
    /// Worker threads joined by this call.
    pub workers_joined: usize,
}

/// Service construction parameters. `Default` is the PR 3-compatible
/// shape: an effectively unbounded queue, one retry for transient
/// failures, millisecond-scale backoff, no fault injection.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (at least one).
    pub workers: usize,
    /// Maximum queued (not yet running) requests before admission pushes
    /// back.
    pub queue_capacity: usize,
    /// Total execution attempts per request (1 = no retry). Only
    /// transient failures (panic, injected fault, invalid response) are
    /// retried.
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Deterministic fault injection (tests, CI fault-smoke); `None` in
    /// production.
    pub fault_plan: Option<FaultPlan>,
    /// Brownout threshold: once this many requests are queued, `Low`
    /// arrivals are refused ([`RejectReason::Overloaded`]) and the TCP
    /// front-end pauses socket reads. `usize::MAX` (default) disables
    /// brownout.
    pub high_water: usize,
    /// Starvation guard: a queued request older than this many dequeue
    /// events (a logical clock, not wall time) is promoted over every
    /// fresher request regardless of priority lane.
    pub age_promote: u64,
    /// Stuck-worker supervision; `None` disables the watchdog thread
    /// (then a permanently wedged worker occupies its slot forever).
    pub watchdog: Option<WatchdogConfig>,
    /// Response-cache capacity in entries; `0` (default) disables the
    /// cache **and** in-flight dedup. `kn serve` enables it (1024 unless
    /// `--cache-capacity` overrides; `--no-cache` sets 0). See the
    /// module docs' "Response cache + in-flight dedup" section.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: usize::MAX,
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            fault_plan: None,
            high_water: usize::MAX,
            age_promote: 64,
            watchdog: Some(WatchdogConfig::default()),
            cache_capacity: 0,
        }
    }
}

/// Watchdog (stuck-worker supervision) parameters. The stuck budget is
/// **logical**: `stuck_ticks` consecutive samples with an unchanged
/// heartbeat while busy on the same request — tests shrink `interval` to
/// milliseconds for a deterministic small budget, production keeps the
/// ~10 s default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Sampling period of the watchdog thread.
    pub interval: Duration,
    /// Consecutive unchanged samples (same request, same heartbeat count)
    /// before a busy worker is declared stuck. The effective wall budget
    /// is `interval * stuck_ticks`.
    pub stuck_ticks: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(200),
            stuck_ticks: 50,
        }
    }
}

/// Deterministic capped exponential backoff before retry `attempt`
/// (attempt 2 = first retry waits `base`, attempt 3 waits `2*base`, …,
/// never more than `cap`).
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration) -> Duration {
    if attempt <= 1 || base.is_zero() {
        return Duration::ZERO;
    }
    let factor = 1u32 << (attempt - 2).min(16);
    (base * factor).min(cap)
}

/// Cumulative per-service execution statistics (monotone counters; read
/// a snapshot with [`Service::stats`], diff two snapshots for batch-level
/// numbers). `completed`/`errors` count **final outcomes** — a request
/// retried twice and then succeeding is one completion, zero errors, two
/// `retries`. Phase breakdowns cover [`ScheduleRequest::Loop`] requests;
/// experiment-cell requests report only their total under `exec_ns`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests completed (ok or error), counting final outcomes only.
    pub completed: u64,
    /// Requests whose final response is an error.
    pub errors: u64,
    /// Extra attempts spent on transient failures.
    pub retries: u64,
    /// Requests shed because their deadline passed.
    pub expired: u64,
    /// Requests cancelled by the caller.
    pub cancelled: u64,
    /// Requests shed by `shutdown(DrainPolicy::Shed)`.
    pub shed: u64,
    /// Admission attempts answered `WouldBlock` (full queue).
    pub rejected: u64,
    /// Requests shed by the brownout policy: `Low` arrivals refused past
    /// the high-water mark plus queued requests evicted at hard capacity
    /// by a higher-priority arrival.
    pub overloaded: u64,
    /// Workers the watchdog declared stuck and replaced.
    pub replaced_workers: u64,
    /// Requests answered straight from the response cache (attempt
    /// count 0, no queue slot spent).
    pub cache_hits: u64,
    /// Cacheable requests that had to compute fresh (each registers its
    /// key as the in-flight dedup leader).
    pub cache_misses: u64,
    /// Requests that coalesced onto an identical in-flight leader's
    /// waiter list instead of recomputing.
    pub cache_coalesced: u64,
    /// Entries evicted from the response cache (LRU, bounded by
    /// [`ServiceConfig::cache_capacity`]).
    pub cache_evictions: u64,
    /// Total wall nanoseconds workers spent executing requests (all
    /// attempts).
    pub exec_ns: u64,
    /// Source-resolution (read + parse + cache lookup) nanoseconds.
    pub parse_ns: u64,
    /// Scheduling nanoseconds.
    pub schedule_ns: u64,
    /// Simulation nanoseconds.
    pub sim_ns: u64,
}

/// One finished request: the final response plus its lifecycle record.
#[derive(Clone, Debug)]
pub struct Completed {
    pub id: RequestId,
    pub result: Result<ScheduleResponse, ServiceError>,
    /// Execution attempts consumed (0 for requests shed before any
    /// attempt: expired, cancelled while queued, shut down).
    pub attempts: u32,
    /// Wall nanoseconds from admission to final response.
    pub latency_ns: u64,
}

/// Completed responses paired with their ids, sorted by id — what
/// [`Service::collect`] and [`Service::drain`] return.
pub type Responses = Vec<(RequestId, Result<ScheduleResponse, ServiceError>)>;

/// A queued unit of work. Cloneable so the watchdog can requeue a
/// confiscated in-flight copy: the `cancel` and `attempts` handles are
/// shared across the clones (one identity per id), only `abandoned` is
/// per-dispatch.
#[derive(Clone)]
struct Job {
    id: RequestId,
    req: Arc<ScheduleRequest>,
    deadline: Option<Deadline>,
    max_attempts: u32,
    priority: Priority,
    cancel: Arc<AtomicBool>,
    /// Set by the watchdog when it confiscates this dispatch: the wedged
    /// worker must drop the job (its result no longer counts) and exit.
    abandoned: Arc<AtomicBool>,
    /// Absolute execution attempts spent on this id, across workers —
    /// survives confiscation so a requeued request keeps its budget.
    attempts: Arc<AtomicU32>,
    /// Value of the ledger's dequeue clock at admission (aging baseline).
    admitted_seq: u64,
    admitted_at: Instant,
    /// Response-cache identity, when this job is a dedup **leader**: its
    /// result is published under this key and settles the key's waiters
    /// (`None` when caching is off or the request is uncacheable).
    key: Option<Arc<CacheKey>>,
}

/// `current` value of an idle [`WorkerSlot`].
const IDLE: u64 = u64::MAX;

/// Watchdog-visible state of one worker thread.
struct WorkerSlot {
    /// Stable worker index; replacements get fresh indices.
    index: usize,
    /// Heartbeat counter, bumped at dispatch, at every pipeline phase
    /// boundary ([`ExecCtx::beat`]), and around each attempt. The
    /// watchdog declares a worker stuck only when this stops advancing
    /// while `current` stays on the same request.
    beat: Arc<AtomicU64>,
    /// Request id being executed, or [`IDLE`].
    current: AtomicU64,
    /// Set by the watchdog: this worker is replaced; exit at the next
    /// opportunity and never complete anything again.
    condemned: AtomicBool,
}

impl WorkerSlot {
    fn new(index: usize) -> Self {
        Self {
            index,
            beat: Arc::new(AtomicU64::new(0)),
            current: AtomicU64::new(IDLE),
            condemned: AtomicBool::new(false),
        }
    }
}

/// An executing request, held so the watchdog can confiscate and requeue
/// it (and `cancel` can flag it).
struct InFlight {
    job: Job,
}

/// One request coalesced onto an in-flight leader: everything needed to
/// stamp the leader's result with this id — or to promote this request
/// into a leader of its own if the current one fails.
struct Waiter {
    id: RequestId,
    deadline: Option<Deadline>,
    max_attempts: u32,
    priority: Priority,
    admitted_at: Instant,
}

/// In-flight dedup state for one cache key: the leader computing it and
/// the waiters that coalesced onto that computation. Lives in
/// [`Ledger::coalesced`] from the leader's admission until its result is
/// published (or the last viable waiter is gone).
struct Dedup {
    key: Arc<CacheKey>,
    /// The leader's request, kept so a failed leader's waiters can be
    /// promoted without re-parsing anything.
    req: Arc<ScheduleRequest>,
    leader: RequestId,
    waiters: Vec<Waiter>,
}

/// Shared queue + completed-response ledger.
struct Ledger {
    /// Priority lanes, indexed by [`Priority::lane`].
    lanes: [VecDeque<Job>; 3],
    /// Logical aging clock: total dequeue events so far. A job's age is
    /// `dequeues - admitted_seq`.
    dequeues: u64,
    done: HashMap<RequestId, Completed>,
    /// Requests currently executing on a worker.
    inflight: HashMap<RequestId, InFlight>,
    /// In-flight dedup: fingerprint → leader + waiters. An entry exists
    /// exactly while a leader with that key is queued or executing.
    coalesced: HashMap<u64, Dedup>,
    /// Ids admitted and not yet collected (superset of `done`'s keys and
    /// of everything queued/in-flight). Membership here is what
    /// distinguishes "still coming" from "never submitted / already
    /// collected" in [`Service::collect`].
    known: HashSet<RequestId>,
    /// Admitted requests without a final response yet.
    outstanding: u64,
    accepting: bool,
    next_id: u64,
    /// Next worker index to hand out (replacements get fresh indices).
    next_worker: usize,
    /// Live worker slots, in no particular order.
    slots: Vec<Arc<WorkerSlot>>,
    stats: ServiceStats,
}

/// Dequeue key within a lane: deadline-earliest-first, deadline-less work
/// after all deadline-carrying work, id order as the tiebreak.
fn urgency_key(j: &Job) -> (bool, Option<Instant>, u64) {
    (j.deadline.is_none(), j.deadline.map(|d| d.0), j.id.0)
}

impl Ledger {
    /// Total queued (not yet running) requests across all lanes.
    fn queued_len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Enqueue into the job's priority lane.
    fn push_job(&mut self, job: Job) {
        self.lanes[job.priority.lane()].push_back(job);
    }

    /// Dequeue the next job: any request aged past `age_promote` dequeue
    /// events wins first (oldest id among the aged — the starvation
    /// guard), else lane-major order with [`urgency_key`] inside the
    /// first nonempty lane. Advances the aging clock.
    fn pop_job(&mut self, age_promote: u64) -> Option<Job> {
        let now = self.dequeues;
        let mut pick: Option<(usize, usize)> = None;
        let mut oldest = u64::MAX;
        for (lane, q) in self.lanes.iter().enumerate() {
            for (i, j) in q.iter().enumerate() {
                if now.saturating_sub(j.admitted_seq) >= age_promote && j.id.0 < oldest {
                    oldest = j.id.0;
                    pick = Some((lane, i));
                }
            }
        }
        if pick.is_none() {
            for (lane, q) in self.lanes.iter().enumerate() {
                if q.is_empty() {
                    continue;
                }
                let mut best = 0;
                for i in 1..q.len() {
                    if urgency_key(&q[i]) < urgency_key(&q[best]) {
                        best = i;
                    }
                }
                pick = Some((lane, best));
                break;
            }
        }
        let (lane, i) = pick?;
        self.dequeues += 1;
        self.lanes[lane].remove(i)
    }

    /// Remove a queued job by id (any lane); `None` if not queued.
    fn take_queued(&mut self, id: RequestId) -> Option<Job> {
        for q in self.lanes.iter_mut() {
            if let Some(pos) = q.iter().position(|j| j.id == id) {
                return q.remove(pos);
            }
        }
        None
    }

    /// Evict the least-urgent queued job of strictly lower priority than
    /// `p`: lowest lane first, latest deadline within it (deadline-less
    /// counts latest; highest id breaks ties). `None` when nothing
    /// strictly below `p` is queued.
    fn evict_below(&mut self, p: Priority) -> Option<Job> {
        for lane in (p.lane() + 1..3).rev() {
            let q = &self.lanes[lane];
            if q.is_empty() {
                continue;
            }
            let mut victim = 0;
            for i in 1..q.len() {
                if urgency_key(&q[i]) > urgency_key(&q[victim]) {
                    victim = i;
                }
            }
            return self.lanes[lane].remove(victim);
        }
        None
    }

    /// Record a final response. Caller notifies the condvar.
    fn complete(&mut self, c: Completed) {
        self.stats.completed += 1;
        if let Err(e) = &c.result {
            self.stats.errors += 1;
            match e {
                ServiceError::Expired => self.stats.expired += 1,
                ServiceError::Cancelled => self.stats.cancelled += 1,
                ServiceError::ShuttingDown => self.stats.shed += 1,
                ServiceError::Overloaded => self.stats.overloaded += 1,
                _ => {}
            }
        }
        self.outstanding -= 1;
        self.done.insert(c.id, c);
    }
}

/// The long-lived batch scheduling service: `workers` persistent threads
/// pulling [`ScheduleRequest`]s from a bounded shared queue. See the
/// module docs for the lifecycle contract; construction is cheap enough
/// for per-test pools but the intended production shape is one service
/// per process ([`global`]).
pub struct Service {
    ledger: Arc<(Mutex<Ledger>, Condvar)>,
    /// Live worker threads keyed by worker index; the watchdog detaches
    /// condemned workers and inserts replacements here.
    workers: Arc<Mutex<HashMap<usize, std::thread::JoinHandle<()>>>>,
    watchdog: Mutex<Option<std::thread::JoinHandle<()>>>,
    watchdog_stop: Arc<AtomicBool>,
    /// Sharded response cache; `None` when `cache_capacity` is 0.
    cache: Option<Arc<ResponseCache>>,
    config: ServiceConfig,
}

impl Service {
    /// Spawn a service with `workers` persistent worker threads and
    /// default lifecycle settings (see [`ServiceConfig`]).
    pub fn new(workers: usize) -> Self {
        Self::with_config(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        })
    }

    /// Spawn a service with explicit lifecycle settings.
    pub fn with_config(config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            max_attempts: config.max_attempts.max(1),
            ..config
        };
        let slots: Vec<Arc<WorkerSlot>> = (0..config.workers)
            .map(|i| Arc::new(WorkerSlot::new(i)))
            .collect();
        let ledger = Arc::new((
            Mutex::new(Ledger {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                dequeues: 0,
                done: HashMap::new(),
                inflight: HashMap::new(),
                coalesced: HashMap::new(),
                known: HashSet::new(),
                outstanding: 0,
                accepting: true,
                next_id: 0,
                next_worker: config.workers,
                slots: slots.clone(),
                stats: ServiceStats::default(),
            }),
            Condvar::new(),
        ));
        let cache = (config.cache_capacity > 0)
            .then(|| Arc::new(ResponseCache::new(config.cache_capacity)));
        let handles: HashMap<usize, std::thread::JoinHandle<()>> = slots
            .into_iter()
            .map(|slot| {
                (
                    slot.index,
                    spawn_worker(&ledger, &config, cache.clone(), slot),
                )
            })
            .collect();
        let workers = Arc::new(Mutex::new(handles));
        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog = config.watchdog.map(|wcfg| {
            let ledger = Arc::clone(&ledger);
            let workers = Arc::clone(&workers);
            let stop = Arc::clone(&watchdog_stop);
            let cfg = config.clone();
            let cache = cache.clone();
            std::thread::spawn(move || watchdog_loop(&ledger, &workers, &stop, &cfg, &cache, wcfg))
        });
        Self {
            ledger,
            workers,
            watchdog: Mutex::new(watchdog),
            watchdog_stop,
            cache,
            config,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// This service's lifecycle settings.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Canonical cache key for `req`, when caching is on and the request
    /// is cacheable. Computed *outside* the ledger lock — file sources
    /// read their content here, and hashing is pure CPU.
    fn fingerprint(&self, req: &ScheduleRequest) -> Option<Arc<CacheKey>> {
        self.cache.as_ref()?;
        request::cache_key(req).map(Arc::new)
    }

    /// Non-blocking admission: [`SubmitOutcome::WouldBlock`] when the
    /// queue is at capacity (and nothing of strictly lower priority can
    /// be evicted), [`SubmitOutcome::Rejected`] once shutdown has begun,
    /// when the request's DDG fails the lint pass, or — for
    /// [`Priority::Low`] — while the queue is past the high-water mark
    /// ([`RejectReason::Overloaded`]).
    pub fn try_submit(&self, req: ScheduleRequest, opts: SubmitOptions) -> SubmitOutcome {
        if let Some(reason) = admission_lint(&req) {
            return SubmitOutcome::Rejected(reason);
        }
        let key = self.fingerprint(&req);
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        if !ledger.accepting {
            return SubmitOutcome::Rejected(RejectReason::ShuttingDown);
        }
        let key = match &self.cache {
            Some(cache) => match dedup_or_key(&mut ledger, cv, cache, key, &opts, &self.config) {
                Ok(id) => return SubmitOutcome::Accepted(id),
                Err(key) => key,
            },
            None => None,
        };
        match make_room(&mut ledger, opts.priority, &self.config) {
            Room::Admit => {
                let out = SubmitOutcome::Accepted(admit(&mut ledger, req, opts, &self.config, key));
                cv.notify_all();
                out
            }
            Room::Brownout => {
                ledger.stats.overloaded += 1;
                SubmitOutcome::Rejected(RejectReason::Overloaded)
            }
            Room::Full => {
                ledger.stats.rejected += 1;
                SubmitOutcome::WouldBlock
            }
        }
    }

    /// Blocking admission: waits for queue space (backpressure), then
    /// admits. [`SubmitOutcome::Rejected`] once shutdown has begun —
    /// including while waiting — when the request's DDG fails the lint
    /// pass (checked before blocking), or under brownout for
    /// [`Priority::Low`] arrivals (refused, not blocked: waiting out a
    /// brownout at the admission gate would deepen the overload).
    pub fn submit_opts(&self, req: ScheduleRequest, opts: SubmitOptions) -> SubmitOutcome {
        if let Some(reason) = admission_lint(&req) {
            return SubmitOutcome::Rejected(reason);
        }
        let mut key = self.fingerprint(&req);
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        loop {
            if !ledger.accepting {
                return SubmitOutcome::Rejected(RejectReason::ShuttingDown);
            }
            // Re-check the cache on every pass: while this thread waited
            // for queue space, an identical in-flight leader may have
            // published the answer — or become coalescable.
            if let Some(cache) = &self.cache {
                match dedup_or_key(&mut ledger, cv, cache, key.clone(), &opts, &self.config) {
                    Ok(id) => return SubmitOutcome::Accepted(id),
                    Err(k) => key = k,
                }
            }
            match make_room(&mut ledger, opts.priority, &self.config) {
                Room::Admit => {
                    let out =
                        SubmitOutcome::Accepted(admit(&mut ledger, req, opts, &self.config, key));
                    cv.notify_all();
                    return out;
                }
                Room::Brownout => {
                    ledger.stats.overloaded += 1;
                    return SubmitOutcome::Rejected(RejectReason::Overloaded);
                }
                Room::Full => ledger = cv.wait(ledger).unwrap(),
            }
        }
    }

    /// Enqueue one request with default options; blocks for queue space.
    ///
    /// # Panics
    /// If the service has been shut down (submitting to a dead pool is a
    /// caller bug, matching the PR 3 contract).
    pub fn submit(&self, req: ScheduleRequest) -> RequestId {
        match self.submit_opts(req, SubmitOptions::default()) {
            SubmitOutcome::Accepted(id) => id,
            _ => panic!("service is shut down"),
        }
    }

    /// Enqueue a batch; ids are consecutive in input order.
    pub fn submit_batch(&self, reqs: Vec<ScheduleRequest>) -> Vec<RequestId> {
        reqs.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Cancel a request: queued work is removed immediately, in-flight
    /// work is flagged for cooperative abandonment at its next phase or
    /// retry boundary. See [`CancelOutcome`].
    pub fn cancel(&self, id: RequestId) -> CancelOutcome {
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        if let Some(job) = ledger.take_queued(id) {
            let result = Err(ServiceError::Cancelled);
            // A cancelled queued *leader* hands its key to the next
            // viable waiter rather than abandoning the coalition.
            settle_dedup(
                &mut ledger,
                self.cache.as_deref(),
                id,
                job.key.as_ref(),
                &result,
            );
            ledger.complete(Completed {
                id,
                result,
                attempts: job.attempts.load(Ordering::Relaxed),
                latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
            });
            cv.notify_all();
            return CancelOutcome::Dequeued;
        }
        if let Some(inf) = ledger.inflight.get(&id) {
            inf.job.cancel.store(true, Ordering::Relaxed);
            return CancelOutcome::InFlight;
        }
        // A coalesced waiter: detach and answer just this id; the leader
        // and every other waiter are untouched.
        let waiter = ledger.coalesced.iter().find_map(|(&fp, d)| {
            d.waiters
                .iter()
                .position(|w| w.id == id)
                .map(|pos| (fp, pos))
        });
        if let Some((fp, pos)) = waiter {
            let w = ledger
                .coalesced
                .get_mut(&fp)
                .expect("dedup entry found above")
                .waiters
                .remove(pos);
            ledger.complete(Completed {
                id,
                result: Err(ServiceError::Cancelled),
                attempts: 0,
                latency_ns: w.admitted_at.elapsed().as_nanos() as u64,
            });
            cv.notify_all();
            return CancelOutcome::Dequeued;
        }
        if ledger.done.contains_key(&id) {
            return CancelOutcome::AlreadyDone;
        }
        CancelOutcome::Unknown
    }

    /// Block until every id in `ids` has a response, then remove and
    /// return them **sorted by id** (so a batch submitted in input order
    /// comes back in input order regardless of completion order). An id
    /// this service never admitted — or whose response was already
    /// collected — answers [`ServiceError::UnknownRequest`] immediately
    /// instead of blocking forever. Ids from other callers of a shared
    /// service are untouched, which is what makes the [`global`] service
    /// safe to share between concurrently running drivers.
    pub fn collect(&self, ids: &[RequestId]) -> Responses {
        self.collect_detailed(ids, None)
            .into_iter()
            .map(|c| (c.id, c.result))
            .collect()
    }

    /// [`collect`](Service::collect) with a bound on the wait: ids still
    /// pending when `timeout` elapses answer [`ServiceError::Timeout`]
    /// and **remain collectable** — their real response is not lost.
    pub fn collect_timeout(&self, ids: &[RequestId], timeout: Duration) -> Responses {
        self.collect_detailed(ids, Some(timeout))
            .into_iter()
            .map(|c| (c.id, c.result))
            .collect()
    }

    /// The full lifecycle record ([`Completed`]: attempts + latency) for
    /// each id, sorted by id. `timeout` as in
    /// [`collect_timeout`](Service::collect_timeout); `None` waits
    /// indefinitely for admitted ids.
    pub fn collect_detailed(&self, ids: &[RequestId], timeout: Option<Duration>) -> Vec<Completed> {
        let mut ids: Vec<RequestId> = ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let started = Instant::now();
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        loop {
            // Waiting is over when every *known* id is done; unknown ids
            // (never admitted, or already collected) never block.
            let pending = ids
                .iter()
                .any(|id| ledger.known.contains(id) && !ledger.done.contains_key(id));
            if !pending {
                break;
            }
            match timeout {
                None => ledger = cv.wait(ledger).unwrap(),
                Some(t) => {
                    let Some(left) = t.checked_sub(started.elapsed()) else {
                        break;
                    };
                    let (l, res) = cv.wait_timeout(ledger, left).unwrap();
                    ledger = l;
                    if res.timed_out() {
                        break;
                    }
                }
            }
        }
        ids.into_iter()
            .map(|id| {
                if let Some(c) = ledger.done.remove(&id) {
                    ledger.known.remove(&id);
                    c
                } else {
                    let result = if ledger.known.contains(&id) {
                        Err(ServiceError::Timeout)
                    } else {
                        Err(ServiceError::UnknownRequest)
                    };
                    Completed {
                        id,
                        result,
                        attempts: 0,
                        latency_ns: 0,
                    }
                }
            })
            .collect()
    }

    /// Block until **no** request is outstanding, then remove and return
    /// every uncollected response sorted by id. Meant for single-owner
    /// services (e.g. `kn serve`); on a shared service this would also
    /// drain other callers' responses — they should use [`collect`].
    ///
    /// [`collect`]: Service::collect
    pub fn drain(&self) -> Responses {
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        while ledger.outstanding > 0 {
            ledger = cv.wait(ledger).unwrap();
        }
        let drained: Vec<RequestId> = ledger.done.keys().copied().collect();
        for id in &drained {
            ledger.known.remove(id);
        }
        let mut out: Vec<_> = ledger.done.drain().map(|(id, c)| (id, c.result)).collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Stop admission, settle queued work per `policy`, wait for in-flight
    /// requests to finish, and join every worker thread. Idempotent: a
    /// second call reports zero work and zero joined workers. Responses
    /// already completed (and those produced by the drain itself) remain
    /// collectable afterwards.
    pub fn shutdown(&self, policy: DrainPolicy) -> ShutdownReport {
        let (lock, cv) = &*self.ledger;
        let mut shed = 0u64;
        {
            let mut ledger = lock.lock().unwrap();
            ledger.accepting = false;
            if policy == DrainPolicy::Shed {
                for lane in 0..3 {
                    while let Some(job) = ledger.lanes[lane].pop_front() {
                        shed += 1;
                        let result = Err(ServiceError::ShuttingDown);
                        // Admission is closed, so a shed leader's waiters
                        // answer `shutting-down` too (no promotion).
                        settle_dedup(
                            &mut ledger,
                            self.cache.as_deref(),
                            job.id,
                            job.key.as_ref(),
                            &result,
                        );
                        ledger.complete(Completed {
                            id: job.id,
                            result,
                            attempts: job.attempts.load(Ordering::Relaxed),
                            latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
                        });
                    }
                }
            }
            cv.notify_all();
        }
        // The watchdog must stay alive through the joins: a worker wedged
        // on an injected fault exits only once the watchdog abandons its
        // job. Replacements it spawns meanwhile land in the map and are
        // picked up by the next round of the loop. (A replacement
        // inserted after the final empty check is never joined — it still
        // exits cleanly on the closed queue, it just isn't counted.)
        let mut workers_joined = 0usize;
        loop {
            let handles: Vec<_> = {
                let mut map = self.workers.lock().unwrap();
                map.drain().collect()
            };
            if handles.is_empty() {
                break;
            }
            for (_, h) in handles {
                workers_joined += 1;
                let _ = h.join();
            }
        }
        self.watchdog_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.watchdog.lock().unwrap().take() {
            let _ = h.join();
        }
        ShutdownReport {
            shed,
            workers_joined,
        }
    }

    /// Snapshot of the cumulative execution statistics.
    pub fn stats(&self) -> ServiceStats {
        self.ledger.0.lock().unwrap().stats.clone()
    }

    /// Snapshot of the pool's supervision state: per-worker heartbeats
    /// and busy ids, replacement count, per-lane queue depths, brownout
    /// state. What the wire-level `health` request renders.
    pub fn health(&self) -> PoolHealth {
        let ledger = self.ledger.0.lock().unwrap();
        let mut workers: Vec<WorkerHealth> = ledger
            .slots
            .iter()
            .map(|s| {
                let current = s.current.load(Ordering::Relaxed);
                WorkerHealth {
                    index: s.index,
                    busy: (current != IDLE).then_some(current),
                    heartbeats: s.beat.load(Ordering::Relaxed),
                }
            })
            .collect();
        workers.sort_unstable_by_key(|w| w.index);
        let queued = [
            ledger.lanes[0].len() as u64,
            ledger.lanes[1].len() as u64,
            ledger.lanes[2].len() as u64,
        ];
        PoolHealth {
            workers,
            replaced_workers: ledger.stats.replaced_workers,
            queued,
            inflight: ledger.inflight.len(),
            accepting: ledger.accepting,
            over_high_water: ledger.queued_len() >= self.config.high_water,
            cache_hits: ledger.stats.cache_hits,
            cache_misses: ledger.stats.cache_misses,
            cache_coalesced: ledger.stats.cache_coalesced,
            cache_evictions: ledger.stats.cache_evictions,
            cache_entries: self.cache.as_ref().map_or(0, |c| c.entries()),
        }
    }

    /// Is the queue at or past the brownout high-water mark right now?
    /// The TCP front-end polls this to pause socket reads (kernel
    /// backpressure). Always `false` when brownout is disabled.
    pub fn over_high_water(&self) -> bool {
        self.ledger.0.lock().unwrap().queued_len() >= self.config.high_water
    }

    /// Final responses recorded so far (monotone; equals
    /// `stats().completed`). Cheap — one lock, no waiting.
    pub fn completed_count(&self) -> u64 {
        self.ledger.0.lock().unwrap().stats.completed
    }

    /// Block until at least `n` requests have final responses. The
    /// open-loop load generator paces arrival slots with this instead of
    /// wall-clock sleeps.
    pub fn wait_for_completed(&self, n: u64) {
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        while ledger.stats.completed < n {
            ledger = cv.wait(ledger).unwrap();
        }
    }
}

/// One worker's entry in a [`PoolHealth`] snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerHealth {
    /// Stable worker index (replacements get fresh indices).
    pub index: usize,
    /// Request id currently executing, if busy.
    pub busy: Option<u64>,
    /// Heartbeat count: advances at dispatch and at every pipeline phase
    /// boundary. A busy worker whose heartbeat is frozen is what the
    /// watchdog eventually replaces.
    pub heartbeats: u64,
}

/// Point-in-time supervision snapshot of the pool ([`Service::health`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolHealth {
    /// Live workers, sorted by index.
    pub workers: Vec<WorkerHealth>,
    /// Workers replaced by the watchdog so far.
    pub replaced_workers: u64,
    /// Queued requests per lane (`[high, normal, low]`).
    pub queued: [u64; 3],
    /// Requests currently executing.
    pub inflight: usize,
    /// Is admission open?
    pub accepting: bool,
    /// Is the queue at or past the brownout high-water mark?
    pub over_high_water: bool,
    /// Requests answered from the response cache at admission.
    pub cache_hits: u64,
    /// Cacheable requests that had to compute (each became a dedup
    /// leader while in flight).
    pub cache_misses: u64,
    /// Requests coalesced onto an identical in-flight leader.
    pub cache_coalesced: u64,
    /// Cache entries displaced by the LRU bound.
    pub cache_evictions: u64,
    /// Entries currently cached (gauge; 0 when caching is off).
    pub cache_entries: u64,
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown(DrainPolicy::Finish);
    }
}

/// The admission gate: lint the request's DDG (if it carries one as text
/// or a file) before it costs a queue slot and a worker. Only *semantic*
/// lint errors reject here — unreadable files and syntax errors fall
/// through so the worker reports them with the established
/// [`ServiceError::BadRequest`] messages, and corpus / in-memory sources
/// are trusted (they were built through `DdgBuilder::build`, which
/// enforces the same invariants).
fn admission_lint(req: &ScheduleRequest) -> Option<RejectReason> {
    let ScheduleRequest::Loop(r) = req else {
        return None;
    };
    let text = match &r.source {
        LoopSource::DdgText(text) => std::borrow::Cow::Borrowed(text.as_str()),
        LoopSource::DdgFile(path) => match std::fs::read_to_string(path) {
            Ok(text) => std::borrow::Cow::Owned(text),
            Err(_) => return None,
        },
        LoopSource::Corpus(_) | LoopSource::Graph { .. } => return None,
    };
    let lint = kn_verify::lint_text(&text).ok()?;
    let diag = lint.report.first_error()?;
    Some(RejectReason::InvalidDdg {
        code: diag.code.as_str().to_string(),
        message: diag.message.clone(),
    })
}

/// Admission verdict of [`make_room`].
enum Room {
    /// Space exists (possibly made by evicting a lower-priority victim).
    Admit,
    /// Past the high-water mark and the arrival is `Low`: refuse.
    Brownout,
    /// Hard-full with nothing of strictly lower priority to evict.
    Full,
}

/// Decide whether a `priority` arrival fits right now. At hard capacity
/// a strictly-lower-priority queued request is evicted to make room (the
/// victim answers [`ServiceError::Overloaded`]). Caller holds the ledger
/// lock and notifies the condvar if it admits.
fn make_room(ledger: &mut Ledger, priority: Priority, config: &ServiceConfig) -> Room {
    let queued = ledger.queued_len();
    if queued >= config.high_water && priority == Priority::Low {
        return Room::Brownout;
    }
    if queued < config.queue_capacity {
        return Room::Admit;
    }
    match ledger.evict_below(priority) {
        Some(victim) => {
            let latency_ns = victim.admitted_at.elapsed().as_nanos() as u64;
            let attempts = victim.attempts.load(Ordering::Relaxed);
            let result = Err(ServiceError::Overloaded);
            // An evicted leader sheds its coalition (see settle_dedup);
            // no cache handle needed — error results never publish.
            settle_dedup(ledger, None, victim.id, victim.key.as_ref(), &result);
            ledger.complete(Completed {
                id: victim.id,
                result,
                attempts,
                latency_ns,
            });
            Room::Admit
        }
        None => Room::Full,
    }
}

/// Admit one request under an already-held ledger lock. A `Some` key
/// registers the new request as the dedup **leader** for that
/// fingerprint: later identical arrivals coalesce onto it instead of
/// spending queue slots of their own.
fn admit(
    ledger: &mut Ledger,
    req: ScheduleRequest,
    opts: SubmitOptions,
    config: &ServiceConfig,
    key: Option<Arc<CacheKey>>,
) -> RequestId {
    let id = RequestId(ledger.next_id);
    ledger.next_id += 1;
    ledger.outstanding += 1;
    ledger.stats.submitted += 1;
    ledger.known.insert(id);
    let req = Arc::new(req);
    if let Some(k) = &key {
        ledger.stats.cache_misses += 1;
        ledger.coalesced.insert(
            k.fp,
            Dedup {
                key: Arc::clone(k),
                req: Arc::clone(&req),
                leader: id,
                waiters: Vec::new(),
            },
        );
    }
    let admitted_seq = ledger.dequeues;
    ledger.push_job(Job {
        id,
        req,
        deadline: opts.deadline,
        max_attempts: opts.max_attempts.unwrap_or(config.max_attempts).max(1),
        priority: opts.priority,
        cancel: Arc::new(AtomicBool::new(false)),
        abandoned: Arc::new(AtomicBool::new(false)),
        attempts: Arc::new(AtomicU32::new(0)),
        admitted_seq,
        admitted_at: Instant::now(),
        key,
    });
    id
}

/// Cache lookup + in-flight coalescing, under the ledger lock and
/// **before** a queue slot is spent (which is what makes a hit or a
/// coalesce work even under brownout / at hard capacity). `Ok(id)` means
/// the request is fully handled — answered from the cache, or attached
/// to an in-flight leader's waiters list. `Err(key)` hands the key back
/// for [`admit`] to register (`Err(None)` when the request must take the
/// uncached path: uncacheable, already expired, or its fingerprint
/// collides with a different in-flight canon).
fn dedup_or_key(
    ledger: &mut Ledger,
    cv: &Condvar,
    cache: &ResponseCache,
    key: Option<Arc<CacheKey>>,
    opts: &SubmitOptions,
    config: &ServiceConfig,
) -> Result<RequestId, Option<Arc<CacheKey>>> {
    let Some(key) = key else {
        return Err(None);
    };
    // A request that is already past its deadline must still answer
    // `expired` (pinned by the overload golden) — never a cached value.
    if opts.deadline.is_some_and(|d| d.is_expired()) {
        return Err(None);
    }
    if let Some(resp) = cache.get(&key) {
        let id = RequestId(ledger.next_id);
        ledger.next_id += 1;
        ledger.outstanding += 1;
        ledger.stats.submitted += 1;
        ledger.stats.cache_hits += 1;
        ledger.known.insert(id);
        ledger.complete(Completed {
            id,
            result: Ok(resp),
            attempts: 0,
            latency_ns: 0,
        });
        cv.notify_all();
        return Ok(id);
    }
    let leader = match ledger.coalesced.get(&key.fp) {
        Some(d) if d.key.canon == key.canon => d.leader,
        // Same 64-bit digest, different request: the in-flight entry owns
        // the fingerprint, so this arrival runs uncached (exactly the
        // collision rule the cache itself enforces).
        Some(_) => return Err(None),
        None => return Err(Some(key)),
    };
    let id = RequestId(ledger.next_id);
    ledger.next_id += 1;
    ledger.outstanding += 1;
    ledger.stats.submitted += 1;
    ledger.stats.cache_coalesced += 1;
    ledger.known.insert(id);
    let d = ledger
        .coalesced
        .get_mut(&key.fp)
        .expect("dedup entry checked above");
    d.waiters.push(Waiter {
        id,
        deadline: opts.deadline,
        max_attempts: opts.max_attempts.unwrap_or(config.max_attempts).max(1),
        priority: opts.priority,
        admitted_at: Instant::now(),
    });
    // A more urgent waiter lifts its still-queued leader into the
    // waiter's lane: the coalition runs at the urgency of its most
    // urgent member.
    let leader_priority = ledger
        .lanes
        .iter()
        .flatten()
        .find(|j| j.id == leader)
        .map(|j| j.priority);
    if let Some(lp) = leader_priority {
        if opts.priority.lane() < lp.lane() {
            if let Some(mut job) = ledger.take_queued(leader) {
                job.priority = opts.priority;
                ledger.push_job(job);
                cv.notify_all();
            }
        }
    }
    Ok(id)
}

/// Settle the dedup entry a finished **leader** owns (no-op for plain
/// jobs and for requeued leaders that kept their id). On success the
/// result is published to the cache and every waiter completes with its
/// own id-stamped copy; on failure the key is *not* poisoned — the next
/// viable waiter is promoted to leader and recomputes. Caller holds the
/// ledger lock and notifies the condvar afterwards.
fn settle_dedup(
    ledger: &mut Ledger,
    cache: Option<&ResponseCache>,
    id: RequestId,
    key: Option<&Arc<CacheKey>>,
    result: &Result<ScheduleResponse, ServiceError>,
) {
    let Some(key) = key else {
        return;
    };
    if ledger.coalesced.get(&key.fp).is_none_or(|d| d.leader != id) {
        return;
    }
    let d = ledger
        .coalesced
        .remove(&key.fp)
        .expect("dedup entry checked above");
    match result {
        Ok(resp) => {
            if let Some(cache) = cache {
                ledger.stats.cache_evictions += cache.insert(&d.key, resp);
            }
            let now = Instant::now();
            for w in d.waiters {
                // A waiter whose own deadline lapsed while it waited
                // answers `expired`, exactly as if it had been queued.
                let result = if w.deadline.is_some_and(|dl| dl.is_expired_at(now)) {
                    Err(ServiceError::Expired)
                } else {
                    Ok(resp.clone())
                };
                ledger.complete(Completed {
                    id: w.id,
                    result,
                    attempts: 0,
                    latency_ns: w.admitted_at.elapsed().as_nanos() as u64,
                });
            }
        }
        // An evicted leader sheds its whole coalition: the coalition was
        // riding the evicted queue slot, and re-entering the queue here
        // would undo the room the eviction just made.
        Err(ServiceError::Overloaded) => {
            for w in d.waiters {
                ledger.complete(Completed {
                    id: w.id,
                    result: Err(ServiceError::Overloaded),
                    attempts: 0,
                    latency_ns: w.admitted_at.elapsed().as_nanos() as u64,
                });
            }
        }
        Err(_) if ledger.accepting => promote_waiter(ledger, d),
        Err(_) => {
            for w in d.waiters {
                ledger.complete(Completed {
                    id: w.id,
                    result: Err(ServiceError::ShuttingDown),
                    attempts: 0,
                    latency_ns: w.admitted_at.elapsed().as_nanos() as u64,
                });
            }
        }
    }
}

/// Hand a failed leader's key to its next viable waiter: the waiter
/// becomes the new leader with a fresh retry budget and is queued
/// directly (it inherits the old leader's slot, the same rule the
/// watchdog uses when it requeues a confiscated request). Expired
/// waiters are answered and skipped.
fn promote_waiter(ledger: &mut Ledger, mut d: Dedup) {
    while !d.waiters.is_empty() {
        let w = d.waiters.remove(0);
        if w.deadline.is_some_and(|dl| dl.is_expired()) {
            ledger.complete(Completed {
                id: w.id,
                result: Err(ServiceError::Expired),
                attempts: 0,
                latency_ns: w.admitted_at.elapsed().as_nanos() as u64,
            });
            continue;
        }
        let admitted_seq = ledger.dequeues;
        let job = Job {
            id: w.id,
            req: Arc::clone(&d.req),
            deadline: w.deadline,
            max_attempts: w.max_attempts,
            priority: w.priority,
            cancel: Arc::new(AtomicBool::new(false)),
            abandoned: Arc::new(AtomicBool::new(false)),
            attempts: Arc::new(AtomicU32::new(0)),
            admitted_seq,
            admitted_at: w.admitted_at,
            key: Some(Arc::clone(&d.key)),
        };
        d.leader = w.id;
        ledger.coalesced.insert(d.key.fp, d);
        ledger.push_job(job);
        return;
    }
}

/// Spawn one worker thread on `slot`. The slot must already be
/// registered in `ledger.slots`.
fn spawn_worker(
    ledger: &Arc<(Mutex<Ledger>, Condvar)>,
    config: &ServiceConfig,
    cache: Option<Arc<ResponseCache>>,
    slot: Arc<WorkerSlot>,
) -> std::thread::JoinHandle<()> {
    let ledger = Arc::clone(ledger);
    let cfg = config.clone();
    std::thread::spawn(move || worker_loop(&ledger, &cfg, &cache, &slot))
}

fn worker_loop(
    ledger: &(Mutex<Ledger>, Condvar),
    config: &ServiceConfig,
    cache: &Option<Arc<ResponseCache>>,
    slot: &Arc<WorkerSlot>,
) {
    let (lock, cv) = ledger;
    let mut scratch = WorkerScratch::default();
    loop {
        let job = {
            let mut ledger = lock.lock().unwrap();
            loop {
                // A condemned worker has already been deregistered by the
                // watchdog; it must never dequeue or complete again.
                if slot.condemned.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = ledger.pop_job(config.age_promote) {
                    // Shed before spending a worker on it.
                    if job.cancel.load(Ordering::Relaxed) {
                        let result = Err(ServiceError::Cancelled);
                        settle_dedup(
                            &mut ledger,
                            cache.as_deref(),
                            job.id,
                            job.key.as_ref(),
                            &result,
                        );
                        ledger.complete(Completed {
                            id: job.id,
                            result,
                            attempts: job.attempts.load(Ordering::Relaxed),
                            latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
                        });
                        cv.notify_all();
                        continue;
                    }
                    if let Some(d) = job.deadline {
                        if d.is_expired() {
                            let result = Err(ServiceError::Expired);
                            settle_dedup(
                                &mut ledger,
                                cache.as_deref(),
                                job.id,
                                job.key.as_ref(),
                                &result,
                            );
                            ledger.complete(Completed {
                                id: job.id,
                                result,
                                attempts: job.attempts.load(Ordering::Relaxed),
                                latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
                            });
                            cv.notify_all();
                            continue;
                        }
                    }
                    ledger
                        .inflight
                        .insert(job.id, InFlight { job: job.clone() });
                    slot.current.store(job.id.0, Ordering::Relaxed);
                    slot.beat.fetch_add(1, Ordering::Relaxed);
                    break job;
                }
                if !ledger.accepting {
                    // Clean exit: deregister so health() reports only
                    // live workers.
                    ledger.slots.retain(|s| s.index != slot.index);
                    return;
                }
                ledger = cv.wait(ledger).unwrap();
            }
        };

        let (result, attempts, timing, exec_ns, retries) =
            run_attempts(&mut scratch, &job, config, slot);

        let mut ledger = lock.lock().unwrap();
        slot.current.store(IDLE, Ordering::Relaxed);
        if job.abandoned.load(Ordering::Relaxed) {
            // The watchdog confiscated this dispatch (requeued or settled
            // the id) and condemned this worker: the local result no
            // longer counts and the slot is already deregistered.
            cv.notify_all();
            return;
        }
        ledger.inflight.remove(&job.id);
        ledger.stats.retries += retries;
        ledger.stats.exec_ns += exec_ns;
        ledger.stats.parse_ns += timing.parse_ns;
        ledger.stats.schedule_ns += timing.schedule_ns;
        ledger.stats.sim_ns += timing.sim_ns;
        settle_dedup(
            &mut ledger,
            cache.as_deref(),
            job.id,
            job.key.as_ref(),
            &result,
        );
        ledger.complete(Completed {
            id: job.id,
            result,
            attempts,
            latency_ns: job.admitted_at.elapsed().as_nanos() as u64,
        });
        cv.notify_all();
    }
}

/// One pass of the watchdog: sample every live slot, bump or reset its
/// stuck counter, and replace any worker whose heartbeat has been frozen
/// on the same request for `stuck_ticks` consecutive samples.
/// `seen` maps worker index → (last beat, last current, frozen ticks).
fn watchdog_tick(
    ledger: &Arc<(Mutex<Ledger>, Condvar)>,
    workers: &Mutex<HashMap<usize, std::thread::JoinHandle<()>>>,
    config: &ServiceConfig,
    cache: &Option<Arc<ResponseCache>>,
    wcfg: WatchdogConfig,
    seen: &mut HashMap<usize, (u64, u64, u32)>,
) {
    // (victim index, replacement slot) pairs; thread spawning happens
    // after the ledger lock is released.
    let mut replaced: Vec<(usize, Arc<WorkerSlot>)> = Vec::new();
    {
        let (lock, cv) = &**ledger;
        let mut led = lock.lock().unwrap();
        let slots: Vec<Arc<WorkerSlot>> = led.slots.clone();
        let live: HashSet<usize> = slots.iter().map(|s| s.index).collect();
        seen.retain(|idx, _| live.contains(idx));
        for slot in slots {
            let beat = slot.beat.load(Ordering::Relaxed);
            let current = slot.current.load(Ordering::Relaxed);
            if current == IDLE {
                seen.remove(&slot.index);
                continue;
            }
            let entry = seen.entry(slot.index).or_insert((beat, current, 0));
            if entry.0 != beat || entry.1 != current {
                *entry = (beat, current, 0);
                continue;
            }
            entry.2 += 1;
            if entry.2 < wcfg.stuck_ticks {
                continue;
            }
            // Declared stuck. If the request just completed between the
            // loads above, leave the worker alone — it is making progress.
            seen.remove(&slot.index);
            let id = RequestId(current);
            let Some(inf) = led.inflight.remove(&id) else {
                continue;
            };
            slot.condemned.store(true, Ordering::Relaxed);
            inf.job.abandoned.store(true, Ordering::Relaxed);
            led.slots.retain(|s| s.index != slot.index);
            led.stats.replaced_workers += 1;
            // Settle the confiscated request: requeue while retry budget
            // remains (zero lost ids), else answer Faulted.
            let attempts = inf.job.attempts.load(Ordering::Relaxed);
            if attempts < inf.job.max_attempts
                && led.accepting
                && !inf.job.cancel.load(Ordering::Relaxed)
            {
                led.stats.retries += 1;
                let mut requeued = inf.job.clone();
                requeued.abandoned = Arc::new(AtomicBool::new(false));
                requeued.admitted_seq = led.dequeues;
                led.push_job(requeued);
            } else {
                let result = Err(ServiceError::Faulted(format!(
                    "worker {} declared stuck by watchdog; retry budget spent",
                    slot.index
                )));
                settle_dedup(
                    &mut led,
                    cache.as_deref(),
                    id,
                    inf.job.key.as_ref(),
                    &result,
                );
                led.complete(Completed {
                    id,
                    result,
                    attempts,
                    latency_ns: inf.job.admitted_at.elapsed().as_nanos() as u64,
                });
            }
            // Register the replacement before releasing the lock so the
            // pool size never observably dips.
            let idx = led.next_worker;
            led.next_worker += 1;
            let new_slot = Arc::new(WorkerSlot::new(idx));
            led.slots.push(Arc::clone(&new_slot));
            replaced.push((slot.index, new_slot));
        }
        if !replaced.is_empty() {
            cv.notify_all();
        }
    }
    for (victim, new_slot) in replaced {
        let idx = new_slot.index;
        let handle = spawn_worker(ledger, config, cache.clone(), new_slot);
        let mut map = workers.lock().unwrap();
        // Detach the condemned thread: joining would block on the wedge.
        // It exits on its own once it observes the abandon flag.
        map.remove(&victim);
        map.insert(idx, handle);
    }
}

/// The watchdog thread body: sample every `interval`, exit promptly when
/// `stop` is set (the interval is slept in small slices so `shutdown` —
/// and every test-scale `Drop` — never waits a full production interval).
fn watchdog_loop(
    ledger: &Arc<(Mutex<Ledger>, Condvar)>,
    workers: &Mutex<HashMap<usize, std::thread::JoinHandle<()>>>,
    stop: &AtomicBool,
    config: &ServiceConfig,
    cache: &Option<Arc<ResponseCache>>,
    wcfg: WatchdogConfig,
) {
    let interval = wcfg.interval.max(Duration::from_micros(100));
    let slice = Duration::from_millis(5).min(interval);
    let mut seen: HashMap<usize, (u64, u64, u32)> = HashMap::new();
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let nap = slice.min(interval - slept);
            std::thread::sleep(nap);
            slept += nap;
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
        watchdog_tick(ledger, workers, config, cache, wcfg, &mut seen);
    }
}

/// Execute one job's attempt loop: panic guard, fault injection, response
/// validation, cooperative cancel/deadline checks, capped backoff between
/// retries. Returns (final result, attempts used, accumulated timing,
/// total exec ns, retry count).
#[allow(clippy::type_complexity)]
fn run_attempts(
    scratch: &mut WorkerScratch,
    job: &Job,
    config: &ServiceConfig,
    slot: &Arc<WorkerSlot>,
) -> (
    Result<ScheduleResponse, ServiceError>,
    u32,
    RequestTiming,
    u64,
    u64,
) {
    let mut timing = RequestTiming::default();
    let mut exec_ns = 0u64;
    let mut retries = 0u64;
    let result = loop {
        // Cooperative abandonment between attempts.
        if job.abandoned.load(Ordering::Relaxed) {
            break Err(ServiceError::Faulted(
                "dispatch abandoned by watchdog".into(),
            ));
        }
        if job.cancel.load(Ordering::Relaxed) {
            break Err(ServiceError::Cancelled);
        }
        if job.deadline.is_some_and(|d| d.is_expired()) {
            break Err(ServiceError::Expired);
        }
        // The absolute attempt counter is shared with the ledger's
        // in-flight record, so a confiscated-and-requeued request keeps
        // its spent budget.
        let attempt = job.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        slot.beat.fetch_add(1, Ordering::Relaxed);
        let ctx = ExecCtx {
            cancel: Some(Arc::clone(&job.cancel)),
            deadline: job.deadline.map(|d| d.0),
            beat: Some(Arc::clone(&slot.beat)),
        };
        let t0 = Instant::now();
        let attempt_result = run_one_attempt(scratch, job, attempt, &ctx, config, &mut timing);
        exec_ns += t0.elapsed().as_nanos() as u64;
        slot.beat.fetch_add(1, Ordering::Relaxed);
        match attempt_result {
            Ok(resp) => break Ok(resp),
            Err(e)
                if e.is_transient()
                    && attempt < job.max_attempts
                    && !job.abandoned.load(Ordering::Relaxed) =>
            {
                retries += 1;
                let wait = backoff_delay(attempt + 1, config.backoff_base, config.backoff_cap);
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
            Err(e) => break Err(e),
        }
    };
    (
        result,
        job.attempts.load(Ordering::Relaxed),
        timing,
        exec_ns,
        retries,
    )
}

fn run_one_attempt(
    scratch: &mut WorkerScratch,
    job: &Job,
    attempt: u32,
    ctx: &ExecCtx,
    config: &ServiceConfig,
    timing: &mut RequestTiming,
) -> Result<ScheduleResponse, ServiceError> {
    let fault = config
        .fault_plan
        .as_ref()
        .and_then(|p| p.fault_for(job.id, attempt))
        // Net-layer kinds are drawn by the TCP front-end's writer, not
        // the pool: the request executes normally here.
        .filter(|f| !matches!(f, Fault::SlowReader | Fault::Disconnect));
    if let Some(Fault::Stall) = fault {
        let plan = config.fault_plan.as_ref().expect("stall implies a plan");
        match plan.stall_mode {
            StallMode::Sleep => {
                // A wedged execution that self-resolves: the attempt
                // burns its stall budget and reports a transient fault
                // (which the retry loop then recovers from, deadline
                // permitting).
                if !plan.stall_duration.is_zero() {
                    std::thread::sleep(plan.stall_duration);
                }
                return Err(ServiceError::Faulted(format!(
                    "injected stall ({} attempt {attempt})",
                    job.id
                )));
            }
            StallMode::Wedge => {
                // A truly wedged execution: block until the watchdog
                // abandons the dispatch, the caller cancels, or the
                // deadline passes. Deliberately does NOT bump the
                // heartbeat — frozen heartbeats are what the watchdog
                // detects.
                loop {
                    if job.abandoned.load(Ordering::Relaxed) {
                        return Err(ServiceError::Faulted(format!(
                            "injected wedge ({} attempt {attempt}) cut off by watchdog",
                            job.id
                        )));
                    }
                    if job.cancel.load(Ordering::Relaxed) {
                        return Err(ServiceError::Cancelled);
                    }
                    if job.deadline.is_some_and(|d| d.is_expired()) {
                        return Err(ServiceError::Expired);
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(Fault::Panic) = fault {
            panic!("injected panic ({} attempt {attempt})", job.id);
        }
        let (mut result, t) = request::execute_with(scratch, &job.req, ctx);
        if let Some(Fault::Garbage) = fault {
            result = Ok(faultinject::garble(result));
        }
        (result, t)
    }));
    match outcome {
        Ok((result, t)) => {
            timing.parse_ns += t.parse_ns;
            timing.schedule_ns += t.schedule_ns;
            timing.sim_ns += t.sim_ns;
            // Detect-and-recover: a response that fails the cheap sanity
            // validator (e.g. injected garbage) is a transient fault.
            match result {
                Ok(resp) => match request::validate_response(&resp) {
                    Ok(()) => Ok(resp),
                    Err(why) => Err(ServiceError::Faulted(format!(
                        "response failed validation: {why}"
                    ))),
                },
                Err(e) => Err(e),
            }
        }
        Err(payload) => {
            // The panic may have left the scratch caches mid-update;
            // start this worker's caches over rather than trust them.
            *scratch = WorkerScratch::default();
            Err(ServiceError::Panicked(panic_message(payload)))
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "request panicked".to_string()
    }
}

/// The process-wide service, sized to the machine
/// (`std::thread::available_parallelism`), created on first use and alive
/// for the rest of the process. The parallel experiment drivers submit
/// their cells here, so repeated driver calls reuse the same warm worker
/// pool instead of re-spawning threads per batch.
pub fn global() -> &'static Service {
    static GLOBAL: OnceLock<Service> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Service::new(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_collect_round_trip() {
        let svc = Service::new(2);
        let a = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        let b = svc.submit(ScheduleRequest::loop_on_corpus("cytron86"));
        let got = svc.collect(&[b, a]); // collect order is id order
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, a);
        assert_eq!(got[1].0, b);
        assert!(got.iter().all(|(_, r)| r.is_ok()));
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.retries, 0);
        assert!(stats.exec_ns > 0);
    }

    #[test]
    fn drain_returns_everything_in_id_order() {
        let svc = Service::new(3);
        let ids = svc.submit_batch(vec![
            ScheduleRequest::loop_on_corpus("figure7"),
            ScheduleRequest::loop_on_corpus("nope"),
            ScheduleRequest::loop_on_corpus("elliptic"),
        ]);
        let got = svc.drain();
        assert_eq!(got.iter().map(|&(id, _)| id).collect::<Vec<_>>(), ids);
        assert!(got[0].1.is_ok());
        assert!(got[1].1.is_err(), "unknown corpus is an error response");
        assert!(got[2].1.is_ok());
    }

    #[test]
    fn global_service_is_shared_and_sized() {
        let svc = global();
        assert!(svc.workers() >= 1);
        let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        assert!(svc.collect(&[id])[0].1.is_ok());
    }

    #[test]
    fn collect_of_unknown_id_answers_immediately() {
        // The PR 3 bug: collecting a never-submitted id blocked forever.
        let svc = Service::new(1);
        let got = svc.collect(&[RequestId(999)]);
        assert!(
            matches!(&got[0].1, Err(ServiceError::UnknownRequest)),
            "{:?}",
            got[0].1
        );
        // An already-collected id is likewise unknown the second time.
        let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        assert!(svc.collect(&[id])[0].1.is_ok());
        let again = svc.collect(&[id]);
        assert!(
            matches!(&again[0].1, Err(ServiceError::UnknownRequest)),
            "{:?}",
            again[0].1
        );
    }

    #[test]
    fn expired_deadline_is_shed_at_dequeue() {
        let svc = Service::new(1);
        let out = svc.submit_opts(
            ScheduleRequest::loop_on_corpus("figure7"),
            SubmitOptions {
                deadline: Some(Deadline::expired()),
                ..SubmitOptions::default()
            },
        );
        let SubmitOutcome::Accepted(id) = out else {
            panic!("admission open: {out:?}");
        };
        let got = svc.collect_detailed(&[id], None);
        assert!(
            matches!(&got[0].result, Err(ServiceError::Expired)),
            "{:?}",
            got[0].result
        );
        assert_eq!(got[0].attempts, 0, "no worker time wasted");
        assert_eq!(svc.stats().expired, 1);
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_new_work() {
        let svc = Service::new(2);
        let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        let report = svc.shutdown(DrainPolicy::Finish);
        assert_eq!(report.workers_joined, 2);
        assert_eq!(report.shed, 0);
        // Admission is closed; the finished response is still there.
        assert_eq!(
            svc.try_submit(
                ScheduleRequest::loop_on_corpus("figure7"),
                SubmitOptions::default()
            ),
            SubmitOutcome::Rejected(RejectReason::ShuttingDown)
        );
        assert_eq!(
            svc.submit_opts(
                ScheduleRequest::loop_on_corpus("figure7"),
                SubmitOptions::default()
            ),
            SubmitOutcome::Rejected(RejectReason::ShuttingDown)
        );
        assert!(svc.collect(&[id])[0].1.is_ok());
        let again = svc.shutdown(DrainPolicy::Shed);
        assert_eq!(again.workers_joined, 0);
        assert_eq!(again.shed, 0);
    }

    fn test_job(id: u64, p: Priority, deadline: Option<Deadline>, seq: u64) -> Job {
        Job {
            id: RequestId(id),
            req: Arc::new(ScheduleRequest::loop_on_corpus("figure7")),
            deadline,
            max_attempts: 2,
            priority: p,
            cancel: Arc::new(AtomicBool::new(false)),
            abandoned: Arc::new(AtomicBool::new(false)),
            attempts: Arc::new(AtomicU32::new(0)),
            admitted_seq: seq,
            admitted_at: Instant::now(),
            key: None,
        }
    }

    fn empty_ledger() -> Ledger {
        Ledger {
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            dequeues: 0,
            done: HashMap::new(),
            inflight: HashMap::new(),
            coalesced: HashMap::new(),
            known: HashSet::new(),
            outstanding: 0,
            accepting: true,
            next_id: 0,
            next_worker: 0,
            slots: Vec::new(),
            stats: ServiceStats::default(),
        }
    }

    #[test]
    fn lanes_drain_high_before_normal_before_low() {
        let mut led = empty_ledger();
        led.push_job(test_job(0, Priority::Low, None, 0));
        led.push_job(test_job(1, Priority::Normal, None, 0));
        led.push_job(test_job(2, Priority::High, None, 0));
        led.push_job(test_job(3, Priority::High, None, 0));
        let order: Vec<u64> =
            std::iter::from_fn(|| led.pop_job(u64::MAX).map(|j| j.id.0)).collect();
        assert_eq!(order, vec![2, 3, 1, 0], "lane-major, id order within");
    }

    #[test]
    fn deadline_earliest_first_within_lane() {
        let now = Instant::now();
        let far = Deadline(now + Duration::from_secs(60));
        let near = Deadline(now + Duration::from_secs(5));
        let mut led = empty_ledger();
        led.push_job(test_job(0, Priority::Normal, None, 0)); // no deadline: last
        led.push_job(test_job(1, Priority::Normal, Some(far), 0));
        led.push_job(test_job(2, Priority::Normal, Some(near), 0));
        let order: Vec<u64> =
            std::iter::from_fn(|| led.pop_job(u64::MAX).map(|j| j.id.0)).collect();
        assert_eq!(
            order,
            vec![2, 1, 0],
            "earliest deadline first, deadline-less last"
        );
    }

    #[test]
    fn aging_promotes_starved_low_over_fresh_high() {
        let mut led = empty_ledger();
        led.dequeues = 100;
        led.push_job(test_job(0, Priority::Low, None, 0)); // age 100
        led.push_job(test_job(1, Priority::High, None, 99)); // age 1
        let first = led.pop_job(64).unwrap();
        assert_eq!(first.id.0, 0, "starved Low beats fresh High once aged");
        let second = led.pop_job(64).unwrap();
        assert_eq!(second.id.0, 1);
        // Below the aging threshold, lane order rules.
        let mut led = empty_ledger();
        led.dequeues = 10;
        led.push_job(test_job(0, Priority::Low, None, 0)); // age 10 < 64
        led.push_job(test_job(1, Priority::High, None, 9));
        assert_eq!(led.pop_job(64).unwrap().id.0, 1, "no aging yet: High first");
    }

    #[test]
    fn eviction_picks_lowest_priority_least_urgent() {
        let now = Instant::now();
        let near = Deadline(now + Duration::from_secs(1));
        let far = Deadline(now + Duration::from_secs(60));
        let mut led = empty_ledger();
        led.push_job(test_job(0, Priority::Normal, Some(near), 0));
        led.push_job(test_job(1, Priority::Low, Some(near), 0));
        led.push_job(test_job(2, Priority::Low, Some(far), 0));
        // High arrival: Low lane is raided first, latest deadline inside.
        assert_eq!(led.evict_below(Priority::High).unwrap().id.0, 2);
        // Again: remaining Low (near deadline) goes before any Normal.
        assert_eq!(led.evict_below(Priority::High).unwrap().id.0, 1);
        // Now only Normal is left: evictable for High…
        assert_eq!(led.evict_below(Priority::High).unwrap().id.0, 0);
        // …and nothing below Low, ever.
        led.push_job(test_job(3, Priority::Low, None, 0));
        assert!(led.evict_below(Priority::Low).is_none());
        // A deadline-less Low counts least urgent of all.
        led.push_job(test_job(4, Priority::Low, Some(far), 0));
        assert_eq!(led.evict_below(Priority::Normal).unwrap().id.0, 3);
    }

    #[test]
    fn priority_wire_names_round_trip() {
        for p in Priority::ALL {
            assert_eq!(Priority::from_name(p.name()), Some(p));
        }
        assert_eq!(Priority::from_name("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
        assert!(Priority::High < Priority::Normal && Priority::Normal < Priority::Low);
    }

    #[test]
    fn health_snapshot_reports_pool_state() {
        let svc = Service::new(2);
        let h = svc.health();
        assert_eq!(h.workers.len(), 2);
        assert_eq!(
            h.workers.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(h.replaced_workers, 0);
        assert_eq!(h.queued, [0, 0, 0]);
        assert!(h.accepting);
        assert!(!h.over_high_water, "brownout disabled by default");
        let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        assert!(svc.collect(&[id])[0].1.is_ok());
        let h = svc.health();
        assert!(h.workers.iter().any(|w| w.heartbeats > 0), "beats advanced");
        svc.shutdown(DrainPolicy::Finish);
        let h = svc.health();
        assert!(!h.accepting);
        assert!(h.workers.is_empty(), "exited workers deregister");
    }

    #[test]
    fn brownout_refuses_low_while_queue_past_high_water() {
        // Deterministic setup: the single worker wedges forever on id 0
        // (watchdog off, wedge exits on cancel), so id 1 is provably
        // still queued — depth ≥ 1 = high_water — when the Low arrival
        // is tried, with no timing assumptions.
        let svc = Service::with_config(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            high_water: 1,
            max_attempts: 1,
            fault_plan: Some(FaultPlan::explicit([(0, Fault::Stall)]).wedged()),
            watchdog: None,
            ..ServiceConfig::default()
        });
        let a = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        // The wedge holds the worker on id 0 until cancelled, so waiting
        // for it to leave the queue is deterministic — and afterwards the
        // queue depth below is exact, not racing the dequeue.
        while svc.health().inflight < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let b = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        let low = svc.try_submit(
            ScheduleRequest::loop_on_corpus("figure7"),
            SubmitOptions {
                priority: Priority::Low,
                ..SubmitOptions::default()
            },
        );
        assert_eq!(low, SubmitOutcome::Rejected(RejectReason::Overloaded));
        // High/Normal arrivals are never brownout-refused.
        let high = svc.try_submit(
            ScheduleRequest::loop_on_corpus("figure7"),
            SubmitOptions {
                priority: Priority::High,
                ..SubmitOptions::default()
            },
        );
        let c = high.id().expect("High admitted during brownout");
        assert_eq!(svc.stats().overloaded, 1);
        // Release the wedge; everything admitted still answers.
        svc.cancel(a);
        let got = svc.collect(&[a, b, c]);
        assert!(
            matches!(&got[0].1, Err(ServiceError::Cancelled)),
            "{:?}",
            got[0].1
        );
        assert!(got[1].1.is_ok());
        assert!(got[2].1.is_ok());
    }

    #[test]
    fn hard_capacity_evicts_lowest_priority_for_high_arrival() {
        // Same wedge trick: worker stuck on id 0, queue capacity 2 holds
        // {Normal id 1, Low id 2}. A High arrival at hard capacity must
        // evict the Low victim (answered Overloaded) and be admitted.
        let svc = Service::with_config(ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            max_attempts: 1,
            fault_plan: Some(FaultPlan::explicit([(0, Fault::Stall)]).wedged()),
            watchdog: None,
            ..ServiceConfig::default()
        });
        let a = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        // Deterministic: the wedge pins the worker on id 0, so once it is
        // in flight the queue holds exactly what we put there.
        while svc.health().inflight < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let b = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        let low = svc
            .try_submit(
                ScheduleRequest::loop_on_corpus("figure7"),
                SubmitOptions {
                    priority: Priority::Low,
                    ..SubmitOptions::default()
                },
            )
            .id()
            .expect("fills the queue");
        // Queue is hard-full; a Low arrival has nothing strictly lower
        // to evict, so it would block.
        assert_eq!(
            svc.try_submit(
                ScheduleRequest::loop_on_corpus("figure7"),
                SubmitOptions {
                    priority: Priority::Low,
                    ..SubmitOptions::default()
                },
            ),
            SubmitOutcome::WouldBlock,
        );
        let high = svc
            .try_submit(
                ScheduleRequest::loop_on_corpus("figure7"),
                SubmitOptions {
                    priority: Priority::High,
                    ..SubmitOptions::default()
                },
            )
            .id()
            .expect("High evicts the Low victim");
        let got = svc.collect(&[low]);
        assert!(
            matches!(&got[0].1, Err(ServiceError::Overloaded)),
            "{:?}",
            got[0].1
        );
        assert_eq!(svc.stats().overloaded, 1);
        svc.cancel(a);
        let rest = svc.collect(&[a, b, high]);
        assert!(matches!(&rest[0].1, Err(ServiceError::Cancelled)));
        assert!(rest[1].1.is_ok());
        assert!(rest[2].1.is_ok());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let ms = Duration::from_millis;
        assert_eq!(backoff_delay(1, ms(2), ms(50)), Duration::ZERO);
        assert_eq!(backoff_delay(2, ms(2), ms(50)), ms(2));
        assert_eq!(backoff_delay(3, ms(2), ms(50)), ms(4));
        assert_eq!(backoff_delay(4, ms(2), ms(50)), ms(8));
        assert_eq!(backoff_delay(9, ms(2), ms(50)), ms(50), "capped");
        assert_eq!(backoff_delay(40, ms(2), ms(50)), ms(50), "shift saturates");
        assert_eq!(backoff_delay(3, Duration::ZERO, ms(50)), Duration::ZERO);
    }
}
