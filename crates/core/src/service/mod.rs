//! # Batch scheduling service — a long-lived work-queue API over the
//! # Cyclic-sched pipeline
//!
//! The experiment drivers fan independent (workload, machine) cells out
//! across threads and then exit; this module lifts that fan-out into a
//! **service**: a persistent worker pool that outlives any single driver
//! call, fed through a typed request/response pair. It is the stepping
//! stone from "experiment driver" to "system that serves traffic"
//! (ROADMAP north star): the paper's analyze → schedule → simulate
//! pipeline is exactly the request shape a scheduling service handles at
//! scale.
//!
//! ## Request/response contract
//!
//! A [`ScheduleRequest`] names a loop source (corpus workload, DDG text
//! or file, or an in-memory graph), a machine configuration, an execution
//! model ([`SimOptions`](kn_sim::SimOptions): link capacity + event-queue
//! engine), and a scheduler choice (`Cyclic-sched` or a DOACROSS
//! baseline). [`Service::submit`] assigns it a monotonically increasing
//! [`RequestId`] and enqueues it; workers execute requests concurrently
//! and may complete them **in any order**. Every submitted request
//! produces exactly one response — a [`ScheduleResponse`] on success or a
//! [`ServiceError`] on failure (bad source, unschedulable loop, or a
//! panic inside the pipeline) — retrievable with [`Service::collect`]
//! (the ids you submitted) or [`Service::drain`] (everything
//! outstanding), both returned sorted by id.
//!
//! ## Determinism guarantee
//!
//! Responses are pure functions of their request: every stage (parsing,
//! scheduling, simulation) is deterministic, workers share no mutable
//! state, and results are keyed by request id. Therefore the multiset of
//! `(id, response)` pairs is independent of the worker count, the
//! submission order of *other* requests, and OS scheduling — a batch
//! submitted to a 1-worker service, an 8-worker service, or shuffled and
//! resubmitted yields identical responses per id (pinned by
//! `crates/core/tests/service.rs`). The experiment drivers rebuilt on the
//! service (`run_table1_par`, `contention_ablation_par`,
//! `figure_reports_par`) are byte-identical to their sequential twins.
//!
//! ## Fault isolation
//!
//! A request that panics inside the pipeline is caught at the worker
//! boundary ([`ServiceError::Panicked`]): the worker survives, subsequent
//! requests are served normally, and [`Service::drain`] still returns a
//! response for the panicked id — a poisoned request can never wedge the
//! pool.
//!
//! ## Example
//!
//! ```
//! use kn_core::service::{LoopSource, ScheduleRequest, ScheduleResponse, Service};
//!
//! let svc = Service::new(2);
//! let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
//! let responses = svc.collect(&[id]);
//! let Ok(ScheduleResponse::Loop(out)) = &responses[0].1 else {
//!     panic!("figure7 schedules");
//! };
//! assert_eq!(out.ii, Some(2.5));
//! ```
//!
//! The process-wide [`global`] service (sized to the machine) is what the
//! parallel experiment drivers submit to; per-call services are for tests
//! and embedders that want their own pool. Do **not** submit-and-collect
//! from *inside* a request executing on the same service — a worker
//! blocking on its own pool's results can deadlock a fully loaded pool.

mod request;
pub mod wire;

pub use request::{
    execute, LoopOutcome, LoopRequest, LoopSource, RequestTiming, ScheduleRequest,
    ScheduleResponse, SchedulerChoice, ServiceError, WorkerScratch,
};

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Stable handle for one submitted request. Ids are assigned in
/// submission order and never reused, so out-of-order completion remains
/// deterministically attributable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Cumulative per-service execution statistics (monotone counters; read
/// a snapshot with [`Service::stats`], diff two snapshots for batch-level
/// numbers). Phase breakdowns cover [`ScheduleRequest::Loop`] requests;
/// experiment-cell requests report only their total under `exec_ns`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed (ok or error).
    pub completed: u64,
    /// Requests that completed with an error response.
    pub errors: u64,
    /// Total wall nanoseconds workers spent executing requests.
    pub exec_ns: u64,
    /// Source-resolution (read + parse + cache lookup) nanoseconds.
    pub parse_ns: u64,
    /// Scheduling nanoseconds.
    pub schedule_ns: u64,
    /// Simulation nanoseconds.
    pub sim_ns: u64,
}

/// Completed responses paired with their ids, sorted by id — what
/// [`Service::collect`] and [`Service::drain`] return.
pub type Responses = Vec<(RequestId, Result<ScheduleResponse, ServiceError>)>;

/// Completed-response ledger shared between workers and callers.
struct Ledger {
    done: HashMap<RequestId, Result<ScheduleResponse, ServiceError>>,
    outstanding: u64,
    stats: ServiceStats,
}

/// The long-lived batch scheduling service: `workers` persistent threads
/// pulling [`ScheduleRequest`]s from a shared queue. See the module docs
/// for the contract; construction is cheap enough for per-test pools but
/// the intended production shape is one service per process ([`global`]).
pub struct Service {
    /// `None` after shutdown begins (Drop); senders hand out ids first.
    tx: Mutex<Option<Sender<(RequestId, ScheduleRequest)>>>,
    ledger: Arc<(Mutex<Ledger>, Condvar)>,
    next_id: AtomicU64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    worker_count: usize,
}

impl Service {
    /// Spawn a service with `workers` persistent worker threads (at least
    /// one). Each worker owns a [`WorkerScratch`] that is **reused across
    /// requests** — parsed-source caches and corpus workloads survive from
    /// one request to the next instead of being rebuilt per batch.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<(RequestId, ScheduleRequest)>();
        let rx = Arc::new(Mutex::new(rx));
        let ledger = Arc::new((
            Mutex::new(Ledger {
                done: HashMap::new(),
                outstanding: 0,
                stats: ServiceStats::default(),
            }),
            Condvar::new(),
        ));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let ledger = Arc::clone(&ledger);
                std::thread::spawn(move || worker_loop(&rx, &ledger))
            })
            .collect();
        Self {
            tx: Mutex::new(Some(tx)),
            ledger,
            next_id: AtomicU64::new(0),
            workers: Mutex::new(handles),
            worker_count: workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Enqueue one request; returns immediately with its id.
    pub fn submit(&self, req: ScheduleRequest) -> RequestId {
        let id = RequestId(self.next_id.fetch_add(1, Ordering::Relaxed));
        {
            // Account before sending so a fast worker can never complete a
            // request the ledger does not yet know is outstanding.
            let (lock, _) = &*self.ledger;
            let mut ledger = lock.lock().unwrap();
            ledger.outstanding += 1;
            ledger.stats.submitted += 1;
        }
        let tx = self.tx.lock().unwrap();
        tx.as_ref()
            .expect("service is shut down")
            .send((id, req))
            .expect("service workers alive");
        id
    }

    /// Enqueue a batch; ids are consecutive in input order.
    pub fn submit_batch(&self, reqs: Vec<ScheduleRequest>) -> Vec<RequestId> {
        reqs.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Block until every id in `ids` has a response, then remove and
    /// return them **sorted by id** (so a batch submitted in input order
    /// comes back in input order regardless of completion order). Ids
    /// from other callers of a shared service are untouched, which is
    /// what makes the [`global`] service safe to share between
    /// concurrently running drivers.
    pub fn collect(&self, ids: &[RequestId]) -> Responses {
        let mut ids: Vec<RequestId> = ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        while !ids.iter().all(|id| ledger.done.contains_key(id)) {
            ledger = cv.wait(ledger).unwrap();
        }
        ids.into_iter()
            .map(|id| {
                let r = ledger.done.remove(&id).expect("id present after wait");
                (id, r)
            })
            .collect()
    }

    /// Block until **no** request is outstanding, then remove and return
    /// every uncollected response sorted by id. Meant for single-owner
    /// services (e.g. `kn serve`); on a shared service this would also
    /// drain other callers' responses — they should use [`collect`].
    ///
    /// [`collect`]: Service::collect
    pub fn drain(&self) -> Responses {
        let (lock, cv) = &*self.ledger;
        let mut ledger = lock.lock().unwrap();
        while ledger.outstanding > 0 {
            ledger = cv.wait(ledger).unwrap();
        }
        let mut out: Vec<_> = ledger.done.drain().collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Snapshot of the cumulative execution statistics.
    pub fn stats(&self) -> ServiceStats {
        self.ledger.0.lock().unwrap().stats.clone()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        *self.tx.lock().unwrap() = None;
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<(RequestId, ScheduleRequest)>>,
    ledger: &(Mutex<Ledger>, Condvar),
) {
    let mut scratch = WorkerScratch::default();
    loop {
        // Hold the queue lock only for the dequeue, never during execution.
        let msg = rx.lock().unwrap().recv();
        let Ok((id, req)) = msg else {
            return; // channel closed: service shut down
        };
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            request::execute_with(&mut scratch, &req)
        }));
        let exec_ns = t0.elapsed().as_nanos() as u64;
        let (result, timing) = match outcome {
            Ok((result, timing)) => (result, timing),
            Err(payload) => {
                // The panic may have left the scratch caches mid-update;
                // start this worker's caches over rather than trust them.
                scratch = WorkerScratch::default();
                (
                    Err(ServiceError::Panicked(panic_message(payload))),
                    RequestTiming::default(),
                )
            }
        };
        let (lock, cv) = ledger;
        let mut ledger = lock.lock().unwrap();
        ledger.stats.completed += 1;
        if result.is_err() {
            ledger.stats.errors += 1;
        }
        ledger.stats.exec_ns += exec_ns;
        ledger.stats.parse_ns += timing.parse_ns;
        ledger.stats.schedule_ns += timing.schedule_ns;
        ledger.stats.sim_ns += timing.sim_ns;
        ledger.outstanding -= 1;
        ledger.done.insert(id, result);
        cv.notify_all();
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "request panicked".to_string()
    }
}

/// The process-wide service, sized to the machine
/// (`std::thread::available_parallelism`), created on first use and alive
/// for the rest of the process. The parallel experiment drivers submit
/// their cells here, so repeated driver calls reuse the same warm worker
/// pool instead of re-spawning threads per batch.
pub fn global() -> &'static Service {
    static GLOBAL: OnceLock<Service> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Service::new(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_collect_round_trip() {
        let svc = Service::new(2);
        let a = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        let b = svc.submit(ScheduleRequest::loop_on_corpus("cytron86"));
        let got = svc.collect(&[b, a]); // collect order is id order
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, a);
        assert_eq!(got[1].0, b);
        assert!(got.iter().all(|(_, r)| r.is_ok()));
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errors, 0);
        assert!(stats.exec_ns > 0);
    }

    #[test]
    fn drain_returns_everything_in_id_order() {
        let svc = Service::new(3);
        let ids = svc.submit_batch(vec![
            ScheduleRequest::loop_on_corpus("figure7"),
            ScheduleRequest::loop_on_corpus("nope"),
            ScheduleRequest::loop_on_corpus("elliptic"),
        ]);
        let got = svc.drain();
        assert_eq!(got.iter().map(|&(id, _)| id).collect::<Vec<_>>(), ids);
        assert!(got[0].1.is_ok());
        assert!(got[1].1.is_err(), "unknown corpus is an error response");
        assert!(got[2].1.is_ok());
    }

    #[test]
    fn global_service_is_shared_and_sized() {
        let svc = global();
        assert!(svc.workers() >= 1);
        let id = svc.submit(ScheduleRequest::loop_on_corpus("figure7"));
        assert!(svc.collect(&[id])[0].1.is_ok());
    }
}
