//! Deterministic fault injection for the request lifecycle.
//!
//! A [`FaultPlan`] decides, for every `(request id, attempt)` pair,
//! whether execution should be sabotaged and how: panic inside the
//! pipeline, stall (a wedged execution the lifecycle layer cuts off as a
//! transient fault), or return garbage (a corrupted response that the
//! sanity validator must catch — the *detect* half of
//! detect-fault-and-retry). Faults are keyed on the request id with a
//! seeded splitmix64 hash, **never on timing**, so a plan produces the
//! same faults on 1 worker or 8, under any interleaving — which is what
//! lets CI assert exact success/retry/error mixes without sleeps or
//! flakes.
//!
//! By default faults are **transient**: they fire only on the first
//! attempt, so a retry budget ≥ 2 recovers every faulted request and the
//! recovered response is byte-identical to an undisturbed run (the
//! pipeline is a pure function of the request). A [`sticky`] plan makes
//! faults permanent instead, exhausting the retry budget and surfacing
//! the final error — both halves of the retry path stay testable.
//!
//! [`sticky`]: FaultPlan::sticky

use super::RequestId;
use crate::service::{LoopOutcome, ScheduleResponse, SchedulerChoice};
use std::collections::HashMap;
use std::time::Duration;

/// One way to sabotage an execution attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the pipeline (exercises the worker's panic guard).
    Panic,
    /// Wedge the attempt: how long depends on [`FaultPlan::stall_mode`] —
    /// either burn [`FaultPlan::stall_duration`] and report a transient
    /// fault, or block until the supervision layer (watchdog) or a
    /// cancel/abandon flag cuts the attempt off.
    Stall,
    /// Execute normally, then corrupt the response so only the sanity
    /// validator ([`validate_response`](super::validate_response)) stands
    /// between the garbage and the caller.
    Garbage,
    /// Net-layer fault: the connection's writer trickles this response
    /// out slowly (a slow consumer draining the pipeline). Ignored by the
    /// worker pool — only [`NetConfig::fault_plan`] draws it.
    ///
    /// [`NetConfig::fault_plan`]: super::net::NetConfig::fault_plan
    SlowReader,
    /// Net-layer fault: the server drops the connection right after
    /// writing this response (exercises the disconnect-tolerant writer
    /// and the no-leaked-ledger-entries guarantee). Ignored by the worker
    /// pool.
    Disconnect,
}

/// What a [`Fault::Stall`] does to the attempt it fires on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StallMode {
    /// Sleep [`FaultPlan::stall_duration`], then report a transient
    /// fault: a stall the *retry* layer recovers from on its own.
    #[default]
    Sleep,
    /// Block indefinitely — a truly wedged worker. The attempt ends only
    /// when the request is cancelled or the watchdog abandons it, so this
    /// is what the supervision layer's stuck-worker detection is pinned
    /// with. Never use without a watchdog (or a cancel path): the worker
    /// slot would be lost for good.
    Wedge,
}

/// How a plan chooses which ids to fault.
#[derive(Clone, Debug)]
enum Selection {
    /// Seeded pseudo-random selection: each id faults with probability
    /// `rate_pct`/100, kind drawn from `kinds`.
    Seeded { seed: u64, rate_pct: u32 },
    /// Exact ids and kinds (targeted tests).
    Explicit(HashMap<u64, Fault>),
}

/// A deterministic plan mapping request ids to injected faults.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    selection: Selection,
    /// Fault kinds a seeded plan draws from (explicit plans carry their
    /// own kinds). Never empty.
    kinds: Vec<Fault>,
    /// Fire on every attempt (permanent fault) instead of only the first
    /// (transient).
    pub sticky: bool,
    /// How long a [`Fault::Stall`] wedges its worker
    /// ([`StallMode::Sleep`] only). Keep small: CI pays it per stalled
    /// attempt.
    pub stall_duration: Duration,
    /// Whether a [`Fault::Stall`] self-resolves after `stall_duration`
    /// or wedges the worker until the watchdog intervenes.
    pub stall_mode: StallMode,
}

impl FaultPlan {
    /// A transient plan faulting ~`rate_pct`% of request ids, drawing
    /// uniformly from all three fault kinds, seeded like the rest of the
    /// tree (splitmix64).
    pub fn seeded(seed: u64, rate_pct: u32) -> Self {
        Self {
            selection: Selection::Seeded {
                seed,
                rate_pct: rate_pct.min(100),
            },
            kinds: vec![Fault::Panic, Fault::Stall, Fault::Garbage],
            sticky: false,
            stall_duration: Duration::from_millis(2),
            stall_mode: StallMode::default(),
        }
    }

    /// Restrict a seeded plan to the given fault kinds (e.g. panics and
    /// stalls only). No-op when `kinds` is empty.
    pub fn with_kinds(mut self, kinds: &[Fault]) -> Self {
        if !kinds.is_empty() {
            self.kinds = kinds.to_vec();
        }
        self
    }

    /// Make every fault permanent: it fires on all attempts, so the retry
    /// budget is exhausted and the caller sees the final error.
    pub fn sticky(mut self) -> Self {
        self.sticky = true;
        self
    }

    /// Override the stall duration.
    pub fn with_stall(mut self, d: Duration) -> Self {
        self.stall_duration = d;
        self
    }

    /// Make every [`Fault::Stall`] wedge its worker permanently
    /// ([`StallMode::Wedge`]) instead of self-resolving — the fault the
    /// watchdog's stuck-worker detection is tested with.
    pub fn wedged(mut self) -> Self {
        self.stall_mode = StallMode::Wedge;
        self
    }

    /// A plan faulting exactly the given ids (transient unless
    /// [`sticky`](FaultPlan::sticky) is applied).
    pub fn explicit(faults: impl IntoIterator<Item = (u64, Fault)>) -> Self {
        Self {
            selection: Selection::Explicit(faults.into_iter().collect()),
            kinds: vec![Fault::Panic, Fault::Stall, Fault::Garbage],
            sticky: false,
            stall_duration: Duration::from_millis(2),
            stall_mode: StallMode::default(),
        }
    }

    /// The fault (if any) to inject for `id` on `attempt` (1-based).
    /// Deterministic in `(plan, id, attempt)` alone.
    pub fn fault_for(&self, id: RequestId, attempt: u32) -> Option<Fault> {
        if attempt > 1 && !self.sticky {
            return None;
        }
        match &self.selection {
            Selection::Explicit(map) => map.get(&id.0).copied(),
            Selection::Seeded { seed, rate_pct } => {
                let h = mix(*seed, id.0);
                if (h % 100) as u32 >= *rate_pct {
                    return None;
                }
                Some(self.kinds[((h >> 32) % self.kinds.len() as u64) as usize])
            }
        }
    }

    /// Every id in `0..n` this plan faults, with its kind — what a test
    /// (or the fault-smoke golden) partitions a batch with.
    pub fn faulted_ids(&self, n: u64) -> Vec<(u64, Fault)> {
        (0..n)
            .filter_map(|i| self.fault_for(RequestId(i), 1).map(|f| (i, f)))
            .collect()
    }
}

/// splitmix64 of `seed ⊕ id`, the same mixing the workload generators
/// use: uncorrelated across ids, stable across platforms.
fn mix(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ (id.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Replace whatever the pipeline produced with recognizable garbage that
/// the sanity validator must reject: impossible message count, negative
/// parallelism, zero makespan against nonzero sequential time.
pub fn garble(_result: Result<ScheduleResponse, super::ServiceError>) -> ScheduleResponse {
    ScheduleResponse::Loop(LoopOutcome {
        name: String::new(),
        scheduler: SchedulerChoice::Cyclic,
        processors_used: 0,
        seq_time: 1,
        makespan: 0,
        sp: -1.0,
        messages: u64::MAX,
        comm_cycles: 0,
        ii: None,
        transform: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plan_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan::seeded(7, 10);
        let a = plan.faulted_ids(1000);
        let b = plan.faulted_ids(1000);
        assert_eq!(a, b, "same plan, same faults");
        // ~10% of 1000 ids; a generous band guards the hash quality.
        assert!(
            (50..200).contains(&a.len()),
            "{} faulted of 1000 at 10%",
            a.len()
        );
        // A different seed faults a different set.
        let c = FaultPlan::seeded(8, 10).faulted_ids(1000);
        assert_ne!(a, c);
        // Rate 0 faults nothing; rate 100 faults everything.
        assert!(FaultPlan::seeded(7, 0).faulted_ids(100).is_empty());
        assert_eq!(FaultPlan::seeded(7, 100).faulted_ids(100).len(), 100);
    }

    #[test]
    fn transient_faults_fire_on_first_attempt_only() {
        let plan = FaultPlan::explicit([(3, Fault::Panic)]);
        assert_eq!(plan.fault_for(RequestId(3), 1), Some(Fault::Panic));
        assert_eq!(plan.fault_for(RequestId(3), 2), None, "retry runs clean");
        assert_eq!(plan.fault_for(RequestId(4), 1), None);
        let sticky = plan.sticky();
        assert_eq!(sticky.fault_for(RequestId(3), 2), Some(Fault::Panic));
        assert_eq!(sticky.fault_for(RequestId(3), 9), Some(Fault::Panic));
    }

    #[test]
    fn kind_restriction_draws_only_those_kinds() {
        let plan = FaultPlan::seeded(11, 100).with_kinds(&[Fault::Panic, Fault::Stall]);
        for (_, f) in plan.faulted_ids(200) {
            assert_ne!(f, Fault::Garbage);
        }
    }

    #[test]
    fn garbled_response_fails_validation() {
        let g = garble(Ok(ScheduleResponse::Loop(LoopOutcome {
            name: "x".into(),
            scheduler: SchedulerChoice::Cyclic,
            processors_used: 1,
            seq_time: 10,
            makespan: 5,
            sp: 50.0,
            messages: 0,
            comm_cycles: 0,
            ii: None,
            transform: None,
        })));
        assert!(super::super::request::validate_response(&g).is_err());
    }
}
